(* Thread-skew study (paper, Sec VI-B5 / Fig 12).

   Perpetual litmus tests derive their power from threads drifting apart
   and back: every skew value is a different relative timing under which
   the threads' memory operations interleave.  This example measures the
   skew distribution of the perpetual sb test under three OS-jitter
   configurations of the simulated machine, using the paper's measurement
   technique — decoding each loaded value back to the storing thread's
   iteration index — and validates it against the machine's ground-truth
   iteration counters.

   Run with: dune exec examples/skew_study.exe *)

module Catalog = Perple_litmus.Catalog
module Config = Perple_sim.Config
module Convert = Perple_core.Convert
module Skew = Perple_core.Skew
module Perpetual = Perple_harness.Perpetual
module Stats = Perple_util.Stats
module Chart = Perple_util.Chart
module Rng = Perple_util.Rng

let iterations = 50_000

let study ~label ~config =
  let conv = Result.get_ok (Convert.convert Catalog.sb) in
  let ground = Stats.Histogram.create () in
  let run =
    Perpetual.run ~config ~rng:(Rng.create 11) ~image:conv.Convert.image
      ~t_reads:conv.Convert.t_reads ~iterations
      ~on_sample:(fun ~round:_ ~iterations ->
        Stats.Histogram.add ground (iterations.(0) - iterations.(1)))
      ()
  in
  let skew = Skew.measure conv ~run in
  Printf.printf "%s\n" label;
  print_string (Chart.density ~height:8 (Stats.Histogram.pdf skew));
  Printf.printf
    "  decoded:      mean %7.2f  stddev %8.2f\n\
     \  ground truth: mean %7.2f  stddev %8.2f  (machine iteration counters)\n\n"
    (Stats.Histogram.mean skew)
    (Stats.Histogram.stddev skew)
    (Stats.Histogram.mean ground)
    (Stats.Histogram.stddev ground)

let () =
  Printf.printf "Perpetual sb, %d iterations per configuration.\n\n"
    iterations;
  study ~label:"1. No OS jitter (threads stay nearly in step):"
    ~config:(Config.no_jitter Config.default);
  study ~label:"2. Default jitter (the Fig 12 configuration):"
    ~config:Config.default;
  study
    ~label:"3. Heavy jitter (rarer, much longer preemptions):"
    ~config:
      { Config.default with Config.jitter_chance = 0.0005; jitter_mean = 4000 };
  print_endline
    "Wider skew distributions mean more distinct relative timings explored \
     per run —\nexactly the cross-iteration interactions litmus7-style \
     synchronisation forbids."

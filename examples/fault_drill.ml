(* Fault drill: supervising a PerpLE campaign through injected failures.

   A long verification campaign is only as good as its ability to survive
   runs that hang, crash or silently lose stores.  This example injects
   such faults into the simulated machine and shows the supervision layer
   doing its job:

   1. a certain hang, caught by quiescence detection and salvaged as a
      truncated prefix (checkpoint-resume);
   2. a flaky mix of faults across a 12-run campaign — watchdog aborts,
      retries with backed-off budgets, salvage — with the ledger printed
      per run;
   3. the same campaign with faults disabled, confirming the supervised
      pipeline degrades nothing when nothing goes wrong.

   Run with: dune exec examples/fault_drill.exe *)

module Catalog = Perple_litmus.Catalog
module Fault = Perple_sim.Fault
module Engine = Perple_core.Engine
module Supervisor = Perple_harness.Supervisor
module Rng = Perple_util.Rng

let fault kind probability = { Fault.kind; probability }

let report_line i (report : Engine.report) =
  let sup = Option.get report.Engine.supervision in
  Printf.printf "  run %2d: %-9s  attempts %d  salvaged %d/%d  rounds %d%s\n"
    i
    (Supervisor.outcome_name sup.Supervisor.outcome)
    (List.length sup.Supervisor.attempts)
    report.Engine.salvaged_iterations report.Engine.requested_iterations
    sup.Supervisor.total_rounds
    (if report.Engine.degraded then "  [degraded]" else "")

let campaign ~name ~faults ~seed ~runs ~iterations =
  Printf.printf "%s (faults: %s)\n" name (Fault.profile_to_string faults);
  let policy = Supervisor.default_policy ~iterations in
  let rng = Rng.create seed in
  let degraded = ref 0 in
  for i = 1 to runs do
    let run_seed = Int64.to_int (Rng.bits64 rng) land max_int in
    match
      Engine.run ~faults ~policy ~seed:run_seed ~iterations Catalog.sb
    with
    | Error _ -> assert false
    | Ok report ->
      report_line i report;
      if report.Engine.degraded then incr degraded
  done;
  Printf.printf "  => %d/%d runs degraded\n\n" !degraded runs

let () =
  (* 1. A guaranteed hang: every thread stops at a random iteration.  The
     machine quiesces, the supervisor retries with halved budgets, and the
     best partial prefix is salvaged rather than thrown away. *)
  campaign ~name:"certain hang, salvage drill"
    ~faults:[ fault Fault.Hang 1.0 ]
    ~seed:11 ~runs:3 ~iterations:4_000;

  (* 2. A flaky environment: occasional hangs and crashes plus a whiff of
     silent store loss.  Most runs are clean; the faulty ones are caught,
     retried and salvaged, and the campaign completes every time. *)
  campaign ~name:"flaky campaign"
    ~faults:
      [
        fault Fault.Hang 0.08;
        fault Fault.Crash 0.08;
        fault Fault.Store_loss 0.002;
      ]
    ~seed:23 ~runs:12 ~iterations:4_000;

  (* 3. Faults off: supervision is pure overhead accounting — every run
     completes on its first attempt, nothing is degraded. *)
  campaign ~name:"control (no faults)" ~faults:[] ~seed:23 ~runs:12
    ~iterations:4_000

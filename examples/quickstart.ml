(* Quickstart: the PerpLE pipeline on the store-buffering test.

   1. Take the sb litmus test from the catalog.
   2. Convert it to a perpetual litmus test (arithmetic sequences).
   3. Run 10k synchronisation-free iterations on the simulated x86-TSO
      machine.
   4. Count all four outcomes with the heuristic counter, and compare with
      a litmus7-style run in the default `user` mode.

   Run with: dune exec examples/quickstart.exe *)

module Outcome = Perple_litmus.Outcome
module Catalog = Perple_litmus.Catalog
module Printer = Perple_litmus.Printer
module Engine = Perple_core.Engine
module Litmus7 = Perple_harness.Litmus7
module Sync_mode = Perple_harness.Sync_mode

let iterations = 10_000

let () =
  let test = Catalog.sb in
  print_endline "The litmus test under test:";
  print_string (Printer.to_string test);
  print_newline ();

  (* PerpLE: perpetual execution + heuristic counting. *)
  let report =
    Result.get_ok
      (Engine.run ~seed:1 ~iterations ~outcomes:(Outcome.all test) test)
  in
  Printf.printf "PerpLE (heuristic counter), %d iterations:\n" iterations;
  List.iteri
    (fun i o ->
      Printf.printf "  %-22s %6d%s\n" (Outcome.to_string o)
        report.Engine.counts.(i)
        (if i = 0 then "   <- target (requires store buffering)" else ""))
    report.Engine.outcomes;
  Printf.printf "  virtual runtime: %d rounds\n\n"
    report.Engine.virtual_runtime;

  (* Baseline: litmus7-style synchronised iterations. *)
  let rng = Perple_util.Rng.create 1 in
  let baseline =
    Litmus7.run ~rng ~test ~mode:Sync_mode.User ~iterations ()
  in
  Printf.printf "litmus7-style baseline (user mode), %d iterations:\n"
    iterations;
  List.iter
    (fun (o, n) -> Printf.printf "  %-22s %6d\n" (Outcome.to_string o) n)
    baseline.Litmus7.histogram;
  Printf.printf "  virtual runtime: %d rounds\n\n"
    baseline.Litmus7.virtual_runtime;

  let target = Result.get_ok (Outcome.of_condition test) in
  let baseline_target = Litmus7.count baseline ~partial:target in
  Printf.printf
    "Target occurrences: PerpLE %d vs litmus7-user %d (%.1fx more), while \
     running %.1fx faster.\n"
    report.Engine.counts.(0) baseline_target
    (float_of_int report.Engine.counts.(0)
    /. float_of_int (max 1 baseline_target))
    (float_of_int baseline.Litmus7.virtual_runtime
    /. float_of_int report.Engine.virtual_runtime)

(* Violation hunting: catching buggy hardware with PerpLE vs litmus7.

   Memory consistency testing exists to find implementation bugs: target
   outcomes that the published model forbids but the hardware exhibits.
   This example injects two bugs into the simulated machine —

   - a store buffer that drains out of order (same-thread stores can be
     reordered, violating TSO's W->W ordering; breaks `mp`), and
   - an MFENCE that neither drains nor waits (breaks `amd5`, the fenced
     store-buffering test)

   — and measures, for PerpLE and for every litmus7 mode, how many
   iterations each tool needs before it first observes the violation.
   Fewer iterations = the bug is caught sooner.

   Run with: dune exec examples/violation_hunt.exe *)

module Catalog = Perple_litmus.Catalog
module Outcome = Perple_litmus.Outcome
module Config = Perple_sim.Config
module Engine = Perple_core.Engine
module Litmus7 = Perple_harness.Litmus7
module Sync_mode = Perple_harness.Sync_mode
module Rng = Perple_util.Rng

let budgets = [ 100; 300; 1_000; 3_000; 10_000; 30_000 ]

(* Smallest budget at which the tool observes the target at least once. *)
let iterations_to_detect run_tool =
  let rec search = function
    | [] -> None
    | n :: rest -> if run_tool n > 0 then Some n else search rest
  in
  search budgets

let perple_count config test n =
  match Engine.run ~config ~seed:7 ~iterations:n test with
  | Ok report -> Engine.target_count report
  | Error _ -> 0

let litmus7_count config mode test n =
  let rng = Rng.create 7 in
  let result = Litmus7.run ~config ~rng ~test ~mode ~iterations:n () in
  Litmus7.count result ~partial:(Result.get_ok (Outcome.of_condition test))

let hunt ~test_name ~model =
  let test = Catalog.find_exn test_name in
  let config = Config.with_model model Config.default in
  Printf.printf "\nBug: %s; witness test: %s (target forbidden by x86-TSO)\n"
    (Config.model_name model) test_name;
  let describe tool = function
    | Some n -> Printf.printf "  %-16s detects within %6d iterations\n" tool n
    | None ->
      Printf.printf "  %-16s not detected within %d iterations\n" tool
        (List.fold_left max 0 budgets)
  in
  describe "perple-heur" (iterations_to_detect (perple_count config test));
  List.iter
    (fun mode ->
      describe
        ("litmus7-" ^ Sync_mode.name mode)
        (iterations_to_detect (litmus7_count config mode test)))
    Sync_mode.all

let sanity_check () =
  (* On correct TSO hardware neither test's target may ever fire. *)
  List.iter
    (fun name ->
      let test = Catalog.find_exn name in
      let count = perple_count Config.default test 30_000 in
      Printf.printf "  %-6s target occurrences on correct TSO: %d\n" name
        count;
      assert (count = 0))
    [ "mp"; "amd5" ]

let () =
  print_endline "Sanity: correct hardware shows no violations.";
  sanity_check ();
  hunt ~test_name:"mp" ~model:Config.Tso_store_reorder;
  hunt ~test_name:"safe022" ~model:Config.Tso_store_reorder;
  hunt ~test_name:"amd5" ~model:Config.Tso_fence_ignored;
  hunt ~test_name:"rwc-fenced" ~model:Config.Tso_fence_ignored;
  print_endline
    "\nNote: safe022 fences the writer, so the out-of-order store buffer \
     cannot\nreorder its stores — no tool should flag it. Detection there \
     would be a\nfalse positive."

(* Authoring a custom litmus test end to end.

   A downstream user brings their own test in litmus7's x86 format.  This
   example parses one from text, validates it, classifies its final
   condition under SC and x86-TSO with both model checkers, converts it to
   perpetual form, runs it, and emits the C/assembly artifacts the paper's
   Converter would produce for real-hardware runs.

   The test is a write-to-read causality variant: can thread 2 see y=1
   (which thread 1 published after reading x=1) and still see x=0?

   Run with: dune exec examples/custom_test.exe *)

module Ast = Perple_litmus.Ast
module Parser = Perple_litmus.Parser
module Printer = Perple_litmus.Printer
module Outcome = Perple_litmus.Outcome
module Operational = Perple_memmodel.Operational
module Axiomatic = Perple_memmodel.Axiomatic
module Convert = Perple_core.Convert
module Codegen = Perple_core.Codegen
module Engine = Perple_core.Engine

let source =
  {|X86 my-wrc
"write-to-read causality, custom"
{ x=0; y=0; }
 P0          | P1          | P2          ;
 MOV [x],$1  | MOV EAX,[x] | MOV EAX,[y] ;
             | MOV [y],$1  | MOV EBX,[x] ;
exists (1:EAX=1 /\ 2:EAX=1 /\ 2:EBX=0)
|}

let () =
  let test =
    match Parser.parse source with
    | Ok test -> test
    | Error e -> Format.kasprintf failwith "parse error: %a" Parser.pp_error e
  in
  (match Ast.validate test with
  | Ok () -> print_endline "parsed and validated:"
  | Error e -> Format.kasprintf failwith "invalid test: %a" Ast.pp_error e);
  print_string (Printer.to_string test);

  (* Classify the target under both models, with both checkers. *)
  List.iter
    (fun model ->
      let operational =
        Result.get_ok (Operational.target_allowed model test)
      in
      let axiomatic = Axiomatic.condition_reachable model test in
      assert (operational = axiomatic);
      Printf.printf "target under %s: %s (checkers agree)\n"
        (Operational.model_to_string model)
        (if operational then "allowed" else "forbidden"))
    [ Operational.Sc; Operational.Tso ];

  (* Run the perpetual version; the target is forbidden under TSO, so the
     count must stay zero on the correct machine. *)
  let report = Result.get_ok (Engine.run ~seed:3 ~iterations:20_000 test) in
  Printf.printf
    "perpetual run: %d iterations, target observed %d times (expected 0 on \
     correct TSO hardware)\n"
    20_000 (Engine.target_count report);
  assert (Engine.target_count report = 0);

  (* Emit the artifacts the paper's Converter produces. *)
  let conv = report.Engine.conversion in
  match Codegen.all_files conv ~outcomes:[ Result.get_ok (Outcome.of_condition test) ] with
  | Error m -> failwith m
  | Ok files ->
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "perple-my-wrc" in
    Codegen.write_to_dir ~dir files;
    Printf.printf "emitted %d Converter artifacts to %s:\n"
      (List.length files) dir;
    List.iter
      (fun (f : Codegen.file) -> Printf.printf "  %s\n" f.Codegen.filename)
      files

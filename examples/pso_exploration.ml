(* Weaker memory models: PerpLE beyond x86-TSO.

   The paper's conclusion notes the approach "can also be applied to
   architectures implementing weaker memory models".  This example does so
   for PSO (partial store order: same-thread stores to different locations
   may take effect out of order, as on SPARC-PSO):

   1. reclassify every suite target under PSO with the model checkers —
      several TSO-forbidden targets (mp, wrc, ...) become allowed;
   2. run those tests with PerpLE on the simulated PSO machine and confirm
      the newly-allowed targets are observed while the still-forbidden ones
      are not;
   3. compare against litmus7-user on the same machine.

   Run with: dune exec examples/pso_exploration.exe *)

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Catalog = Perple_litmus.Catalog
module Operational = Perple_memmodel.Operational
module Config = Perple_sim.Config
module Engine = Perple_core.Engine
module Litmus7 = Perple_harness.Litmus7
module Sync_mode = Perple_harness.Sync_mode
module Rng = Perple_util.Rng

let iterations = 20_000

let () =
  let pso_config = Config.with_model Config.Pso Config.default in
  let reclassified =
    List.filter_map
      (fun (e : Catalog.entry) ->
        let test = e.Catalog.test in
        let tso =
          Result.get_ok (Operational.target_allowed Operational.Tso test)
        in
        let pso =
          Result.get_ok (Operational.target_allowed Operational.Pso test)
        in
        if pso && not tso then Some test else None)
      Catalog.suite
  in
  Printf.printf
    "Targets forbidden under x86-TSO but allowed under PSO (%d of %d):\n"
    (List.length reclassified)
    (List.length Catalog.suite);
  List.iter (fun t -> Printf.printf "  %s\n" t.Ast.name) reclassified;
  print_newline ();

  Printf.printf
    "%-14s %-18s %-18s %s\n" "test" "perple (PSO mach.)" "litmus7-user"
    "perple on TSO machine (control)";
  List.iter
    (fun test ->
      let perple_pso =
        Engine.target_count
          (Result.get_ok
             (Engine.run ~config:pso_config ~seed:5 ~iterations test))
      in
      let l7 =
        let rng = Rng.create 5 in
        let r =
          Litmus7.run ~config:pso_config ~rng ~test ~mode:Sync_mode.User
            ~iterations ()
        in
        Litmus7.count r ~partial:(Result.get_ok (Outcome.of_condition test))
      in
      let perple_tso =
        Engine.target_count
          (Result.get_ok (Engine.run ~seed:5 ~iterations test))
      in
      Printf.printf "%-14s %-18d %-18d %d\n" test.Ast.name perple_pso l7
        perple_tso;
      assert (perple_tso = 0))
    reclassified;
  print_newline ();

  (* Fenced tests stay forbidden even on the PSO machine. *)
  List.iter
    (fun name ->
      let test = Catalog.find_exn name in
      let count =
        Engine.target_count
          (Result.get_ok
             (Engine.run ~config:pso_config ~seed:5 ~iterations test))
      in
      Printf.printf "%-14s still forbidden under PSO: %d occurrences\n" name
        count;
      assert (count = 0))
    [ "mp+fences"; "safe022"; "amd5" ];
  print_endline
    "\nSame converter, same counters — only the model summary (Table II) \
     and the machine change: the PerpLE pipeline is model-agnostic, as the \
     paper claims."

(* Benchmark executable: regenerates every table and figure of the paper's
   evaluation and measures the computational kernels behind each with
   bechamel.

   Usage:
     dune exec bench/main.exe                 experiment drivers (quick) + micro
     dune exec bench/main.exe -- --full       paper-scale experiment drivers
     dune exec bench/main.exe -- --micro-only micro-benchmarks only
     dune exec bench/main.exe -- --drivers-only
     dune exec bench/main.exe -- --check-counters
                                              factorized-vs-reference counter
                                              agreement over the catalog
                                              (exit 1 on any mismatch)
     dune exec bench/main.exe -- --check-solver [--gen N]
                                              operational/axiomatic/solver
                                              agreement over the catalog and
                                              >= N (default 1000) generated
                                              tests (exit 1 on any mismatch)
     dune exec bench/main.exe -- --json FILE  also emit results as JSON

   The experiment drivers print the same rows/series as the paper's Table II
   and Figs 9-13 plus the Sec VII-D/VII-G summaries; the micro suite holds
   one bechamel Test.make group per table/figure, measuring real wall-clock
   time of that experiment's kernel (most importantly, the exhaustive
   vs. heuristic counter gap of Fig 10, plus the factorized-vs-reference
   exhaustive kernels and the 1-vs-N-domain campaign engine). *)

open Bechamel
open Toolkit
module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Generate = Perple_litmus.Generate
module Operational = Perple_memmodel.Operational
module Axiomatic = Perple_memmodel.Axiomatic
module Solver = Perple_memmodel.Solver
module Trace_check = Perple_core.Trace_check
module Convert = Perple_core.Convert
module OC = Perple_core.Outcome_convert
module Count = Perple_core.Count
module Engine = Perple_core.Engine
module Skew = Perple_core.Skew
module Perpetual = Perple_harness.Perpetual
module Litmus7 = Perple_harness.Litmus7
module Sync_mode = Perple_harness.Sync_mode
module Rng = Perple_util.Rng
module Report = Perple_report
module Json = Perple_util.Json
module Metrics = Perple_util.Metrics

(* --- Prepared state shared by the micro-benchmarks ----------------------- *)

let sb_conv = lazy (Result.get_ok (Convert.convert Catalog.sb))

let prepared_run iterations =
  lazy
    (let conv = Lazy.force sb_conv in
     Perpetual.run ~rng:(Rng.create 1) ~image:conv.Convert.image
       ~t_reads:conv.Convert.t_reads ~iterations ())

let run_1k = prepared_run 1_000
let run_4k = prepared_run 4_000

(* Solver trace-verification scaling: sb contributes 4 events per
   iteration, so these runs decode to 500-, 2000- and 8000-event
   executions.  All three ride the polynomial fast path (0 decisions),
   which is the point: whole-trace classification at sizes the
   operational enumerator cannot reach. *)
let run_125 = prepared_run 125
let run_500 = prepared_run 500
let run_2k = prepared_run 2_000

let verify_sb run =
  let v =
    Trace_check.verify ~model:Operational.Tso (Lazy.force sb_conv)
      (Lazy.force run)
  in
  assert v.Solver.consistent;
  v

let sb_target =
  lazy
    (let conv = Lazy.force sb_conv in
     Result.get_ok
       (OC.convert conv (Result.get_ok (Outcome.of_condition Catalog.sb))))

let sb_all_outcomes =
  lazy
    (let conv = Lazy.force sb_conv in
     List.map
       (fun o -> Result.get_ok (OC.convert conv o))
       (Outcome.all Catalog.sb))

let campaign_runs = 8
let campaign_iterations = 400

(* The jobs sweep: one campaign row per worker count, through the same
   implicit-pool path the CLI's [--jobs] takes (widths beyond the
   machine's core count are capped there — the cap, plus the persistent
   pool, is what makes oversubscribed widths cost nothing instead of the
   historical ~6x slowdown). *)
let campaign_jobs = [ 1; 2; 4; 8 ]
let campaign_name jobs = Printf.sprintf "campaign:sb-8x400-jobs%d" jobs

(* Frame-space size per kernel run, for the frames/sec column of the JSON
   emitter (absent entries report null).  A campaign row's frame space is
   its total machine iterations: runs x iterations. *)
let frames_per_run =
  List.map
    (fun j -> (campaign_name j, campaign_runs * campaign_iterations))
    campaign_jobs
  @ [
    ("fig9:perpetual-run+count-1k", 1_000);
    ("fig10:exhaustive-reference-1k", 1_000_000);
    ("fig10:exhaustive-factorized-1k", 1_000_000);
    ("fig10:exhaustive-reference-4k", 16_000_000);
    ("fig10:exhaustive-factorized-4k", 16_000_000);
    ("fig10:heuristic-count-1k", 1_000);
    ("fig10:heuristic-count-4k", 4_000);
    ("fig11:engine-end-to-end-1k", 1_000);
    ("fig12:skew-measure-4k", 4_000);
    ("fig13:variety-count-1k", 1_000);
    ("overall:litmus7-user-500", 500);
    ("overall:perpetual-500", 500);
    ("solver:verify-trace-500ev", 500);
    ("solver:verify-trace-2kev", 2_000);
    ("solver:verify-trace-8kev", 8_000);
  ]

let campaign ~jobs () =
  Result.get_ok
    (Engine.campaign ~jobs ~runs:campaign_runs ~seed:7
       ~iterations:campaign_iterations Catalog.sb)

(* One Test.make per table/figure of the evaluation. *)
let micro_tests =
  [
    (* Table II: deciding allowed/forbidden with the operational checker. *)
    Test.make ~name:"table2:classify-sb-tso"
      (Staged.stage (fun () ->
           Operational.target_allowed Operational.Tso Catalog.sb));
    (* Fig 9: a perpetual run plus heuristic target counting, 1k iters. *)
    Test.make ~name:"fig9:perpetual-run+count-1k"
      (Staged.stage (fun () ->
           let conv = Lazy.force sb_conv in
           let run =
             Perpetual.run ~rng:(Rng.create 2) ~image:conv.Convert.image
               ~t_reads:conv.Convert.t_reads ~iterations:1_000 ()
           in
           Count.heuristic_auto conv
             ~outcomes:[ Lazy.force sb_target ]
             ~run));
    (* Fig 10: the counting-cost gap — exhaustive N^2 vs heuristic N on an
       identical prepared run, with the naive odometer (the paper's
       Algorithm 1 cost model) and the factorized kernel side by side. *)
    Test.make ~name:"fig10:exhaustive-reference-1k"
      (Staged.stage (fun () ->
           Count.exhaustive_reference (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_1k)));
    Test.make ~name:"fig10:exhaustive-factorized-1k"
      (Staged.stage (fun () ->
           Count.exhaustive (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_1k)));
    Test.make ~name:"fig10:exhaustive-reference-4k"
      (Staged.stage (fun () ->
           Count.exhaustive_reference (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_4k)));
    Test.make ~name:"fig10:exhaustive-factorized-4k"
      (Staged.stage (fun () ->
           Count.exhaustive (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_4k)));
    Test.make ~name:"fig10:heuristic-count-1k"
      (Staged.stage (fun () ->
           Count.heuristic_auto (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_1k)));
    Test.make ~name:"fig10:heuristic-count-4k"
      (Staged.stage (fun () ->
           Count.heuristic_auto (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_4k)));
    (* Fig 11: the full engine end to end (run + conversion + counting). *)
    Test.make ~name:"fig11:engine-end-to-end-1k"
      (Staged.stage (fun () ->
           Engine.run ~seed:3 ~iterations:1_000 Catalog.sb));
    (* Fig 12: skew measurement by value decoding. *)
    Test.make ~name:"fig12:skew-measure-4k"
      (Staged.stage (fun () ->
           Skew.measure (Lazy.force sb_conv) ~run:(Lazy.force run_4k)));
    (* Fig 13: independent per-outcome heuristic counting, all outcomes. *)
    Test.make ~name:"fig13:variety-count-1k"
      (Staged.stage (fun () ->
           Count.heuristic_independent (Lazy.force sb_conv)
             ~outcomes:(Lazy.force sb_all_outcomes)
             ~run:(Lazy.force run_1k)));
  ]
  (* Campaign engine jobs sweep: identical 8x400 SB campaigns across
     worker counts (results are bit-identical; only wall clock may
     differ).  The JSON emitter turns these rows into the
     scaling_efficiency series. *)
  @ List.map
      (fun j -> Test.make ~name:(campaign_name j) (Staged.stage (campaign ~jobs:j)))
      campaign_jobs
  @ [
    (* Sec VII-G: baseline execution cost, litmus7-user vs perpetual. *)
    Test.make ~name:"overall:litmus7-user-500"
      (Staged.stage (fun () ->
           Litmus7.run ~rng:(Rng.create 4) ~test:Catalog.sb
             ~mode:Sync_mode.User ~iterations:500 ()));
    Test.make ~name:"overall:perpetual-500"
      (Staged.stage (fun () ->
           let conv = Lazy.force sb_conv in
           Perpetual.run ~rng:(Rng.create 4) ~image:conv.Convert.image
             ~t_reads:conv.Convert.t_reads ~iterations:500 ()));
    (* Solver backend: per-test classification next to table2's
       operational row, and whole-trace verification scaling. *)
    Test.make ~name:"solver:classify-sb-tso"
      (Staged.stage (fun () -> Solver.target_allowed Operational.Tso Catalog.sb));
    Test.make ~name:"solver:verify-trace-500ev"
      (Staged.stage (fun () -> verify_sb run_125));
    Test.make ~name:"solver:verify-trace-2kev"
      (Staged.stage (fun () -> verify_sb run_500));
    Test.make ~name:"solver:verify-trace-8kev"
      (Staged.stage (fun () -> verify_sb run_2k));
  ]

let run_micro () =
  print_endline "== micro-benchmarks (bechamel, wall clock) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"perple" micro_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun label ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> Float.nan
        in
        (label, ns) :: acc)
      results []
  in
  let table = Perple_util.Table.create ~headers:[ "kernel"; "time/run" ] in
  Perple_util.Table.set_align table 1 Perple_util.Table.Right;
  let pretty_time ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (label, ns) ->
      Perple_util.Table.add_row table [ label; pretty_time ns ])
    (List.sort compare rows);
  Perple_util.Table.print table;
  let find label = List.assoc_opt ("perple/" ^ label) rows in
  let headline fmt a b =
    match (find a, find b) with
    | Some x, Some y when (not (Float.is_nan x)) && not (Float.is_nan y) ->
      Printf.printf fmt (Perple_util.Table.ratio_cell (x /. y))
    | _ -> ()
  in
  (* The Fig 10 headline in wall-clock terms: Algorithm 1 vs Algorithm 2
     (reference kernels, the paper's comparison)... *)
  headline
    "\nwall-clock counting speedup, heuristic vs exhaustive (sb, N=1k): %s \
     (paper geomean across suite: 305x; grows with N)\n"
    "fig10:exhaustive-reference-1k" "fig10:heuristic-count-1k";
  (* ...and the factorized kernel against the reference odometer. *)
  headline
    "factorized exhaustive kernel vs reference odometer (sb, N=1k): %s\n"
    "fig10:exhaustive-reference-1k" "fig10:exhaustive-factorized-1k";
  headline
    "factorized exhaustive kernel vs reference odometer (sb, N=4k): %s \
     (target: >= 10x)\n"
    "fig10:exhaustive-reference-4k" "fig10:exhaustive-factorized-4k";
  headline
    "campaign wall-clock, 1 domain vs 4 domains (sb, 8x400): %s (1.00x on \
     a single-core host; results bit-identical either way)\n"
    "campaign:sb-8x400-jobs1" "campaign:sb-8x400-jobs4";
  rows

(* --- Factorized-vs-reference agreement over the catalog ------------------ *)

(* Exhaustive run length per test, bounded so the reference odometer stays
   affordable at any T_L. *)
let check_iterations ~tl =
  if tl >= 4 then 12 else if tl = 3 then 40 else if tl = 2 then 300 else 600

let check_counters () =
  print_endline
    "== factorized-vs-reference counter agreement (full catalog) ==";
  let mismatches = ref 0 in
  let checked = ref 0 in
  List.iter
    (fun (e : Catalog.entry) ->
      let test = e.Catalog.test in
      match Convert.convert test with
      | Error _ -> ()
      | Ok conv ->
        let tl = Array.length conv.Convert.load_threads in
        let iterations = check_iterations ~tl in
        let run =
          Perpetual.run ~rng:(Rng.create 11) ~image:conv.Convert.image
            ~t_reads:conv.Convert.t_reads ~iterations ()
        in
        let outcomes =
          List.filter_map
            (fun o -> Result.to_option (OC.convert conv o))
            (Outcome.all test)
        in
        let pair name (a : Count.result) (b : Count.result) =
          incr checked;
          if a.Count.counts <> b.Count.counts then begin
            incr mismatches;
            Printf.printf "MISMATCH %s/%s: [%s] vs [%s]\n" test.Ast.name name
              (String.concat ";"
                 (List.map string_of_int (Array.to_list a.Count.counts)))
              (String.concat ";"
                 (List.map string_of_int (Array.to_list b.Count.counts)))
          end
        in
        pair "first-match"
          (Count.exhaustive conv ~outcomes ~run)
          (Count.exhaustive_reference conv ~outcomes ~run);
        pair "independent"
          (Count.exhaustive_independent conv ~outcomes ~run)
          (Count.exhaustive_independent_reference conv ~outcomes ~run);
        (match Outcome.of_condition test with
        | Error _ -> ()
        | Ok target ->
          let outcomes = [ Result.get_ok (OC.convert conv target) ] in
          pair "target"
            (Count.exhaustive conv ~outcomes ~run)
            (Count.exhaustive_reference conv ~outcomes ~run)))
    Catalog.suite;
  Printf.printf "%d comparisons, %d mismatches\n" !checked !mismatches;
  !mismatches = 0

(* --- Three-backend agreement: catalog + generated tests ------------------ *)

(* Cross-validates the solver against both established checkers on every
   catalog test and on >= 1000 cycle-generated tests (deterministic Rng,
   no qcheck dependency here).  Any disagreement prints the test in
   litmus format so it can be minimized into a committed regression. *)
let check_solver ?(generated_count = 1_000) () =
  Printf.printf "== three-backend agreement (catalog + >=%d generated) ==\n"
    generated_count;
  let mismatches = ref 0 in
  let checked = ref 0 in
  let same a b =
    let sort = List.sort Outcome.compare in
    let a = sort a and b = sort b in
    List.length a = List.length b && List.for_all2 Outcome.equal a b
  in
  let show outcomes =
    String.concat "; " (List.map Outcome.to_string outcomes)
  in
  let check_test (test : Ast.t) =
    List.iter
      (fun model ->
        incr checked;
        let op = Operational.reachable_outcomes model test in
        let ax = Axiomatic.reachable_outcomes model test in
        let sv = Solver.reachable_outcomes model test in
        let fc_ax = Axiomatic.condition_reachable model test in
        let fc_sv = Solver.final_condition_reachable model test in
        if not (same op ax && same op sv && fc_ax = fc_sv) then begin
          incr mismatches;
          Printf.printf
            "MISMATCH %s under %s:\n  operational: %s\n  axiomatic:   %s\n\
            \  solver:      %s\n  final condition: axiomatic=%b solver=%b\n%s\n"
            test.Ast.name
            (Operational.model_to_string model)
            (show op) (show ax) (show sv) fc_ax fc_sv
            (Perple_litmus.Printer.to_string test)
        end)
      [ Operational.Sc; Operational.Tso; Operational.Pso ]
  in
  List.iter (fun (e : Catalog.entry) -> check_test e.Catalog.test) Catalog.suite;
  List.iter check_test Catalog.non_convertible;
  let rng = Rng.create 97 in
  let generated = ref 0 in
  while !generated < generated_count do
    let cycle = Generate.random_cycle rng ~max_edges:5 in
    match
      Generate.of_cycle ~name:(Printf.sprintf "gen%d" !generated) cycle
    with
    | Error _ -> ()
    | Ok test ->
      incr generated;
      check_test test
  done;
  Printf.printf "%d model/test checks (%d generated tests), %d mismatches\n"
    !checked !generated !mismatches;
  !mismatches = 0

(* --- Per-phase metrics ---------------------------------------------------- *)

(* The bench harness reuses the pipeline's own metrics emitter: a phase
   runs under a fresh ambient sink and its deterministic counter summary
   lands in the emitted JSON, giving BENCH_*.json a per-phase breakdown
   (machine rounds vs counter evaluations vs supervisor activity).  The
   bechamel micro phase is deliberately *not* instrumented — its timings
   are the <5% disabled-overhead baseline. *)
let phase_metrics : (string * Json.t) list ref = ref []

let with_phase_metrics name f =
  let sink = Metrics.create_sink () in
  Metrics.install sink;
  let r = Fun.protect ~finally:Metrics.uninstall f in
  phase_metrics := !phase_metrics @ [ (name, Metrics.to_json sink) ];
  r

(* --- JSON emission -------------------------------------------------------- *)

let json_escape = Json.escape

let json_float f =
  if Float.is_nan f || Float.is_integer f && Float.abs f > 1e15 then "null"
  else Printf.sprintf "%.6g" f

let emit_json ~path ~mode ~micro ~drivers ~counters_agree ~solver_agree =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"perple-bench/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b "  \"micro\": [\n";
  let micro = List.sort compare micro in
  let short label =
    match String.index_opt label '/' with
    | Some j -> String.sub label (j + 1) (String.length label - j - 1)
    | None -> label
  in
  (* Speedup of each jobs-sweep row over the jobs1 row of the same
     campaign (jobs1_ns / jobsN_ns): 1.0 is parity, the ideal on an
     unconstrained host is N, and on a host whose core count caps the
     pool the persistent-pool contract keeps it at ~1.0 rather than the
     historical collapse below it.  Null for non-campaign rows. *)
  let jobs1_ns =
    List.fold_left
      (fun acc (label, ns) ->
        if short label = campaign_name 1 then Some ns else acc)
      None micro
  in
  let scaling_efficiency label ns =
    match jobs1_ns with
    | Some base
      when List.exists (fun j -> short label = campaign_name j) campaign_jobs
           && (not (Float.is_nan base))
           && (not (Float.is_nan ns))
           && ns > 0.0 -> json_float (base /. ns)
    | _ -> "null"
  in
  List.iteri
    (fun i (label, ns) ->
      let frames = List.assoc_opt (short label) frames_per_run in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"ns_per_run\": %s, \"frames_per_run\": \
            %s, \"frames_per_sec\": %s, \"scaling_efficiency\": %s}%s\n"
           (json_escape label) (json_float ns)
           (match frames with Some f -> string_of_int f | None -> "null")
           (match frames with
           | Some f when (not (Float.is_nan ns)) && ns > 0.0 ->
             json_float (float_of_int f /. (ns /. 1e9))
           | _ -> "null")
           (scaling_efficiency label ns)
           (if i = List.length micro - 1 then "" else ",")))
    micro;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"drivers\": [\n";
  List.iteri
    (fun i (id, lines) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"id\": \"%s\", \"rows\": %d}%s\n"
           (json_escape id) lines
           (if i = List.length drivers - 1 then "" else ",")))
    drivers;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"metrics\": %s,\n"
       (Json.to_string (Json.Obj !phase_metrics)));
  let opt_bool = function
    | Some true -> "true"
    | Some false -> "false"
    | None -> "null"
  in
  Buffer.add_string b
    (Printf.sprintf "  \"counters_agree\": %s,\n" (opt_bool counters_agree));
  Buffer.add_string b
    (Printf.sprintf "  \"solver_agree\": %s\n" (opt_bool solver_agree));
  Buffer.add_string b "}\n";
  (* Atomic replace: an interrupted bench run leaves the previous
     complete results file, never a torn JSON document. *)
  Perple_util.Atomic_file.write ~path (Buffer.contents b);
  Printf.printf "bench results written to %s\n" path

let run_drivers params =
  List.map
    (fun (id, text) ->
      Printf.printf "==== %s ====\n%s\n%!" id text;
      let lines =
        String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text
      in
      (id, lines))
    (Report.Experiments.run_all params)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let micro_only = List.mem "--micro-only" args in
  let drivers_only = List.mem "--drivers-only" args in
  let counters_only = List.mem "--check-counters" args in
  let solver_only = List.mem "--check-solver" args in
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let params =
    if full then Report.Common.default_params else Report.Common.quick_params
  in
  let drivers =
    if (not micro_only) && (not counters_only) && not solver_only then
      with_phase_metrics "drivers" (fun () -> run_drivers params)
    else []
  in
  let micro =
    if (not drivers_only) && (not counters_only) && not solver_only then
      run_micro ()
    else []
  in
  let counters_agree =
    if counters_only || (json_path <> None && not solver_only) then
      Some (with_phase_metrics "check_counters" check_counters)
    else None
  in
  let generated_count =
    let rec find = function
      | "--gen" :: n :: _ -> int_of_string n
      | _ :: rest -> find rest
      | [] -> 1_000
    in
    find args
  in
  let solver_agree =
    if solver_only then
      Some
        (with_phase_metrics "check_solver" (fun () ->
             check_solver ~generated_count ()))
    else None
  in
  (* One instrumented reference campaign per emitted file: the per-phase
     breakdown every later perf PR reports against. *)
  if json_path <> None && not solver_only then
    with_phase_metrics "campaign" (fun () -> ignore (campaign ~jobs:1 ()));
  (match json_path with
  | Some path ->
    let mode =
      if solver_only then "check-solver"
      else if counters_only then "check-counters"
      else if micro_only then "micro-only"
      else if drivers_only then "drivers-only"
      else if full then "full"
      else "quick"
    in
    emit_json ~path ~mode ~micro ~drivers ~counters_agree ~solver_agree
  | None -> ());
  match (counters_agree, solver_agree) with
  | Some false, _ | _, Some false -> exit 1
  | _ -> ()

(* Benchmark executable: regenerates every table and figure of the paper's
   evaluation and measures the computational kernels behind each with
   bechamel.

   Usage:
     dune exec bench/main.exe                 experiment drivers (quick) + micro
     dune exec bench/main.exe -- --full       paper-scale experiment drivers
     dune exec bench/main.exe -- --micro-only micro-benchmarks only
     dune exec bench/main.exe -- --drivers-only

   The experiment drivers print the same rows/series as the paper's Table II
   and Figs 9-13 plus the Sec VII-D/VII-G summaries; the micro suite holds
   one bechamel Test.make group per table/figure, measuring real wall-clock
   time of that experiment's kernel (most importantly, the exhaustive
   vs. heuristic counter gap of Fig 10). *)

open Bechamel
open Toolkit
module Catalog = Perple_litmus.Catalog
module Outcome = Perple_litmus.Outcome
module Operational = Perple_memmodel.Operational
module Convert = Perple_core.Convert
module OC = Perple_core.Outcome_convert
module Count = Perple_core.Count
module Engine = Perple_core.Engine
module Skew = Perple_core.Skew
module Perpetual = Perple_harness.Perpetual
module Litmus7 = Perple_harness.Litmus7
module Sync_mode = Perple_harness.Sync_mode
module Rng = Perple_util.Rng
module Report = Perple_report

(* --- Prepared state shared by the micro-benchmarks ----------------------- *)

let sb_conv = lazy (Result.get_ok (Convert.convert Catalog.sb))

let prepared_run iterations =
  lazy
    (let conv = Lazy.force sb_conv in
     Perpetual.run ~rng:(Rng.create 1) ~image:conv.Convert.image
       ~t_reads:conv.Convert.t_reads ~iterations ())

let run_1k = prepared_run 1_000
let run_4k = prepared_run 4_000

let sb_target =
  lazy
    (let conv = Lazy.force sb_conv in
     Result.get_ok
       (OC.convert conv (Result.get_ok (Outcome.of_condition Catalog.sb))))

let sb_all_outcomes =
  lazy
    (let conv = Lazy.force sb_conv in
     List.map
       (fun o -> Result.get_ok (OC.convert conv o))
       (Outcome.all Catalog.sb))

(* One Test.make per table/figure of the evaluation. *)
let micro_tests =
  [
    (* Table II: deciding allowed/forbidden with the operational checker. *)
    Test.make ~name:"table2:classify-sb-tso"
      (Staged.stage (fun () ->
           Operational.target_allowed Operational.Tso Catalog.sb));
    (* Fig 9: a perpetual run plus heuristic target counting, 1k iters. *)
    Test.make ~name:"fig9:perpetual-run+count-1k"
      (Staged.stage (fun () ->
           let conv = Lazy.force sb_conv in
           let run =
             Perpetual.run ~rng:(Rng.create 2) ~image:conv.Convert.image
               ~t_reads:conv.Convert.t_reads ~iterations:1_000 ()
           in
           Count.heuristic_auto conv
             ~outcomes:[ Lazy.force sb_target ]
             ~run));
    (* Fig 10: the counting-cost gap — exhaustive N^2 vs heuristic N on an
       identical prepared 1k-iteration run. *)
    Test.make ~name:"fig10:exhaustive-count-1k"
      (Staged.stage (fun () ->
           Count.exhaustive (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_1k)));
    Test.make ~name:"fig10:heuristic-count-1k"
      (Staged.stage (fun () ->
           Count.heuristic_auto (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_1k)));
    Test.make ~name:"fig10:heuristic-count-4k"
      (Staged.stage (fun () ->
           Count.heuristic_auto (Lazy.force sb_conv)
             ~outcomes:[ Lazy.force sb_target ]
             ~run:(Lazy.force run_4k)));
    (* Fig 11: the full engine end to end (run + conversion + counting). *)
    Test.make ~name:"fig11:engine-end-to-end-1k"
      (Staged.stage (fun () ->
           Engine.run ~seed:3 ~iterations:1_000 Catalog.sb));
    (* Fig 12: skew measurement by value decoding. *)
    Test.make ~name:"fig12:skew-measure-4k"
      (Staged.stage (fun () ->
           Skew.measure (Lazy.force sb_conv) ~run:(Lazy.force run_4k)));
    (* Fig 13: independent per-outcome heuristic counting, all outcomes. *)
    Test.make ~name:"fig13:variety-count-1k"
      (Staged.stage (fun () ->
           Count.heuristic_independent (Lazy.force sb_conv)
             ~outcomes:(Lazy.force sb_all_outcomes)
             ~run:(Lazy.force run_1k)));
    (* Sec VII-G: baseline execution cost, litmus7-user vs perpetual. *)
    Test.make ~name:"overall:litmus7-user-500"
      (Staged.stage (fun () ->
           Litmus7.run ~rng:(Rng.create 4) ~test:Catalog.sb
             ~mode:Sync_mode.User ~iterations:500 ()));
    Test.make ~name:"overall:perpetual-500"
      (Staged.stage (fun () ->
           let conv = Lazy.force sb_conv in
           Perpetual.run ~rng:(Rng.create 4) ~image:conv.Convert.image
             ~t_reads:conv.Convert.t_reads ~iterations:500 ()));
  ]

let run_micro () =
  print_endline "== micro-benchmarks (bechamel, wall clock) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"perple" micro_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun label ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> Float.nan
        in
        (label, ns) :: acc)
      results []
  in
  let table = Perple_util.Table.create ~headers:[ "kernel"; "time/run" ] in
  Perple_util.Table.set_align table 1 Perple_util.Table.Right;
  let pretty_time ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (label, ns) ->
      Perple_util.Table.add_row table [ label; pretty_time ns ])
    (List.sort compare rows);
  Perple_util.Table.print table;
  (* The Fig 10 headline in wall-clock terms. *)
  let find label = List.assoc ("perple/" ^ label) rows in
  try
    let exh = find "fig10:exhaustive-count-1k" in
    let heur = find "fig10:heuristic-count-1k" in
    Printf.printf
      "\nwall-clock counting speedup, heuristic vs exhaustive (sb, N=1k): \
       %s (paper geomean across suite: 305x; grows with N)\n"
      (Perple_util.Table.ratio_cell (exh /. heur))
  with Not_found -> ()

let run_drivers params =
  List.iter
    (fun (id, text) -> Printf.printf "==== %s ====\n%s\n%!" id text)
    (Report.Experiments.run_all params)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let micro_only = List.mem "--micro-only" args in
  let drivers_only = List.mem "--drivers-only" args in
  let params =
    if full then Report.Common.default_params else Report.Common.quick_params
  in
  if not micro_only then run_drivers params;
  if not drivers_only then run_micro ()

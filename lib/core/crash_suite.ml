(* Exhaustive crash-point campaign over one litmus test.

   A crash suite is the persistency analogue of a run campaign: one task
   per crash point instead of one per seeded run.  Each point is
   evaluated by the operational crash-point executor; the per-point
   record is the journal's record type, so a resumed suite prints from
   journaled records and a clean suite from freshly computed ones, and
   the two stdout streams are byte-identical.

   Crash-point evaluation is fully deterministic (no RNG: the reachable
   images are an exhaustive enumeration), so resume needs no seed
   bookkeeping — a journaled point is simply skipped. *)

module Ast = Perple_litmus.Ast
module Config = Perple_sim.Config
module Crashsim = Perple_sim.Crashsim
module Json = Perple_util.Json
module Supervisor = Perple_harness.Supervisor
module Metrics = Perple_util.Metrics

type record = {
  point : int;
  outcome : Supervisor.outcome;
  images : int;
  violations : int;
  witness : (string * int) list option;
  error : string option;
}

let record_of_result (r : Crashsim.point_result) =
  {
    point = r.Crashsim.point;
    outcome = Supervisor.Ok;
    images = r.Crashsim.images;
    violations = r.Crashsim.violations;
    witness = r.Crashsim.witness;
    error = None;
  }

(* Recovery itself failed at this point — the evaluator raised on the
   persisted image.  The point is recorded as [Unrecoverable] rather
   than aborting the suite: its siblings' verdicts are still wanted. *)
let unrecoverable ~point ~message =
  {
    point;
    outcome = Supervisor.Unrecoverable;
    images = 0;
    violations = 0;
    witness = None;
    error = Some message;
  }

let evaluate ?(jobs = 1) ?(skip = fun _ -> false) ?on_record ?evaluate_point
    ~persistency test =
  if jobs < 1 then invalid_arg "Crash_suite.evaluate: jobs must be >= 1";
  let evaluate_point =
    match evaluate_point with
    | Some f -> f
    | None -> fun ~point -> Crashsim.evaluate_point ~persistency test ~point
  in
  let points = Crashsim.crash_points test in
  let pending =
    Array.of_list
      (List.filter (fun p -> not (skip p)) (List.init points Fun.id))
  in
  (* Right-size workers from the full point count, not the pending count,
     so the jobs-clamp note is identical for a clean suite and any resume
     of it (same reasoning as [Engine.campaign_entries]). *)
  let stable_jobs = min (min jobs (max points 1)) Pool.max_jobs in
  if stable_jobs < jobs then begin
    Metrics.incr "crash_suite.jobs_clamped";
    Printf.eprintf "perple: crash-suite: clamped jobs %d -> %d (%s)\n%!" jobs
      stable_jobs
      (if jobs > Pool.max_jobs && stable_jobs = Pool.max_jobs then
         Printf.sprintf "domain limit %d" Pool.max_jobs
       else Printf.sprintf "only %d crash points" points)
  end;
  let pool_jobs = max 1 (min stable_jobs (max 1 (Array.length pending))) in
  let records : record option array = Array.make points None in
  let record_mutex = Mutex.create () in
  let retire r =
    match on_record with
    | None -> ()
    | Some f ->
      (* Retiring points journal from whichever domain finishes first;
         serialize the callback so the caller needs no locking. *)
      Mutex.lock record_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock record_mutex)
        (fun () -> f r)
  in
  let around ti thunk =
    let point = pending.(ti) in
    let result = thunk () in
    let r =
      match result with
      | Ok pr -> record_of_result pr
      | Error task_error ->
        Metrics.incr "crash_suite.unrecoverable";
        unrecoverable ~point ~message:(Pool.error_message task_error)
    in
    records.(point) <- Some r;
    retire r;
    result
  in
  ignore
    (Pool.map_result ~jobs:pool_jobs ~around (Array.length pending)
       (fun ti -> evaluate_point ~point:pending.(ti)));
  Metrics.incr "crash_suite.suites";
  records

(* --- journal record (kind "point") ---------------------------------------- *)

let to_json r =
  Json.Obj
    ([
       ("kind", Json.String "point");
       ("point", Json.Int r.point);
       ("outcome", Json.String (Supervisor.outcome_name r.outcome));
       ("images", Json.Int r.images);
       ("violations", Json.Int r.violations);
     ]
    @ (match r.witness with
      | Some w ->
        [ ("witness", Json.Obj (List.map (fun (x, v) -> (x, Json.Int v)) w)) ]
      | None -> [])
    @ match r.error with Some m -> [ ("error", Json.String m) ] | None -> [])

(* Strict field accessors, as in {!Ledger}: a record that lost or mistyped
   a field is rejected whole, never half-read. *)
let ( let* ) = Result.bind

let int_field name v =
  match Json.member name v with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "crash-suite record: %S is not an int" name)

let string_field name v =
  match Json.member name v with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "crash-suite record: %S is not a string" name)

let opt_string_field name v =
  match Json.member name v with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ ->
    Error (Printf.sprintf "crash-suite record: %S is not a string" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let of_json j =
  let* () =
    match Json.member "kind" j with
    | Some (Json.String "point") -> Ok ()
    | _ -> Error "crash-suite record: kind is not \"point\""
  in
  let* point = int_field "point" j in
  let* outcome_name = string_field "outcome" j in
  let* outcome =
    match Supervisor.outcome_of_name outcome_name with
    | Some ((Supervisor.Ok | Supervisor.Unrecoverable) as o) -> Ok o
    | Some _ | None ->
      Error
        (Printf.sprintf "crash-suite record: unexpected outcome %S"
           outcome_name)
  in
  let* images = int_field "images" j in
  let* violations = int_field "violations" j in
  let* witness =
    match Json.member "witness" j with
    | None -> Ok None
    | Some (Json.Obj fields) ->
      let* atoms =
        map_result
          (fun (x, v) ->
            match v with
            | Json.Int i -> Ok (x, i)
            | _ ->
              Error
                (Printf.sprintf
                   "crash-suite record: witness value for %S is not an int" x))
          fields
      in
      Ok (Some atoms)
    | Some _ -> Error "crash-suite record: \"witness\" is not an object"
  in
  let* error = opt_string_field "error" j in
  Ok { point; outcome; images; violations; witness; error }

module Ast = Perple_litmus.Ast
module Config = Perple_sim.Config
module Operational = Perple_memmodel.Operational
module Solver = Perple_memmodel.Solver
module Perpetual = Perple_harness.Perpetual
module Machine = Perple_sim.Machine

(* Whole-trace verification of a perpetual run: every recorded iteration's
   loads are decoded back to the exact store that produced them (the
   sequenced values make reads-from unambiguous), the run unrolls into one
   flat event trace, and {!Solver.classify_trace} checks it against the
   model's axioms directly — no per-iteration outcome extraction, no
   enumeration.  This is the classification the report layer trusts for
   runs far beyond the operational enumerator's reach. *)

let spec_model = function
  | Config.Sc -> Operational.Sc
  | Config.Tso -> Operational.Tso
  | Config.Pso -> Operational.Pso
  (* The planted bugs are deviations from TSO; their traces are judged
     against the honest model, which is how the checker detects them. *)
  | Config.Tso_store_reorder | Config.Tso_fence_ignored -> Operational.Tso

(* Per-thread instruction skeleton: flushes are ordering-irrelevant in the
   volatile axioms (no rf/ws/fr can touch them), so they are dropped and
   the remaining instructions renumbered densely. *)
type slot_kind =
  | S_write of string
  | S_read of string * int  (* location, load slot *)
  | S_fence

let skeleton test =
  Array.map
    (fun program ->
      let slot = ref 0 in
      Array.to_list program
      |> List.filter_map (fun instr ->
             match instr with
             | Ast.Store (x, _) -> Some (S_write x)
             | Ast.Load (_, x) ->
               let s = !slot in
               incr slot;
               Some (S_read (x, s))
             | Ast.Mfence | Ast.Drain -> Some S_fence
             | Ast.Flush _ -> None)
      |> Array.of_list)
    test.Ast.threads

exception Undecodable of string

let trace_of_run (conv : Convert.t) (run : Perpetual.run) =
  let test = conv.Convert.test in
  let skel = skeleton test in
  let nthreads = Array.length skel in
  let retired_arr = run.Perpetual.machine.Machine.iterations_retired in
  let retired t = if t < Array.length retired_arr then retired_arr.(t) else 0 in
  let loc_names = Array.of_list (Ast.locations test) in
  let loc_id x =
    let rec find i = if loc_names.(i) = x then i else find (i + 1) in
    find 0
  in
  (* Event position of an instruction within one skeleton iteration, and
     among the iteration's stores alone (the layout of unretired trailing
     iterations, which carry only stores a reader observed). *)
  let full_pos = Array.map (fun _ -> Hashtbl.create 4) skel in
  let store_pos = Array.map (fun _ -> Hashtbl.create 4) skel in
  let stores_per_iter = Array.make nthreads 0 in
  Array.iteri
    (fun t program ->
      let pos = ref 0 and spos = ref 0 in
      Array.iteri
        (fun instr_index instr ->
          match instr with
          | Ast.Store _ ->
            Hashtbl.add full_pos.(t) instr_index !pos;
            Hashtbl.add store_pos.(t) instr_index !spos;
            incr pos;
            incr spos
          | Ast.Load _ | Ast.Mfence | Ast.Drain -> incr pos
          | Ast.Flush _ -> ())
        program;
      stores_per_iter.(t) <- !spos)
    test.Ast.threads;
  (* Per (thread, load slot) location. *)
  let slot_loc =
    Array.map
      (fun skel_t ->
        Array.to_list skel_t
        |> List.filter_map (function S_read (x, _) -> Some x | _ -> None)
        |> Array.of_list)
      skel
  in
  (* First pass: decode every recorded load, extending write horizons to
     cover stores observed from an iteration the writer has not fully
     retired. *)
  let horizon = Array.init nthreads retired in
  let decoded =
    Array.init nthreads (fun t ->
        let r = run.Perpetual.t_reads.(t) in
        Array.init (retired t) (fun i ->
            Array.init r (fun s ->
                let value = run.Perpetual.bufs.(t).((r * i) + s) in
                let x = slot_loc.(t).(s) in
                match Convert.decode conv ~loc_id:(loc_id x) ~value with
                | Some Convert.Initial -> None
                | Some (Convert.Member { store; iteration }) ->
                  if iteration + 1 > horizon.(store.Convert.thread) then
                    horizon.(store.Convert.thread) <- iteration + 1;
                  Some (store, iteration)
                | None ->
                  raise
                    (Undecodable
                       (Printf.sprintf
                          "thread %d iteration %d slot %d: value %d decodes \
                           to no store of [%s]"
                          t i s value x)))))
  in
  (* Global ids, thread-major: [retired] full skeleton iterations, then
     store-only unretired iterations up to the horizon. *)
  let per_iter = Array.map Array.length skel in
  let offsets = Array.make nthreads 0 in
  let total = ref 0 in
  for t = 0 to nthreads - 1 do
    offsets.(t) <- !total;
    total :=
      !total
      + (retired t * per_iter.(t))
      + ((horizon.(t) - retired t) * stores_per_iter.(t))
  done;
  let id_of_store (store : Convert.store) ~iteration =
    let t = store.Convert.thread in
    if iteration < retired t then
      offsets.(t)
      + (iteration * per_iter.(t))
      + Hashtbl.find full_pos.(t) store.Convert.instr_index
    else
      offsets.(t)
      + (retired t * per_iter.(t))
      + ((iteration - retired t) * stores_per_iter.(t))
      + Hashtbl.find store_pos.(t) store.Convert.instr_index
  in
  Array.init nthreads (fun t ->
      let full = retired t * per_iter.(t) in
      let tail = (horizon.(t) - retired t) * stores_per_iter.(t) in
      let tail_stores =
        Array.to_list skel.(t)
        |> List.filter_map (function S_write x -> Some x | _ -> None)
        |> Array.of_list
      in
      Array.init (full + tail) (fun j ->
          if j < full then begin
            let i = j / per_iter.(t) and idx = j mod per_iter.(t) in
            match skel.(t).(idx) with
            | S_write x -> Solver.T_write x
            | S_fence -> Solver.T_fence
            | S_read (x, s) ->
              Solver.T_read
                ( x,
                  Option.map
                    (fun (store, iteration) -> id_of_store store ~iteration)
                    decoded.(t).(i).(s) )
          end
          else
            (* an unretired iteration observed through another thread's
               read: only its stores are certain to have executed *)
            Solver.T_write tail_stores.((j - full) mod stores_per_iter.(t))))

let verify ~model conv run =
  match trace_of_run conv run with
  | threads -> Solver.classify_trace model threads
  | exception Undecodable msg ->
    {
      Solver.consistent = false;
      events = 0;
      violation = Some ("undecodable read: " ^ msg);
      decisions = 0;
      backtracks = 0;
    }

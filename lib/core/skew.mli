(** Thread-skew measurement (paper, Sec VI-B5 and Fig 12).

    In a perpetual run, the value thread [t] loads in its iteration [n]
    decodes to a store in some iteration [m] of some thread [s]; [n - m] is
    the skew between [t] and [s] around that moment.  The width of the skew
    distribution indicates how far the perpetual run strays from the
    lockstep execution of synchronised litmus tests. *)

val measure :
  ?between:int * int ->
  Convert.t ->
  run:Perple_harness.Perpetual.run ->
  Perple_util.Stats.Histogram.t
(** Histogram of [n - m] over every load of every iteration whose value
    decodes to another thread's store.  With [~between:(t, s)] only loads
    of thread [t] reading stores of thread [s] contribute. *)

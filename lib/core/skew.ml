module Outcome = Perple_litmus.Outcome
module Perpetual = Perple_harness.Perpetual
module Stats = Perple_util.Stats

let measure ?between (conv : Convert.t) ~run =
  let histogram = Stats.Histogram.create () in
  let loads = Outcome.loads conv.Convert.test in
  let n = run.Perpetual.iterations in
  List.iter
    (fun (thread, reg, location) ->
      match Convert.slot_of_register conv ~thread ~reg with
      | None -> ()
      | Some slot ->
        let reads = conv.Convert.t_reads.(thread) in
        let loc_id =
          Perple_sim.Program.location_id conv.Convert.image location
        in
        for i = 0 to n - 1 do
          let value = run.Perpetual.bufs.(thread).((reads * i) + slot) in
          match Convert.decode conv ~loc_id ~value with
          | Some (Convert.Member { store; iteration }) ->
            let s = store.Convert.thread in
            let wanted =
              match between with
              | None -> s <> thread
              | Some (t', s') -> thread = t' && s = s'
            in
            if wanted then Stats.Histogram.add histogram (i - iteration)
          | Some Convert.Initial | None -> ()
        done)
    loads;
  histogram

(** Test conversion: litmus test -> perpetual litmus test (paper, Sec III).

    Every store of a positive constant [a] to a location [mem] becomes a
    store of the arithmetic-sequence member [k_mem * n_t + a], where [k_mem]
    is the number of distinct constants stored to [mem] across the whole
    test and [n_t] is the storing thread's iteration index.  Loads and
    fences are unchanged; per-iteration memory zeroing disappears because
    stored values are globally unique (Table I).

    Constants are first {e canonicalised} per location to [1..k_mem]
    (ascending by original value), so that a loaded value [v > 0] decodes
    uniquely: the store is identified by [((v - 1) mod k) + 1] and its
    iteration by [(v - canonical) / k]; [v = 0] is the initial value. *)

module Ast := Perple_litmus.Ast
module Program := Perple_sim.Program

type store = {
  location : string;
  loc_id : int;  (** Interned location id in the produced image. *)
  thread : int;
  instr_index : int;
  constant : int;  (** The constant in the original litmus test. *)
  canonical : int;  (** Its canonical residue in [1..k]. *)
  k : int;  (** [k_mem] of the location. *)
}

type t = {
  test : Ast.t;
  image : Program.image;
      (** The perpetual executable: [Seq]-operand stores, [Shared]
          addressing, loads renumbered so thread [t]'s [i]-th load targets
          register [i]. *)
  t_reads : int array;
      (** Loads per iteration per thread — the Converter's parameter file
          output ([t_0_reads] ... in the paper, Sec V-A). *)
  load_threads : int array;
      (** Load-performing threads, ascending; length is [T_L]. *)
  frame_index : int array;
      (** [frame_index.(thread)] is the thread's position among
          [load_threads], or [-1] for store-only threads. *)
  stores : store list;
  k_by_loc : int array;  (** [k_mem] per interned location id. *)
}

type reason =
  | Memory_condition of Ast.location
      (** The final condition inspects a shared location; such outcomes
          cannot be determined after a perpetual run (paper, Sec V-C). *)
  | Nonzero_initial of Ast.location
      (** Arithmetic-sequence decoding reserves 0 for the initial value. *)
  | Invalid of Ast.error

val pp_reason : Format.formatter -> reason -> unit

val convert : Ast.t -> (t, reason) result
(** Fails on invalid tests and on tests whose own final condition is not
    convertible.  Use {!convert_body} to convert the program while ignoring
    the condition (e.g. to analyse a different outcome set). *)

val convert_body : Ast.t -> (t, reason) result
(** Like {!convert} but does not require the test's own condition to be
    register-only. *)

type decoded =
  | Initial  (** The value 0: no store has hit the location yet. *)
  | Member of { store : store; iteration : int }

val decode : t -> loc_id:int -> value:int -> decoded option
(** [None] when the value is no member of any sequence of the location
    (negative, or a non-positive iteration would result). *)

val store_for_value : t -> location:string -> value:int -> store option
(** The unique store instruction writing original constant [value] to the
    location, if any. *)

val seq_value : store -> iteration:int -> int
(** The value this store writes at the given iteration:
    [k * iteration + canonical]. *)

val slot_of_register : t -> thread:int -> reg:int -> int option
(** Load-slot index of an original register (the perpetual image renumbers
    registers to slots). *)

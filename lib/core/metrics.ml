(* The engine-facing name of the metrics layer; the implementation lives
   in {!Perple_util.Metrics} so that the sim and harness layers (which
   perple_core depends on) can emit through the same ambient sink.  See
   docs/internals.md, "Observability". *)
include Perple_util.Metrics

module Ast = Perple_litmus.Ast
module Program = Perple_sim.Program

type store = {
  location : string;
  loc_id : int;
  thread : int;
  instr_index : int;
  constant : int;
  canonical : int;
  k : int;
}

type t = {
  test : Ast.t;
  image : Program.image;
  t_reads : int array;
  load_threads : int array;
  frame_index : int array;
  stores : store list;
  k_by_loc : int array;
}

type reason =
  | Memory_condition of Ast.location
  | Nonzero_initial of Ast.location
  | Invalid of Ast.error

let pp_reason ppf = function
  | Memory_condition x ->
    Format.fprintf ppf
      "final condition inspects shared location [%s]; perpetual tests can \
       only determine register outcomes (paper, Sec V-C)"
      x
  | Nonzero_initial x ->
    Format.fprintf ppf
      "location [%s] has a non-zero initial value; 0 is reserved for \
       decoding"
      x
  | Invalid e -> Ast.pp_error ppf e

let seq_value store ~iteration = (store.k * iteration) + store.canonical

let convert_body test =
  match Ast.validate test with
  | Error e -> Error (Invalid e)
  | Ok () -> (
    match
      List.find_opt (fun x -> Ast.initial_value test x <> 0)
        (Ast.locations test)
    with
    | Some x -> Error (Nonzero_initial x)
    | None ->
      let names = Array.of_list (Ast.locations test) in
      let loc_id name =
        let rec find i =
          if names.(i) = name then i else find (i + 1)
        in
        find 0
      in
      let k_by_loc =
        Array.map
          (fun x -> List.length (Ast.store_constants test x))
          names
      in
      (* Canonical residue of a store constant: its 1-based rank among the
         distinct constants stored to the location. *)
      let canonical_of x a =
        let rec rank i = function
          | [] -> invalid_arg "canonical_of"
          | c :: rest -> if c = a then i else rank (i + 1) rest
        in
        rank 1 (Ast.store_constants test x)
      in
      let stores =
        List.concat_map
          (fun x ->
            List.map
              (fun (thread, instr_index, a) ->
                {
                  location = x;
                  loc_id = loc_id x;
                  thread;
                  instr_index;
                  constant = a;
                  canonical = canonical_of x a;
                  k = k_by_loc.(loc_id x);
                })
              (Ast.stores_to test x))
          (Array.to_list names)
      in
      let compile_thread thread program =
        let slot = ref 0 in
        let body =
          Array.mapi
            (fun instr_index instr ->
              match instr with
              | Ast.Store (x, a) ->
                let id = loc_id x in
                Program.Store
                  {
                    loc = id;
                    addr = Program.Shared;
                    value =
                      Program.Seq
                        { k = k_by_loc.(id); a = canonical_of x a };
                  }
              | Ast.Load (_, x) ->
                let this = !slot in
                incr slot;
                ignore instr_index;
                Program.Load
                  { loc = loc_id x; addr = Program.Shared; reg = this }
              | Ast.Mfence -> Program.Fence
              | Ast.Flush x ->
                Program.Flush { loc = loc_id x; addr = Program.Shared }
              | Ast.Drain -> Program.Drain)
            program
        in
        ignore thread;
        { Program.body; reg_count = !slot }
      in
      let programs = Array.mapi compile_thread test.Ast.threads in
      let image =
        {
          Program.programs;
          location_names = names;
          init = Array.map (fun _ -> 0) names;
        }
      in
      let t_reads = Ast.loads_per_thread test in
      let load_threads = Array.of_list (Ast.load_threads test) in
      let frame_index = Array.make (Ast.thread_count test) (-1) in
      Array.iteri (fun i t -> frame_index.(t) <- i) load_threads;
      Ok
        { test; image; t_reads; load_threads; frame_index; stores; k_by_loc })

let convert test =
  match
    List.find_map
      (function Ast.Loc_eq (x, _) -> Some x | Ast.Reg_eq _ -> None)
      test.Ast.condition.atoms
  with
  | Some x -> Error (Memory_condition x)
  | None -> convert_body test

type decoded = Initial | Member of { store : store; iteration : int }

let decode t ~loc_id ~value =
  if value = 0 then Some Initial
  else if value < 0 then None
  else begin
    let k = t.k_by_loc.(loc_id) in
    if k = 0 then None
    else begin
      let canonical = ((value - 1) mod k) + 1 in
      let iteration = (value - canonical) / k in
      let store =
        List.find_opt
          (fun s -> s.loc_id = loc_id && s.canonical = canonical)
          t.stores
      in
      match store with
      | Some store when iteration >= 0 -> Some (Member { store; iteration })
      | Some _ | None -> None
    end
  end

let store_for_value t ~location ~value =
  List.find_opt
    (fun s -> s.location = location && s.constant = value)
    t.stores

let slot_of_register t ~thread ~reg =
  match Ast.register_load t.test ~thread ~reg with
  | None -> None
  | Some (instr, _) -> Some (Ast.load_slot t.test ~thread ~instr)

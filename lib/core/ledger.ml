(* Serializable per-run campaign summaries — the journal's record type.

   The summary is the meeting point of the durability design: it holds
   exactly what the CLI ledger printers consume, so a clean campaign can
   print from freshly computed summaries and a resumed campaign from
   journaled ones, and the two stdout streams are byte-identical. *)

module Json = Perple_util.Json
module Supervisor = Perple_harness.Supervisor
module Perpetual = Perple_harness.Perpetual

type attempt = {
  a_index : int;
  a_outcome : string;
  a_requested : int;
  a_retired : int;
  a_rounds : int;
  a_lost_stores : int;
  a_exn : string option;
}

type supervision = {
  s_outcome : string;
  s_total_rounds : int;
  s_lost : bool;
  s_attempts : attempt list;
}

type crash = { c_message : string; c_backtrace : string }

type t = {
  index : int;
  seed : int;
  crashed : crash option;
  iterations : int;
  requested_iterations : int;
  frames_examined : int;
  evaluations : int;
  virtual_runtime : int;
  counts : int array;
  degraded : bool;
  salvaged_iterations : int;
  supervision : supervision option;
  metrics : Json.t option;
}

let of_attempt (a : Supervisor.attempt) =
  {
    a_index = a.Supervisor.index;
    a_outcome = Supervisor.outcome_name a.Supervisor.outcome;
    a_requested = a.Supervisor.requested;
    a_retired = a.Supervisor.retired;
    a_rounds = a.Supervisor.rounds;
    a_lost_stores = a.Supervisor.lost_stores;
    a_exn = a.Supervisor.exn;
  }

let of_entry (e : Engine.entry) =
  match e.Engine.outcome with
  | Error crash ->
    {
      index = e.Engine.run_index;
      seed = e.Engine.run_seed;
      crashed =
        Some
          {
            c_message = crash.Engine.message;
            c_backtrace = crash.Engine.backtrace;
          };
      iterations = 0;
      requested_iterations = 0;
      frames_examined = 0;
      evaluations = 0;
      virtual_runtime = 0;
      counts = [||];
      degraded = false;
      salvaged_iterations = 0;
      supervision = None;
      metrics = e.Engine.run_metrics;
    }
  | Ok report ->
    {
      index = e.Engine.run_index;
      seed = e.Engine.run_seed;
      crashed = None;
      iterations = report.Engine.run.Perpetual.iterations;
      requested_iterations = report.Engine.requested_iterations;
      frames_examined = report.Engine.frames_examined;
      evaluations = report.Engine.evaluations;
      virtual_runtime = report.Engine.virtual_runtime;
      counts = Array.copy report.Engine.counts;
      degraded = report.Engine.degraded;
      salvaged_iterations = report.Engine.salvaged_iterations;
      supervision =
        Option.map
          (fun (sup : Supervisor.supervised) ->
            {
              s_outcome = Supervisor.outcome_name sup.Supervisor.outcome;
              s_total_rounds = sup.Supervisor.total_rounds;
              s_lost = sup.Supervisor.run = None;
              s_attempts = List.map of_attempt sup.Supervisor.attempts;
            })
          report.Engine.supervision;
      metrics = e.Engine.run_metrics;
    }

let target_count s = if Array.length s.counts = 0 then 0 else s.counts.(0)

(* --- JSON -------------------------------------------------------------- *)

let json_of_attempt a =
  Json.Obj
    ([
       ("index", Json.Int a.a_index);
       ("outcome", Json.String a.a_outcome);
       ("requested", Json.Int a.a_requested);
       ("retired", Json.Int a.a_retired);
       ("rounds", Json.Int a.a_rounds);
       ("lost_stores", Json.Int a.a_lost_stores);
     ]
    @ match a.a_exn with None -> [] | Some m -> [ ("exn", Json.String m) ])

let json_of_supervision s =
  Json.Obj
    [
      ("outcome", Json.String s.s_outcome);
      ("total_rounds", Json.Int s.s_total_rounds);
      ("lost", Json.Bool s.s_lost);
      ("attempts", Json.List (List.map json_of_attempt s.s_attempts));
    ]

let to_json s =
  Json.Obj
    ([ ("kind", Json.String "run"); ("index", Json.Int s.index);
       ("seed", Json.Int s.seed) ]
    @ (match s.crashed with
      | Some c ->
        [
          ( "crashed",
            Json.Obj
              [
                ("message", Json.String c.c_message);
                ("backtrace", Json.String c.c_backtrace);
              ] );
        ]
      | None -> [])
    @ [
        ("iterations", Json.Int s.iterations);
        ("requested_iterations", Json.Int s.requested_iterations);
        ("frames_examined", Json.Int s.frames_examined);
        ("evaluations", Json.Int s.evaluations);
        ("virtual_runtime", Json.Int s.virtual_runtime);
        ( "counts",
          Json.List (Array.to_list (Array.map (fun c -> Json.Int c) s.counts))
        );
        ("degraded", Json.Bool s.degraded);
        ("salvaged_iterations", Json.Int s.salvaged_iterations);
      ]
    @ (match s.supervision with
      | Some sup -> [ ("supervision", json_of_supervision sup) ]
      | None -> [])
    @ match s.metrics with Some m -> [ ("metrics", m) ] | None -> [])

(* Strict field accessors: a journal record that lost or mistyped a field
   is rejected whole, never half-read. *)
let ( let* ) = Result.bind

let int_field name v =
  match Json.member name v with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "ledger record: %S is not an int" name)

let bool_field name v =
  match Json.member name v with
  | Some (Json.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "ledger record: %S is not a bool" name)

let string_field name v =
  match Json.member name v with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "ledger record: %S is not a string" name)

let opt_string_field name v =
  match Json.member name v with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "ledger record: %S is not a string" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let attempt_of_json j =
  let* a_index = int_field "index" j in
  let* a_outcome = string_field "outcome" j in
  let* a_requested = int_field "requested" j in
  let* a_retired = int_field "retired" j in
  let* a_rounds = int_field "rounds" j in
  let* a_lost_stores = int_field "lost_stores" j in
  let* a_exn = opt_string_field "exn" j in
  Ok { a_index; a_outcome; a_requested; a_retired; a_rounds; a_lost_stores;
       a_exn }

let supervision_of_json j =
  let* s_outcome = string_field "outcome" j in
  let* () =
    match Supervisor.outcome_of_name s_outcome with
    | Some _ -> Ok ()
    | None ->
      Error (Printf.sprintf "ledger record: unknown outcome %S" s_outcome)
  in
  let* s_total_rounds = int_field "total_rounds" j in
  let* s_lost = bool_field "lost" j in
  let* s_attempts =
    match Json.member "attempts" j with
    | Some (Json.List l) -> map_result attempt_of_json l
    | _ -> Error "ledger record: \"attempts\" is not a list"
  in
  Ok { s_outcome; s_total_rounds; s_lost; s_attempts }

let of_json j =
  let* kind = string_field "kind" j in
  let* () =
    if kind = "run" then Ok ()
    else Error (Printf.sprintf "ledger record: kind %S is not \"run\"" kind)
  in
  let* index = int_field "index" j in
  let* seed = int_field "seed" j in
  let* crashed =
    match Json.member "crashed" j with
    | None -> Ok None
    | Some c ->
      let* c_message = string_field "message" c in
      let* c_backtrace = string_field "backtrace" c in
      Ok (Some { c_message; c_backtrace })
  in
  let* iterations = int_field "iterations" j in
  let* requested_iterations = int_field "requested_iterations" j in
  let* frames_examined = int_field "frames_examined" j in
  let* evaluations = int_field "evaluations" j in
  let* virtual_runtime = int_field "virtual_runtime" j in
  let* counts =
    match Json.member "counts" j with
    | Some (Json.List l) ->
      let* ints =
        map_result
          (function
            | Json.Int i -> Ok i
            | _ -> Error "ledger record: non-int count")
          l
      in
      Ok (Array.of_list ints)
    | _ -> Error "ledger record: \"counts\" is not a list"
  in
  let* degraded = bool_field "degraded" j in
  let* salvaged_iterations = int_field "salvaged_iterations" j in
  let* supervision =
    match Json.member "supervision" j with
    | None -> Ok None
    | Some s ->
      let* sup = supervision_of_json s in
      Ok (Some sup)
  in
  let metrics = Json.member "metrics" j in
  Ok
    {
      index; seed; crashed; iterations; requested_iterations;
      frames_examined; evaluations; virtual_runtime; counts; degraded;
      salvaged_iterations; supervision; metrics;
    }

(* --- Journal framing --------------------------------------------------- *)

let digest_of_params params =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) params)))

type header = { h_command : string; h_digest : string; h_runs : int }

let header_to_json h =
  Json.Obj
    [
      ("kind", Json.String "header");
      ("schema", Json.String "perple-journal/1");
      ("command", Json.String h.h_command);
      ("digest", Json.String h.h_digest);
      ("runs", Json.Int h.h_runs);
    ]

let parse_header j =
  let* kind = string_field "kind" j in
  let* () =
    if kind = "header" then Ok ()
    else Error "journal: first record is not a header"
  in
  let* schema = string_field "schema" j in
  let* () =
    if schema = "perple-journal/1" then Ok ()
    else Error (Printf.sprintf "journal: unsupported schema %S" schema)
  in
  let* h_command = string_field "command" j in
  let* h_digest = string_field "digest" j in
  let* h_runs = int_field "runs" j in
  Ok { h_command; h_digest; h_runs }

let kind j =
  match Json.member "kind" j with Some (Json.String k) -> Some k | _ -> None

let interrupted_marker = Json.Obj [ ("kind", Json.String "interrupted") ]
let draining_marker = Json.Obj [ ("kind", Json.String "draining") ]

(* The canonical streamed form of a run record: exactly the compact JSON
   the journal stores, so a daemon re-streaming journaled entries emits
   the same bytes a live run produced.  [Json.to_string] is
   deterministic, which is what makes "byte-identical re-stream" a
   checkable contract rather than a hope. *)
let record_line s = Json.to_string (to_json s)

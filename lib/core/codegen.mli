(** Emission of the Converter's output files (paper, Sec V-A).

    For a converted test and a set of outcomes of interest, the Converter
    produces:

    - one x86-64 assembly file per test thread, with the perpetual loop
      (arithmetic-sequence stores, loads into registers, [buf] writes and
      untouched fences);
    - a C file with the exhaustive outcome counter ([COUNT], Algorithm 1)
      with each [p_out] inlined;
    - a C file with the heuristic outcome counter ([COUNTH], Algorithm 2)
      with each [p_out_h] inlined;
    - a parameters header with [t_0_reads] ... [t_{T-1}_reads];
    - a generic pthread harness that launches the threads, runs them
      synchronisation-free and applies the counters.

    The files are textual artifacts: this reproduction executes perpetual
    tests on its simulated machine, but the emitted code is what would run
    on real x86 hardware, and the emission logic is exercised by golden
    tests.  (The container is sealed, so nothing is assembled here.) *)

module Outcome := Perple_litmus.Outcome

type file = { filename : string; content : string }

val thread_asm : Convert.t -> thread:int -> file
(** [<test>_thread_<t>.s]. *)

val exhaustive_counter_c : Convert.t -> outcomes:Outcome.t list -> (file, string) result
(** [<test>_count.c]; fails if an outcome is not convertible. *)

val heuristic_counter_c : Convert.t -> outcomes:Outcome.t list -> (file, string) result
(** [<test>_counth.c]. *)

val params_header : Convert.t -> file
(** [<test>_params.h]. *)

val harness_c : Convert.t -> file
(** [<test>_harness.c]: pthread launcher with a single launch barrier. *)

val c11_file : Convert.t -> outcomes:Outcome.t list -> (file, string) result
(** [<test>_c11.c]: a self-contained, portable C11 translation unit —
    [_Atomic long] locations, relaxed atomic loads/stores for the test's
    plain accesses, [atomic_thread_fence(seq_cst)] for [MFENCE], the
    pthread launch harness and both counters.  The paper notes the
    Converter adapts to other ISAs by swapping the load/store/fence
    spellings; this backend is the ISA-agnostic variant and runs on any
    host with a C11 toolchain. *)

val all_files : Convert.t -> outcomes:Outcome.t list -> (file list, string) result

val write_to_dir : dir:string -> file list -> unit
(** Creates [dir] if needed and writes each file. *)

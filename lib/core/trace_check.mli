(** Whole-trace verification of perpetual runs via the solver backend.

    A perpetual run's sequenced store values make every load's reads-from
    source unambiguous ({!Convert.decode}), so the entire run — thousands
    of events — unrolls into one concrete execution that
    {!Perple_memmodel.Solver.classify_trace} checks against the model's
    axioms directly.  The report layer uses this instead of per-iteration
    outcome classification: it validates the inter-iteration orderings the
    outcome view cannot see, and it is the detection instrument for the
    planted simulator bugs (their traces violate honest TSO). *)

module Config := Perple_sim.Config
module Operational := Perple_memmodel.Operational
module Solver := Perple_memmodel.Solver
module Perpetual := Perple_harness.Perpetual

val spec_model : Config.model -> Operational.model
(** The model a trace from this simulator configuration must satisfy.
    The buggy variants map to honest TSO: that is how their deviations
    are caught. *)

exception Undecodable of string
(** A recorded load value that no store of its location can have
    produced. *)

val trace_of_run :
  Convert.t -> Perpetual.run -> Solver.trace_event array array
(** Unroll a run into a flat per-thread event trace with decoded
    reads-from edges.  Fully retired iterations contribute their whole
    skeleton (flushes excluded — no volatile axiom can touch them);
    iterations a writer had not retired contribute only stores another
    thread observed.

    @raise Undecodable on a value {!Convert.decode} cannot attribute. *)

val verify :
  model:Operational.model -> Convert.t -> Perpetual.run -> Solver.verdict
(** [trace_of_run] piped into {!Solver.classify_trace}; an undecodable
    value is reported as an inconsistent verdict rather than raised. *)

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome

type load_ref = { thread : int; frame : int; slot : int; reads : int }

type rf_cond = {
  rf_load : load_ref;
  rf_store : Convert.store;
  store_frame : int;
  exact : bool;
}

type fr_bound = { fb_store : Convert.store; fb_frame : int }

type fr_cond = { fr_load : load_ref; bounds : fr_bound list }

type t = {
  source : Outcome.t;
  rf : rf_cond array;
  fr : fr_cond array;
  unsatisfiable : bool;
}

let load_ref_of (conv : Convert.t) ~thread ~reg =
  match Convert.slot_of_register conv ~thread ~reg with
  | None -> None
  | Some slot ->
    Some
      {
        thread;
        frame = conv.Convert.frame_index.(thread);
        slot;
        reads = conv.Convert.t_reads.(thread);
      }

let convert ?(own_store_exact = true) (conv : Convert.t) outcome =
  let test = conv.Convert.test in
  let rf = ref [] and fr = ref [] in
  let unsatisfiable = ref false in
  let rec go = function
    | [] -> Ok ()
    | binding :: rest -> (
      let { Outcome.thread; reg; value } = binding in
      match load_ref_of conv ~thread ~reg with
      | None ->
        Error
          (Printf.sprintf "no load writes register %d:r%d" thread reg)
      | Some load -> (
        match Ast.register_load test ~thread ~reg with
        | None -> Error "unreachable: load vanished"
        | Some (load_instr, x) ->
          if value = Ast.initial_value test x then begin
            (* A load preceded by an own store to the same location can
               never read the initial (or any coherence-older) value:
               the outcome is unsatisfiable on coherent hardware. *)
            if
              own_store_exact
              && List.exists
                   (fun (other : Convert.store) ->
                     other.Convert.thread = thread
                     && other.Convert.location = x
                     && other.Convert.instr_index < load_instr)
                   conv.Convert.stores
            then unsatisfiable := true;
            (* from-read: older than every store to x at its bound. *)
            let bounds =
              List.filter_map
                (fun (s : Convert.store) ->
                  if s.Convert.location = x then
                    Some
                      {
                        fb_store = s;
                        fb_frame = conv.Convert.frame_index.(s.Convert.thread);
                      }
                  else None)
                conv.Convert.stores
            in
            fr := { fr_load = load; bounds } :: !fr;
            go rest
          end
          else begin
            match Convert.store_for_value conv ~location:x ~value with
            | None ->
              Error
                (Printf.sprintf
                   "condition %d:r%d=%d: no store writes %d to [%s]" thread
                   reg value value x)
            | Some s ->
              (* A po-earlier own store to the same location forces the
                 read to target the frame instance exactly (coherence). *)
              let own_store_before =
                own_store_exact
                && List.exists
                     (fun (other : Convert.store) ->
                       other.Convert.thread = thread
                       && other.Convert.location = x
                       && other.Convert.instr_index < load_instr)
                     conv.Convert.stores
              in
              rf :=
                {
                  rf_load = load;
                  rf_store = s;
                  store_frame = conv.Convert.frame_index.(s.Convert.thread);
                  exact = own_store_before;
                }
                :: !rf;
              go rest
          end))
  in
  match go outcome with
  | Error _ as e -> e
  | Ok () ->
    Ok
      {
        source = outcome;
        rf = Array.of_list (List.rev !rf);
        fr = Array.of_list (List.rev !fr);
        unsatisfiable = !unsatisfiable;
      }

let buf_value bufs (load : load_ref) n =
  bufs.(load.thread).((load.reads * n) + load.slot)

(* Decode [value] as a member of [store]'s sequence; [-1] on mismatch. *)
let member_iteration (store : Convert.store) value =
  if value <= 0 then -1
  else begin
    let k = store.Convert.k in
    let canonical = ((value - 1) mod k) + 1 in
    if canonical <> store.Convert.canonical then -1
    else (value - canonical) / k
  end

(* Single read-from constraint; may pin a store-only thread in [pins]. *)
let eval_rf_cond c ~bufs ~frame ~pins =
  let n = frame.(c.rf_load.frame) in
  let value = buf_value bufs c.rf_load n in
  let iter = member_iteration c.rf_store value in
  if iter < 0 then false
  else if c.store_frame >= 0 then
    if c.exact then iter = frame.(c.store_frame)
    else iter >= frame.(c.store_frame)
  else begin
    let s = c.rf_store.Convert.thread in
    if pins.(s) < 0 then begin
      pins.(s) <- iter;
      true
    end
    else pins.(s) = iter
  end

(* Single from-read constraint; consumes pins set by the rf phase. *)
let eval_fr_cond c ~bufs ~frame ~pins =
  let n = frame.(c.fr_load.frame) in
  let value = buf_value bufs c.fr_load n in
  List.for_all
    (fun b ->
      let bound =
        if b.fb_frame >= 0 then frame.(b.fb_frame)
        else pins.(b.fb_store.Convert.thread)
      in
      if bound < 0 then
        (* No frame variable and no pin: the only sound reading is
           the exact initial value. *)
        value = 0
      else value < Convert.seq_value b.fb_store ~iteration:bound)
    c.bounds

let eval (conv : Convert.t) t ~bufs ~frame =
  t.unsatisfiable = false
  &&
  let nthreads = Array.length conv.Convert.t_reads in
  let pins = Array.make nthreads (-1) in
  (* Phase 1: read-from constraints; they also pin store-only threads. *)
  Array.for_all (fun c -> eval_rf_cond c ~bufs ~frame ~pins) t.rf
  && Array.for_all (fun c -> eval_fr_cond c ~bufs ~frame ~pins) t.fr

(* --- Factorization (counting-kernel decomposition) ----------------------- *)

type component = {
  comp_dims : int array;
  comp_pins : int array;
  comp_rf : int array;
  comp_fr : int array;
}

type shape = Bitset | Pair | Product

type factorization = {
  components : (shape * component) array;
  free_dims : int;
}

(* Nodes of the union-find: frame dimensions [0, tl) and, above them,
   pinned store-only threads [tl + thread].  Every condition unions the
   nodes it touches; pins couple globally (two conditions on the same
   store-only thread share its pin cell in [eval]). *)
let rf_nodes ~tl c =
  c.rf_load.frame
  ::
  (if c.store_frame >= 0 then [ c.store_frame ]
   else [ tl + c.rf_store.Convert.thread ])

let fr_nodes ~tl c =
  c.fr_load.frame
  :: List.map
       (fun b ->
         if b.fb_frame >= 0 then b.fb_frame
         else tl + b.fb_store.Convert.thread)
       c.bounds

let factorize (conv : Convert.t) t =
  let tl = Array.length conv.Convert.load_threads in
  let nthreads = Array.length conv.Convert.t_reads in
  let parent = Array.init (tl + nthreads) Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let mentioned = Array.make (tl + nthreads) false in
  let touch nodes =
    List.iter (fun n -> mentioned.(n) <- true) nodes;
    match nodes with
    | [] -> ()
    | h :: rest -> List.iter (union h) rest
  in
  Array.iter (fun c -> touch (rf_nodes ~tl c)) t.rf;
  Array.iter (fun c -> touch (fr_nodes ~tl c)) t.fr;
  (* Group mentioned nodes and conditions by root. *)
  let comps = Hashtbl.create 8 in
  let slot root =
    match Hashtbl.find_opt comps root with
    | Some s -> s
    | None ->
      let s = (ref [], ref [], ref [], ref []) in
      Hashtbl.add comps root s;
      s
  in
  let free_dims = ref 0 in
  for d = tl - 1 downto 0 do
    if mentioned.(d) then begin
      let dims, _, _, _ = slot (find d) in
      dims := d :: !dims
    end
    else incr free_dims
  done;
  for p = tl + nthreads - 1 downto tl do
    if mentioned.(p) then begin
      let _, pins, _, _ = slot (find p) in
      pins := (p - tl) :: !pins
    end
  done;
  for i = Array.length t.rf - 1 downto 0 do
    let _, _, rfs, _ = slot (find t.rf.(i).rf_load.frame) in
    rfs := i :: !rfs
  done;
  for i = Array.length t.fr - 1 downto 0 do
    let _, _, _, frs = slot (find t.fr.(i).fr_load.frame) in
    frs := i :: !frs
  done;
  let components =
    Hashtbl.fold
      (fun _ (dims, pins, rfs, frs) acc ->
        let comp =
          {
            comp_dims = Array.of_list !dims;
            comp_pins = Array.of_list !pins;
            comp_rf = Array.of_list !rfs;
            comp_fr = Array.of_list !frs;
          }
        in
        let shape =
          match Array.length comp.comp_dims with
          | 1 -> Bitset
          | 2 when Array.length comp.comp_pins = 0 -> Pair
          | _ -> Product
        in
        (shape, comp) :: acc)
      comps []
  in
  (* Deterministic order: by smallest dimension. *)
  let components =
    List.sort
      (fun (_, a) (_, b) -> compare a.comp_dims.(0) b.comp_dims.(0))
      components
  in
  { components = Array.of_list components; free_dims = !free_dims }

let eval_component t comp ~bufs ~frame ~pins =
  Array.iter (fun p -> pins.(p) <- -1) comp.comp_pins;
  let ok = ref true in
  Array.iter
    (fun i -> if !ok then ok := eval_rf_cond t.rf.(i) ~bufs ~frame ~pins)
    comp.comp_rf;
  Array.iter
    (fun i -> if !ok then ok := eval_fr_cond t.fr.(i) ~bufs ~frame ~pins)
    comp.comp_fr;
  !ok

(* Smallest [j >= 0] with [value < k*j + canonical]. *)
let fr_theta (s : Convert.store) value =
  let d = value - s.Convert.canonical in
  if d < 0 then 0 else (d / s.Convert.k) + 1

(* For a pin-free two-dimensional component: fix [comp_dims ∋ dim := i];
   the conditions whose load sits on [dim] constrain the partner dimension
   to an interval (or rule the row out entirely).  [None] when the local
   part already fails; otherwise [Some (lo, hi)] (possibly empty when
   [lo > hi] after intersection — callers treat that as zero). *)
let pair_interval t comp ~dim ~bufs ~iterations i =
  let lo = ref 0 and hi = ref (iterations - 1) and ok = ref true in
  Array.iter
    (fun ci ->
      let c = t.rf.(ci) in
      if !ok && c.rf_load.frame = dim then begin
        let value = buf_value bufs c.rf_load i in
        let iter = member_iteration c.rf_store value in
        if iter < 0 then ok := false
        else if c.store_frame = dim then begin
          if c.exact then (if iter <> i then ok := false)
          else if iter < i then ok := false
        end
        else if c.exact then begin
          lo := max !lo iter;
          hi := min !hi iter
        end
        else hi := min !hi iter
      end)
    comp.comp_rf;
  Array.iter
    (fun ci ->
      let c = t.fr.(ci) in
      if !ok && c.fr_load.frame = dim then begin
        let value = buf_value bufs c.fr_load i in
        List.iter
          (fun b ->
            if b.fb_frame = dim then begin
              if value >= Convert.seq_value b.fb_store ~iteration:i then
                ok := false
            end
            else lo := max !lo (fr_theta b.fb_store value))
          c.bounds
      end)
    comp.comp_fr;
  if !ok then Some (!lo, !hi) else None

(* Necessary (pruning-only) per-dimension filter for Product components:
   full evaluation of conditions entirely local to [dim], plus decoding
   validity of cross/pinning rf conditions whose load sits on [dim]. *)
let local_candidate t comp ~dim ~bufs i =
  let ok = ref true in
  Array.iter
    (fun ci ->
      let c = t.rf.(ci) in
      if !ok && c.rf_load.frame = dim then begin
        let value = buf_value bufs c.rf_load i in
        let iter = member_iteration c.rf_store value in
        if iter < 0 then ok := false
        else if c.store_frame = dim then
          if c.exact then (if iter <> i then ok := false)
          else if iter < i then ok := false
      end)
    comp.comp_rf;
  Array.iter
    (fun ci ->
      let c = t.fr.(ci) in
      if !ok && c.fr_load.frame = dim then begin
        let value = buf_value bufs c.fr_load i in
        List.iter
          (fun b ->
            if
              b.fb_frame = dim
              && value >= Convert.seq_value b.fb_store ~iteration:i
            then ok := false)
          c.bounds
      end)
    comp.comp_fr;
  !ok

(* --- Heuristic plans ---------------------------------------------------- *)

type derivation = Base | From_rf of int | From_fr of int | Diagonal

type plan = { order : (int * derivation) list }

let heuristic_plan (conv : Convert.t) t =
  let tl = Array.length conv.Convert.load_threads in
  let derived = Array.make tl false in
  let order = ref [] in
  let derive frame d =
    derived.(frame) <- true;
    order := (frame, d) :: !order
  in
  (* The base is the load thread of the outcome's first condition, as in
     the paper's examples (sb iterates thread 0's index). *)
  let base =
    match t.source with
    | [] -> 0
    | first :: _ -> (
      match
        load_ref_of conv ~thread:first.Outcome.thread ~reg:first.Outcome.reg
      with
      | Some load -> load.frame
      | None -> 0)
  in
  if tl > 0 then derive base Base;
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun i c ->
        if
          derived.(c.rf_load.frame) && c.store_frame >= 0
          && not derived.(c.store_frame)
        then begin
          derive c.store_frame (From_rf i);
          progress := true
        end)
      t.rf;
    Array.iteri
      (fun i c ->
        match c.bounds with
        | [ b ] ->
          (* Only a location with a single store yields an unambiguous
             previous-member equality (Fig 8). *)
          if
            derived.(c.fr_load.frame) && b.fb_frame >= 0
            && not derived.(b.fb_frame)
          then begin
            derive b.fb_frame (From_fr i);
            progress := true
          end
        | [] | _ :: _ :: _ -> ())
      t.fr
  done;
  for frame = 0 to tl - 1 do
    if not derived.(frame) then derive frame Diagonal
  done;
  { order = List.rev !order }

let derived_frame (conv : Convert.t) t plan ~bufs ~iterations ~n =
  let tl = Array.length conv.Convert.load_threads in
  let frame = Array.make tl (-1) in
  let ok = ref true in
  List.iter
    (fun (target, d) ->
      if !ok then begin
        let value_of (load : load_ref) =
          let idx = frame.(load.frame) in
          if idx < 0 then None else Some (buf_value bufs load idx)
        in
        let result =
          match d with
          | Base | Diagonal -> Some n
          | From_rf i -> (
            let c = t.rf.(i) in
            match value_of c.rf_load with
            | None -> None
            | Some value ->
              let iter = member_iteration c.rf_store value in
              if iter < 0 then None else Some iter)
          | From_fr i -> (
            let c = t.fr.(i) in
            match (c.bounds, value_of c.fr_load) with
            | [ b ], Some value ->
              if value = 0 then Some 0
              else begin
                let iter = member_iteration b.fb_store value in
                if iter < 0 then None else Some (iter + 1)
              end
            | _, _ -> None)
        in
        match result with
        | Some m when m >= 0 && m < iterations -> frame.(target) <- m
        | Some _ | None -> ok := false
      end)
    plan.order;
  if !ok then Some frame else None

let eval_heuristic conv t plan ~bufs ~iterations ~n =
  match derived_frame conv t plan ~bufs ~iterations ~n with
  | None -> false
  | Some frame -> eval conv t ~bufs ~frame

(* --- Compiled heuristic evaluator ---------------------------------------- *)

(* [eval_heuristic] is called once per machine iteration per outcome, and
   each call allocates scratch arrays, option boxes and closures while
   re-resolving the same record fields.  The compiled form flattens the
   plan and both condition sets into int arrays once per (outcome, plan),
   so the per-iteration evaluation is a pair of allocation-free loops
   over consecutive memory.  Semantics are identical to
   [derived_frame]+[eval]; the plan-construction invariant that every
   step's source frame is derived before use lets the compiled walk drop
   the option boxing. *)

type compiled = {
  cp_false : bool;  (** Unsatisfiable outcome: always evaluates false. *)
  cp_frame : int array;  (** Scratch frame, one cell per load thread. *)
  cp_pins : int array;  (** Scratch pins, one cell per thread. *)
  cp_steps : int array;
      (** Stride 8 per plan step: kind (0 = assign loop index, 1 = derive
          via rf, 2 = derive via single-bound fr), target frame, source
          buffer thread, row width, slot, source frame, k, canonical. *)
  cp_rf : int array;
      (** Stride 8 per rf condition: buffer thread, row width, slot, load
          frame, k, canonical, store frame ([-thread - 1] encodes a pin on
          a store-only thread), exact flag. *)
  cp_fr : int array;
      (** Stride 6 per fr condition: buffer thread, row width, slot, load
          frame, offset and length into [cp_bounds]. *)
  cp_bounds : int array;
      (** Stride 3 per from-read bound: bound frame ([-thread - 1] for a
          pin), k, canonical. *)
}

let compile_heuristic (conv : Convert.t) t plan =
  let tl = Array.length conv.Convert.load_threads in
  let nthreads = Array.length conv.Convert.t_reads in
  let steps =
    List.concat_map
      (fun (target, d) ->
        match d with
        | Base | Diagonal -> [ 0; target; 0; 0; 0; 0; 0; 0 ]
        | From_rf i ->
          let c = t.rf.(i) in
          let l = c.rf_load and s = c.rf_store in
          [
            1; target; l.thread; l.reads; l.slot; l.frame;
            s.Convert.k; s.Convert.canonical;
          ]
        | From_fr i -> (
          let c = t.fr.(i) in
          match c.bounds with
          | [ b ] ->
            let l = c.fr_load and s = b.fb_store in
            [
              2; target; l.thread; l.reads; l.slot; l.frame;
              s.Convert.k; s.Convert.canonical;
            ]
          | [] | _ :: _ :: _ ->
            invalid_arg "compile_heuristic: multi-bound From_fr step"))
      plan.order
  in
  let frame_code f thread = if f >= 0 then f else -thread - 1 in
  let rf =
    Array.to_list t.rf
    |> List.concat_map (fun c ->
           let l = c.rf_load and s = c.rf_store in
           [
             l.thread; l.reads; l.slot; l.frame;
             s.Convert.k; s.Convert.canonical;
             frame_code c.store_frame s.Convert.thread;
             (if c.exact then 1 else 0);
           ])
  in
  let bounds = ref [] and fr = ref [] and off = ref 0 in
  Array.iter
    (fun c ->
      let l = c.fr_load in
      let len = List.length c.bounds in
      fr := [ l.thread; l.reads; l.slot; l.frame; !off; len ] :: !fr;
      off := !off + (3 * len);
      List.iter
        (fun b ->
          bounds :=
            [
              frame_code b.fb_frame b.fb_store.Convert.thread;
              b.fb_store.Convert.k; b.fb_store.Convert.canonical;
            ]
            :: !bounds)
        c.bounds)
    t.fr;
  {
    cp_false = t.unsatisfiable;
    cp_frame = Array.make (max tl 1) 0;
    cp_pins = Array.make (max nthreads 1) (-1);
    cp_steps = Array.of_list steps;
    cp_rf = Array.of_list rf;
    cp_fr = Array.of_list (List.concat (List.rev !fr));
    cp_bounds = Array.of_list (List.concat (List.rev !bounds));
  }

(* [member_iteration] with the store fields unpacked. *)
let member_iteration_kc k canonical value =
  if value <= 0 then -1
  else begin
    let c = ((value - 1) mod k) + 1 in
    if c <> canonical then -1 else (value - c) / k
  end
  [@@inline]

let eval_compiled cp ~bufs ~iterations ~n =
  (not cp.cp_false)
  &&
  let frame = cp.cp_frame and pins = cp.cp_pins in
  (* Phase 1: derive the frame along the plan. *)
  let steps = cp.cp_steps in
  let ok = ref true and i = ref 0 in
  let nsteps = Array.length steps in
  while !ok && !i < nsteps do
    let b = !i in
    let kind = Array.unsafe_get steps b in
    if kind = 0 then frame.(steps.(b + 1)) <- n
    else begin
      let idx = frame.(steps.(b + 5)) in
      let value = bufs.(steps.(b + 2)).((steps.(b + 3) * idx) + steps.(b + 4)) in
      let m =
        if kind = 1 then member_iteration_kc steps.(b + 6) steps.(b + 7) value
        else if value = 0 then 0
        else begin
          let it = member_iteration_kc steps.(b + 6) steps.(b + 7) value in
          if it < 0 then -1 else it + 1
        end
      in
      if m >= 0 && m < iterations then frame.(steps.(b + 1)) <- m
      else ok := false
    end;
    i := b + 8
  done;
  !ok
  && begin
       (* Phase 2: check every converted condition on the derived frame. *)
       Array.fill pins 0 (Array.length pins) (-1);
       let rf = cp.cp_rf in
       let i = ref 0 in
       let nrf = Array.length rf in
       while !ok && !i < nrf do
         let b = !i in
         let idx = frame.(rf.(b + 3)) in
         let value = bufs.(rf.(b)).((rf.(b + 1) * idx) + rf.(b + 2)) in
         let iter = member_iteration_kc rf.(b + 4) rf.(b + 5) value in
         if iter < 0 then ok := false
         else begin
           let sf = rf.(b + 6) in
           if sf >= 0 then begin
             if rf.(b + 7) = 1 then (if iter <> frame.(sf) then ok := false)
             else if iter < frame.(sf) then ok := false
           end
           else begin
             let p = -sf - 1 in
             if pins.(p) < 0 then pins.(p) <- iter
             else if pins.(p) <> iter then ok := false
           end
         end;
         i := b + 8
       done;
       let fr = cp.cp_fr and bounds = cp.cp_bounds in
       let i = ref 0 in
       let nfr = Array.length fr in
       while !ok && !i < nfr do
         let b = !i in
         let idx = frame.(fr.(b + 3)) in
         let value = bufs.(fr.(b)).((fr.(b + 1) * idx) + fr.(b + 2)) in
         let o = ref (fr.(b + 4)) in
         let stop = fr.(b + 4) + (3 * fr.(b + 5)) in
         while !ok && !o < stop do
           let bf = bounds.(!o) in
           let bound = if bf >= 0 then frame.(bf) else pins.(-bf - 1) in
           if bound < 0 then (if value <> 0 then ok := false)
           else if value >= (bounds.(!o + 1) * bound) + bounds.(!o + 2) then
             ok := false;
           o := !o + 3
         done;
         i := b + 6
       done;
       !ok
     end

(* --- Rendering ----------------------------------------------------------- *)

let frame_var_name i =
  (* n, m, p, q, ... following the paper's figures. *)
  match i with
  | 0 -> "n"
  | 1 -> "m"
  | 2 -> "p"
  | 3 -> "q"
  | _ -> Printf.sprintf "n%d" i

let buf_access (load : load_ref) var =
  if load.reads = 1 then Printf.sprintf "buf%d[%s]" load.thread var
  else
    Printf.sprintf "buf%d[%d*%s+%d]" load.thread load.reads var load.slot

let seq_text (s : Convert.store) bound_var =
  if s.Convert.k = 1 then
    if s.Convert.canonical = 0 then bound_var
    else Printf.sprintf "%s + %d" bound_var s.Convert.canonical
  else Printf.sprintf "%d*%s + %d" s.Convert.k bound_var s.Convert.canonical

let bound_var (conv : Convert.t) frame_or_thread =
  match frame_or_thread with
  | `Frame f -> frame_var_name f
  | `Pin thread ->
    ignore conv;
    Printf.sprintf "pin%d" thread

let describe (conv : Convert.t) t =
  if t.unsatisfiable then "false (reads older than a po-earlier own store)"
  else
  let parts = ref [] in
  Array.iter
    (fun c ->
      let lhs = buf_access c.rf_load (frame_var_name c.rf_load.frame) in
      let bound =
        if c.store_frame >= 0 then bound_var conv (`Frame c.store_frame)
        else bound_var conv (`Pin c.rf_store.Convert.thread)
      in
      let text =
        if c.store_frame >= 0 then
          Printf.sprintf "%s %s %s" lhs
            (if c.exact then "=" else ">=")
            (seq_text c.rf_store bound)
        else
          Printf.sprintf "%s in seq(%s) defining %s" lhs
            (seq_text c.rf_store "i") bound
      in
      parts := text :: !parts)
    t.rf;
  Array.iter
    (fun c ->
      let lhs = buf_access c.fr_load (frame_var_name c.fr_load.frame) in
      List.iter
        (fun b ->
          let bound =
            if b.fb_frame >= 0 then bound_var conv (`Frame b.fb_frame)
            else bound_var conv (`Pin b.fb_store.Convert.thread)
          in
          parts :=
            Printf.sprintf "%s < %s" lhs (seq_text b.fb_store bound) :: !parts)
        c.bounds)
    t.fr;
  String.concat " && " (List.rev !parts)

let describe_heuristic conv t plan =
  let deriv_text (frame, d) =
    let var = frame_var_name frame in
    match d with
    | Base -> Printf.sprintf "%s := loop index" var
    | Diagonal -> Printf.sprintf "%s := loop index (diagonal)" var
    | From_rf i ->
      let c = t.rf.(i) in
      Printf.sprintf "%s := iter(%s)" var
        (buf_access c.rf_load (frame_var_name c.rf_load.frame))
    | From_fr i ->
      let c = t.fr.(i) in
      Printf.sprintf "%s := iter(%s) + 1" var
        (buf_access c.fr_load (frame_var_name c.fr_load.frame))
  in
  String.concat "; " (List.map deriv_text plan.order)
  ^ " |- " ^ describe conv t

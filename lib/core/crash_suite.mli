(** Exhaustive crash-point campaign over one litmus test.

    The persistency analogue of {!Engine.campaign_entries}: one task per
    crash point instead of one per seeded run, fanned out over the same
    deterministic {!Pool}.  Each point is evaluated with
    {!Perple_sim.Crashsim.evaluate_point}; the per-point {!record} is
    also the journal's record type (kind ["point"]), so a resumed suite
    prints from journaled records and a clean suite from freshly computed
    ones, byte-identically.

    Crash-point evaluation draws no randomness — the reachable images
    are an exhaustive enumeration — so resume needs no seed bookkeeping:
    a journaled point is simply skipped. *)

type record = {
  point : int;  (** Instructions executed before the crash. *)
  outcome : Perple_harness.Supervisor.outcome;
      (** [Ok] when recovery evaluated the point (even with violations);
          [Unrecoverable] when the evaluator itself raised — the point is
          recorded instead of aborting the suite. *)
  images : int;  (** Distinct reachable persisted images. *)
  violations : int;
      (** Images satisfying [assumes] but violating [requires]. *)
  witness : (string * int) list option;
      (** A violating image, if any (sorted by location name). *)
  error : string option;
      (** The evaluator's exception message when [Unrecoverable]. *)
}

val evaluate :
  ?jobs:int ->
  ?skip:(int -> bool) ->
  ?on_record:(record -> unit) ->
  ?evaluate_point:(point:int -> Perple_sim.Crashsim.point_result) ->
  persistency:Perple_sim.Config.persistency ->
  Perple_litmus.Ast.t ->
  record option array
(** Evaluate every crash point not excluded by [skip], distributing them
    over up to [jobs] domains.  Slot [p] of the result holds point [p]'s
    record ([None] iff skipped); the array is bit-identical for every
    [jobs] value.  [on_record] fires once per retiring point, serialized,
    in completion (not point) order — the journaling hook.
    [evaluate_point] overrides the evaluator (tests use it to exercise
    the [Unrecoverable] path); a raising evaluator yields an
    [Unrecoverable] record, never an exception.  Raises
    [Invalid_argument] if [jobs < 1]. *)

val to_json : record -> Perple_util.Json.t
(** Kind-tagged (["point"]) journal record; deterministic field order. *)

val of_json : Perple_util.Json.t -> (record, string) result
(** Strict inverse of {!to_json}: a record that lost or mistyped a field
    is rejected whole. *)

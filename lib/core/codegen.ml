module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Program = Perple_sim.Program

type file = { filename : string; content : string }

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | '+' | '-' | '.' | ' ' -> '_'
      | _ -> '_')
    name

(* --- Per-thread assembly ------------------------------------------------ *)

(* Scratch registers for loaded values, then written to buf at iteration
   end; %rcx holds the iteration index, %rax is the sequence scratch. *)
let scratch_regs = [| "%r8"; "%r9"; "%r10"; "%r11"; "%r12"; "%r13" |]

let thread_asm (conv : Convert.t) ~thread =
  let test = conv.Convert.test in
  let name = sanitize test.Ast.name in
  let program = conv.Convert.image.Program.programs.(thread) in
  let reads = conv.Convert.t_reads.(thread) in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# PerpLE perpetual test %s, thread %d" test.Ast.name thread;
  line "# N-iteration loop; no per-iteration synchronisation.";
  line "# ABI: %%rdi = buf (or unused), %%rsi = iteration count N.";
  Array.iter
    (fun loc -> line ".comm %s,8,8" loc)
    conv.Convert.image.Program.location_names;
  line ".text";
  line ".globl perple_%s_thread_%d" name thread;
  line "perple_%s_thread_%d:" name thread;
  line "    xorq %%rcx, %%rcx              # n = 0";
  line ".Lt%d_loop:" thread;
  Array.iter
    (fun instr ->
      match instr with
      | Program.Store { loc; value; addr = _ } ->
        let loc_name = conv.Convert.image.Program.location_names.(loc) in
        (match value with
        | Program.Seq { k; a } ->
          if k = 1 then
            line "    leaq %d(%%rcx), %%rax          # %d*n + %d" a k a
          else begin
            line "    imulq $%d, %%rcx, %%rax        # %d*n" k k;
            line "    addq $%d, %%rax                # + %d" a a
          end
        | Program.Const a -> line "    movq $%d, %%rax" a);
        line "    movq %%rax, %s(%%rip)          # [%s] <- seq" loc_name
          loc_name
      | Program.Load { loc; reg; addr = _ } ->
        let loc_name = conv.Convert.image.Program.location_names.(loc) in
        line "    movq %s(%%rip), %s         # r%d <- [%s]" loc_name
          scratch_regs.(reg) reg loc_name
      | Program.Fence -> line "    mfence"
      | Program.Flush { loc; addr = _ } ->
        let loc_name = conv.Convert.image.Program.location_names.(loc) in
        line "    clflush %s(%%rip)" loc_name
      | Program.Drain -> line "    sfence")
    program.Program.body;
  if reads > 0 then begin
    line "    # buf[%d*n + i] <- r_i" reads;
    if reads = 1 then
      line "    movq %s, (%%rdi,%%rcx,8)" scratch_regs.(0)
    else begin
      line "    imulq $%d, %%rcx, %%rax" reads;
      for i = 0 to reads - 1 do
        line "    movq %s, %d(%%rdi,%%rax,8)" scratch_regs.(i) (8 * i)
      done
    end
  end;
  line "    incq %%rcx";
  line "    cmpq %%rsi, %%rcx";
  line "    jb .Lt%d_loop" thread;
  line "    ret";
  {
    filename = Printf.sprintf "%s_thread_%d.s" name thread;
    content = Buffer.contents buf;
  }

(* --- C counters --------------------------------------------------------- *)

let buf_args (conv : Convert.t) =
  String.concat ", "
    (List.filter_map
       (fun t ->
         if conv.Convert.t_reads.(t) > 0 then
           Some (Printf.sprintf "const long *buf%d" t)
         else None)
       (List.init (Array.length conv.Convert.t_reads) Fun.id))

(* Frame-variable names follow the paper's figures: n, m, p, q. *)
let frame_var = function
  | 0 -> "n"
  | 1 -> "m"
  | 2 -> "p"
  | 3 -> "q"
  | i -> Printf.sprintf "n%d" i

(* C text of the buf access for a load in a frame context. *)
let c_buf (load : Outcome_convert.load_ref) var =
  if load.Outcome_convert.reads = 1 then
    Printf.sprintf "buf%d[%s]" load.Outcome_convert.thread var
  else
    Printf.sprintf "buf%d[%d*%s + %d]" load.Outcome_convert.thread
      load.Outcome_convert.reads var load.Outcome_convert.slot

let c_seq (s : Convert.store) bound =
  if s.Convert.k = 1 then Printf.sprintf "%s + %d" bound s.Convert.canonical
  else Printf.sprintf "%d*%s + %d" s.Convert.k bound s.Convert.canonical

(* Emit the body of p_out_o as C statements; returns unit, appends to buf.
   The frame variables are in scope under their usual names. *)
let emit_p_out_body ?(declare_v = true) buffer (conv : Convert.t)
    (o : Outcome_convert.t) =
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt
  in
  let nthreads = Array.length conv.Convert.t_reads in
  if o.Outcome_convert.unsatisfiable then
    line "  return 0; /* unsatisfiable: reads older than own store */"
  else begin
  for t = 0 to nthreads - 1 do
    if conv.Convert.frame_index.(t) < 0 then line "  long pin%d = -1;" t
  done;
  if declare_v then line "  long v;";
  Array.iter
    (fun (c : Outcome_convert.rf_cond) ->
      let load = c.Outcome_convert.rf_load in
      let s = c.Outcome_convert.rf_store in
      line "  v = %s;" (c_buf load (frame_var load.Outcome_convert.frame));
      line "  if (v <= 0 || (v - 1) %% %d + 1 != %d) return 0;" s.Convert.k
        s.Convert.canonical;
      if c.Outcome_convert.store_frame >= 0 then
        (if c.Outcome_convert.exact then
           line "  if ((v - %d) / %d != %s) return 0;" s.Convert.canonical
             s.Convert.k
             (frame_var c.Outcome_convert.store_frame)
         else
           line "  if ((v - %d) / %d < %s) return 0;" s.Convert.canonical
             s.Convert.k
             (frame_var c.Outcome_convert.store_frame))
      else begin
        let t = s.Convert.thread in
        line "  if (pin%d < 0) pin%d = (v - %d) / %d;" t t s.Convert.canonical
          s.Convert.k;
        line "  else if (pin%d != (v - %d) / %d) return 0;" t
          s.Convert.canonical s.Convert.k
      end)
    o.Outcome_convert.rf;
  Array.iter
    (fun (c : Outcome_convert.fr_cond) ->
      let load = c.Outcome_convert.fr_load in
      line "  v = %s;" (c_buf load (frame_var load.Outcome_convert.frame));
      List.iter
        (fun (b : Outcome_convert.fr_bound) ->
          let s = b.Outcome_convert.fb_store in
          if b.Outcome_convert.fb_frame >= 0 then
            line "  if (!(v < %s)) return 0;"
              (c_seq s (frame_var b.Outcome_convert.fb_frame))
          else begin
            let t = s.Convert.thread in
            line "  if (pin%d < 0) { if (v != 0) return 0; }" t;
            line "  else if (!(v < %s)) return 0;" (c_seq s (Printf.sprintf "pin%d" t))
          end)
        c.Outcome_convert.bounds)
    o.Outcome_convert.fr;
  line "  return 1;"
  end

let convert_all conv outcomes =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | o :: rest -> (
      match Outcome_convert.convert conv o with
      | Ok c -> go (c :: acc) rest
      | Error e -> Error e)
  in
  go [] outcomes

let counter_header (conv : Convert.t) =
  let test = conv.Convert.test in
  Printf.sprintf
    "/* Generated by the PerpLE Converter for test %s.\n\
    \ * Outcome counters over per-thread buf arrays; see PerpLE (MICRO\n\
    \ * 2020), Sec IV.  Values are arithmetic-sequence members: a store of\n\
    \ * constant a to a location with k distinct stored constants writes\n\
    \ * k*n + a at iteration n. */\n\n"
    test.Ast.name

let frame_vars_of (conv : Convert.t) =
  List.init (Array.length conv.Convert.load_threads) frame_var

let exhaustive_counter_c (conv : Convert.t) ~outcomes =
  match convert_all conv outcomes with
  | Error e -> Error e
  | Ok converted ->
    let name = sanitize conv.Convert.test.Ast.name in
    let buf = Buffer.create 2048 in
    let line fmt =
      Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
    in
    Buffer.add_string buf (counter_header conv);
    let vars = frame_vars_of conv in
    let var_params = String.concat ", " (List.map (fun v -> "long " ^ v) vars) in
    List.iteri
      (fun i o ->
        line "static inline int p_out_%d(%s, %s) {" i var_params
          (buf_args conv);
        emit_p_out_body buf conv o;
        line "}";
        line "")
      converted;
    line "void count_%s(long N, %s, long *counts) {" name (buf_args conv);
    List.iter (fun v -> line "  for (long %s = 0; %s < N; %s++)" v v v) vars;
    line "  {";
    List.iteri
      (fun i _ ->
        let call =
          Printf.sprintf "p_out_%d(%s, %s)" i (String.concat ", " vars)
            (String.concat ", "
               (List.filter_map
                  (fun t ->
                    if conv.Convert.t_reads.(t) > 0 then
                      Some (Printf.sprintf "buf%d" t)
                    else None)
                  (List.init (Array.length conv.Convert.t_reads) Fun.id)))
        in
        if i = 0 then line "    if (%s) counts[%d]++;" call i
        else line "    else if (%s) counts[%d]++;" call i)
      converted;
    line "  }";
    line "}";
    Ok { filename = name ^ "_count.c"; content = Buffer.contents buf }

let heuristic_counter_c (conv : Convert.t) ~outcomes =
  match convert_all conv outcomes with
  | Error e -> Error e
  | Ok converted ->
    let name = sanitize conv.Convert.test.Ast.name in
    let buf = Buffer.create 2048 in
    let line fmt =
      Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
    in
    Buffer.add_string buf (counter_header conv);
    let bufs =
      String.concat ", "
        (List.filter_map
           (fun t ->
             if conv.Convert.t_reads.(t) > 0 then
               Some (Printf.sprintf "buf%d" t)
             else None)
           (List.init (Array.length conv.Convert.t_reads) Fun.id))
    in
    List.iteri
      (fun i o ->
        let plan = Outcome_convert.heuristic_plan conv o in
        line "static inline int p_out_h%d(long N, long idx, %s) {"
          i (buf_args conv);
        line "  long v;";
        (* Derive every frame variable, in plan order. *)
        List.iter
          (fun (target, d) ->
            let var = frame_var target in
            match (d : Outcome_convert.derivation) with
            | Outcome_convert.Base -> line "  long %s = idx;" var
            | Outcome_convert.Diagonal -> line "  long %s = idx; /* diagonal */" var
            | Outcome_convert.From_rf j ->
              let c = o.Outcome_convert.rf.(j) in
              let s = c.Outcome_convert.rf_store in
              line "  v = %s;"
                (c_buf c.Outcome_convert.rf_load
                   (frame_var c.Outcome_convert.rf_load.Outcome_convert.frame));
              line "  if (v <= 0 || (v - 1) %% %d + 1 != %d) return 0;"
                s.Convert.k s.Convert.canonical;
              line "  long %s = (v - %d) / %d;" var s.Convert.canonical
                s.Convert.k;
              line "  if (%s >= N) return 0;" var
            | Outcome_convert.From_fr j ->
              let c = o.Outcome_convert.fr.(j) in
              (match c.Outcome_convert.bounds with
              | [ b ] ->
                let s = b.Outcome_convert.fb_store in
                line "  v = %s;"
                  (c_buf c.Outcome_convert.fr_load
                     (frame_var
                        c.Outcome_convert.fr_load.Outcome_convert.frame));
                line "  long %s;" var;
                line "  if (v == 0) %s = 0;" var;
                line "  else if (v > 0 && (v - 1) %% %d + 1 == %d) %s = (v - %d) / %d + 1;"
                  s.Convert.k s.Convert.canonical var s.Convert.canonical
                  s.Convert.k;
                line "  else return 0;";
                line "  if (%s < 0 || %s >= N) return 0;" var var
              | [] | _ :: _ :: _ -> line "  return 0; /* underdetermined */"))
          plan.Outcome_convert.order;
        emit_p_out_body ~declare_v:false buf conv o;
        line "}";
        line "")
      converted;
    line "void counth_%s(long N, %s, long *counts) {" name (buf_args conv);
    line "  for (long n = 0; n < N; n++) {";
    List.iteri
      (fun i _ ->
        let call = Printf.sprintf "p_out_h%d(N, n, %s)" i bufs in
        if i = 0 then line "    if (%s) counts[%d]++;" call i
        else line "    else if (%s) counts[%d]++;" call i)
      converted;
    line "  }";
    line "}";
    Ok { filename = name ^ "_counth.c"; content = Buffer.contents buf }

let params_header (conv : Convert.t) =
  let name = sanitize conv.Convert.test.Ast.name in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "/* PerpLE Converter parameters for %s. */\n"
       conv.Convert.test.Ast.name);
  Array.iteri
    (fun t r ->
      Buffer.add_string buf (Printf.sprintf "#define t_%d_reads %d\n" t r))
    conv.Convert.t_reads;
  Buffer.add_string buf
    (Printf.sprintf "#define n_threads %d\n"
       (Array.length conv.Convert.t_reads));
  { filename = name ^ "_params.h"; content = Buffer.contents buf }

let harness_c (conv : Convert.t) =
  let test = conv.Convert.test in
  let name = sanitize test.Ast.name in
  let nthreads = Array.length conv.Convert.t_reads in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "/* PerpLE Harness for %s: launch threads once, run N iterations" test.Ast.name;
  line " * synchronisation-free, then count perpetual outcomes. */";
  line "#include <pthread.h>";
  line "#include <stdio.h>";
  line "#include <stdlib.h>";
  line "#include \"%s_params.h\"" name;
  line "";
  Array.iter
    (fun loc -> line "long %s = 0;" loc)
    conv.Convert.image.Program.location_names;
  line "";
  for t = 0 to nthreads - 1 do
    line "extern void perple_%s_thread_%d(long *buf, long N);" name t
  done;
  line "extern void count_%s(long N, %s, long *counts);" name (buf_args conv);
  line "extern void counth_%s(long N, %s, long *counts);" name (buf_args conv);
  line "";
  line "static pthread_barrier_t launch_barrier;";
  line "struct targ { long *buf; long n; int thread; };";
  line "";
  line "static void *thread_main(void *p) {";
  line "  struct targ *a = p;";
  line "  pthread_barrier_wait(&launch_barrier); /* the only barrier */";
  line "  switch (a->thread) {";
  for t = 0 to nthreads - 1 do
    line "  case %d: perple_%s_thread_%d(a->buf, a->n); break;" t name t
  done;
  line "  }";
  line "  return NULL;";
  line "}";
  line "";
  line "int main(int argc, char **argv) {";
  line "  long n = argc > 1 ? atol(argv[1]) : 100000;";
  line "  pthread_barrier_init(&launch_barrier, NULL, n_threads);";
  for t = 0 to nthreads - 1 do
    if conv.Convert.t_reads.(t) > 0 then
      line "  long *buf%d = calloc((size_t)n * t_%d_reads, sizeof(long));" t t
  done;
  line "  pthread_t tid[n_threads];";
  line "  struct targ args[n_threads];";
  for t = 0 to nthreads - 1 do
    let bufarg = if conv.Convert.t_reads.(t) > 0 then Printf.sprintf "buf%d" t else "NULL" in
    line "  args[%d] = (struct targ){ %s, n, %d };" t bufarg t
  done;
  line "  for (int t = 0; t < n_threads; t++)";
  line "    pthread_create(&tid[t], NULL, thread_main, &args[t]);";
  line "  for (int t = 0; t < n_threads; t++)";
  line "    pthread_join(tid[t], NULL);";
  let bufs =
    String.concat ", "
      (List.filter_map
         (fun t ->
           if conv.Convert.t_reads.(t) > 0 then
             Some (Printf.sprintf "buf%d" t)
           else None)
         (List.init nthreads Fun.id))
  in
  line "  long counts[64] = {0};";
  line "  counth_%s(n, %s, counts);" name bufs;
  line "  printf(\"heuristic counts: \");";
  line "  for (int i = 0; i < 8; i++) printf(\"%%ld \", counts[i]);";
  line "  printf(\"\\n\");";
  line "  return 0;";
  line "}";
  { filename = name ^ "_harness.c"; content = Buffer.contents buf }

let c11_file (conv : Convert.t) ~outcomes =
  match exhaustive_counter_c conv ~outcomes with
  | Error e -> Error e
  | Ok count_file -> (
    match heuristic_counter_c conv ~outcomes with
    | Error e -> Error e
    | Ok counth_file ->
      let test = conv.Convert.test in
      let name = sanitize test.Ast.name in
      let nthreads = Array.length conv.Convert.t_reads in
      let buf = Buffer.create 4096 in
      let line fmt =
        Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
      in
      line "/* PerpLE perpetual test %s — portable C11 backend." test.Ast.name;
      line " * Relaxed atomics stand in for the plain x86 accesses;";
      line " * MFENCE becomes atomic_thread_fence(memory_order_seq_cst).";
      line " * Build: cc -O2 -pthread -o %s_c11 %s_c11.c */" name name;
      line "#include <pthread.h>";
      line "#include <stdatomic.h>";
      line "#include <stdio.h>";
      line "#include <stdlib.h>";
      line "";
      Array.iter
        (fun loc -> line "static _Atomic long %s = 0;" loc)
        conv.Convert.image.Program.location_names;
      line "";
      (* Per-thread functions. *)
      for t = 0 to nthreads - 1 do
        let program = conv.Convert.image.Program.programs.(t) in
        let reads = conv.Convert.t_reads.(t) in
        line "static void thread_%d(long *buf, long N) {" t;
        line "  for (long n = 0; n < N; n++) {";
        let slot = ref 0 in
        Array.iter
          (fun instr ->
            match instr with
            | Program.Store { loc; value; addr = _ } ->
              let expr =
                match value with
                | Program.Seq { k; a } ->
                  if k = 1 then Printf.sprintf "n + %d" a
                  else Printf.sprintf "%d*n + %d" k a
                | Program.Const a -> string_of_int a
              in
              line
                "    atomic_store_explicit(&%s, %s, memory_order_relaxed);"
                conv.Convert.image.Program.location_names.(loc)
                expr
            | Program.Load { loc; reg; addr = _ } ->
              ignore reg;
              line
                "    long r%d = atomic_load_explicit(&%s, \
                 memory_order_relaxed);"
                !slot
                conv.Convert.image.Program.location_names.(loc);
              incr slot
            | Program.Fence ->
              line "    atomic_thread_fence(memory_order_seq_cst);"
            | Program.Flush { loc; addr = _ } ->
              line "    __builtin_ia32_clflush((void *)&%s);"
                conv.Convert.image.Program.location_names.(loc)
            | Program.Drain -> line "    __builtin_ia32_sfence();")
          program.Program.body;
        if reads > 0 then begin
          for i = 0 to reads - 1 do
            line "    buf[%d*n + %d] = r%d;" reads i i
          done
        end
        else line "    (void)buf;";
        line "  }";
        line "}";
        line ""
      done;
      (* Counters, embedded verbatim. *)
      Buffer.add_string buf count_file.content;
      Buffer.add_char buf '\n';
      Buffer.add_string buf counth_file.content;
      Buffer.add_char buf '\n';
      (* Harness. *)
      line "static pthread_barrier_t launch_barrier;";
      line "struct targ { long *buf; long n; int thread; };";
      line "";
      line "static void *thread_main(void *p) {";
      line "  struct targ *a = p;";
      line "  pthread_barrier_wait(&launch_barrier); /* the only barrier */";
      line "  switch (a->thread) {";
      for t = 0 to nthreads - 1 do
        line "  case %d: thread_%d(a->buf, a->n); break;" t t
      done;
      line "  }";
      line "  return NULL;";
      line "}";
      line "";
      line "int main(int argc, char **argv) {";
      line "  long n = argc > 1 ? atol(argv[1]) : 100000;";
      line "  pthread_barrier_init(&launch_barrier, NULL, %d);" nthreads;
      Array.iteri
        (fun t r ->
          if r > 0 then
            line "  long *buf%d = calloc((size_t)n * %d, sizeof(long));" t r)
        conv.Convert.t_reads;
      line "  pthread_t tid[%d];" nthreads;
      line "  struct targ args[%d];" nthreads;
      Array.iteri
        (fun t r ->
          let bufarg = if r > 0 then Printf.sprintf "buf%d" t else "NULL" in
          line "  args[%d] = (struct targ){ %s, n, %d };" t bufarg t)
        conv.Convert.t_reads;
      line "  for (int t = 0; t < %d; t++)" nthreads;
      line "    pthread_create(&tid[t], NULL, thread_main, &args[t]);";
      line "  for (int t = 0; t < %d; t++)" nthreads;
      line "    pthread_join(tid[t], NULL);";
      let bufs =
        String.concat ", "
          (List.filter_map
             (fun t ->
               if conv.Convert.t_reads.(t) > 0 then
                 Some (Printf.sprintf "buf%d" t)
               else None)
             (List.init nthreads Fun.id))
      in
      line "  long counts[64] = {0};";
      line "  counth_%s(n, %s, counts);" name bufs;
      line "  printf(\"heuristic counts: \");";
      line "  for (int i = 0; i < %d; i++) printf(\"%%ld \", counts[i]);"
        (List.length outcomes);
      line "  printf(\"\\n\");";
      line "  return 0;";
      line "}";
      Ok { filename = name ^ "_c11.c"; content = Buffer.contents buf })

let all_files (conv : Convert.t) ~outcomes =
  match exhaustive_counter_c conv ~outcomes with
  | Error e -> Error e
  | Ok count_file -> (
    match heuristic_counter_c conv ~outcomes with
    | Error e -> Error e
    | Ok counth_file ->
      let nthreads = Array.length conv.Convert.t_reads in
      let asm = List.init nthreads (fun t -> thread_asm conv ~thread:t) in
      let c11 =
        match c11_file conv ~outcomes with
        | Ok f -> [ f ]
        | Error _ -> []
      in
      Ok
        (asm
        @ [ count_file; counth_file; params_header conv; harness_c conv ]
        @ c11))

let write_to_dir ~dir files =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun f ->
      let oc = open_out (Filename.concat dir f.filename) in
      output_string oc f.content;
      close_out oc)
    files

(** Deterministic worker pool on stdlib domains (no extra dependencies).

    [map ~jobs n f] computes [Array.init n f], distributing the task
    indices over up to [jobs] domains (including the calling one).
    Task [i]'s result always lands in slot [i], so the returned array is
    independent of the domain count and of scheduling — campaigns stay
    bit-identical whether they run on one core or many.

    The determinism contract is shared with the caller: [f] must derive
    all randomness from its index (e.g. from a pre-split RNG array built
    {e before} dispatch) and must not mutate state shared across tasks.

    {2 Persistent workers}

    Worker domains are spawned once and reused.  Callers that dispatch
    repeatedly (the engine's campaign batches, the service scheduler,
    the crash-suite runner) should {!create} a pool up front and pass it
    to every [map]; plain [map ~jobs] calls without a pool share one
    lazily-created process-wide pool (grown to the widest [jobs]
    requested, joined at process exit).  Either way no domain is spawned
    or joined per [map]: dispatch is a condition-variable broadcast and
    tasks are claimed in contiguous index chunks off one atomic counter,
    so per-batch overhead is microseconds where the historical
    spawn-per-[map] design cost milliseconds — enough to make a 4-way
    campaign slower than a sequential one on a busy host.

    Chunked claiming does not touch the determinism contract: chunk
    boundaries only decide {e which domain} runs task [i], never what
    task [i] computes or where its result lands.

    A pool serves one [map] at a time from one submitting domain;
    concurrent submissions to the same pool raise [Invalid_argument].
    A task that (transitively) calls [map] on its own pool runs the
    nested batch inline rather than deadlocking.

    Failures are isolated per task: {!map_result} returns each task's
    exception (with its backtrace) in that task's own slot while every
    sibling runs to completion, and {!map} re-raises the lowest-index
    failure — a deterministic choice, unlike the historical
    first-failure-wins race, which also silently discarded every later
    failure.  All failures are counted in the [pool.task_errors] metric.

    With [jobs = 1] (and no [?pool]) no domain is involved and the tasks
    run sequentially in order — the reference behaviour the parallel
    path is measured against. *)

type t
(** A persistent pool of worker domains, parked between batches. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    caller is the [jobs]-th participant) and parks them until the first
    [map].  [jobs] defaults to {!available_domains} and is clamped to
    [1 .. max_jobs].  Idle workers block on a condition variable: an
    unused pool consumes no CPU. *)

val shutdown : t -> unit
(** Stop and join every worker domain.  Idempotent; must not be called
    while a [map] on this pool is in flight.  Subsequent [map] calls on
    the pool run sequentially (no workers remain). *)

val size : t -> int
(** Number of participants ([workers + 1] for the submitting caller). *)

type task_error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

val error_message : task_error -> string
val error_backtrace : task_error -> string

val map_result :
  ?pool:t ->
  ?jobs:int ->
  ?around:(int -> (unit -> ('a, task_error) result) -> ('a, task_error) result) ->
  int ->
  (int -> 'a) ->
  ('a, task_error) result array
(** Run all [n] tasks to completion, capturing per-task failures instead
    of aborting siblings.  [around i thunk] (default: [thunk ()]) wraps
    the {e entire} task — including the pool's own per-task metrics — in
    the worker domain that executes it; the engine uses it to scope a
    per-run metrics capture ({!Perple_util.Metrics.scoped}) around each
    campaign run.

    [?pool] reuses an existing pool's workers; [?jobs] caps how many of
    them participate (defaults to the pool's size when a pool is given,
    else [1]).  Without [?pool], [jobs > 1] dispatches on the shared
    process-wide pool, with the effective width silently capped at
    {!available_domains}: domains beyond the physical core count cannot
    speed up CPU-bound tasks but tax every minor collection with a
    per-domain stop-the-world handshake (measured ~6x on allocating
    workloads), and the cap never changes results — [jobs] only decides
    which domain runs a task.  An explicit [?pool] is honoured at its
    created width (the oversubscription escape hatch).  Raises
    [Invalid_argument] if [jobs < 1] or [n < 0]. *)

val map : ?pool:t -> ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_result] with failures re-raised: if any task raised, the
    lowest-index failure is re-raised with its backtrace after all tasks
    have run.  Raises [Invalid_argument] if [jobs < 1] or [n < 0]. *)

val max_jobs : int
(** Hard upper bound on worker domains (the OCaml runtime supports a
    bounded number of live domains).  Requests beyond it — or beyond the
    task count — are clamped, with a [pool.jobs_clamped] metric tick per
    clamp and a stderr note emitted once per pool (not once per [map],
    which on a reused pool would repeat the same note every batch). *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    [jobs] on this machine. *)

(** Deterministic worker pool on stdlib domains (no extra dependencies).

    [map ~jobs n f] computes [Array.init n f], distributing the task
    indices over up to [jobs] domains (including the calling one).
    Task [i]'s result always lands in slot [i], so the returned array is
    independent of the domain count and of scheduling — campaigns stay
    bit-identical whether they run on one core or many.

    The determinism contract is shared with the caller: [f] must derive
    all randomness from its index (e.g. from a pre-split RNG array built
    {e before} dispatch) and must not mutate state shared across tasks.

    If any task raises, the pool stops issuing new tasks, drains, and
    re-raises the first failure (with its backtrace).

    With [jobs = 1] (the default) no domain is spawned and the tasks run
    sequentially in order — the reference behaviour the parallel path is
    measured against. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** Raises [Invalid_argument] if [jobs < 1] or [n < 0].  [jobs] is
    clamped to the task count and to an internal bound well inside the
    runtime's domain limit. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    [jobs] on this machine. *)

(** Deterministic worker pool on stdlib domains (no extra dependencies).

    [map ~jobs n f] computes [Array.init n f], distributing the task
    indices over up to [jobs] domains (including the calling one).
    Task [i]'s result always lands in slot [i], so the returned array is
    independent of the domain count and of scheduling — campaigns stay
    bit-identical whether they run on one core or many.

    The determinism contract is shared with the caller: [f] must derive
    all randomness from its index (e.g. from a pre-split RNG array built
    {e before} dispatch) and must not mutate state shared across tasks.

    Failures are isolated per task: {!map_result} returns each task's
    exception (with its backtrace) in that task's own slot while every
    sibling runs to completion, and {!map} re-raises the lowest-index
    failure — a deterministic choice, unlike the historical
    first-failure-wins race, which also silently discarded every later
    failure.  All failures are counted in the [pool.task_errors] metric.

    With [jobs = 1] (the default) no domain is spawned and the tasks run
    sequentially in order — the reference behaviour the parallel path is
    measured against. *)

type task_error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

val error_message : task_error -> string
val error_backtrace : task_error -> string

val map_result :
  ?jobs:int ->
  ?around:(int -> (unit -> ('a, task_error) result) -> ('a, task_error) result) ->
  int ->
  (int -> 'a) ->
  ('a, task_error) result array
(** Run all [n] tasks to completion, capturing per-task failures instead
    of aborting siblings.  [around i thunk] (default: [thunk ()]) wraps
    the {e entire} task — including the pool's own per-task metrics — in
    the worker domain that executes it; the engine uses it to scope a
    per-run metrics capture ({!Perple_util.Metrics.scoped}) around each
    campaign run.  Raises [Invalid_argument] if [jobs < 1] or [n < 0]. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_result] with failures re-raised: if any task raised, the
    lowest-index failure is re-raised with its backtrace after all tasks
    have run.  Raises [Invalid_argument] if [jobs < 1] or [n < 0]. *)

val max_jobs : int
(** Hard upper bound on worker domains (the OCaml runtime supports a
    bounded number of live domains).  Requests beyond it — or beyond the
    task count — are clamped, with a stderr note and a
    [pool.jobs_clamped] metric tick rather than silently. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    [jobs] on this machine. *)

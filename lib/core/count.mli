(** The outcome counters (paper, Sec IV, Algorithms 1 and 2).

    [exhaustive] is Algorithm 1 ([COUNT]): it examines every frame — each
    combination of one iteration per load-performing thread, [N^{T_L}] in
    total — and, per frame, increments the counter of the {e first} outcome
    of interest whose perpetual predicate holds (at most one count per
    frame, as in the paper's else-if chain).

    [heuristic] is Algorithm 2 ([COUNTH]): it examines only the [N] frames
    suggested by each outcome's derivation plan, keeping counting linear.

    Both report the number of frames examined, which the report layer
    multiplies by {!frame_cost} to charge outcome counting against the
    virtual clock (the paper's runtimes include counting, Sec VI-B2). *)

type result = {
  counts : int array;  (** One entry per outcome of interest, in order. *)
  frames_examined : int;
}

val frame_cost : int
(** Virtual rounds charged per examined frame. *)

val exhaustive :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** Raises [Invalid_argument] if [N^{T_L}] would overflow; callers cap [N]
    (the paper itself calls the exhaustive counter impractical beyond small
    runs, Sec VII-B). *)

val heuristic :
  Convert.t -> outcomes:(Outcome_convert.t * Outcome_convert.plan) list ->
  run:Perple_harness.Perpetual.run -> result

val heuristic_auto :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** {!heuristic} with freshly built plans. *)

val exhaustive_independent :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** Like {!exhaustive} but each outcome is counted on every frame,
    independently of the others (no first-match exclusion).  Used when each
    outcome is analysed in its own right, as in the paper's outcome-variety
    figure (Fig 13). *)

val heuristic_independent :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** Independent linear counting: every outcome samples its own [N] derived
    frames (the paper's Fig 13 notes the heuristic samples [N] frames
    {e per outcome}). *)

val frames_exhaustive : tl:int -> iterations:int -> int
(** [N^{T_L}], the frame count Algorithm 1 visits. *)

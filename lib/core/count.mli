(** The outcome counters (paper, Sec IV, Algorithms 1 and 2).

    [exhaustive] is Algorithm 1 ([COUNT]): it counts, over every frame —
    each combination of one iteration per load-performing thread,
    [N^{T_L}] in total — the {e first} outcome of interest whose
    perpetual predicate holds (at most one count per frame, as in the
    paper's else-if chain).  The naive odometer that walks all [N^{T_L}]
    frames survives as {!exhaustive_reference}; [exhaustive] itself
    dispatches to a {e factorized} kernel whenever the outcome set is
    provably mutually exclusive, decomposing each outcome's conditions
    into independent components (per-dimension satisfying-set scans,
    Fenwick-swept dimension pairs, pruned cartesian enumeration) whose
    counts multiply — [O(T_L · N log N)]-ish instead of [O(N^{T_L})],
    with byte-identical counts.

    [heuristic] is Algorithm 2 ([COUNTH]): it examines only the [N] frames
    suggested by each outcome's derivation plan, keeping counting linear.

    All counters report [frames_examined] — the size of the frame space
    the result covers ([N^{T_L}] for exhaustive counters, [N] for
    heuristic ones) — and [evaluations], the number of outcome-predicate
    evaluations (or equivalent unit work) actually performed, which the
    engine charges against the virtual clock (the paper's runtimes include
    counting, Sec VI-B2). *)

type result = {
  counts : int array;  (** One entry per outcome of interest, in order. *)
  frames_examined : int;
      (** Size of the frame space covered: [N^{T_L}] for exhaustive
          counting (regardless of kernel), [N] for heuristic counting. *)
  evaluations : int;
      (** Predicate evaluations (or equivalent per-iteration scan steps)
          performed — the counter's actual work, charged to the virtual
          clock. *)
}

val frames_exhaustive : tl:int -> iterations:int -> int
(** [N^{T_L}], the frame count Algorithm 1 covers.  Raises
    [Invalid_argument] on overflow; callers cap [N] (the paper itself
    calls the exhaustive counter impractical beyond small runs,
    Sec VII-B). *)

val exhaustive :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** First-match exhaustive counting.  Dispatches to the factorized kernel
    when {!mutually_exclusive} holds (then first-match and independent
    counting coincide), to {!exhaustive_reference} otherwise.  Raises
    [Invalid_argument] if [N^{T_L}] would overflow. *)

val exhaustive_reference :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** The naive [N^{T_L}] odometer, kept verbatim as the correctness
    reference for the factorized kernel (and for fidelity benchmarks of
    the paper's Algorithm 1 cost model). *)

val exhaustive_factorized :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** The factorized kernel, counting every outcome {e independently} over
    the full frame space (no first-match exclusion).  Equal to
    {!exhaustive} when the outcomes are mutually exclusive; exported for
    benchmarks and direct independent counting. *)

val exhaustive_independent :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** Independent exhaustive counting (no first-match exclusion), as in the
    paper's outcome-variety figure (Fig 13).  Factorized; byte-identical
    to {!exhaustive_independent_reference}. *)

val exhaustive_independent_reference :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** The naive independent odometer, kept as the factorized kernel's
    correctness reference. *)

val mutually_exclusive :
  Convert.t -> Outcome_convert.t list -> bool
(** True when no frame can satisfy two of the outcomes, established
    syntactically: the outcomes bind the same registers, and every pair
    differs on some register whose two conditions are provably
    incompatible (membership of disjoint store sequences, or a
    frame-bound reads-from against the initial value).  Pin-dependent
    conditions are never used as witnesses — sets relying on them fall
    back to the reference odometer. *)

val heuristic :
  Convert.t -> outcomes:(Outcome_convert.t * Outcome_convert.plan) list ->
  run:Perple_harness.Perpetual.run -> result

val heuristic_auto :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** {!heuristic} with freshly built plans. *)

val heuristic_independent :
  Convert.t -> outcomes:Outcome_convert.t list ->
  run:Perple_harness.Perpetual.run -> result
(** Independent linear counting: every outcome samples its own [N] derived
    frames (the paper's Fig 13 notes the heuristic samples [N] frames
    {e per outcome}).  [frames_examined] is [N] (the frame-space unit),
    [evaluations] is [N * |outcomes|] (the work actually done). *)

module Outcome = Perple_litmus.Outcome
module Perpetual = Perple_harness.Perpetual
module Supervisor = Perple_harness.Supervisor
module Machine = Perple_sim.Machine
module Rng = Perple_util.Rng

type counter = Exhaustive | Exhaustive_reference | Heuristic

type report = {
  conversion : Convert.t;
  run : Perpetual.run;
  outcomes : Outcome.t list;
  counts : int array;
  frames_examined : int;
  evaluations : int;
  counter : counter;
  virtual_runtime : int;
  requested_iterations : int;
  degraded : bool;
  salvaged_iterations : int;
  supervision : Supervisor.supervised option;
}

let exhaustive_iterations_cap ~tl ~cap ~requested =
  if tl <= 1 then requested
  else begin
    let fits n =
      let rec pow acc i =
        if i = 0 then acc <= cap
        else if acc > cap / n then false
        else pow (acc * n) (i - 1)
      in
      pow 1 tl
    in
    let rec shrink n = if n <= 1 || fits n then max 1 n else shrink (n / 2) in
    shrink requested
  end

let counter_label = function
  | Exhaustive -> "exhaustive"
  | Exhaustive_reference -> "exhaustive_reference"
  | Heuristic -> "heuristic"

let run ?(config = Perple_sim.Config.default) ?faults ?policy
    ?(counter = Heuristic) ?outcomes ?(exhaustive_cap = 250_000_000)
    ?(stress_threads = 0) ~seed ~iterations test =
  let trace_start = Trace.now () in
  match Convert.convert_body test with
  | Error _ as e -> e
  | Ok conversion -> (
    let config =
      match faults with
      | Some faults -> Perple_sim.Config.with_faults faults config
      | None -> config
    in
    let outcomes =
      match outcomes with
      | Some o -> o
      | None -> (
        match Outcome.of_condition test with
        | Ok target -> [ target ]
        | Error _ -> [])
    in
    match outcomes with
    | [] -> Error (Convert.Memory_condition "<condition>")
    | _ -> (
      let rec convert_outcomes acc = function
        | [] -> Ok (List.rev acc)
        | o :: rest -> (
          match Outcome_convert.convert conversion o with
          | Ok c -> convert_outcomes (c :: acc) rest
          | Error _ ->
            (* Outcome mentions values/registers conversion cannot express:
               report as a memory-condition-class failure. *)
            Error (Convert.Memory_condition "<outcome>"))
      in
      match convert_outcomes [] outcomes with
      | Error e -> Error e
      | Ok converted ->
        let tl = Array.length conversion.Convert.load_threads in
        let requested_iterations = iterations in
        let iterations =
          match counter with
          | Heuristic -> iterations
          | Exhaustive | Exhaustive_reference ->
            exhaustive_iterations_cap ~tl ~cap:exhaustive_cap
              ~requested:iterations
        in
        let rng = Rng.create seed in
        (* Obtain the run: supervised (watchdog + retry + salvage) when a
           policy is given, a single direct run otherwise.  Either way a
           run cut short by faults is salvaged: counting proceeds over the
           fully retired prefix instead of discarding the run. *)
        let run, supervision =
          match policy with
          | Some policy ->
            let sup =
              Supervisor.run_perpetual ~config ~stress_threads ~policy ~rng
                ~image:conversion.Convert.image
                ~t_reads:conversion.Convert.t_reads ~iterations ()
            in
            let run =
              match sup.Supervisor.run with
              | Some run -> run
              | None ->
                Perpetual.empty ~t_reads:conversion.Convert.t_reads
                  ~virtual_runtime:sup.Supervisor.total_rounds
                  ~termination:Machine.Watchdog_abort
            in
            (run, Some sup)
          | None ->
            let run =
              Perpetual.run ~config ~stress_threads ~rng
                ~image:conversion.Convert.image
                ~t_reads:conversion.Convert.t_reads ~iterations ()
            in
            (Perpetual.truncate run ~iterations:(Perpetual.retired run), None)
        in
        let degraded = run.Perpetual.iterations < iterations in
        let result =
          if run.Perpetual.iterations = 0 then
            { Count.counts = Array.make (List.length outcomes) 0;
              frames_examined = 0; evaluations = 0 }
          else
            match counter with
            | Exhaustive ->
              Count.exhaustive conversion ~outcomes:converted ~run
            | Exhaustive_reference ->
              Count.exhaustive_reference conversion ~outcomes:converted ~run
            | Heuristic ->
              Count.heuristic_auto conversion ~outcomes:converted ~run
        in
        let run_rounds =
          match supervision with
          | Some sup -> sup.Supervisor.total_rounds
          | None -> run.Perpetual.virtual_runtime
        in
        (match Metrics.active () with
        | Some m ->
          Metrics.add m "engine.runs" 1;
          if degraded then Metrics.add m "engine.degraded_runs" 1;
          Metrics.add m "engine.salvaged_iterations" run.Perpetual.iterations;
          Metrics.add m "engine.virtual_runtime"
            (run_rounds + result.Count.evaluations)
        | None -> ());
        Trace.complete ~name:"engine.run" ~since:trace_start
          ~args:
            [
              ( "test",
                Trace.String conversion.Convert.test.Perple_litmus.Ast.name );
              ("seed", Trace.Int seed);
              ("iterations", Trace.Int iterations);
              ("counter", Trace.String (counter_label counter));
              ("degraded", Trace.Bool degraded);
            ]
          ();
        Ok
          {
            conversion;
            run;
            outcomes;
            counts = result.Count.counts;
            frames_examined = result.Count.frames_examined;
            evaluations = result.Count.evaluations;
            counter;
            virtual_runtime = run_rounds + result.Count.evaluations;
            requested_iterations;
            degraded;
            salvaged_iterations = run.Perpetual.iterations;
            supervision;
          }))

type crash = { message : string; backtrace : string }

type entry = {
  run_index : int;
  run_seed : int;
  outcome : (report, crash) result;
  run_metrics : Perple_util.Json.t option;
}

let campaign_seeds ~runs ~seed =
  (* Seeds are pre-split from the campaign RNG *before* dispatch, in run
     order, so the per-run seed sequence — and with it every report — is
     a function of [seed] alone, never of [jobs], domain scheduling, or
     which runs a resume still has to execute.  The derivation (one
     [bits64] draw per run, masked non-negative) matches what the
     sequential supervise loop has always done, keeping fixed-seed
     campaign output stable across versions. *)
  let campaign_rng = Rng.create seed in
  Array.init runs (fun _ ->
      Int64.to_int (Rng.bits64 campaign_rng) land max_int)

let campaign_entries ?config ?faults ?policy ?counter ?outcomes
    ?exhaustive_cap ?stress_threads ?pool ?(jobs = 1)
    ?(skip = fun _ -> false) ?on_entry ~runs ~seed ~iterations test =
  if runs < 0 then invalid_arg "Engine.campaign: negative run count";
  if jobs < 1 then invalid_arg "Engine.campaign: jobs must be >= 1";
  let seeds = campaign_seeds ~runs ~seed in
  let pending =
    Array.of_list
      (List.filter (fun i -> not (skip i)) (List.init runs Fun.id))
  in
  (* The engine right-sizes the worker count itself, from the *full* run
     count — not from how many runs a resume still has to execute — so
     the jobs-clamp note and metric are identical for a clean campaign
     and any resume of it.  The pool then never needs to clamp (which
     would tie the [pool.jobs_clamped] metric to the interruption
     point). *)
  let stable_jobs = min (min jobs (max runs 1)) Pool.max_jobs in
  if stable_jobs < jobs then begin
    Metrics.incr "engine.jobs_clamped";
    Printf.eprintf "perple: campaign: clamped jobs %d -> %d (%s)\n%!" jobs
      stable_jobs
      (if jobs > Pool.max_jobs && stable_jobs = Pool.max_jobs then
         Printf.sprintf "domain limit %d" Pool.max_jobs
       else Printf.sprintf "only %d runs" runs)
  end;
  let pool_jobs = max 1 (min stable_jobs (max 1 (Array.length pending))) in
  let trace_start = Trace.now () in
  let entries : entry option array = Array.make (max runs 1) None in
  let entry_mutex = Mutex.create () in
  (* Per-run capture: when metrics are wanted — or when every retiring
     run is being journaled — each task records into a private scoped
     sink that is merged into the ambient sink afterwards (additions are
     commutative, so the final dump is unchanged) and attached to the
     entry.  A resume replays captured metrics of journaled runs instead
     of re-executing them, keeping the dump byte-identical to an
     uninterrupted campaign. *)
  let capture = Metrics.enabled () || on_entry <> None in
  let around ti thunk =
    let i = pending.(ti) in
    let finish captured result =
      let outcome =
        match result with
        | Ok (Ok report) -> Some (Ok report)
        | Ok (Error _reason) -> None (* conversion error; surfaced below *)
        | Error task_error ->
          Some
            (Error
               {
                 message = Pool.error_message task_error;
                 backtrace = Pool.error_backtrace task_error;
               })
      in
      match outcome with
      | None -> ()
      | Some outcome ->
        let entry =
          { run_index = i; run_seed = seeds.(i); outcome; run_metrics = captured }
        in
        entries.(i) <- Some entry;
        (match on_entry with
        | None -> ()
        | Some f ->
          (* Retiring runs journal from whichever domain finishes first;
             serialize the callback so the caller needs no locking. *)
          Mutex.lock entry_mutex;
          Fun.protect ~finally:(fun () -> Mutex.unlock entry_mutex) (fun () ->
              f entry))
    in
    if not capture then begin
      let result = thunk () in
      finish None result;
      result
    end
    else begin
      let sink = Metrics.create_sink () in
      let result = Metrics.scoped sink thunk in
      (match Metrics.active () with
      | Some ambient -> Metrics.merge ambient sink
      | None -> ());
      finish (Some (Metrics.to_json sink)) result;
      result
    end
  in
  let raw =
    Pool.map_result ?pool ~jobs:pool_jobs ~around (Array.length pending)
      (fun ti ->
        run ?config ?faults ?policy ?counter ?outcomes ?exhaustive_cap
          ?stress_threads ~seed:seeds.(pending.(ti)) ~iterations test)
  in
  Metrics.incr "engine.campaigns";
  Trace.complete ~name:"engine.campaign" ~since:trace_start
    ~args:
      [
        ("runs", Trace.Int runs);
        ("jobs", Trace.Int jobs);
        ("seed", Trace.Int seed);
        ("executed", Trace.Int (Array.length pending));
      ]
    ();
  (* The test is shared, so conversion failures are identical across
     runs: surface the first. *)
  let conversion_error =
    Array.find_map
      (function Ok (Error reason) -> Some reason | _ -> None)
      raw
  in
  match conversion_error with
  | Some reason -> Error reason
  | None -> Ok (if runs = 0 then [||] else entries)

let campaign ?config ?faults ?policy ?counter ?outcomes ?exhaustive_cap
    ?stress_threads ?pool ?jobs ~runs ~seed ~iterations test =
  match
    campaign_entries ?config ?faults ?policy ?counter ?outcomes
      ?exhaustive_cap ?stress_threads ?pool ?jobs ~runs ~seed ~iterations
      test
  with
  | Error _ as e -> e
  | Ok entries ->
    Ok
      (Array.map
         (function
           | Some { outcome = Ok report; _ } -> report
           | Some { outcome = Error crash; run_index; _ } ->
             failwith
               (Printf.sprintf "Engine.campaign: run %d crashed: %s"
                  run_index crash.message)
           | None -> assert false (* no [skip]: every slot is filled *))
         entries)

let target_count report =
  if Array.length report.counts = 0 then 0 else report.counts.(0)

let detection_rate report =
  if report.virtual_runtime = 0 then 0.0
  else
    float_of_int (target_count report)
    /. float_of_int report.virtual_runtime
    *. 1_000_000.0

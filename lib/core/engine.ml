module Outcome = Perple_litmus.Outcome
module Perpetual = Perple_harness.Perpetual
module Supervisor = Perple_harness.Supervisor
module Machine = Perple_sim.Machine
module Rng = Perple_util.Rng

type counter = Exhaustive | Exhaustive_reference | Heuristic

type report = {
  conversion : Convert.t;
  run : Perpetual.run;
  outcomes : Outcome.t list;
  counts : int array;
  frames_examined : int;
  evaluations : int;
  counter : counter;
  virtual_runtime : int;
  requested_iterations : int;
  degraded : bool;
  salvaged_iterations : int;
  supervision : Supervisor.supervised option;
}

let exhaustive_iterations_cap ~tl ~cap ~requested =
  if tl <= 1 then requested
  else begin
    let fits n =
      let rec pow acc i =
        if i = 0 then acc <= cap
        else if acc > cap / n then false
        else pow (acc * n) (i - 1)
      in
      pow 1 tl
    in
    let rec shrink n = if n <= 1 || fits n then max 1 n else shrink (n / 2) in
    shrink requested
  end

let counter_label = function
  | Exhaustive -> "exhaustive"
  | Exhaustive_reference -> "exhaustive_reference"
  | Heuristic -> "heuristic"

let run ?(config = Perple_sim.Config.default) ?faults ?policy
    ?(counter = Heuristic) ?outcomes ?(exhaustive_cap = 250_000_000)
    ?(stress_threads = 0) ~seed ~iterations test =
  let trace_start = Trace.now () in
  match Convert.convert_body test with
  | Error _ as e -> e
  | Ok conversion -> (
    let config =
      match faults with
      | Some faults -> Perple_sim.Config.with_faults faults config
      | None -> config
    in
    let outcomes =
      match outcomes with
      | Some o -> o
      | None -> (
        match Outcome.of_condition test with
        | Ok target -> [ target ]
        | Error _ -> [])
    in
    match outcomes with
    | [] -> Error (Convert.Memory_condition "<condition>")
    | _ -> (
      let rec convert_outcomes acc = function
        | [] -> Ok (List.rev acc)
        | o :: rest -> (
          match Outcome_convert.convert conversion o with
          | Ok c -> convert_outcomes (c :: acc) rest
          | Error _ ->
            (* Outcome mentions values/registers conversion cannot express:
               report as a memory-condition-class failure. *)
            Error (Convert.Memory_condition "<outcome>"))
      in
      match convert_outcomes [] outcomes with
      | Error e -> Error e
      | Ok converted ->
        let tl = Array.length conversion.Convert.load_threads in
        let requested_iterations = iterations in
        let iterations =
          match counter with
          | Heuristic -> iterations
          | Exhaustive | Exhaustive_reference ->
            exhaustive_iterations_cap ~tl ~cap:exhaustive_cap
              ~requested:iterations
        in
        let rng = Rng.create seed in
        (* Obtain the run: supervised (watchdog + retry + salvage) when a
           policy is given, a single direct run otherwise.  Either way a
           run cut short by faults is salvaged: counting proceeds over the
           fully retired prefix instead of discarding the run. *)
        let run, supervision =
          match policy with
          | Some policy ->
            let sup =
              Supervisor.run_perpetual ~config ~stress_threads ~policy ~rng
                ~image:conversion.Convert.image
                ~t_reads:conversion.Convert.t_reads ~iterations ()
            in
            let run =
              match sup.Supervisor.run with
              | Some run -> run
              | None ->
                Perpetual.empty ~t_reads:conversion.Convert.t_reads
                  ~virtual_runtime:sup.Supervisor.total_rounds
                  ~termination:Machine.Watchdog_abort
            in
            (run, Some sup)
          | None ->
            let run =
              Perpetual.run ~config ~stress_threads ~rng
                ~image:conversion.Convert.image
                ~t_reads:conversion.Convert.t_reads ~iterations ()
            in
            (Perpetual.truncate run ~iterations:(Perpetual.retired run), None)
        in
        let degraded = run.Perpetual.iterations < iterations in
        let result =
          if run.Perpetual.iterations = 0 then
            { Count.counts = Array.make (List.length outcomes) 0;
              frames_examined = 0; evaluations = 0 }
          else
            match counter with
            | Exhaustive ->
              Count.exhaustive conversion ~outcomes:converted ~run
            | Exhaustive_reference ->
              Count.exhaustive_reference conversion ~outcomes:converted ~run
            | Heuristic ->
              Count.heuristic_auto conversion ~outcomes:converted ~run
        in
        let run_rounds =
          match supervision with
          | Some sup -> sup.Supervisor.total_rounds
          | None -> run.Perpetual.virtual_runtime
        in
        (match Metrics.active () with
        | Some m ->
          Metrics.add m "engine.runs" 1;
          if degraded then Metrics.add m "engine.degraded_runs" 1;
          Metrics.add m "engine.salvaged_iterations" run.Perpetual.iterations;
          Metrics.add m "engine.virtual_runtime"
            (run_rounds + result.Count.evaluations)
        | None -> ());
        Trace.complete ~name:"engine.run" ~since:trace_start
          ~args:
            [
              ( "test",
                Trace.String conversion.Convert.test.Perple_litmus.Ast.name );
              ("seed", Trace.Int seed);
              ("iterations", Trace.Int iterations);
              ("counter", Trace.String (counter_label counter));
              ("degraded", Trace.Bool degraded);
            ]
          ();
        Ok
          {
            conversion;
            run;
            outcomes;
            counts = result.Count.counts;
            frames_examined = result.Count.frames_examined;
            evaluations = result.Count.evaluations;
            counter;
            virtual_runtime = run_rounds + result.Count.evaluations;
            requested_iterations;
            degraded;
            salvaged_iterations = run.Perpetual.iterations;
            supervision;
          }))

let campaign ?config ?faults ?policy ?counter ?outcomes ?exhaustive_cap
    ?stress_threads ?(jobs = 1) ~runs ~seed ~iterations test =
  if runs < 0 then invalid_arg "Engine.campaign: negative run count";
  (* Seeds are pre-split from the campaign RNG *before* dispatch, in run
     order, so the per-run seed sequence — and with it every report — is
     a function of [seed] alone, never of [jobs] or domain scheduling.
     The derivation (one [bits64] draw per run, masked non-negative)
     matches what the sequential supervise loop has always done, keeping
     fixed-seed campaign output stable across versions. *)
  let campaign_rng = Rng.create seed in
  let seeds = Array.make (max runs 1) 0 in
  for i = 0 to runs - 1 do
    seeds.(i) <- Int64.to_int (Rng.bits64 campaign_rng) land max_int
  done;
  let trace_start = Trace.now () in
  let reports =
    Pool.map ~jobs runs (fun i ->
        run ?config ?faults ?policy ?counter ?outcomes ?exhaustive_cap
          ?stress_threads ~seed:seeds.(i) ~iterations test)
  in
  Metrics.incr "engine.campaigns";
  Trace.complete ~name:"engine.campaign" ~since:trace_start
    ~args:
      [
        ("runs", Trace.Int runs);
        ("jobs", Trace.Int jobs);
        ("seed", Trace.Int seed);
      ]
    ();
  (* The test is shared, so conversion failures are identical across
     runs: surface the first. *)
  let rec collect acc i =
    if i >= runs then Ok (Array.of_list (List.rev acc))
    else
      match reports.(i) with
      | Error _ as e -> e
      | Ok r -> collect (r :: acc) (i + 1)
  in
  collect [] 0

let target_count report =
  if Array.length report.counts = 0 then 0 else report.counts.(0)

let detection_rate report =
  if report.virtual_runtime = 0 then 0.0
  else
    float_of_int (target_count report)
    /. float_of_int report.virtual_runtime
    *. 1_000_000.0

(** Outcome conversion: original outcomes -> perpetual outcomes
    (paper, Sec IV-A, Fig 6) and heuristic conditions (Sec IV-B, Fig 8).

    An original outcome is a conjunction of register conditions.  For each
    condition on a load [L] of location [x]:

    - an expected non-initial value identifies the unique store [S] writing
      it, giving a {e read-from} constraint: the loaded value must be a
      member of [S]'s arithmetic sequence, with iteration at least the
      bound of [S]'s thread (its frame index when the thread performs
      loads, or the iteration {e pinned} by the decoded value when it does
      not — how [mp]-style [T_L < T] tests work);
    - the expected initial value gives a {e from-read} constraint per store
      to [x]: the loaded value must be smaller than the value that store
      writes at its bound.

    Two reads-from constraints on the same store-only thread must decode to
    the same pinned iteration (both loads read the same store instance, as
    in the original outcome).

    The heuristic plan (step 5) eliminates all frame variables but one by
    deriving each from a loaded value: reads-from derivations take the
    decoded iteration; from-read derivations take the decoded iteration
    plus one (the value generically written one iteration earlier, as in
    Fig 8); frame threads unreachable by any derivation chain fall back to
    the diagonal (the base index itself), keeping the counter linear and
    sound.  Every heuristic hit is, by construction, an exhaustive hit on
    the derived frame. *)

module Outcome := Perple_litmus.Outcome

type load_ref = {
  thread : int;
  frame : int;  (** Frame-variable index of the thread. *)
  slot : int;  (** Load slot within the iteration. *)
  reads : int;  (** [r_t] of the thread, for [buf] indexing. *)
}

type rf_cond = {
  rf_load : load_ref;
  rf_store : Convert.store;
  store_frame : int;  (** Frame index of the store's thread, or [-1]. *)
  exact : bool;
      (** When the load's own thread stores to the same location earlier in
          program order, reading another thread's store implies a coherence
          edge from the own store; the only frame-consistent reading is the
          store instance of the frame itself, so the decoded iteration must
          {e equal} the bound rather than merely exceed it.  Without this,
          [n5]-style coherence-forbidden targets would yield false
          positives. *)
}

type fr_bound = { fb_store : Convert.store; fb_frame : int (** or [-1] *) }

type fr_cond = { fr_load : load_ref; bounds : fr_bound list }

type t = {
  source : Outcome.t;  (** The original (possibly partial) outcome. *)
  rf : rf_cond array;
  fr : fr_cond array;
  unsatisfiable : bool;
      (** The outcome expects a load to return the initial value although a
          po-earlier store of the same thread hits the same location;
          coherent hardware can never produce it, so the predicate is
          constantly false (the value-inequality proxy would otherwise
          accept coherence-{e newer} values from other threads' sequences,
          a false positive the random-test property suite caught). *)
}

val convert :
  ?own_store_exact:bool -> Convert.t -> Outcome.t -> (t, string) result
(** Fails when a condition expects a value that no store writes to the
    loaded location (and is not the initial value), or references a
    register no load writes.

    [own_store_exact] (default true) controls the coherence strengthening
    described at {!rf_cond.exact}; disabling it reverts to the paper's bare
    [>=] reads-from rule and exists only so the ablation experiment can
    demonstrate the false positives that rule admits on coherence tests
    like [n5]. *)

val eval :
  Convert.t -> t -> bufs:int array array -> frame:int array -> bool
(** The perpetual-outcome predicate [p_out_o] (Fig 6, bottom row): true iff
    the frame — one iteration index per load thread, in [load_threads]
    order — exhibits the outcome.  All frame entries must be within the run
    length; [bufs] is {!Perple_harness.Perpetual.run}'s [bufs]. *)

(** {1 Factorization (counting-kernel decomposition)}

    The exhaustive predicate is a conjunction of per-condition constraints.
    Each constraint touches one or two frame dimensions (the load's and,
    for cross-thread reads-from, the store thread's) and possibly a
    {e pin} (a store-only thread whose iteration the decoded value fixes).
    Connected components of the touches-graph evaluate independently, so
    the exhaustive count over the full [N^{T_L}] frame space is the
    {e product} of per-component counts times [N] per unconstrained
    dimension — the factorization that makes the exhaustive counter
    tractable (cf. the per-thread decomposition of
    "How Hard is Weak-Memory Testing?"). *)

type component = {
  comp_dims : int array;  (** Frame dimensions of the component, ascending. *)
  comp_pins : int array;  (** Store-only threads pinned by the component. *)
  comp_rf : int array;  (** Indices into [rf], ascending. *)
  comp_fr : int array;  (** Indices into [fr], ascending. *)
}

type shape =
  | Bitset  (** One dimension: a linear satisfying-iteration scan. *)
  | Pair
      (** Two pin-free dimensions: per-row intervals on the partner
          dimension, countable by a Fenwick sweep in [O(N log N)]. *)
  | Product
      (** Anything else: cartesian enumeration over per-dimension
          candidate sets with early pruning. *)

type factorization = {
  components : (shape * component) array;
      (** Deterministically ordered by smallest dimension. *)
  free_dims : int;  (** Dimensions no condition mentions ([×N] each). *)
}

val factorize : Convert.t -> t -> factorization
(** Union-find over frame dimensions and pinned threads.  Conditions on
    the same pin land in the same component, mirroring the shared pin
    cell in {!eval}. *)

val eval_component :
  t -> component -> bufs:int array array -> frame:int array ->
  pins:int array -> bool
(** Evaluate only the component's conditions (rf before fr, as in
    {!eval}); the component's pins in the scratch array are reset on
    entry.  Only [frame] entries for [comp_dims] are read. *)

val pair_interval :
  t -> component -> dim:int -> bufs:int array array -> iterations:int ->
  int -> (int * int) option
(** For a [Pair] component with [dim := i]: the interval of partner
    iterations permitted by the conditions whose load sits on [dim], or
    [None] when those conditions already fail locally.  The returned
    interval may be empty ([lo > hi]). *)

val local_candidate :
  t -> component -> dim:int -> bufs:int array array -> int -> bool
(** Necessary per-dimension filter for [Product] enumeration: false only
    if some condition loading on [dim] provably fails at iteration [i]
    regardless of the other dimensions. *)

(** {1 Heuristic plans (Sec IV-B)} *)

type derivation =
  | Base  (** This frame variable is the loop index [n]. *)
  | From_rf of int  (** Derived from the decoded value of [rf.(i)]. *)
  | From_fr of int
      (** Derived from [fr.(i)]'s value via the generic previous-member
          equality (Fig 8, step 5). *)
  | Diagonal  (** Not derivable; sampled at the loop index. *)

type plan = { order : (int * derivation) list }
(** Derivations in dependency order, one per frame variable. *)

val heuristic_plan : Convert.t -> t -> plan

val derived_frame :
  Convert.t -> t -> plan -> bufs:int array array -> iterations:int ->
  n:int -> int array option
(** The frame the heuristic examines for loop index [n], or [None] when a
    derivation fails (value not decodable, or frame out of range). *)

val eval_heuristic :
  Convert.t -> t -> plan -> bufs:int array array -> iterations:int ->
  n:int -> bool
(** [p_out_h_o]: derive the frame, then {!eval} it. *)

type compiled
(** A heuristic outcome predicate flattened into int arrays with
    preallocated scratch: one compilation per (outcome, plan), then
    allocation-free evaluation per iteration.  Counting kernels use this;
    {!eval_heuristic} remains the readable reference implementation. *)

val compile_heuristic : Convert.t -> t -> plan -> compiled

val eval_compiled :
  compiled -> bufs:int array array -> iterations:int -> n:int -> bool
(** Exactly {!eval_heuristic} on the compiled outcome.  Not reentrant —
    each [compiled] value carries its own scratch — but safe to use from
    one domain at a time (pool workers compile their own). *)

val describe : Convert.t -> t -> string
(** Human-readable rendering of the perpetual conditions, in the style of
    the paper's Fig 6 step 4 (inequalities over [buf] accesses). *)

val describe_heuristic : Convert.t -> t -> plan -> string
(** Rendering of the heuristic condition in the style of Fig 8 step 5. *)

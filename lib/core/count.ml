module Perpetual = Perple_harness.Perpetual

type result = { counts : int array; frames_examined : int }

let frame_cost = 1

let frames_exhaustive ~tl ~iterations =
  let rec pow acc i =
    if i = 0 then acc
    else begin
      if acc > max_int / iterations then
        invalid_arg "Count.frames_exhaustive: overflow";
      pow (acc * iterations) (i - 1)
    end
  in
  pow 1 tl

let exhaustive (conv : Convert.t) ~outcomes ~run =
  let tl = Array.length conv.Convert.load_threads in
  let n = run.Perpetual.iterations in
  let total = frames_exhaustive ~tl ~iterations:n in
  let outcomes = Array.of_list outcomes in
  let counts = Array.make (Array.length outcomes) 0 in
  let bufs = run.Perpetual.bufs in
  let frame = Array.make tl 0 in
  (* Odometer over the T_L-dimensional frame space. *)
  let rec visit dim =
    if dim = tl then begin
      let rec first i =
        if i >= Array.length outcomes then ()
        else if Outcome_convert.eval conv outcomes.(i) ~bufs ~frame then
          counts.(i) <- counts.(i) + 1
        else first (i + 1)
      in
      first 0
    end
    else
      for i = 0 to n - 1 do
        frame.(dim) <- i;
        visit (dim + 1)
      done
  in
  if tl > 0 then visit 0;
  { counts; frames_examined = total }

let heuristic (conv : Convert.t) ~outcomes ~run =
  let n = run.Perpetual.iterations in
  let outcomes = Array.of_list outcomes in
  let counts = Array.make (Array.length outcomes) 0 in
  let bufs = run.Perpetual.bufs in
  for i = 0 to n - 1 do
    let rec first j =
      if j >= Array.length outcomes then ()
      else begin
        let outcome, plan = outcomes.(j) in
        if
          Outcome_convert.eval_heuristic conv outcome plan ~bufs
            ~iterations:n ~n:i
        then counts.(j) <- counts.(j) + 1
        else first (j + 1)
      end
    in
    first 0
  done;
  { counts; frames_examined = n }

let exhaustive_independent (conv : Convert.t) ~outcomes ~run =
  let tl = Array.length conv.Convert.load_threads in
  let n = run.Perpetual.iterations in
  let total = frames_exhaustive ~tl ~iterations:n in
  let outcomes = Array.of_list outcomes in
  let counts = Array.make (Array.length outcomes) 0 in
  let bufs = run.Perpetual.bufs in
  let frame = Array.make tl 0 in
  let rec visit dim =
    if dim = tl then
      Array.iteri
        (fun i o ->
          if Outcome_convert.eval conv o ~bufs ~frame then
            counts.(i) <- counts.(i) + 1)
        outcomes
    else
      for i = 0 to n - 1 do
        frame.(dim) <- i;
        visit (dim + 1)
      done
  in
  if tl > 0 then visit 0;
  { counts; frames_examined = total }

let heuristic_independent (conv : Convert.t) ~outcomes ~run =
  let n = run.Perpetual.iterations in
  let outcomes = Array.of_list outcomes in
  let plans =
    Array.map (fun o -> Outcome_convert.heuristic_plan conv o) outcomes
  in
  let counts = Array.make (Array.length outcomes) 0 in
  let bufs = run.Perpetual.bufs in
  for i = 0 to n - 1 do
    Array.iteri
      (fun j o ->
        if
          Outcome_convert.eval_heuristic conv o plans.(j) ~bufs
            ~iterations:n ~n:i
        then counts.(j) <- counts.(j) + 1)
      outcomes
  done;
  { counts; frames_examined = n * Array.length outcomes }

let heuristic_auto conv ~outcomes ~run =
  let with_plans =
    List.map (fun o -> (o, Outcome_convert.heuristic_plan conv o)) outcomes
  in
  heuristic conv ~outcomes:with_plans ~run

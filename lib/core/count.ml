module Perpetual = Perple_harness.Perpetual
module Outcome = Perple_litmus.Outcome
module OC = Outcome_convert
module Metrics = Perple_util.Metrics
module Trace_event = Perple_util.Trace_event

type result = { counts : int array; frames_examined : int; evaluations : int }

(* Wrap a counting kernel in the ambient observability: one span plus the
   frames/evaluations counters per call, nothing when no sink is
   installed.  The kernels themselves stay uninstrumented — their inner
   loops are the hot path. *)
let observed kernel f =
  let t0 = Trace_event.now () in
  let r = f () in
  (match Metrics.active () with
  | Some m ->
    Metrics.add m ("count." ^ kernel ^ ".calls") 1;
    Metrics.add m "count.frames_examined" r.frames_examined;
    Metrics.add m "count.evaluations" r.evaluations
  | None -> ());
  Trace_event.complete ~name:("count." ^ kernel) ~since:t0
    ~args:
      [
        ("frames", Trace_event.Int r.frames_examined);
        ("evaluations", Trace_event.Int r.evaluations);
      ]
    ();
  r

let frames_exhaustive ~tl ~iterations =
  let rec pow acc i =
    if i = 0 then acc
    else begin
      if acc > max_int / iterations then
        invalid_arg "Count.frames_exhaustive: overflow";
      pow (acc * iterations) (i - 1)
    end
  in
  pow 1 tl

(* --- Reference odometer (Algorithm 1, verbatim) -------------------------- *)

let exhaustive_reference (conv : Convert.t) ~outcomes ~run =
  let tl = Array.length conv.Convert.load_threads in
  let n = run.Perpetual.iterations in
  let total = frames_exhaustive ~tl ~iterations:n in
  let outcomes = Array.of_list outcomes in
  let counts = Array.make (Array.length outcomes) 0 in
  let bufs = run.Perpetual.bufs in
  let frame = Array.make tl 0 in
  let evaluations = ref 0 in
  (* Odometer over the T_L-dimensional frame space. *)
  let rec visit dim =
    if dim = tl then begin
      let rec first i =
        if i >= Array.length outcomes then ()
        else begin
          incr evaluations;
          if Outcome_convert.eval conv outcomes.(i) ~bufs ~frame then
            counts.(i) <- counts.(i) + 1
          else first (i + 1)
        end
      in
      first 0
    end
    else
      for i = 0 to n - 1 do
        frame.(dim) <- i;
        visit (dim + 1)
      done
  in
  if tl > 0 then visit 0;
  { counts; frames_examined = total; evaluations = !evaluations }

let exhaustive_independent_reference (conv : Convert.t) ~outcomes ~run =
  let tl = Array.length conv.Convert.load_threads in
  let n = run.Perpetual.iterations in
  let total = frames_exhaustive ~tl ~iterations:n in
  let outcomes = Array.of_list outcomes in
  let counts = Array.make (Array.length outcomes) 0 in
  let bufs = run.Perpetual.bufs in
  let frame = Array.make tl 0 in
  let evaluations = ref 0 in
  let rec visit dim =
    if dim = tl then
      Array.iteri
        (fun i o ->
          incr evaluations;
          if Outcome_convert.eval conv o ~bufs ~frame then
            counts.(i) <- counts.(i) + 1)
        outcomes
    else
      for i = 0 to n - 1 do
        frame.(dim) <- i;
        visit (dim + 1)
      done
  in
  if tl > 0 then visit 0;
  { counts; frames_examined = total; evaluations = !evaluations }

(* --- Heuristic (Algorithm 2) --------------------------------------------- *)

let heuristic (conv : Convert.t) ~outcomes ~run =
  let n = run.Perpetual.iterations in
  let compiled =
    Array.of_list
      (List.map
         (fun (o, plan) -> Outcome_convert.compile_heuristic conv o plan)
         outcomes)
  in
  let nout = Array.length compiled in
  let counts = Array.make nout 0 in
  let bufs = run.Perpetual.bufs in
  let evaluations = ref 0 in
  for i = 0 to n - 1 do
    let rec first j =
      if j >= nout then ()
      else begin
        incr evaluations;
        if Outcome_convert.eval_compiled compiled.(j) ~bufs ~iterations:n ~n:i
        then counts.(j) <- counts.(j) + 1
        else first (j + 1)
      end
    in
    first 0
  done;
  { counts; frames_examined = n; evaluations = !evaluations }

let heuristic_independent (conv : Convert.t) ~outcomes ~run =
  let n = run.Perpetual.iterations in
  let compiled =
    Array.of_list
      (List.map
         (fun o ->
           Outcome_convert.compile_heuristic conv o
             (Outcome_convert.heuristic_plan conv o))
         outcomes)
  in
  let nout = Array.length compiled in
  let counts = Array.make nout 0 in
  let bufs = run.Perpetual.bufs in
  for i = 0 to n - 1 do
    for j = 0 to nout - 1 do
      if Outcome_convert.eval_compiled compiled.(j) ~bufs ~iterations:n ~n:i
      then counts.(j) <- counts.(j) + 1
    done
  done;
  { counts; frames_examined = n; evaluations = n * nout }

(* --- Factorized exhaustive counting -------------------------------------- *)

(* Fenwick (binary indexed) tree over [0, n): point add, range sum. *)
module Bit = struct
  type t = int array

  let create n : t = Array.make (n + 1) 0

  let add (t : t) i v =
    let i = ref (i + 1) in
    while !i < Array.length t do
      t.(!i) <- t.(!i) + v;
      i := !i + (!i land - !i)
    done

  (* Sum over [0, i). *)
  let prefix (t : t) i =
    let s = ref 0 and i = ref i in
    while !i > 0 do
      s := !s + t.(!i);
      i := !i - (!i land - !i)
    done;
    !s

  let range (t : t) lo hi = if hi < lo then 0 else prefix t (hi + 1) - prefix t lo
end

let shape_name = function
  | OC.Bitset -> "bitset"
  | OC.Pair -> "pair"
  | OC.Product -> "product"

(* Count the frames of one component that satisfy its conditions.  The
   three shapes trade generality for speed; all are exact. *)
let count_component t (shape, comp) ~bufs ~n ~frame ~pins ~evaluations =
  Metrics.incr ("count.component." ^ shape_name shape);
  match (shape : OC.shape) with
  | OC.Bitset ->
    let d = comp.OC.comp_dims.(0) in
    let c = ref 0 in
    for i = 0 to n - 1 do
      frame.(d) <- i;
      if OC.eval_component t comp ~bufs ~frame ~pins then incr c
    done;
    evaluations := !evaluations + n;
    !c
  | OC.Pair ->
    (* Row [i] of dimension [f] admits an interval of [g]-iterations and
       vice versa; a pair counts iff each side lies in the other's
       interval.  Sweep [i] keeping the active [g]-rows in a Fenwick
       tree: O(n log n) instead of the odometer's O(n^2). *)
    let f = comp.OC.comp_dims.(0) and g = comp.OC.comp_dims.(1) in
    let iv_f =
      Array.init n (fun i ->
          OC.pair_interval t comp ~dim:f ~bufs ~iterations:n i)
    in
    let iv_g =
      Array.init n (fun j ->
          OC.pair_interval t comp ~dim:g ~bufs ~iterations:n j)
    in
    evaluations := !evaluations + (2 * n);
    let add_at = Array.make (n + 1) [] and rem_at = Array.make (n + 1) [] in
    Array.iteri
      (fun j iv ->
        match iv with
        | Some (lo, hi) when lo <= hi && lo < n ->
          let hi = min hi (n - 1) in
          add_at.(lo) <- j :: add_at.(lo);
          rem_at.(hi + 1) <- j :: rem_at.(hi + 1)
        | Some _ | None -> ())
      iv_g;
    let bit = Bit.create n in
    let total = ref 0 in
    for i = 0 to n - 1 do
      List.iter (fun j -> Bit.add bit j 1) add_at.(i);
      List.iter (fun j -> Bit.add bit j (-1)) rem_at.(i);
      match iv_f.(i) with
      | Some (lo, hi) when lo <= hi ->
        total := !total + Bit.range bit (max lo 0) (min hi (n - 1))
      | Some _ | None -> ()
    done;
    !total
  | OC.Product ->
    (* Cartesian enumeration over per-dimension candidate sets: each
       dimension is pre-filtered by its locally decidable conditions, so
       the enumeration walks only the (typically tiny) satisfying sets. *)
    let dims = comp.OC.comp_dims in
    let k = Array.length dims in
    let cands =
      Array.map
        (fun d ->
          let acc = ref [] in
          for i = n - 1 downto 0 do
            if OC.local_candidate t comp ~dim:d ~bufs i then acc := i :: !acc
          done;
          Array.of_list !acc)
        dims
    in
    evaluations := !evaluations + (k * n);
    if Array.exists (fun c -> Array.length c = 0) cands then 0
    else begin
      let c = ref 0 in
      let rec visit depth =
        if depth = k then begin
          incr evaluations;
          if OC.eval_component t comp ~bufs ~frame ~pins then incr c
        end
        else
          Array.iter
            (fun i ->
              frame.(dims.(depth)) <- i;
              visit (depth + 1))
            cands.(depth)
      in
      visit 0;
      !c
    end

let count_outcome_factorized conv t ~bufs ~n ~frame ~pins ~evaluations =
  if t.OC.unsatisfiable then 0
  else begin
    let f = OC.factorize conv t in
    let rec free_pow acc k = if k = 0 then acc else free_pow (acc * n) (k - 1) in
    let total = ref (free_pow 1 f.OC.free_dims) in
    Array.iter
      (fun sc ->
        if !total > 0 then
          total :=
            !total * count_component t sc ~bufs ~n ~frame ~pins ~evaluations)
      f.OC.components;
    !total
  end

let exhaustive_factorized (conv : Convert.t) ~outcomes ~run =
  let tl = Array.length conv.Convert.load_threads in
  let n = run.Perpetual.iterations in
  let total = frames_exhaustive ~tl ~iterations:n in
  let outcomes = Array.of_list outcomes in
  let counts = Array.make (Array.length outcomes) 0 in
  let evaluations = ref 0 in
  if tl > 0 then begin
    let bufs = run.Perpetual.bufs in
    let frame = Array.make tl 0 in
    let pins = Array.make (Array.length conv.Convert.t_reads) (-1) in
    Array.iteri
      (fun i o ->
        counts.(i) <-
          count_outcome_factorized conv o ~bufs ~n ~frame ~pins ~evaluations)
      outcomes
  end;
  { counts; frames_examined = total; evaluations = !evaluations }

(* --- Instrumented exports ------------------------------------------------- *)

(* Shadow each kernel with its observed form; the first-match dispatch
   below then reports whichever kernel it actually chose. *)
let exhaustive_reference conv ~outcomes ~run =
  observed "exhaustive_reference" (fun () ->
      exhaustive_reference conv ~outcomes ~run)

let exhaustive_independent_reference conv ~outcomes ~run =
  observed "exhaustive_independent_reference" (fun () ->
      exhaustive_independent_reference conv ~outcomes ~run)

let exhaustive_factorized conv ~outcomes ~run =
  observed "exhaustive_factorized" (fun () ->
      exhaustive_factorized conv ~outcomes ~run)

let heuristic conv ~outcomes ~run =
  observed "heuristic" (fun () -> heuristic conv ~outcomes ~run)

let heuristic_independent conv ~outcomes ~run =
  observed "heuristic_independent" (fun () ->
      heuristic_independent conv ~outcomes ~run)

let heuristic_auto conv ~outcomes ~run =
  let with_plans =
    List.map (fun o -> (o, Outcome_convert.heuristic_plan conv o)) outcomes
  in
  heuristic conv ~outcomes:with_plans ~run

(* --- First-match dispatch ------------------------------------------------- *)

module Ast = Perple_litmus.Ast

(* Factorized counting is per-outcome (independent); the first-match
   odometer counts each frame at most once.  The two agree whenever no
   frame can satisfy two outcomes, which we establish syntactically,
   pairwise: some register on which the outcomes expect different values
   must carry provably incompatible converted conditions.

   A frame fixes each register's loaded value [v].  Classifying each
   binding by the conversion it induces:

   - [Store c] (non-initial value, writing store has a frame variable):
     two such with distinct canonicals demand membership of disjoint
     arithmetic sequences — never both true;
   - [Store c] vs [Init]: the reads-from demands [v = k*i + c] with
     [i >= frame_m] while the from-read bound for that same store demands
     [v < k*frame_m + c] — never both true;
   - anything involving a {e pinned} (store-only) thread is excluded:
     a from-read bounded by a pin another register establishes can admit
     values a sibling outcome reads-from (older-than-the-pin members),
     so exclusivity there depends on pin agreement across the pair and
     is not decided locally.  Such sets fall back to the reference.

   Partial or mismatching register sets also fall back: soundness over
   speed. *)
type binding_class =
  | Init  (** Expects the initial value: from-read conditions. *)
  | Seq of int  (** Member of the sequence with this canonical. *)
  | Pinned  (** Involves a store-only thread: excluded from the proof. *)

let classify_binding (conv : Convert.t) (b : Outcome.binding) =
  match
    Ast.register_load conv.Convert.test ~thread:b.Outcome.thread
      ~reg:b.Outcome.reg
  with
  | None -> None
  | Some (_, x) ->
    if b.Outcome.value = Ast.initial_value conv.Convert.test x then begin
      (* Initial value: bounded below every store to [x]; a pin-bounded
         store makes the from-read pin-dependent. *)
      let pin_bounded =
        List.exists
          (fun (s : Convert.store) ->
            s.Convert.location = x
            && conv.Convert.frame_index.(s.Convert.thread) < 0)
          conv.Convert.stores
      in
      Some (if pin_bounded then Pinned else Init)
    end
    else
      match Convert.store_for_value conv ~location:x ~value:b.Outcome.value with
      | None -> None
      | Some s ->
        if conv.Convert.frame_index.(s.Convert.thread) < 0 then Some Pinned
        else Some (Seq s.Convert.canonical)

let classify_outcome conv (t : OC.t) =
  let rec go acc = function
    | [] -> Some (List.sort compare acc)
    | b :: rest -> (
      match classify_binding conv b with
      | None -> None
      | Some c ->
        go ((b.Outcome.thread, b.Outcome.reg, b.Outcome.value, c) :: acc) rest)
  in
  go [] t.OC.source

let exclusive_pair a b =
  List.length a = List.length b
  && List.for_all2
       (fun (t1, r1, _, _) (t2, r2, _, _) -> t1 = t2 && r1 = r2)
       a b
  && List.exists2
       (fun (_, _, va, ca) (_, _, vb, cb) ->
         va <> vb
         &&
         match (ca, cb) with
         | Seq c1, Seq c2 -> c1 <> c2
         | Seq _, Init | Init, Seq _ -> true
         | _ -> false)
       a b

let mutually_exclusive conv outcomes =
  match outcomes with
  | [] | [ _ ] -> true
  | _ -> (
    let rec classify acc = function
      | [] -> Some (List.rev acc)
      | o :: rest -> (
        match classify_outcome conv o with
        | None -> None
        | Some c -> classify (c :: acc) rest)
    in
    match classify [] outcomes with
    | None -> false
    | Some keys ->
      let rec pairs = function
        | [] -> true
        | k :: rest ->
          List.for_all (fun k' -> exclusive_pair k k') rest && pairs rest
      in
      pairs keys)

let exhaustive conv ~outcomes ~run =
  if mutually_exclusive conv outcomes then
    exhaustive_factorized conv ~outcomes ~run
  else exhaustive_reference conv ~outcomes ~run

let exhaustive_independent = exhaustive_factorized

(* The engine-facing name of the observability trace layer; the
   implementation lives in {!Perple_util.Trace_event} so that the sim and
   harness layers (which perple_core depends on) can emit through the same
   ambient sink.  See docs/internals.md, "Observability". *)
include Perple_util.Trace_event

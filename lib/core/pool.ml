(* A tiny deterministic work pool on stdlib domains.

   Tasks are indexed [0, n); results land in slot [i] regardless of which
   domain ran task [i], so the result array is a pure function of the task
   function — the domain count only changes wall-clock time.  Determinism
   of the *work itself* is the caller's contract: a task must not draw
   from shared mutable state (the engine pre-splits one RNG per task
   before dispatch, see {!Engine.campaign}). *)

let available_domains () = Domain.recommended_domain_count ()

(* The OCaml runtime supports a bounded number of live domains; stay well
   inside it whatever the caller asks for. *)
let max_jobs = 64

(* Observability wrapper around one task: a "pool.task" span whose [tid]
   is the executing domain (per-domain utilization is read straight off
   the trace timeline) plus a scheduling-independent task counter.  When
   neither sink is installed the task function is passed through
   untouched. *)
let observed_task f =
  if not (Trace.enabled () || Metrics.enabled ()) then f
  else fun i ->
    let t0 = Trace.now () in
    let r = f i in
    Metrics.incr "pool.tasks";
    Trace.complete ~name:"pool.task" ~since:t0
      ~args:[ ("index", Trace.Int i) ]
      ();
    r

let map ?(jobs = 1) n f =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let jobs = min (min jobs n) max_jobs in
  let f = observed_task f in
  if n = 0 then [||]
  else if jobs <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        if Atomic.get error <> None then continue := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f i with
            | v -> results.(i) <- Some v
            | exception e ->
              (* First failure wins; the rest of the pool drains. *)
              ignore
                (Atomic.compare_and_set error None
                   (Some (e, Printexc.get_raw_backtrace ())))
        end
      done
    in
    let domains =
      Array.init (jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.map: missing result")
      results
  end

(* A tiny deterministic work pool on stdlib domains.

   Tasks are indexed [0, n); results land in slot [i] regardless of which
   domain ran task [i], so the result array is a pure function of the task
   function — the domain count only changes wall-clock time.  Determinism
   of the *work itself* is the caller's contract: a task must not draw
   from shared mutable state (the engine pre-splits one RNG per task
   before dispatch, see {!Engine.campaign}). *)

let available_domains () = Domain.recommended_domain_count ()

(* The OCaml runtime supports a bounded number of live domains; stay well
   inside it whatever the caller asks for. *)
let max_jobs = 64

type task_error = { exn : exn; backtrace : Printexc.raw_backtrace }

let error_message e = Printexc.to_string e.exn
let error_backtrace e = Printexc.raw_backtrace_to_string e.backtrace

(* Both clamps used to be silent; a campaign asking for 128 workers ran
   on 64 with no trace of the difference.  Each clamp now leaves a
   stderr note and a [pool.jobs_clamped] tick. *)
let clamp_jobs ~jobs ~n =
  let effective = min (min jobs n) max_jobs in
  if effective < jobs then begin
    Metrics.incr "pool.jobs_clamped";
    Printf.eprintf "perple: pool: clamped jobs %d -> %d (%s)\n%!" jobs
      effective
      (if jobs > max_jobs && effective = max_jobs then
         Printf.sprintf "domain limit %d" max_jobs
       else Printf.sprintf "only %d tasks" n)
  end;
  effective

(* Observability wrapper around one task: a "pool.task" span whose [tid]
   is the executing domain (per-domain utilization is read straight off
   the trace timeline) plus a scheduling-independent task counter.  When
   neither sink is installed the task function is passed through
   untouched.

   The enabled check runs per task, in the worker, {e inside} any
   [around] wrapper: an engine per-run capture scope
   ({!Perple_util.Metrics.scoped}) must see the [pool.tasks] tick even
   when no ambient sink is installed, or a journaled run's metrics would
   depend on whether --metrics was passed. *)
let observed_task f i =
  if not (Trace.enabled () || Metrics.enabled ()) then f i
  else begin
    let t0 = Trace.now () in
    let r = f i in
    Metrics.incr "pool.tasks";
    Trace.complete ~name:"pool.task" ~since:t0
      ~args:[ ("index", Trace.Int i) ]
      ();
    r
  end

let map_result ?(jobs = 1) ?around n f =
  if jobs < 1 then invalid_arg "Pool.map_result: jobs must be >= 1";
  if n < 0 then invalid_arg "Pool.map_result: negative task count";
  if n = 0 then [||]
  else begin
    let jobs = clamp_jobs ~jobs ~n in
    let f = observed_task f in
    (* Capture failures per task instead of poisoning the pool: a raising
       task yields [Error] in its own slot (exception plus backtrace) and
       every sibling still runs to completion. *)
    let protected i =
      match f i with
      | v -> Ok v
      | exception exn ->
        let backtrace = Printexc.get_raw_backtrace () in
        Metrics.incr "pool.task_errors";
        Error { exn; backtrace }
    in
    let task =
      match around with
      | None -> protected
      | Some wrap -> fun i -> wrap i (fun () -> protected i)
    in
    if jobs <= 1 then Array.init n task
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else results.(i) <- Some (task i)
        done
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Pool.map_result: missing result")
        results
    end
  end

let map ?(jobs = 1) n f =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let results = map_result ~jobs n f in
  (* Re-raise the lowest-index failure — a deterministic choice, where
     the old first-failure-wins race both picked a scheduling-dependent
     winner and silently dropped every later failure. *)
  Array.iter
    (function
      | Ok _ -> ()
      | Error e -> Printexc.raise_with_backtrace e.exn e.backtrace)
    results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

(* A deterministic work pool on stdlib domains, with persistent workers.

   Tasks are indexed [0, n); results land in slot [i] regardless of which
   domain ran task [i], so the result array is a pure function of the task
   function — the domain count only changes wall-clock time.  Determinism
   of the *work itself* is the caller's contract: a task must not draw
   from shared mutable state (the engine pre-splits one RNG per task
   before dispatch, see {!Engine.campaign}).

   Workers are spawned once and reused: historically every [map] spawned
   [jobs - 1] fresh domains and joined them before returning, which on a
   busy or single-core host made a 4-way campaign several times {e
   slower} than the sequential loop (domain spawn/join dominated the
   400-iteration runs it dispatched).  A pool now keeps its domains
   parked on a condition variable between batches; dispatch is one
   broadcast plus chunked index claiming off a single atomic counter. *)

let available_domains () = Domain.recommended_domain_count ()

(* The OCaml runtime supports a bounded number of live domains; stay well
   inside it whatever the caller asks for. *)
let max_jobs = 64

type task_error = { exn : exn; backtrace : Printexc.raw_backtrace }

let error_message e = Printexc.to_string e.exn
let error_backtrace e = Printexc.raw_backtrace_to_string e.backtrace

(* A batch is type-erased to a claim thunk: the closure owns the typed
   results array, workers only pump [claim] until the index space is
   exhausted.  [participants] caps how many workers join in, so a wide
   pool can still honour a narrow [~jobs] request. *)
type batch = { claim : unit -> bool; participants : int }

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when a batch is published or on stop *)
  donec : Condition.t;  (* signalled when the last participant retires *)
  mutable workers : unit Domain.t array;
  mutable worker_ids : Domain.id array;
  mutable batch : batch option;
  mutable generation : int;  (* bumped per published batch *)
  mutable active : int;  (* participants still inside the current batch *)
  mutable stop : bool;
  mutable warned_clamp : bool;  (* stderr clamp note: once per pool *)
}

(* Worker [i]: park until a fresh generation appears, claim chunks until
   the batch is dry, retire, park again.  Parked workers sit in
   [Condition.wait] (a blocking section), so an idle pool costs neither
   CPU nor GC latency. *)
let worker_loop t i () =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  while not t.stop do
    if t.generation = !seen then Condition.wait t.work t.mutex
    else begin
      seen := t.generation;
      match t.batch with
      | Some b when i < b.participants ->
        Mutex.unlock t.mutex;
        while b.claim () do () done;
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.broadcast t.donec
      | Some _ | None -> ()
    end
  done;
  Mutex.unlock t.mutex

let spawn_worker t i = Domain.spawn (worker_loop t i)

let clamp_pool_jobs jobs = max 1 (min jobs max_jobs)

let create ?jobs () =
  let jobs =
    match jobs with Some j -> clamp_pool_jobs j | None -> available_domains ()
  in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      donec = Condition.create ();
      workers = [||];
      worker_ids = [||];
      batch = None;
      generation = 0;
      active = 0;
      stop = false;
      warned_clamp = false;
    }
  in
  (* No metric tick here: pool creation depends on [jobs], and the
     metrics dump must stay byte-identical across --jobs. *)
  let workers = Array.init (jobs - 1) (fun i -> spawn_worker t i) in
  t.workers <- workers;
  t.worker_ids <- Array.map Domain.get_id workers;
  t

let size t = Array.length t.workers + 1

(* Grow (never shrink) to serve a wider [~jobs] request on a reused
   pool.  Only called between batches, from the submitting domain. *)
let ensure_size t jobs =
  let jobs = clamp_pool_jobs jobs in
  let have = size t in
  if jobs > have then begin
    let fresh =
      Array.init (jobs - have) (fun k -> spawn_worker t (have - 1 + k))
    in
    t.workers <- Array.append t.workers fresh;
    t.worker_ids <-
      Array.append t.worker_ids (Array.map Domain.get_id fresh)
  end

let shutdown t =
  let workers =
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      [||]
    end
    else begin
      t.stop <- true;
      Condition.broadcast t.work;
      let w = t.workers in
      t.workers <- [||];
      t.worker_ids <- [||];
      Mutex.unlock t.mutex;
      w
    end
  in
  Array.iter Domain.join workers

(* The process-wide shared pool backing plain [map ~jobs] calls: created
   on first parallel dispatch, grown to the widest request seen, joined
   at exit.  Access is serialized by [shared_mutex]; the pool itself runs
   one batch at a time (see [run_batch]). *)
let shared : t option ref = ref None
let shared_mutex = Mutex.create ()

let shared_pool ~jobs =
  Mutex.lock shared_mutex;
  let pool =
    match !shared with
    | Some p ->
      ensure_size p jobs;
      p
    | None ->
      let p = create ~jobs () in
      shared := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock shared_mutex;
  pool

(* Both clamps used to be silent; a campaign asking for 128 workers ran
   on 64 with no trace of the difference.  Each clamp ticks
   [pool.jobs_clamped]; the stderr note is emitted once per pool (a
   reused pool would otherwise repeat it every [map]). *)
let clamp_jobs ?pool ~jobs ~n () =
  let effective = min (min jobs n) max_jobs in
  if effective < jobs then begin
    Metrics.incr "pool.jobs_clamped";
    let warn =
      match pool with
      | None -> true
      | Some p ->
        if p.warned_clamp then false
        else begin
          p.warned_clamp <- true;
          true
        end
    in
    if warn then
      Printf.eprintf "perple: pool: clamped jobs %d -> %d (%s)\n%!" jobs
        effective
        (if jobs > max_jobs && effective = max_jobs then
           Printf.sprintf "domain limit %d" max_jobs
         else Printf.sprintf "only %d tasks" n)
  end;
  effective

(* Observability wrapper around one task: a "pool.task" span whose [tid]
   is the executing domain (per-domain utilization is read straight off
   the trace timeline) plus a scheduling-independent task counter.

   The enabled check runs per task, in the worker, {e inside} any
   [around] wrapper: an engine per-run capture scope
   ({!Perple_util.Metrics.scoped}) must see the [pool.tasks] tick even
   when no ambient sink is installed, or a journaled run's metrics would
   depend on whether --metrics was passed.  Without an [around] wrapper
   no scope can appear mid-batch, so the check is hoisted to dispatch
   time and disarmed instrumentation costs nothing per task. *)
let observed_task f i =
  if not (Trace.enabled () || Metrics.enabled ()) then f i
  else begin
    let t0 = Trace.now () in
    let r = f i in
    Metrics.incr "pool.tasks";
    Trace.complete ~name:"pool.task" ~since:t0
      ~args:[ ("index", Trace.Int i) ]
      ();
    r
  end

exception Missing_result

(* Chunk size: large enough to amortize the atomic claim and any
   cross-domain cache traffic, small enough that a straggler chunk
   cannot serialize the tail of the batch. *)
let chunk_size ~n ~jobs = max 1 (n / (jobs * 8))

(* Run one batch on [pool], caller participating.  The pool admits one
   batch at a time; publishing while one is in flight is a programming
   error (pools are not concurrency-safe across submitters). *)
let run_batch pool ~jobs ~n task =
  let missing = { exn = Missing_result; backtrace = Printexc.get_callstack 0 } in
  let results = Array.make n (Error missing) in
  let self = Domain.self () in
  if Array.exists (fun id -> id = self) pool.worker_ids then
    (* A task submitting to its own pool would deadlock waiting for
       itself; run the nested batch inline instead. *)
    for i = 0 to n - 1 do
      results.(i) <- task i
    done
  else begin
    let next = Atomic.make 0 in
    let chunk = chunk_size ~n ~jobs in
    let claim () =
      let start = Atomic.fetch_and_add next chunk in
      if start >= n then false
      else begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          results.(i) <- task i
        done;
        true
      end
    in
    let participants = min (jobs - 1) (Array.length pool.workers) in
    Mutex.lock pool.mutex;
    if pool.batch <> None then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool: concurrent map on the same pool"
    end;
    pool.batch <- Some { claim; participants };
    pool.active <- participants;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    while claim () do () done;
    Mutex.lock pool.mutex;
    while pool.active > 0 do
      Condition.wait pool.donec pool.mutex
    done;
    pool.batch <- None;
    Mutex.unlock pool.mutex
  end;
  Array.iter
    (function
      | Error { exn = Missing_result; _ } ->
        invalid_arg "Pool.map_result: missing result"
      | _ -> ())
    results;
  results

let map_result ?pool ?jobs ?around n f =
  let jobs =
    match (jobs, pool) with
    | Some j, _ -> j
    | None, Some p -> size p
    | None, None -> 1
  in
  if jobs < 1 then invalid_arg "Pool.map_result: jobs must be >= 1";
  if n < 0 then invalid_arg "Pool.map_result: negative task count";
  if n = 0 then [||]
  else begin
    let jobs = clamp_jobs ?pool ~jobs ~n () in
    let f =
      match around with
      | Some _ ->
        (* A per-task scope may enable instrumentation mid-task: keep the
           enabled check inside the task. *)
        observed_task f
      | None ->
        if Trace.enabled () || Metrics.enabled () then observed_task f else f
    in
    (* Capture failures per task instead of poisoning the pool: a raising
       task yields [Error] in its own slot (exception plus backtrace) and
       every sibling still runs to completion. *)
    let protected i =
      match f i with
      | v -> Ok v
      | exception exn ->
        let backtrace = Printexc.get_raw_backtrace () in
        Metrics.incr "pool.task_errors";
        Error { exn; backtrace }
    in
    let task =
      match around with
      | None -> protected
      | Some wrap -> fun i -> wrap i (fun () -> protected i)
    in
    (* Without an explicit pool, cap dispatch width at the hardware's
       domain count: extra domains beyond physical cores cannot speed up
       CPU-bound tasks but tax every minor GC with a per-domain
       stop-the-world handshake (measured ~6x on allocating workloads).
       Silent and invisible in results — [jobs] only ever decides which
       domain runs a task, never what the task computes.  An explicit
       [?pool] is honoured at its created width (the oversubscription
       escape hatch, e.g. for IO-bound tasks or dispatch-path tests). *)
    let dispatch_jobs =
      match pool with
      | Some _ -> jobs
      | None -> min jobs (available_domains ())
    in
    if dispatch_jobs <= 1 then Array.init n task
    else begin
      let pool =
        match pool with
        | Some p -> p
        | None -> shared_pool ~jobs:dispatch_jobs
      in
      run_batch pool ~jobs:dispatch_jobs ~n task
    end
  end

let map ?pool ?jobs n f =
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Pool.map: jobs must be >= 1"
  | Some _ | None -> ());
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let results = map_result ?pool ?jobs n f in
  (* Re-raise the lowest-index failure — a deterministic choice, where
     the old first-failure-wins race both picked a scheduling-dependent
     winner and silently dropped every later failure. *)
  Array.iter
    (function
      | Ok _ -> ()
      | Error e -> Printexc.raise_with_backtrace e.exn e.backtrace)
    results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

(** High-level PerpLE pipeline: convert a litmus test, run its perpetual
    version on the simulated machine, and count outcomes of interest
    (paper, Fig 3 control flow).

    This is the API the examples and the CLI use; the report layer drives
    the lower-level modules directly when it needs finer control. *)

module Ast := Perple_litmus.Ast
module Outcome := Perple_litmus.Outcome

type counter =
  | Exhaustive
      (** Exhaustive counting over the full [N^{T_L}] frame space, via the
          factorized kernel when the outcome set permits
          ({!Count.exhaustive}); counts are byte-identical to the
          reference either way. *)
  | Exhaustive_reference
      (** The naive [N^{T_L}] odometer ({!Count.exhaustive_reference}) —
          the paper's Algorithm 1 cost model, kept for fidelity
          comparisons (Fig 10) and as the factorized kernel's
          correctness baseline. *)
  | Heuristic

type report = {
  conversion : Convert.t;
  run : Perple_harness.Perpetual.run;
      (** The (possibly salvaged) run the counts were computed over;
          [run.iterations] is the {e effective} length — see
          [requested_iterations]. *)
  outcomes : Outcome.t list;  (** The outcomes of interest, in order. *)
  counts : int array;  (** Occurrences per outcome of interest. *)
  frames_examined : int;
      (** Size of the frame space the counts cover ([N^{T_L}] exhaustive,
          [N] heuristic) — a property of the algorithm, not of the kernel
          that computed it. *)
  evaluations : int;
      (** Outcome-predicate evaluations the counter actually performed —
          the counting work charged to [virtual_runtime]. *)
  counter : counter;
  virtual_runtime : int;
      (** Execution plus counting ([evaluations]), in virtual rounds —
          the paper's "runtime including both test execution and outcome
          counting".  For supervised runs this includes every retried
          attempt. *)
  requested_iterations : int;
      (** The caller's iteration request, before the exhaustive-counter
          cap and before any fault salvage; compare with
          [run.iterations] to see how much actually ran. *)
  degraded : bool;
      (** True iff faults (or watchdog aborts) left fewer iterations than
          the effective request: the counts cover a salvaged prefix. *)
  salvaged_iterations : int;
      (** Iterations the counts actually cover; equals [run.iterations]. *)
  supervision : Perple_harness.Supervisor.supervised option;
      (** The per-attempt ledger, when a supervision policy was used. *)
}

val run :
  ?config:Perple_sim.Config.t ->
  ?faults:Perple_sim.Fault.profile ->
  ?policy:Perple_harness.Supervisor.policy ->
  ?counter:counter ->
  ?outcomes:Outcome.t list ->
  ?exhaustive_cap:int ->
  ?stress_threads:int ->
  seed:int ->
  iterations:int ->
  Ast.t ->
  (report, Convert.reason) result
(** Runs the full pipeline.  [outcomes] defaults to the test's own target
    outcome; [counter] defaults to [Heuristic].  With [Exhaustive], the run
    length is capped so that the frame count stays within [exhaustive_cap]
    (default [2.5e8]); the paper itself deems the exhaustive counter
    impractical at scale (Sec VII-B); the effective length is surfaced via
    [requested_iterations] vs [run.iterations] instead of being applied
    silently.

    [faults] (overriding [config.faults]) injects failures; [policy]
    supervises the run — watchdog, retries with backoff and split RNGs,
    and checkpoint salvage ({!Perple_harness.Supervisor}).  Without a
    policy, runs truncated by crash faults are still salvaged: counting
    proceeds over the completed prefix and the report is marked
    [degraded].  Beware that a hang or livelock fault without a policy
    leaves no watchdog to bound the run. *)

type crash = {
  message : string;  (** [Printexc.to_string] of the task's exception. *)
  backtrace : string;  (** Raw backtrace, printed; may be empty. *)
}

type entry = {
  run_index : int;  (** Position in the campaign, [0 .. runs-1]. *)
  run_seed : int;  (** The pre-split seed this run was given. *)
  outcome : (report, crash) result;
      (** [Error] means the run raised; siblings were unaffected. *)
  run_metrics : Perple_util.Json.t option;
      (** This run's isolated metrics capture ({!Perple_util.Metrics.to_json}),
          present whenever metrics are enabled or [on_entry] is set. *)
}

val campaign_seeds : runs:int -> seed:int -> int array
(** The per-run seed sequence a campaign with this [seed] uses: one
    [bits64] draw per run from a campaign RNG, in run order, masked
    non-negative.  Exposed so a resume can verify journaled seeds. *)

val campaign_entries :
  ?config:Perple_sim.Config.t ->
  ?faults:Perple_sim.Fault.profile ->
  ?policy:Perple_harness.Supervisor.policy ->
  ?counter:counter ->
  ?outcomes:Outcome.t list ->
  ?exhaustive_cap:int ->
  ?stress_threads:int ->
  ?pool:Pool.t ->
  ?jobs:int ->
  ?skip:(int -> bool) ->
  ?on_entry:(entry -> unit) ->
  runs:int ->
  seed:int ->
  iterations:int ->
  Ast.t ->
  (entry option array, Convert.reason) result
(** Like {!campaign}, but fault-isolated and resumable.  A run that
    raises becomes an [Error crash] entry in its own slot while every
    sibling runs to completion (via {!Pool.map_result}).  [skip i]
    (default: never) excludes run [i] from execution — its slot stays
    [None] — without perturbing any other run's seed; a resume skips the
    journaled runs this way.  [on_entry] is invoked once per completed
    run, serialized, as runs retire — the journaling hook.  The
    worker-count clamp is computed from the full [runs], not from the
    pending subset, so clamp notes and metrics are identical between a
    clean campaign and any resume of it.  [pool] reuses an existing
    persistent worker pool ({!Pool.create}) across calls — the service
    scheduler passes one so repeated step batches never spawn domains;
    without it, parallel dispatch uses the shared process-wide pool. *)

val campaign :
  ?config:Perple_sim.Config.t ->
  ?faults:Perple_sim.Fault.profile ->
  ?policy:Perple_harness.Supervisor.policy ->
  ?counter:counter ->
  ?outcomes:Outcome.t list ->
  ?exhaustive_cap:int ->
  ?stress_threads:int ->
  ?pool:Pool.t ->
  ?jobs:int ->
  runs:int ->
  seed:int ->
  iterations:int ->
  Ast.t ->
  (report array, Convert.reason) result
(** A campaign of [runs] independent pipeline runs of the same test,
    distributed over up to [jobs] domains ({!Pool}).  Each run's seed is
    drawn from a campaign RNG seeded with [seed] {e before} dispatch
    (one draw per run, in run order), so the resulting report array is
    bit-identical for every [jobs] value — including under fault
    injection and supervised retries, whose randomness derives from the
    per-run seed alone.  Other options are passed through to {!run}
    unchanged. *)

val target_count : report -> int
(** Occurrences of the first outcome of interest (the target). *)

val detection_rate : report -> float
(** Target occurrences per million virtual rounds — the paper's target
    outcome detection rate metric (Sec VI-B3), against the virtual clock. *)

val exhaustive_iterations_cap : tl:int -> cap:int -> requested:int -> int
(** Largest [N <= requested] with [N^tl <= cap]. *)

(** Serializable per-run campaign summaries — the records of the
    durability journal ([perple run/supervise --journal FILE]).

    A {!t} captures everything the campaign ledger printers need from an
    {!Engine.report} (plus the supervision ledger and the run's isolated
    metrics), so a resumed campaign can reprint journaled runs
    byte-identically without re-executing them.  JSON round-trip is
    exact: [of_json (to_json s) = Ok s]. *)

module Json := Perple_util.Json

type attempt = {
  a_index : int;
  a_outcome : string;  (** {!Perple_harness.Supervisor.outcome_name}. *)
  a_requested : int;
  a_retired : int;
  a_rounds : int;
  a_lost_stores : int;
  a_exn : string option;
}

type supervision = {
  s_outcome : string;
  s_total_rounds : int;
  s_lost : bool;  (** True iff the supervised run salvaged nothing. *)
  s_attempts : attempt list;
}

type crash = { c_message : string; c_backtrace : string }

type t = {
  index : int;  (** Position in the campaign, 0-based. *)
  seed : int;  (** The pre-split per-run seed. *)
  crashed : crash option;
      (** [Some _] iff the run raised; the numeric fields are then 0. *)
  iterations : int;  (** Effective (possibly salvaged) iterations. *)
  requested_iterations : int;
  frames_examined : int;
  evaluations : int;
  virtual_runtime : int;
  counts : int array;  (** Occurrences per outcome of interest. *)
  degraded : bool;
  salvaged_iterations : int;
  supervision : supervision option;
  metrics : Json.t option;
      (** The run's isolated metrics capture, replayed on resume. *)
}

val of_entry : Engine.entry -> t
val target_count : t -> int

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** {1 Journal records}

    A journal is a header record followed by one ["run"] record per
    completed run (any order), optionally ending with an ["interrupted"]
    marker left by a signal handler. *)

val digest_of_params : (string * string) list -> string
(** Canonical digest (MD5, hex) of the campaign parameters, so a resume
    refuses a journal written under different settings. *)

type header = { h_command : string; h_digest : string; h_runs : int }

val header_to_json : header -> Json.t
val parse_header : Json.t -> (header, string) result

val kind : Json.t -> string option
(** The record's ["kind"] field: ["header"], ["run"], ["interrupted"],
    or — in service journals — ["spec"], ["cancel"] and ["draining"]. *)

val interrupted_marker : Json.t

val draining_marker : Json.t
(** Appended by [perple serve] on SIGINT/SIGTERM after sessions drain;
    skipped (like ["interrupted"]) when the journal is replayed. *)

val record_line : t -> string
(** The canonical single-line serialization of a run record
    ([Json.to_string] of {!to_json}, no trailing newline) — the exact
    bytes the service streams for the record, live or replayed. *)

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module E = Event_graph

(* A constraint formulation of the axiomatic model (see docs/internals.md,
   "Solver backend").  Executions are not enumerated: the reads-from choice
   for each load is a variable, the coherence order of each location is a
   variable, and validity is acyclicity of two graphs — uniproc
   [po-loc ∪ rf ∪ ws ∪ fr] and the per-model graph — maintained
   incrementally while propagation orients coherence pairs forced by
   reachability (the Chakraborty-style polynomial fast path) and search
   branches only on genuinely free choices. *)

(* ---------- flat problem events ---------- *)

(* The solver core works on a flat event array so litmus tests and whole
   perpetual-run traces share one engine.  Program order is the index
   order of same-thread events. *)
type ekind =
  | K_write of string
  | K_read of string
  | K_fence
  | K_flush of string

type pev = { thread : int; kind : ekind }

let loc_of = function
  | K_write x | K_read x | K_flush x -> Some x
  | K_fence -> None

type verdict = {
  consistent : bool;
  events : int;
  violation : string option;  (* which acyclicity axiom broke *)
  decisions : int;            (* free coherence choices explored *)
  backtracks : int;           (* abandoned branches *)
}

(* ---------- graphs with chain-decomposed reachability ---------- *)

(* Every graph is a union of chains (paths) plus extra edges.  Each event
   records its (chain, position) memberships, and after a topological pass
   a vector clock per node holds, for each chain, the highest position
   that reaches it — making reachability queries O(memberships). *)
type graph = {
  gname : string;
  adj : int list array;
  memb : (int * int) list array;  (* event -> (chain, position) *)
  nchains : int;
  vc : int array array;  (* node -> chain -> max position reaching it *)
  indeg : int array;     (* scratch for the topological pass *)
  topo : int array;      (* scratch: topological order of node ids *)
}

let mk_graph name n chains extra =
  let adj = Array.make n [] in
  let memb = Array.make n [] in
  let nchains = List.length chains in
  List.iteri
    (fun c ids ->
      List.iteri (fun p id -> memb.(id) <- (c, p) :: memb.(id)) ids;
      let rec link = function
        | a :: (b :: _ as rest) ->
          adj.(a) <- b :: adj.(a);
          link rest
        | [ _ ] | [] -> ()
      in
      link ids)
    chains;
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) extra;
  {
    gname = name;
    adj;
    memb;
    nchains;
    vc = Array.init n (fun _ -> Array.make (max 1 nchains) (-1));
    indeg = Array.make n 0;
    topo = Array.make n 0;
  }

(* Topological sort (cycle check) + vector-clock pass. *)
let recompute n g =
  let indeg = g.indeg and topo = g.topo in
  Array.fill indeg 0 n 0;
  for u = 0 to n - 1 do
    List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) g.adj.(u)
  done;
  let count = ref 0 in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then begin
      topo.(!count) <- u;
      incr count
    end
  done;
  let head = ref 0 in
  while !head < !count do
    let u = topo.(!head) in
    incr head;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then begin
          topo.(!count) <- v;
          incr count
        end)
      g.adj.(u)
  done;
  if !count < n then Error (Printf.sprintf "cycle in %s graph" g.gname)
  else begin
    let nc = g.nchains in
    for v = 0 to n - 1 do
      Array.fill g.vc.(v) 0 (max 1 nc) (-1)
    done;
    for i = 0 to n - 1 do
      let u = topo.(i) in
      let vu = g.vc.(u) in
      List.iter
        (fun v ->
          let vv = g.vc.(v) in
          for c = 0 to nc - 1 do
            if vu.(c) > vv.(c) then vv.(c) <- vu.(c)
          done;
          List.iter
            (fun (c, p) -> if p > vv.(c) then vv.(c) <- p)
            g.memb.(u))
        g.adj.(u)
    done;
    Ok ()
  end

(* Valid only between a [recompute] and the next edge addition. *)
let reaches g a b =
  List.exists (fun (c, p) -> g.vc.(b).(c) >= p) g.memb.(a)

(* ---------- solver state ---------- *)

(* Coherence for one multi-writer location: per-writer-thread chains of
   write ids (po-forced by uniproc) merged into one total order. *)
type merge = {
  mloc : string;
  chains : int array array;
  idx : int array;        (* next unmerged position per chain *)
  mutable last : int;     (* most recently merged write, -1 at start *)
  mutable remaining : int;
}

type state = {
  n : int;
  uni : graph;
  mg : graph;
  merges : merge list;
  readers : int list array;  (* write id -> reads sourced from it *)
  mutable trail : (unit -> unit) list;
  mutable decisions : int;
  mutable backtracks : int;
}

let push st f = st.trail <- f :: st.trail

let add_edge st g u v =
  g.adj.(u) <- v :: g.adj.(u);
  push st (fun () -> g.adj.(u) <- List.tl g.adj.(u))

let add_edge2 st u v =
  add_edge st st.uni u v;
  add_edge st st.mg u v

let undo_to st saved =
  let rec go l =
    if l != saved then
      match l with
      | f :: rest ->
        f ();
        go rest
      | [] -> assert false
  in
  go st.trail;
  st.trail <- saved

(* Append the head of chain [ci] as the next write in [m]'s coherence
   order.  Materializes exactly the forced consequences: ws from the
   previous merged write, fr from its readers, and ws to the heads of the
   other chains (everything still unmerged follows [h]). *)
let append st m ci =
  let h = m.chains.(ci).(m.idx.(ci)) in
  let prev = m.last in
  let old_idx = m.idx.(ci) in
  m.idx.(ci) <- old_idx + 1;
  m.remaining <- m.remaining - 1;
  m.last <- h;
  push st (fun () ->
      m.idx.(ci) <- old_idx;
      m.remaining <- m.remaining + 1;
      m.last <- prev);
  if prev >= 0 then begin
    add_edge2 st prev h;
    List.iter (fun r -> add_edge2 st r h) st.readers.(prev)
  end;
  Array.iteri
    (fun cj chain ->
      if cj <> ci && m.idx.(cj) < Array.length chain then
        add_edge2 st h chain.(m.idx.(cj)))
    m.chains

let nonempty_chains m =
  let acc = ref [] in
  Array.iteri
    (fun ci chain -> if m.idx.(ci) < Array.length chain then acc := ci :: !acc)
    m.chains;
  List.rev !acc

(* A merge down to one live chain is pure materialization: the rest of the
   order is po-forced, so no reachability data is needed. *)
let drain_single_chains st =
  List.iter
    (fun m ->
      if m.remaining > 0 then
        match nonempty_chains m with
        | [ ci ] ->
          while m.remaining > 0 do
            append st m ci
          done
        | _ -> ())
    st.merges

type step =
  | Forced of merge * int
  | Choice of merge * int list
  | Done

exception Conflict_at of string

(* Find the next coherence step.  A head [h] cannot be the next write if
   another head reaches it (that head would then be coherence-after its
   own successor), or if another head reaches one of [h]'s readers (the
   reader's fr edge back to that head would close a cycle).  A single
   admissible head is a unit propagation; several are a decision point. *)
let find_step st =
  let forced = ref None in
  let choice = ref None in
  List.iter
    (fun m ->
      if m.remaining > 0 then begin
        let heads =
          List.map (fun ci -> (ci, m.chains.(ci).(m.idx.(ci)))) (nonempty_chains m)
        in
        let blocked (ci, h) =
          List.exists
            (fun (cj, h') ->
              cj <> ci
              && (reaches st.uni h' h || reaches st.mg h' h
                 || List.exists
                      (fun r -> reaches st.uni h' r || reaches st.mg h' r)
                      st.readers.(h)))
            heads
        in
        match List.filter (fun hd -> not (blocked hd)) heads with
        | [] -> raise (Conflict_at m.mloc)
        | [ (ci, _) ] -> if !forced = None then forced := Some (m, ci)
        | cis ->
          if !choice = None then choice := Some (m, List.map fst cis)
      end)
    st.merges;
  match (!forced, !choice) with
  | Some (m, ci), _ -> Forced (m, ci)
  | None, Some (m, cis) -> Choice (m, cis)
  | None, None -> Done

let recompute2 st =
  match recompute st.n st.uni with
  | Error _ as e -> e
  | Ok () -> recompute st.n st.mg

(* DPLL over the coherence orders: propagate (drain + forced appends,
   re-checking acyclicity incrementally after each) and branch only on
   free interleaving points, undoing via the trail. *)
let rec solve st =
  drain_single_chains st;
  match recompute2 st with
  | Error reason -> Error reason
  | Ok () -> (
    match find_step st with
    | Done -> Ok ()
    | Forced (m, ci) ->
      append st m ci;
      solve st
    | Choice (m, cis) ->
      st.decisions <- st.decisions + List.length cis - 1;
      let rec try_heads = function
        | [] ->
          Error
            (Printf.sprintf "exhausted coherence interleavings for [%s]"
               m.mloc)
        | ci :: rest -> (
          let saved = st.trail in
          append st m ci;
          match solve st with
          | Ok () -> Ok ()
          | Error _ ->
            st.backtracks <- st.backtracks + 1;
            undo_to st saved;
            try_heads rest)
      in
      try_heads cis
    | exception Conflict_at loc ->
      Error
        (Printf.sprintf "no admissible coherence successor for [%s]" loc))

(* ---------- static construction ---------- *)

let build ~(model : Operational.model) ~(events : pev array)
    ~(rf : int option array) ~(extra : (int * int) list) =
  let n = Array.length events in
  let nthreads =
    Array.fold_left (fun m e -> max m (e.thread + 1)) 0 events
  in
  let by_thread = Array.make nthreads [] in
  for id = n - 1 downto 0 do
    by_thread.(events.(id).thread) <- id :: by_thread.(events.(id).thread)
  done;
  let locs =
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    Array.iter
      (fun e ->
        match loc_of e.kind with
        | Some x when not (Hashtbl.mem seen x) ->
          Hashtbl.add seen x ();
          acc := x :: !acc
        | _ -> ())
      events;
    List.rev !acc
  in
  let is_write id = match events.(id).kind with K_write _ -> true | _ -> false in
  let is_read id = match events.(id).kind with K_read _ -> true | _ -> false in
  let is_fence id = match events.(id).kind with K_fence -> true | _ -> false in
  let eloc id = loc_of events.(id).kind in
  (* Per-(thread, location) write chains: the po-forced spine of every
     coherence order. *)
  let writes_tl = Hashtbl.create 16 in
  Array.iteri
    (fun t ids ->
      List.iter
        (fun id ->
          if is_write id then
            let x = Option.get (eloc id) in
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt writes_tl (t, x))
            in
            Hashtbl.replace writes_tl (t, x) (id :: cur))
        ids)
    by_thread;
  let writes_of t x =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt writes_tl (t, x)))
  in
  (* uniproc: po-loc as per-(thread, location) chains over every located
     event (writes, reads, flushes). *)
  let uni_chains =
    List.concat_map
      (fun x ->
        Array.to_list by_thread
        |> List.filter_map (fun ids ->
               match List.filter (fun id -> eloc id = Some x) ids with
               | [] -> None
               | chain -> Some chain))
      locs
  in
  (* Model graph: reduced per-thread chains whose closure over memory
     events equals ppo ∪ fenced (flushes are not memory events under
     TSO/PSO and are excluded there). *)
  let mg_chains, mg_extra =
    match model with
    | Operational.Sc -> (Array.to_list by_thread, [])
    | Operational.Tso | Operational.Pso ->
      let chains = ref [] and extra = ref [] in
      Array.iter
        (fun ids ->
          let ids = Array.of_list ids in
          let m = Array.length ids in
          let rf_chain =
            Array.to_list ids |> List.filter (fun id -> is_read id || is_fence id)
          in
          if rf_chain <> [] then chains := rf_chain :: !chains;
          (* One write chain under TSO (all stores drain in order), one
             per written location under PSO (FIFO per location only). *)
          let keeps =
            match model with
            | Operational.Tso -> [ is_write ]
            | Operational.Pso ->
              List.filter_map
                (fun x ->
                  if
                    Array.exists
                      (fun id -> is_write id && eloc id = Some x)
                      ids
                  then Some (fun id -> is_write id && eloc id = Some x)
                  else None)
                locs
            | Operational.Sc -> assert false
          in
          List.iter
            (fun keep ->
              let chain =
                Array.to_list ids
                |> List.filter (fun id -> keep id || is_fence id)
              in
              if chain <> [] then chains := chain :: !chains;
              (* Reads stay ordered before later writes (only W->R and,
                 under PSO, W->W to a different location are relaxed):
                 edge from each read to the chain's next element. *)
              let nxt = ref (-1) in
              for i = m - 1 downto 0 do
                let id = ids.(i) in
                if is_read id && !nxt >= 0 then extra := (id, !nxt) :: !extra;
                if keep id || is_fence id then nxt := id
              done)
            keeps)
        by_thread;
      (!chains, !extra)
  in
  (* rf, initial-read fr, and po-forced fr edges. *)
  let uni_extra = ref [] and mg_rf_extra = ref [] in
  let both = ref extra in
  let readers = Array.make n [] in
  (* next same-thread write to the same location, for po-forced fr *)
  let next_write = Array.make n (-1) in
  Hashtbl.iter
    (fun _ rev_ids ->
      let rec go = function
        | a :: (b :: _ as rest) ->
          next_write.(b) <- a;
          go rest
        | [ _ ] | [] -> ()
      in
      go rev_ids)
    writes_tl;
  Array.iteri
    (fun r src ->
      if is_read r then begin
        let x = Option.get (eloc r) in
        match src with
        | Some w ->
          (match events.(w).kind with
          | K_write y when y = x -> ()
          | _ -> invalid_arg "Solver: rf source is not a same-location write");
          readers.(w) <- r :: readers.(w);
          uni_extra := (w, r) :: !uni_extra;
          (match model with
          | Operational.Sc -> mg_rf_extra := (w, r) :: !mg_rf_extra
          | Operational.Tso | Operational.Pso ->
            if events.(w).thread <> events.(r).thread then
              mg_rf_extra := (w, r) :: !mg_rf_extra);
          (* fr to the source's po-successor write: coherence-after the
             source in every completion *)
          if next_write.(w) >= 0 then both := (r, next_write.(w)) :: !both
        | None ->
          (* reading the initial value: fr to the first write of every
             thread's chain (the chains carry it to the rest) *)
          for t = 0 to nthreads - 1 do
            match writes_of t x with
            | w0 :: _ -> both := (r, w0) :: !both
            | [] -> ()
          done
      end)
    rf;
  let uni =
    mk_graph "uniproc" n uni_chains (!uni_extra @ !both)
  in
  let mg =
    mk_graph
      (Operational.model_to_string model)
      n mg_chains
      (mg_extra @ !mg_rf_extra @ !both)
  in
  (* Coherence merges for locations written by more than one thread. *)
  let merges =
    List.filter_map
      (fun x ->
        let chains =
          List.init nthreads (fun t -> writes_of t x)
          |> List.filter (fun c -> c <> [])
          |> List.map Array.of_list
        in
        if List.length chains < 2 then None
        else
          let chains = Array.of_list chains in
          Some
            {
              mloc = x;
              chains;
              idx = Array.make (Array.length chains) 0;
              last = -1;
              remaining =
                Array.fold_left (fun a c -> a + Array.length c) 0 chains;
            })
      locs
  in
  { n; uni; mg; merges; readers; trail = []; decisions = 0; backtracks = 0 }

let solve_exec ~model ~events ~rf ~extra =
  let st = build ~model ~events ~rf ~extra in
  match solve st with
  | Ok () ->
    {
      consistent = true;
      events = st.n;
      violation = None;
      decisions = st.decisions;
      backtracks = st.backtracks;
    }
  | Error reason ->
    {
      consistent = false;
      events = st.n;
      violation = Some reason;
      decisions = st.decisions;
      backtracks = st.backtracks;
    }

(* ---------- whole-trace verification ---------- *)

type trace_event =
  | T_write of string
  | T_read of string * int option
  | T_fence

let classify_trace model threads =
  let n = Array.fold_left (fun a t -> a + Array.length t) 0 threads in
  let events = Array.make n { thread = 0; kind = K_fence } in
  let rf = Array.make n None in
  let id = ref 0 in
  Array.iteri
    (fun t evs ->
      Array.iter
        (fun ev ->
          (match ev with
          | T_write x -> events.(!id) <- { thread = t; kind = K_write x }
          | T_read (x, src) ->
            events.(!id) <- { thread = t; kind = K_read x };
            rf.(!id) <- src
          | T_fence -> events.(!id) <- { thread = t; kind = K_fence });
          incr id)
        evs)
    threads;
  solve_exec ~model ~events ~rf ~extra:[]

(* ---------- litmus-test interface ---------- *)

(* rf variables: for every read, the candidate sources (writes to its
   location, or the initial value).  Enumerated depth-first with the
   cheap po-local coherence prunes; each full assignment is decided by
   the coherence solver above. *)

type problem = {
  test : Ast.t;
  pevents : pev array;
  evs : E.event list;  (* Event_graph view, same ids *)
  preads : E.event list;
  wvalue : int array;  (* write id -> stored value *)
}

let problem_of_test test =
  let evs = E.events_of_test test in
  let n = List.length evs in
  let pevents = Array.make n { thread = 0; kind = K_fence } in
  let wvalue = Array.make n 0 in
  List.iter
    (fun (e : E.event) ->
      let kind =
        match e.kind with
        | E.Write (x, a) ->
          wvalue.(e.id) <- a;
          K_write x
        | E.Read (_, x) -> K_read x
        | E.Fence -> K_fence
        | E.Flush x -> K_flush x
      in
      pevents.(e.id) <- { thread = e.thread; kind })
    evs;
  { test; pevents; evs; preads = E.reads evs; wvalue }

(* Sound po-local prunes (each rejected choice is a uniproc cycle): a
   read cannot source a po-later own write, cannot skip over an own
   intervening write, and cannot read the initial value past an own
   write. *)
let locally_coherent p (r : E.event) src =
  let x = Option.get (E.location r.kind) in
  let own_writes =
    List.filter
      (fun (w : E.event) ->
        w.thread = r.thread && w.po < r.po && E.is_write w
        && E.location w.kind = Some x)
      p.evs
  in
  match src with
  | None ->
    (* reading the initial value past an own write is a uniproc cycle *)
    own_writes = []
  | Some (w : E.event) ->
    if w.thread <> r.thread then
      (* cross-thread sources are only constrained through ws *)
      true
    else
      (* own sources must be the po-latest own write (store forwarding) *)
      w.po < r.po
      && not (List.exists (fun (w' : E.event) -> w'.po > w.po) own_writes)

let domain p (r : E.event) =
  let x = Option.get (E.location r.kind) in
  let writes = E.writes_to p.evs x in
  List.filter
    (fun src -> locally_coherent p r src)
    (List.map (fun w -> Some w) writes @ [ None ])

(* Enumerate rf assignments; call [yield] on every solver-consistent one
   with the outcome it denotes. *)
let enumerate ?(domains = []) ~model p ~extra yield =
  let reads = p.preads in
  let rf = Array.make (Array.length p.pevents) None in
  let dom (r : E.event) =
    match List.assq_opt r domains with Some d -> d | None -> domain p r
  in
  let rec go = function
    | [] ->
      let v =
        solve_exec ~model ~events:p.pevents
          ~rf:(Array.map (Option.map (fun (w : E.event) -> w.id)) rf)
          ~extra
      in
      if v.consistent then begin
        let bindings =
          List.map
            (fun (r : E.event) ->
              let reg =
                match r.kind with E.Read (reg, _) -> reg | _ -> assert false
              in
              let value =
                match rf.(r.id) with
                | Some (w : E.event) -> p.wvalue.(w.id)
                | None ->
                  Ast.initial_value p.test (Option.get (E.location r.kind))
              in
              { Outcome.thread = r.thread; reg; value })
            reads
        in
        yield
          (List.sort
             (fun (a : Outcome.binding) (b : Outcome.binding) ->
               compare (a.thread, a.reg) (b.thread, b.reg))
             bindings)
          rf
      end
    | r :: rest ->
      List.iter
        (fun src ->
          rf.(r.E.id) <- src;
          go rest;
          rf.(r.E.id) <- None)
        (dom r)
  in
  go reads

let reachable_outcomes model test =
  let p = problem_of_test test in
  let acc = ref [] in
  enumerate ~model p ~extra:[] (fun outcome _ -> acc := outcome :: !acc);
  List.sort_uniq Outcome.compare !acc

exception Sat

let restrict_domains p partial =
  List.filter_map
    (fun (r : E.event) ->
      match r.kind with
      | E.Read (reg, x) -> (
        match
          List.find_opt
            (fun (b : Outcome.binding) ->
              b.thread = r.thread && b.reg = reg)
            partial
        with
        | None -> None
        | Some b ->
          let keep src =
            (match src with
            | Some (w : E.event) -> p.wvalue.(w.id) = b.value
            | None -> Ast.initial_value p.test x = b.value)
            && locally_coherent p r src
          in
          let writes = E.writes_to p.evs x in
          Some
            (r, List.filter keep (List.map (fun w -> Some w) writes @ [ None ])))
      | _ -> None)
    p.preads

let condition_reachable model test ~partial =
  let p = problem_of_test test in
  let domains = restrict_domains p partial in
  try
    enumerate ~domains ~model p ~extra:[] (fun _ _ -> raise Sat);
    false
  with Sat -> true

let condition_always model test ~partial =
  List.for_all
    (fun o -> Outcome.matches ~partial o)
    (reachable_outcomes model test)

(* The test's own condition including final-memory atoms: a [Loc_eq]
   pins the coherence-maximal write of the location, expressed as extra
   ws edges from every other write to the chosen target. *)
let final_condition_reachable model test =
  let p = problem_of_test test in
  let atoms = test.Ast.condition.Ast.atoms in
  let partial =
    List.filter_map
      (function
        | Ast.Reg_eq (thread, reg, value) ->
          Some { Outcome.thread; reg; value }
        | Ast.Loc_eq _ -> None)
      atoms
  in
  let domains = restrict_domains p partial in
  let loc_targets =
    List.filter_map
      (function
        | Ast.Reg_eq _ -> None
        | Ast.Loc_eq (x, v) -> (
          match E.writes_to p.evs x with
          | [] -> Some (if Ast.initial_value test x = v then [ [] ] else [])
          | writes ->
            let targets =
              List.filter (fun (w : E.event) -> p.wvalue.(w.id) = v) writes
            in
            Some
              (List.map
                 (fun (w : E.event) ->
                   List.filter_map
                     (fun (w' : E.event) ->
                       if w'.id = w.id then None else Some (w'.id, w.id))
                     writes)
                 targets)))
      atoms
  in
  let rec combos = function
    | [] -> [ [] ]
    | options :: rest ->
      List.concat_map
        (fun extra -> List.map (fun tail -> extra @ tail) (combos rest))
        options
  in
  List.exists
    (fun extra ->
      try
        enumerate ~domains ~model p ~extra (fun _ _ -> raise Sat);
        false
      with Sat -> true)
    (combos loc_targets)

let condition_verdict model test =
  match test.Ast.condition.Ast.quantifier with
  | Ast.Exists | Ast.Not_exists -> Ok (final_condition_reachable model test)
  | Ast.Forall -> (
    match Outcome.of_condition { test with Ast.condition = { test.Ast.condition with Ast.quantifier = Ast.Exists } } with
    | Error _ as e -> e
    | Ok partial -> Ok (condition_always model test ~partial))

let target_allowed model test =
  match Outcome.of_condition test with
  | Error _ as e -> e
  | Ok partial -> Ok (condition_reachable model test ~partial)

let classify model test outcome =
  condition_reachable model test ~partial:outcome

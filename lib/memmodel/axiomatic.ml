module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome

(* Event extraction is shared with the {!Solver} backend. *)
type kind = Event_graph.kind =
  | Write of string * int
  | Read of int * string  (* register, location *)
  | Fence
  | Flush of string

type event = Event_graph.event = {
  id : int;
  thread : int;
  po : int;
  kind : kind;
}

let events_of_test = Event_graph.events_of_test
let location = Event_graph.location

(* A candidate execution: for each read, an rf source (Some write event or
   None for the initial value); for each location, a coherence order over
   its writes (as an ordered list of events). *)
type candidate = {
  rf : (int * event option) list;  (* read id -> source *)
  ws : (string * event list) list;
}

let permutations list =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert x rest)
  in
  List.fold_left
    (fun perms x -> List.concat_map (insert x) perms)
    [ [] ] list

let candidates test =
  let events = events_of_test test in
  let writes_to x = Event_graph.writes_to events x in
  let reads = Event_graph.reads events in
  let rf_choices =
    List.map
      (fun e ->
        let x = Option.get (location e.kind) in
        List.map (fun w -> (e.id, Some w)) (writes_to x) @ [ (e.id, None) ])
      reads
  in
  let rf_assignments =
    List.fold_right
      (fun choices acc ->
        List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices)
      rf_choices [ [] ]
  in
  let locations = Ast.locations test in
  let ws_choices =
    List.fold_right
      (fun x acc ->
        let perms = permutations (writes_to x) in
        List.concat_map
          (fun perm -> List.map (fun rest -> (x, perm) :: rest) acc)
          perms)
      locations [ [] ]
  in
  List.concat_map
    (fun rf -> List.map (fun ws -> { rf; ws }) ws_choices)
    rf_assignments

let candidate_count test = List.length (candidates test)

(* Derived relations as edge lists over event ids. *)

let ws_edges candidate =
  List.concat_map
    (fun (_, order) ->
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a.id, b.id) :: pairs rest
        | [ _ ] | [] -> []
      in
      pairs order)
    candidate.ws

let rf_edges candidate =
  List.filter_map
    (fun (read_id, src) ->
      Option.map (fun w -> (w.id, read_id)) src)
    candidate.rf

(* fr: a read r with source s precedes every write ws-after s; a read from
   the initial value precedes every write to its location. *)
let fr_edges test candidate events =
  ignore test;
  List.concat_map
    (fun (read_id, src) ->
      let read = List.find (fun e -> e.id = read_id) events in
      let x = Option.get (location read.kind) in
      let order = List.assoc x candidate.ws in
      let later =
        match src with
        | None -> order
        | Some w ->
          let rec after = function
            | [] -> []
            | e :: rest -> if e.id = w.id then rest else after rest
          in
          after order
      in
      List.map (fun w -> (read_id, w.id)) later)
    candidate.rf

let po_pairs = Event_graph.po_pairs
let acyclic = Event_graph.acyclic

let valid model test ~events candidate =
  let n = List.length events in
  let ws = ws_edges candidate in
  let rf = rf_edges candidate in
  let fr = fr_edges test candidate events in
  let po = po_pairs events in
  let po_loc =
    List.filter_map
      (fun (a, b) ->
        match (location a.kind, location b.kind) with
        | Some x, Some y when x = y -> Some (a.id, b.id)
        | _ -> None)
      po
  in
  let uniproc = acyclic (po_loc @ ws @ rf @ fr) n in
  uniproc
  &&
  match (model : Operational.model) with
  | Operational.Sc ->
    let po_ids = List.map (fun (a, b) -> (a.id, b.id)) po in
    acyclic (po_ids @ ws @ rf @ fr) n
  | (Operational.Tso | Operational.Pso) as weak ->
    let is_write e = match e.kind with Write _ -> true | _ -> false in
    let is_read e = match e.kind with Read _ -> true | _ -> false in
    let is_mem e = is_write e || is_read e in
    let ppo =
      List.filter_map
        (fun (a, b) ->
          let relaxed =
            (is_write a && is_read b)
            || (weak = Operational.Pso && is_write a && is_write b
                && location a.kind <> location b.kind)
          in
          if is_mem a && is_mem b && not relaxed then Some (a.id, b.id)
          else None)
        po
    in
    (* a -> fence -> b in program order restores all ordering. *)
    let fenced =
      List.concat_map
        (fun fence ->
          if fence.kind <> Fence then []
          else begin
            let before =
              List.filter
                (fun e ->
                  e.thread = fence.thread && e.po < fence.po && is_mem e)
                events
            in
            let after =
              List.filter
                (fun e ->
                  e.thread = fence.thread && e.po > fence.po && is_mem e)
                events
            in
            List.concat_map
              (fun a -> List.map (fun b -> (a.id, b.id)) after)
              before
          end)
        events
    in
    let rfe =
      List.filter_map
        (fun (read_id, src) ->
          match src with
          | Some w ->
            let read = List.find (fun e -> e.id = read_id) events in
            if w.thread <> read.thread then Some (w.id, read_id) else None
          | None -> None)
        candidate.rf
    in
    acyclic (ppo @ fenced @ rfe @ ws @ fr) n

let read_value test candidate read =
  let x = Option.get (location read.kind) in
  match List.assoc read.id candidate.rf with
  | Some w -> (
    match w.kind with Write (_, a) -> a | Read _ | Fence | Flush _ -> 0)
  | None -> Ast.initial_value test x

let outcome_of_candidate test candidate =
  let events = events_of_test test in
  let bindings =
    List.filter_map
      (fun e ->
        match e.kind with
        | Read (reg, _) ->
          Some
            {
              Outcome.thread = e.thread;
              reg;
              value = read_value test candidate e;
            }
        | Write _ | Fence | Flush _ -> None)
      events
  in
  List.sort Outcome.(fun a b ->
      match compare [a] [b] with c -> c)
    bindings

let reachable_outcomes model test =
  let events = events_of_test test in
  let outcomes =
    List.filter_map
      (fun c ->
        if valid model test ~events c then Some (outcome_of_candidate test c)
        else None)
      (candidates test)
  in
  List.sort_uniq Outcome.compare outcomes

let final_memory test candidate x =
  match List.assoc_opt x candidate.ws with
  | Some order when order <> [] -> (
    match (List.nth order (List.length order - 1)).kind with
    | Write (_, a) -> a
    | Read _ | Fence | Flush _ -> Ast.initial_value test x)
  | _ -> Ast.initial_value test x

let condition_satisfied test candidate =
  let outcome = outcome_of_candidate test candidate in
  List.for_all
    (fun atom ->
      match atom with
      | Ast.Reg_eq (thread, reg, value) ->
        Outcome.matches ~partial:[ { Outcome.thread; reg; value } ] outcome
      | Ast.Loc_eq (x, v) -> final_memory test candidate x = v)
    test.Ast.condition.atoms

let condition_reachable model test =
  let events = events_of_test test in
  List.exists
    (fun c -> valid model test ~events c && condition_satisfied test c)
    (candidates test)

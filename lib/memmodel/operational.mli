(** Exhaustive operational model checking of litmus tests.

    Enumerates every reachable execution of a test under an abstract machine
    for the chosen memory model and reports the set of reachable outcomes.
    This plays the role the herd simulator plays in the paper (Sec VII-A):
    deciding which target outcomes x86-TSO allows or forbids (Table II).

    The TSO machine is the x86-TSO abstract machine of Owens, Sarkar and
    Sewell: per-thread FIFO store buffers, store forwarding from the own
    buffer, loads reading main memory otherwise, [MFENCE] draining the own
    buffer.  The SC machine has no buffers.  The PSO machine (an
    extension beyond the paper's x86-TSO focus, exercising its claim that
    the approach applies to weaker models) keeps the store buffer FIFO only
    {e per location}, so same-thread stores to different locations can take
    effect out of program order — [mp]'s target becomes allowed.  Tests are
    tiny, so exhaustive enumeration with state memoisation terminates
    quickly. *)

module Ast := Perple_litmus.Ast
module Outcome := Perple_litmus.Outcome

type model = Sc | Tso | Pso

val model_to_string : model -> string

val reachable_outcomes : model -> Ast.t -> Outcome.t list
(** All outcomes some complete execution of the test can produce, sorted.
    Uses {!Perple_litmus} outcome conventions: one binding per load. *)

val condition_reachable : model -> Ast.t -> partial:Outcome.t -> bool
(** Is some reachable outcome consistent with the partial outcome? *)

val condition_always : model -> Ast.t -> partial:Outcome.t -> bool
(** Does {e every} reachable outcome satisfy the partial outcome?  The
    semantics of litmus7's [forall] conditions. *)

val condition_verdict : model -> Ast.t -> (bool, string) result
(** The test's own condition under its quantifier: [exists] (and
    [~exists], whose truth is the negation reported by the caller) checks
    reachability; [forall] checks universality.  [Error] when the condition
    mentions shared locations. *)

val target_allowed : model -> Ast.t -> (bool, string) result
(** Whether the test's own final condition (as a partial outcome) is
    reachable; [Error] if the condition is not expressible over registers. *)

val state_count : model -> Ast.t -> int
(** Number of distinct abstract-machine states explored; exposed for tests
    and for the simulator documentation. *)

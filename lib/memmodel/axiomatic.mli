(** Axiomatic model checking of litmus tests (herd-style).

    Enumerates candidate executions — a reads-from choice for every load and
    a write-serialisation (coherence) order for every location — and keeps
    those satisfying the model's axioms:

    - {b uniproc}: acyclicity of [po-loc ∪ rf ∪ ws ∪ fr] (coherence);
    - {b SC}: acyclicity of [po ∪ rf ∪ ws ∪ fr];
    - {b TSO}: acyclicity of [ppo ∪ rfe ∪ ws ∪ fr ∪ mfence] where [ppo]
      drops write-to-read program order, [rfe] is external reads-from, and
      [mfence] restores the order across a fence (Owens/Sarkar/Sewell's
      axiomatic x86-TSO).

    This is an independent formulation from {!Operational}; the test suite
    checks that both agree on every catalog test, mirroring the equivalence
    theorem for x86-TSO.  Unlike {!Operational}, this checker also evaluates
    final-memory ([Loc_eq]) conditions, since the final value of a location
    is the [ws]-maximal store. *)

module Ast := Perple_litmus.Ast
module Outcome := Perple_litmus.Outcome

val reachable_outcomes : Operational.model -> Ast.t -> Outcome.t list
(** All register outcomes of valid executions, sorted. *)

val condition_reachable : Operational.model -> Ast.t -> bool
(** Whether some valid execution satisfies the test's own final condition,
    including [Loc_eq] atoms. *)

val candidate_count : Ast.t -> int
(** Number of candidate executions enumerated (before axiom filtering). *)

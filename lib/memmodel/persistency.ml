module Ast = Perple_litmus.Ast

type model = Epoch | Eager

let model_to_string = function Epoch -> "epoch" | Eager -> "eager"

type kind =
  | Write of string * int
  | Flush of string
  | Drain
  | Other  (* loads and volatile fences: no persistency effect *)

type event = { pos : int; thread : int; kind : kind }

(* Events of the canonical prefix: the first [point] instructions in
   (thread, program order) — the same total order the operational
   crash-point executor runs. *)
let events_of_prefix test ~point =
  let acc = ref [] in
  let pos = ref 0 in
  Array.iteri
    (fun thread program ->
      Array.iter
        (fun instr ->
          if !pos < point then begin
            let kind =
              match instr with
              | Ast.Store (x, a) -> Write (x, a)
              | Ast.Flush x -> Flush x
              | Ast.Drain -> Drain
              | Ast.Load _ | Ast.Mfence -> Other
            in
            acc := { pos = !pos; thread; kind } :: !acc;
            incr pos
          end)
        program)
    test.Ast.threads;
  if !pos < point then
    invalid_arg
      (Printf.sprintf "Persistency.events_of_prefix: point %d > %d events"
         point !pos);
  List.rev !acc

(* A flush observes the most recent write to its location in the prefix
   order (rf to the persistence domain); with no earlier write it flushes
   the initial value. *)
let flush_value test events f x =
  List.fold_left
    (fun acc e ->
      match e.kind with
      | Write (y, a) when y = x && e.pos < f.pos -> a
      | Write _ | Flush _ | Drain | Other -> acc)
    (Ast.initial_value test x)
    events

(* A flush is durable iff a drain of the same thread follows it in program
   order (within the prefix): the drain-order edge flush -> drain ->
   crash.  Under the eager bug no drain edge exists, so nothing is
   mandatory. *)
let drained events f =
  List.exists
    (fun e -> e.kind = Drain && e.thread = f.thread && e.pos > f.pos)
    events

type classified = {
  mandatory : (string * int) list;  (* location, value; prefix order *)
  optional : (string * int) list;
}

let classify model test ~point =
  let events = events_of_prefix test ~point in
  let flushes =
    List.filter_map
      (fun e ->
        match e.kind with
        | Flush x -> Some (e, x)
        | Write _ | Drain | Other -> None)
      events
  in
  let valued =
    List.map (fun (f, x) -> (f, x, flush_value test events f x)) flushes
  in
  let is_mandatory f =
    match model with Epoch -> drained events f | Eager -> false
  in
  {
    mandatory =
      List.filter_map
        (fun (f, x, v) -> if is_mandatory f then Some (x, v) else None)
        valued;
    optional =
      List.filter_map
        (fun (f, x, v) -> if is_mandatory f then None else Some (x, v))
        valued;
  }

let reachable_images model test ~point =
  let { mandatory; optional } = classify model test ~point in
  let locations = Ast.locations test in
  let base =
    List.map (fun x -> (x, Ast.initial_value test x)) locations
  in
  let apply image writes =
    List.map
      (fun (x, v) ->
        ( x,
          List.fold_left
            (fun acc (y, w) -> if y = x then w else acc)
            v writes ))
      image
  in
  let durable = apply base mandatory in
  let optional = Array.of_list optional in
  let n = Array.length optional in
  if n > 20 then
    invalid_arg "Persistency.reachable_images: too many undrained flushes";
  let images = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then chosen := optional.(i) :: !chosen
    done;
    images := apply durable !chosen :: !images
  done;
  List.sort_uniq compare !images

let satisfies atoms image =
  List.for_all
    (fun (x, v) ->
      match List.assoc_opt x image with Some w -> w = v | None -> v = 0)
    atoms

let point_violations model test ~point =
  match test.Ast.post_crash with
  | None -> []
  | Some pc ->
    List.filter
      (fun image ->
        satisfies pc.Ast.assumes image && not (satisfies pc.Ast.requires image))
      (reachable_images model test ~point)

let condition_holds model test =
  let points =
    Array.fold_left (fun acc p -> acc + Array.length p) 0 test.Ast.threads + 1
  in
  let rec check point =
    point >= points
    || (point_violations model test ~point = [] && check (point + 1))
  in
  check 0

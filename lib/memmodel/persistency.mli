(** Axiomatic persistency checker.

    Classifies the persisted images reachable at every crash point of a
    litmus test {e declaratively}, from three relations over the events of
    the canonical prefix (the first [point] instructions in (thread,
    program-order) — the same total order {!Perple_sim.Crashsim} executes):

    - {e rf-to-persistence}: each flush observes the latest write to its
      location that precedes it (or the initial value);
    - {e drain order} ([Epoch] only): a flush followed in program order by
      a same-thread drain is {e mandatory} — it has certainly reached the
      persistence domain by the crash;
    - every other flush is {e optional}: the writeback raced the crash, so
      the image may contain any subset, applied in prefix order (the
      canonical cross-thread completion order, matching
      {!Perple_sim.Pmem}).

    Under [Eager] — the buggy controller whose drain commits nothing — the
    drain-order relation is empty and every flush is optional.  Agreement
    of the image sets computed here with the operational executor's, at
    every crash point under both models, is the cross-validation the
    volatile {!Operational}/{!Axiomatic} pair already performs for TSO. *)

type model = Epoch | Eager

val model_to_string : model -> string

val reachable_images :
  model -> Perple_litmus.Ast.t -> point:int -> (string * int) list list
(** Sorted, duplicate-free persisted images at crash point [point]; each
    image is a sorted [(location, value)] list over the test's locations.
    Raises [Invalid_argument] if [point] exceeds the instruction count or
    more than 20 flushes are optional. *)

val point_violations :
  model -> Perple_litmus.Ast.t -> point:int -> (string * int) list list
(** Reachable images at [point] satisfying the post-crash [assumes] but not
    [requires]; empty for tests without a post-crash condition. *)

val condition_holds : model -> Perple_litmus.Ast.t -> bool
(** No violating image at any crash point. *)

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome

type model = Sc | Tso | Pso

let model_to_string = function Sc -> "SC" | Tso -> "TSO" | Pso -> "PSO"

(* Immutable machine state; used directly as a memoisation key.  Buffers
   are oldest-first; memory and registers are sorted association lists so
   that structurally equal states compare equal. *)
type state = {
  pcs : int list;
  buffers : (string * int) list list;
  memory : (string * int) list;
  regs : ((int * int) * int) list;
}

let assoc_set key value assoc =
  let rec go = function
    | [] -> [ (key, value) ]
    | (k, _) :: rest when k = key -> (key, value) :: rest
    | (k, v) :: rest when k > key -> (key, value) :: (k, v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let rec list_set i value = function
  | [] -> invalid_arg "list_set"
  | x :: rest -> if i = 0 then value :: rest else x :: list_set (i - 1) value rest

(* Newest buffered value for a location, if any (store forwarding). *)
let forwarded buffer x =
  List.fold_left
    (fun acc (y, v) -> if y = x then Some v else acc)
    None buffer

let initial_state test =
  let nthreads = Ast.thread_count test in
  {
    pcs = List.init nthreads (fun _ -> 0);
    buffers = List.init nthreads (fun _ -> []);
    memory =
      List.sort compare
        (List.map (fun x -> (x, Ast.initial_value test x)) (Ast.locations test));
    regs = [];
  }

let successors model test state =
  let nthreads = Ast.thread_count test in
  let next = ref [] in
  let add s = next := s :: !next in
  for t = 0 to nthreads - 1 do
    let pc = List.nth state.pcs t in
    let program = test.Ast.threads.(t) in
    let buffer = List.nth state.buffers t in
    (* Instruction step. *)
    if pc < Array.length program then begin
      let bump () = list_set t (pc + 1) state.pcs in
      match program.(pc) with
      | Ast.Store (x, a) -> (
        match model with
        | Sc ->
          add
            {
              state with
              pcs = bump ();
              memory = assoc_set x a state.memory;
            }
        | Tso | Pso ->
          add
            {
              state with
              pcs = bump ();
              buffers = list_set t (buffer @ [ (x, a) ]) state.buffers;
            })
      | Ast.Load (r, x) ->
        let value =
          match (model, forwarded buffer x) with
          | (Tso | Pso), Some v -> v
          | (Tso | Pso), None | Sc, _ ->
            Option.value ~default:0 (List.assoc_opt x state.memory)
        in
        add
          {
            state with
            pcs = bump ();
            regs = assoc_set (t, r) value state.regs;
          }
      | Ast.Mfence | Ast.Drain ->
        (* Enabled only once the buffer is empty; drains below provide the
           interleavings in which it empties first.  SFENCE-as-drain has the
           same volatile semantics as a full fence here; its persistency
           effect lives in {!Persistency}. *)
        if buffer = [] then add { state with pcs = bump () }
      | Ast.Flush _ ->
        (* Volatile no-op: cache-line writeback does not change the coherent
           value of the location. *)
        add { state with pcs = bump () }
    end;
    (* Drain step.  TSO drains strictly in FIFO order; PSO keeps FIFO
       order only per location, so the oldest entry of every distinct
       location is drainable (stores to different locations can take
       effect out of program order). *)
    (match (model, buffer) with
    | _, [] -> ()
    | (Sc | Tso), (x, v) :: rest ->
      add
        {
          state with
          buffers = list_set t rest state.buffers;
          memory = assoc_set x v state.memory;
        }
    | Pso, _ ->
      let drainable =
        List.sort_uniq compare (List.map fst buffer)
      in
      List.iter
        (fun x ->
          (* Remove the oldest entry for location x. *)
          let removed = ref false in
          let v = ref 0 in
          let rest =
            List.filter
              (fun (y, w) ->
                if (not !removed) && y = x then begin
                  removed := true;
                  v := w;
                  false
                end
                else true)
              buffer
          in
          add
            {
              state with
              buffers = list_set t rest state.buffers;
              memory = assoc_set x !v state.memory;
            })
        drainable)
  done;
  !next

let is_final test state =
  List.for_all (fun b -> b = []) state.buffers
  &&
  let lengths =
    Array.to_list (Array.map Array.length test.Ast.threads)
  in
  List.for_all2 (fun pc len -> pc >= len) state.pcs lengths

let explore model test =
  let visited = Hashtbl.create 1024 in
  let finals = Hashtbl.create 64 in
  let rec visit state =
    if not (Hashtbl.mem visited state) then begin
      Hashtbl.replace visited state ();
      if is_final test state then Hashtbl.replace finals state.regs ()
      else List.iter visit (successors model test state)
    end
  in
  visit (initial_state test);
  (visited, finals)

let outcome_of_regs regs =
  List.map
    (fun ((thread, reg), value) -> { Outcome.thread; reg; value })
    regs

let reachable_outcomes model test =
  let _, finals = explore model test in
  let outcomes =
    Hashtbl.fold (fun regs () acc -> outcome_of_regs regs :: acc) finals []
  in
  List.sort_uniq Outcome.compare outcomes

let condition_reachable model test ~partial =
  let _, finals = explore model test in
  Hashtbl.fold
    (fun regs () acc ->
      acc || Outcome.matches ~partial (outcome_of_regs regs))
    finals false

let condition_always model test ~partial =
  let _, finals = explore model test in
  Hashtbl.fold
    (fun regs () acc ->
      acc && Outcome.matches ~partial (outcome_of_regs regs))
    finals true

let condition_verdict model test =
  (* [Outcome.of_condition] rejects [forall]; convert the atoms here. *)
  let rec partial_of_atoms = function
    | [] -> Ok []
    | Ast.Loc_eq (x, _) :: _ ->
      Error
        (Printf.sprintf
           "condition constrains shared location [%s]; not expressible over \
            registers"
           x)
    | Ast.Reg_eq (thread, reg, value) :: rest ->
      Result.map
        (fun tail -> { Outcome.thread; reg; value } :: tail)
        (partial_of_atoms rest)
  in
  match partial_of_atoms test.Ast.condition.Ast.atoms with
  | Error _ as e -> e
  | Ok partial -> (
    match test.Ast.condition.Ast.quantifier with
    | Ast.Forall -> Ok (condition_always model test ~partial)
    | Ast.Exists | Ast.Not_exists ->
      Ok (condition_reachable model test ~partial))

let target_allowed model test =
  match Outcome.of_condition test with
  | Error _ as e -> e
  | Ok partial -> Ok (condition_reachable model test ~partial)

let state_count model test =
  let visited, _ = explore model test in
  Hashtbl.length visited

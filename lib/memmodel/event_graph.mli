(** Shared event-graph extraction for the declarative checkers.

    A litmus test's program becomes a list of {!event}s — one per
    instruction, numbered in (thread, program-order) order — the common
    substrate of the {!Axiomatic} enumerator and the {!Solver} constraint
    backend.  [MFENCE] and [SFENCE]/[DRAIN] both become {!Fence} (their
    volatile semantics coincide on x86-TSO; only {!Persistency}
    distinguishes them) and [CLFLUSH] becomes the volatile no-op
    {!Flush}. *)

module Ast := Perple_litmus.Ast

type kind =
  | Write of string * int
  | Read of int * string  (** register, location *)
  | Fence
  | Flush of string

type event = { id : int; thread : int; po : int; kind : kind }

val events_of_test : Ast.t -> event list
(** All instructions as events, ids dense from 0 in (thread, po) order. *)

val location : kind -> string option
(** The location a memory or flush event touches; [None] for fences. *)

val is_write : event -> bool
val is_read : event -> bool
val is_fence : event -> bool

val is_mem : event -> bool
(** Writes and reads; fences and flushes are not memory events. *)

val writes_to : event list -> string -> event list
(** Write events to a location, in id order. *)

val reads : event list -> event list

val po_pairs : event list -> (event * event) list
(** The full (transitive) program-order relation as event pairs. *)

val acyclic : (int * int) list -> int -> bool
(** Whether the edge list over ids [0..n-1] is a DAG. *)

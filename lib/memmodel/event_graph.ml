module Ast = Perple_litmus.Ast

type kind =
  | Write of string * int
  | Read of int * string  (* register, location *)
  | Fence
  | Flush of string
      (* Volatile no-op; its durability effect lives in {!Persistency}. *)

type event = { id : int; thread : int; po : int; kind : kind }

let events_of_test test =
  let acc = ref [] in
  let id = ref 0 in
  Array.iteri
    (fun thread program ->
      Array.iteri
        (fun po instr ->
          let kind =
            match instr with
            | Ast.Store (x, a) -> Write (x, a)
            | Ast.Load (r, x) -> Read (r, x)
            (* SFENCE-as-drain orders stores like a full fence on x86-TSO's
               volatile side; only {!Persistency} distinguishes them. *)
            | Ast.Mfence | Ast.Drain -> Fence
            | Ast.Flush x -> Flush x
          in
          acc := { id = !id; thread; po; kind } :: !acc;
          incr id)
        program)
    test.Ast.threads;
  List.rev !acc

let location = function
  | Write (x, _) -> Some x
  | Read (_, x) -> Some x
  | Fence | Flush _ -> None

let is_write e = match e.kind with Write _ -> true | _ -> false
let is_read e = match e.kind with Read _ -> true | _ -> false
let is_fence e = match e.kind with Fence -> true | _ -> false
let is_mem e = is_write e || is_read e

let writes_to events x =
  List.filter
    (fun e -> is_write e && location e.kind = Some x)
    events

let reads events = List.filter is_read events

let po_pairs events =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a.thread = b.thread && a.po < b.po then Some (a, b) else None)
        events)
    events

let acyclic edges n =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  let color = Array.make n 0 in
  let rec dfs v =
    if color.(v) = 1 then false
    else if color.(v) = 2 then true
    else begin
      color.(v) <- 1;
      let ok = List.for_all dfs adj.(v) in
      color.(v) <- 2;
      ok
    end
  in
  let rec all v = v >= n || (dfs v && all (v + 1)) in
  all 0

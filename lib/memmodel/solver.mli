(** Constraint-solver model checking of litmus tests and whole traces.

    The third backend, independent of both {!Operational} (abstract-machine
    enumeration) and {!Axiomatic} (candidate-execution enumeration).  An
    execution is a {e constraint problem}: the reads-from source of every
    load and the coherence order of every location are variables, and
    validity is acyclicity of two incrementally maintained graphs — uniproc
    [po-loc ∪ rf ∪ ws ∪ fr] and the per-model graph ([po] for SC, the
    reduced [ppo ∪ fenced ∪ rfe] chains for TSO/PSO) — with derived [fr]
    edges materialized by unit propagation.  Coherence pairs forced by
    reachability are oriented without search (the Chakraborty-style
    polynomial fast path, which decides every execution with a fully known
    [rf] and no free write-write races outright); a hand-rolled DPLL core
    branches on the remaining interleaving points with trail-based undo.

    Because the per-location coherence orders are solved rather than
    enumerated, the solver classifies executions far beyond the
    {!Axiomatic} candidate product and the {!Operational} state cap —
    including whole perpetual-run traces via {!classify_trace}. *)

module Ast := Perple_litmus.Ast
module Outcome := Perple_litmus.Outcome

(** {1 Litmus-test interface}

    Mirrors {!Operational} and {!Axiomatic}; the test suite checks
    three-way agreement on the catalog and on generated tests. *)

val reachable_outcomes : Operational.model -> Ast.t -> Outcome.t list
(** All register outcomes of valid executions, sorted; {!Operational} and
    {!Axiomatic} conventions (one binding per load). *)

val condition_reachable : Operational.model -> Ast.t -> partial:Outcome.t -> bool
(** Is some valid execution consistent with the partial outcome? *)

val condition_always : Operational.model -> Ast.t -> partial:Outcome.t -> bool
(** Does every valid execution satisfy the partial outcome ([forall])? *)

val condition_verdict : Operational.model -> Ast.t -> (bool, string) result
(** The test's own condition under its quantifier.  Unlike
    {!Operational.condition_verdict}, [exists] conditions over shared
    locations ([Loc_eq]) are decided (the coherence-maximal write is a
    solver constraint); [forall] over locations remains an [Error]. *)

val target_allowed : Operational.model -> Ast.t -> (bool, string) result
(** Whether the test's own final condition (as a partial outcome) is
    reachable; [Error] if not expressible over registers — the exact
    contract of {!Operational.target_allowed}. *)

val final_condition_reachable : Operational.model -> Ast.t -> bool
(** Whether some valid execution satisfies the test's own final condition
    including [Loc_eq] atoms — the contract of
    {!Axiomatic.condition_reachable}. *)

val classify : Operational.model -> Ast.t -> Outcome.t -> bool
(** Whether the exact outcome is reachable — the per-outcome
    classification the report layer applies to observed outcomes. *)

(** {1 Whole-trace verification} *)

type trace_event =
  | T_write of string  (** store to a location *)
  | T_read of string * int option
      (** load with its decoded reads-from source: the global id of a
          same-location [T_write], or [None] for the initial value.
          Global ids number events thread-major: all of thread 0 in
          program order, then thread 1, … *)
  | T_fence

type verdict = {
  consistent : bool;
  events : int;
  violation : string option;
      (** which acyclicity axiom broke, when inconsistent *)
  decisions : int;  (** free coherence choices explored; [0] means the
                        polynomial fast path decided the execution *)
  backtracks : int;  (** abandoned search branches *)
}

val classify_trace : Operational.model -> trace_event array array -> verdict
(** Verify one concrete execution — typically a whole perpetual-run trace
    of thousands of events — against the model's axioms.  [threads.(t)]
    lists thread [t]'s events in program order; reads carry their decoded
    reads-from source, so only the coherence orders are solved for.

    @raise Invalid_argument if a read's source is not a same-location
    write. *)

(** System stress for litmus testing (paper, Sec II-B1).

    Testing suites often run extra threads performing frequent memory
    operations on addresses the test does not use, to perturb timing and
    shift the outcome distribution (the paper cites this as particularly
    effective on GPUs).  This module extends an executable image with such
    stress threads: each loops over a dedicated scratch location with a
    store/load pair, competing for scheduler slots and drain bandwidth
    without ever touching the test's locations. *)

val scratch_prefix : string
(** Locations added for stress threads are named
    [scratch_prefix ^ string_of_int i]; test locations never collide
    because litmus location names come from the parser's identifier set. *)

val extend_image :
  Perple_sim.Program.image -> threads:int -> Perple_sim.Program.image
(** Append [threads] stress threads.  [threads = 0] returns the image
    unchanged. *)

module Program = Perple_sim.Program

let scratch_prefix = "__stress"

let extend_image (image : Program.image) ~threads =
  if threads <= 0 then image
  else begin
    let base_locs = Array.length image.Program.location_names in
    let scratch_names =
      Array.init threads (fun i -> Printf.sprintf "%s%d" scratch_prefix i)
    in
    let stress_thread i =
      let loc = base_locs + i in
      {
        Program.body =
          [|
            Program.Store
              {
                loc;
                addr = Program.Shared;
                value = Program.Seq { k = 1; a = 1 };
              };
            Program.Load { loc; addr = Program.Shared; reg = 0 };
          |];
        reg_count = 1;
      }
    in
    {
      Program.programs =
        Array.append image.Program.programs
          (Array.init threads stress_thread);
      location_names =
        Array.append image.Program.location_names scratch_names;
      init = Array.append image.Program.init (Array.make threads 0);
    }
  end

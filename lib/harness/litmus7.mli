(** The litmus7-style baseline runner (paper, Sec III-A and VI-A).

    Runs a litmus test for [N] iterations on the simulated machine, with the
    chosen synchronisation mode, collecting each iteration's registers and
    determining its outcome the way litmus7 does: iteration [n] of every
    thread together forms one result.  Memory is per-iteration indexed, as
    litmus7 allocates, so unsynchronised iterations ([None] mode) cannot
    pollute each other.

    Virtual runtime accounts for machine rounds (including barrier cost and
    release skew) plus per-iteration bookkeeping; it is the quantity the
    Fig 10 runtime comparison uses. *)

module Ast := Perple_litmus.Ast
module Outcome := Perple_litmus.Outcome

type result = {
  histogram : (Outcome.t * int) list;
      (** Occurrences of every observed outcome; counts sum to [retired]
          (equal to [iterations] for a completed, fault-free run). *)
  iterations : int;  (** Requested iteration count. *)
  retired : int;
      (** Iterations every test thread fully retired — the prefix the
          histogram tallies; shorter than [iterations] when a fault or the
          [watchdog] cut the run short. *)
  virtual_runtime : int;  (** Rounds: machine + bookkeeping. *)
  machine : Perple_sim.Machine.stats;
}

val run :
  ?config:Perple_sim.Config.t ->
  ?stress_threads:int ->
  ?watchdog:(round:int -> iterations:int array -> bool) ->
  rng:Perple_util.Rng.t ->
  test:Ast.t ->
  mode:Sync_mode.t ->
  iterations:int ->
  unit ->
  result

val count : result -> partial:Outcome.t -> int
(** Total occurrences of outcomes matching the partial outcome (e.g. the
    test's target). *)

val observed : result -> Outcome.t list
(** Outcomes with non-zero count, sorted. *)

(** Execution tracing: record and pretty-print the simulated machine's
    event stream.

    Useful for understanding {e why} a particular outcome appeared — e.g.
    watching sb's target emerge as two loads retire while both stores still
    sit in their buffers.  Events are recorded with their virtual round, so
    the printed trace is a faithful interleaving. *)

type entry = { round : int; event : Perple_sim.Machine.event }

type t

val create : ?limit:int -> unit -> t
(** A recorder keeping at most [limit] events (default 10_000; recording
    stops silently at the limit). *)

val hook : t -> round:int -> Perple_sim.Machine.event -> unit
(** Pass as [Machine.run]'s [on_event]. *)

val entries : t -> entry list
(** Recorded events, oldest first. *)

val length : t -> int

val pp_event :
  location_names:string array ->
  Format.formatter ->
  Perple_sim.Machine.event ->
  unit

val render : location_names:string array -> t -> string
(** One line per event:
    {v
    @12   T0  exec  [x] <- 1*n+1  = 1   (iter 0)
    @14   T1  drain [y] = 1
    v} *)

val trace_perpetual :
  ?config:Perple_sim.Config.t ->
  ?limit:int ->
  rng:Perple_util.Rng.t ->
  image:Perple_sim.Program.image ->
  t_reads:int array ->
  iterations:int ->
  unit ->
  t * Perpetual.run
(** Run a perpetual test while recording its trace. *)

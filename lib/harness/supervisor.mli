(** Supervised execution: watchdog, outcome classification, retry with
    backoff, and checkpoint salvage for harness runs.

    The paper's campaigns are long batch jobs on real hardware, where
    individual runs hang, crash or livelock; the campaign's value depends
    on surviving them.  This module wraps {!Perpetual.run} (and
    {!Litmus7.run}) the way a campaign driver would:

    - a {e virtual-clock watchdog} aborts any attempt whose round count
      exceeds the policy's budget (catching fault-injected hangs and
      livelocks that would otherwise spin forever);
    - each attempt is {e classified} [Ok | Timeout | Crashed | Truncated];
    - failed attempts are {e retried}, each with a freshly split RNG (so
      the retry explores a different schedule and fault draw) and an
      exponentially backed-off iteration budget — a flaky environment
      still yields a small complete run instead of repeated large losses;
    - partial results are {e salvaged}: the longest fully retired prefix
      of a truncated run is kept rather than discarded.

    Everything is deterministic: equal seeds, configs and policies produce
    identical ledgers, classifications and salvaged data. *)

module Machine := Perple_sim.Machine

type outcome =
  | Ok  (** The attempt retired every requested iteration. *)
  | Timeout
      (** The watchdog (or hang quiescence) aborted the attempt with
          fewer than [min_retired] iterations salvageable. *)
  | Crashed
      (** The run raised, or terminated early with fewer than
          [min_retired] iterations retired. *)
  | Truncated
      (** A partial prefix of at least [min_retired] iterations was
          salvaged. *)
  | Unrecoverable
      (** Crash-suite only: recovery itself failed at a crash point (the
          evaluator raised on the persisted image), so the point could be
          classified but not evaluated.  Recorded in the ledger instead of
          aborting the campaign. *)

val outcome_name : outcome -> string

val outcome_of_name : string -> outcome option
(** Inverse of {!outcome_name}; [None] for unknown names.  Used when a
    resumed campaign replays journaled classifications. *)

type policy = {
  watchdog_rounds : int;
      (** Per-attempt virtual-round budget; the watchdog aborts beyond
          it. *)
  min_retired : int;
      (** K: the smallest salvageable prefix.  An aborted attempt with at
          least this many retired iterations is accepted as [Truncated];
          below it the attempt counts as [Timeout]/[Crashed] and is
          retried. *)
  max_retries : int;  (** Retries after the first attempt. *)
  backoff : float;
      (** Iteration-budget multiplier per retry, > 0.  0.5 halves the
          budget each time (retry cheaper after a loss); 1.5 grows it
          (retry harder).  See {!backed_off} for the rounding. *)
}

val default_policy : iterations:int -> policy
(** A generous budget ([64·N + 10_000] rounds — an order of magnitude
    above typical fault-free runs), [min_retired = max 1 (N/100)],
    3 retries, backoff 0.5. *)

val backed_off : policy -> int -> int
(** [backed_off policy budget] is the next attempt's iteration budget:
    [ceil (budget * backoff)] clamped to [\[1, max_int\]].  Ceiling, not
    truncation — truncation pinned a budget of 1 at 1 under any growing
    multiplier ([int_of_float 1.5 = 1]) and rounded shrinking budgets
    below their geometric sequence. *)

type attempt = {
  index : int;  (** 0 for the first attempt. *)
  outcome : outcome;
  requested : int;  (** This attempt's (possibly backed-off) budget. *)
  retired : int;  (** Iterations every test thread completed. *)
  rounds : int;  (** Machine rounds consumed (0 if the run raised). *)
  lost_stores : int;
  termination : Machine.termination;
  exn : string option;  (** The exception message, if the run raised. *)
  last_regs : int array array;
      (** Defensive {e copy} of each test thread's final register file —
          the machine reuses its [regs] arrays across iterations, so the
          supervisor snapshots them with [Array.copy] (see the hazard note
          on {!Perple_sim.Machine.run}). *)
}

type supervised = {
  attempts : attempt list;  (** The ledger, in execution order. *)
  outcome : outcome;  (** Final classification of the whole supervised run. *)
  run : Perpetual.run option;
      (** The accepted run, already truncated to its salvaged prefix;
          [None] when retries were exhausted with nothing salvageable. *)
  salvaged_iterations : int;
      (** Iterations of usable data in [run] (0 when [run] is [None]). *)
  degraded : bool;
      (** True iff fewer iterations than originally requested were
          delivered — by truncation or by backed-off retry. *)
  total_rounds : int;
      (** Virtual runtime summed over every attempt: the true cost of the
          supervised run, which detection rates must be charged against. *)
}

val run_perpetual :
  ?config:Perple_sim.Config.t ->
  ?stress_threads:int ->
  policy:policy ->
  rng:Perple_util.Rng.t ->
  image:Perple_sim.Program.image ->
  t_reads:int array ->
  iterations:int ->
  unit ->
  supervised
(** Never raises on a faulty run: machine exceptions are caught and
    classified as [Crashed].  Each attempt draws its RNG by splitting
    [rng], so the supervised stream is reproducible from the caller's
    seed. *)

type litmus7_supervised = {
  l7_attempts : attempt list;
  l7_outcome : outcome;
  l7_result : Litmus7.result option;
      (** The accepted result; its histogram already covers only the
          retired prefix. *)
  l7_total_rounds : int;
}

val run_litmus7 :
  ?config:Perple_sim.Config.t ->
  ?stress_threads:int ->
  policy:policy ->
  rng:Perple_util.Rng.t ->
  test:Perple_litmus.Ast.t ->
  mode:Sync_mode.t ->
  iterations:int ->
  unit ->
  litmus7_supervised
(** The same supervision for the litmus7-style baseline runner. *)

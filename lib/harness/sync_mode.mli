(** litmus7 thread-synchronisation modes (paper, Sec VI-A).

    litmus7 can synchronise its test threads before every iteration in five
    ways; the paper evaluates PerpLE against all of them.  On real hardware
    the modes differ in two observable respects: how much time the
    per-iteration rendezvous costs, and how tightly aligned the threads'
    restart times are (which controls how often the short test bodies
    actually overlap).  We model each mode by those two parameters, in
    virtual-clock rounds:

    - [User]: the default polling barrier — moderate cost, moderate
      alignment;
    - [Userfence]: polling barrier plus fences to accelerate write
      propagation — like [User] with slightly tighter alignment;
    - [Pthread]: a [pthread_barrier_wait] — very expensive, poor alignment
      (wakeup order is at the kernel's mercy);
    - [Timebase]: spin until a shared timebase deadline — expensive but the
      tightest alignment of all (not available on all architectures);
    - [None]: no synchronisation; litmus7 still runs iteration [n] of every
      thread against per-iteration memory cells, so only same-index
      iterations can interact (paper, Sec VI-A). *)

type t = User | Userfence | Pthread | Timebase | None_mode

val all : t list
(** In the paper's presentation order: user, userfence, pthread, timebase,
    none. *)

val name : t -> string
val of_name : string -> t option

val barrier : t -> Perple_sim.Machine.barrier
(** The machine barrier implementing the mode's rendezvous. *)

val iteration_overhead : int
(** Virtual rounds charged per iteration for litmus7's bookkeeping (loop
    management, copying registers, per-iteration outcome comparison) —
    present in every mode including [None]. *)

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Program = Perple_sim.Program
module Machine = Perple_sim.Machine
module Config = Perple_sim.Config

type result = {
  histogram : (Outcome.t * int) list;
  iterations : int;
  retired : int;
  virtual_runtime : int;
  machine : Machine.stats;
}

let run ?(config = Config.default) ?(stress_threads = 0) ?watchdog ~rng ~test
    ~mode ~iterations () =
  let image =
    Stress.extend_image (Program.compile_litmus test)
      ~threads:stress_threads
  in
  let loads = Outcome.loads test in
  (* One value slot per (load, iteration): values.(load_index).(n). *)
  let nloads = List.length loads in
  let values = Array.init nloads (fun _ -> Array.make iterations 0) in
  let loads_arr = Array.of_list loads in
  (* For the iteration-end hook: which value slots belong to a thread. *)
  let slots_of_thread =
    Array.init (Ast.thread_count test) (fun t ->
        let slots = ref [] in
        Array.iteri
          (fun i (thread, reg, _) -> if thread = t then slots := (i, reg) :: !slots)
          loads_arr;
        List.rev !slots)
  in
  let stats =
    Machine.run ~config ~rng ~image ~iterations
      ~barrier:(Sync_mode.barrier mode) ?watchdog
      ~on_iteration_end:(fun ~thread ~iteration ~regs ->
        if thread < Array.length slots_of_thread then
          List.iter
            (fun (slot, reg) -> values.(slot).(iteration) <- regs.(reg))
            slots_of_thread.(thread))
      ()
  in
  (* Tally one outcome per fully retired iteration, litmus7-style; a run
     cut short by faults or the watchdog contributes its completed prefix
     only (iterations past it would tally as all-zero garbage). *)
  let retired =
    Array.fold_left min iterations
      (Array.sub stats.Machine.iterations_retired 0 (Ast.thread_count test))
  in
  let table = Hashtbl.create 64 in
  for n = 0 to retired - 1 do
    let outcome =
      Array.to_list
        (Array.mapi
           (fun i (thread, reg, _) ->
             { Outcome.thread; reg; value = values.(i).(n) })
           loads_arr)
    in
    Hashtbl.replace table outcome
      (1 + Option.value ~default:0 (Hashtbl.find_opt table outcome))
  done;
  let histogram =
    List.sort
      (fun (a, _) (b, _) -> Outcome.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  {
    histogram;
    iterations;
    retired;
    (* Per-iteration sync overhead is charged per *retired* iteration:
       a run cut short by faults or the watchdog never paid the loop
       bookkeeping for the iterations it didn't reach, and charging them
       anyway inflated the baseline's runtime in the Fig 9/10
       comparisons. *)
    virtual_runtime =
      stats.Machine.rounds + (Sync_mode.iteration_overhead * retired);
    machine = stats;
  }

let count result ~partial =
  List.fold_left
    (fun acc (outcome, n) ->
      if Outcome.matches ~partial outcome then acc + n else acc)
    0 result.histogram

let observed result =
  List.filter_map
    (fun (outcome, n) -> if n > 0 then Some outcome else None)
    result.histogram

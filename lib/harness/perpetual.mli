(** Execution of perpetual litmus tests: the PerpLE Harness's run phase
    (paper, Sec V-B).

    Threads synchronise once at launch, then run [N] iterations free of any
    synchronisation.  Each load-performing thread appends its registers to a
    [buf] array at every iteration ([buf_t\[r_t * n + i\]], paper Sec III-B);
    outcome counting over the collected bufs is {!Perple_core.Count}'s job.

    The runner is generic over the executable image, which the PerpLE
    Converter produces; it only needs to know how many loads each thread
    performs per iteration (the Converter's [t_reads] output). *)

type run = {
  bufs : int array array;
      (** One array per test thread (empty for store-only threads);
          [bufs.(t).(r_t * n + i)] is the value loaded by thread [t]'s
          [i]-th load in iteration [n]. *)
  t_reads : int array;  (** Loads per iteration for every thread. *)
  iterations : int;
  virtual_runtime : int;
      (** Rounds: machine + perpetual bookkeeping; excludes outcome
          counting, which is charged separately (paper reports runtimes
          including counting — the report layer adds the two). *)
  machine : Perple_sim.Machine.stats;
}

val iteration_overhead : int
(** Virtual rounds charged per iteration for the perpetual loop's
    bookkeeping (appending registers to [buf]); smaller than litmus7's
    because no outcome comparison happens during the run. *)

val run :
  ?config:Perple_sim.Config.t ->
  ?on_sample:(round:int -> iterations:int array -> unit) ->
  ?on_event:(round:int -> Perple_sim.Machine.event -> unit) ->
  ?on_iteration_end:(thread:int -> iteration:int -> regs:int array -> unit) ->
  ?watchdog:(round:int -> iterations:int array -> bool) ->
  ?stress_threads:int ->
  rng:Perple_util.Rng.t ->
  image:Perple_sim.Program.image ->
  t_reads:int array ->
  iterations:int ->
  unit ->
  run
(** Registers in the image must be numbered by load slot (the Converter
    guarantees this): thread [t]'s [i]-th load targets register [i].
    [stress_threads] (default 0) adds {!Stress} threads that perturb
    scheduling without touching test locations.

    [on_iteration_end] runs after the perpetual buf bookkeeping for the
    same iteration; the [regs] array is the machine's live register file
    (see {!Perple_sim.Machine.run} — copy if retained).  [watchdog] is
    forwarded to the machine; when it aborts, the returned [bufs] are
    valid over the retired prefix only (see {!retired}). *)

val retired : run -> int
(** The number of iterations every test thread fully retired — the
    longest prefix of [bufs] that holds real data.  Equals [iterations]
    for a completed, fault-free run. *)

val truncate : run -> iterations:int -> run
(** [truncate run ~iterations] keeps the first [iterations] iterations of
    every buf — the checkpoint-salvage step for runs cut short by faults
    or the watchdog.  [virtual_runtime] and machine stats are kept (the
    rounds were spent regardless).  Raises [Invalid_argument] if
    [iterations] exceeds the run's. *)

val empty :
  t_reads:int array ->
  virtual_runtime:int ->
  termination:Perple_sim.Machine.termination ->
  run
(** A zero-iteration run, used when supervision exhausts its retries
    without salvageable data. *)

module Program = Perple_sim.Program
module Machine = Perple_sim.Machine
module Config = Perple_sim.Config

type run = {
  bufs : int array array;
  t_reads : int array;
  iterations : int;
  virtual_runtime : int;
  machine : Machine.stats;
}

let iteration_overhead = 1

let run ?(config = Config.default) ?on_sample ?on_event ?on_iteration_end
    ?watchdog ?(stress_threads = 0) ~rng ~image ~t_reads ~iterations () =
  let nthreads = Array.length image.Program.programs in
  if Array.length t_reads <> nthreads then
    invalid_arg "Perpetual.run: t_reads arity mismatch";
  let image = Stress.extend_image image ~threads:stress_threads in
  let bufs =
    Array.map (fun r -> Array.make (r * iterations) 0) t_reads
  in
  let stats =
    Machine.run ~config ~rng ~image ~iterations ~barrier:Machine.No_barrier
      ?on_sample ?on_event ?watchdog
      ~on_iteration_end:(fun ~thread ~iteration ~regs ->
        if thread < nthreads then begin
          let r = t_reads.(thread) in
          if r > 0 then begin
            let base = r * iteration in
            for i = 0 to r - 1 do
              bufs.(thread).(base + i) <- regs.(i)
            done
          end
        end;
        match on_iteration_end with
        | Some hook -> hook ~thread ~iteration ~regs
        | None -> ())
      ()
  in
  {
    bufs;
    t_reads;
    iterations;
    virtual_runtime =
      stats.Machine.rounds + (iteration_overhead * iterations);
    machine = stats;
  }

let retired run =
  let n = ref run.iterations in
  Array.iteri
    (fun t r ->
      if t < Array.length run.t_reads then
        n := min !n r)
    run.machine.Machine.iterations_retired;
  !n

let truncate run ~iterations =
  if iterations > run.iterations then
    invalid_arg "Perpetual.truncate: cannot extend a run";
  if iterations = run.iterations then run
  else
    {
      run with
      iterations;
      bufs =
        Array.map2
          (fun buf r -> Array.sub buf 0 (r * iterations))
          run.bufs run.t_reads;
    }

let empty ~t_reads ~virtual_runtime ~termination =
  {
    bufs = Array.map (fun _ -> [||]) t_reads;
    t_reads;
    iterations = 0;
    virtual_runtime;
    machine =
      {
        Machine.rounds = virtual_runtime;
        instructions = 0;
        drains = 0;
        barriers = 0;
        stalls = 0;
        termination;
        iterations_retired = Array.map (fun _ -> 0) t_reads;
        lost_stores = 0;
        persisted = None;
      };
  }

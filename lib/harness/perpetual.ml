module Program = Perple_sim.Program
module Machine = Perple_sim.Machine
module Config = Perple_sim.Config

type run = {
  bufs : int array array;
  t_reads : int array;
  iterations : int;
  virtual_runtime : int;
  machine : Machine.stats;
}

let iteration_overhead = 1

let run ?(config = Config.default) ?on_sample ?on_event ?(stress_threads = 0)
    ~rng ~image ~t_reads ~iterations () =
  let nthreads = Array.length image.Program.programs in
  if Array.length t_reads <> nthreads then
    invalid_arg "Perpetual.run: t_reads arity mismatch";
  let image = Stress.extend_image image ~threads:stress_threads in
  let bufs =
    Array.map (fun r -> Array.make (r * iterations) 0) t_reads
  in
  let stats =
    Machine.run ~config ~rng ~image ~iterations ~barrier:Machine.No_barrier
      ?on_sample ?on_event
      ~on_iteration_end:(fun ~thread ~iteration ~regs ->
        if thread < nthreads then begin
          let r = t_reads.(thread) in
          if r > 0 then begin
            let base = r * iteration in
            for i = 0 to r - 1 do
              bufs.(thread).(base + i) <- regs.(i)
            done
          end
        end)
      ()
  in
  {
    bufs;
    t_reads;
    iterations;
    virtual_runtime =
      stats.Machine.rounds + (iteration_overhead * iterations);
    machine = stats;
  }

module Machine = Perple_sim.Machine
module Program = Perple_sim.Program
module Config = Perple_sim.Config

type entry = { round : int; event : Machine.event }

type t = { limit : int; mutable entries : entry list; mutable count : int }

let create ?(limit = 10_000) () = { limit; entries = []; count = 0 }

let hook t ~round event =
  if t.count < t.limit then begin
    t.entries <- { round; event } :: t.entries;
    t.count <- t.count + 1
  end

let entries t = List.rev t.entries

let length t = t.count

let pp_event ~location_names ppf (event : Machine.event) =
  match event with
  | Machine.Exec { thread; iteration; instr; value } ->
    Format.fprintf ppf "T%d  exec  %a  = %d   (iter %d)" thread
      (Program.pp_instr ~location_names)
      instr value iteration
  | Machine.Drain { thread; loc; value } ->
    Format.fprintf ppf "T%d  drain [%s] = %d" thread location_names.(loc)
      value
  | Machine.Barrier_release -> Format.fprintf ppf "--  barrier release"
  | Machine.Stall { thread; until } ->
    Format.fprintf ppf "T%d  stall until round %d" thread until

let render ~location_names t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Format.asprintf "@%-6d %a" e.round
           (pp_event ~location_names)
           e.event);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let trace_perpetual ?config ?limit ~rng ~image ~t_reads ~iterations () =
  let t = create ?limit () in
  let run =
    Perpetual.run ?config ~on_event:(hook t) ~rng ~image ~t_reads ~iterations
      ()
  in
  (t, run)

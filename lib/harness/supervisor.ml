module Machine = Perple_sim.Machine
module Config = Perple_sim.Config
module Rng = Perple_util.Rng
module Ast = Perple_litmus.Ast

type outcome = Ok | Timeout | Crashed | Truncated | Unrecoverable

let outcome_name = function
  | Ok -> "ok"
  | Timeout -> "timeout"
  | Crashed -> "crashed"
  | Truncated -> "truncated"
  | Unrecoverable -> "unrecoverable"

let outcome_of_name = function
  | "ok" -> Some Ok
  | "timeout" -> Some Timeout
  | "crashed" -> Some Crashed
  | "truncated" -> Some Truncated
  | "unrecoverable" -> Some Unrecoverable
  | _ -> None

type policy = {
  watchdog_rounds : int;
  min_retired : int;
  max_retries : int;
  backoff : float;
}

let default_policy ~iterations =
  {
    watchdog_rounds = (64 * iterations) + 10_000;
    min_retired = max 1 (iterations / 100);
    max_retries = 3;
    backoff = 0.5;
  }

type attempt = {
  index : int;
  outcome : outcome;
  requested : int;
  retired : int;
  rounds : int;
  lost_stores : int;
  termination : Machine.termination;
  exn : string option;
  last_regs : int array array;
}

type supervised = {
  attempts : attempt list;
  outcome : outcome;
  run : Perpetual.run option;
  salvaged_iterations : int;
  degraded : bool;
  total_rounds : int;
}

(* Classification shared by both runners: [retired] out of [requested]
   iterations were completed before [termination] ended the attempt. *)
let classify policy ~requested ~retired (termination : Machine.termination) =
  if retired >= requested then Ok
  else if retired >= policy.min_retired then Truncated
  else
    match termination with
    | Machine.Watchdog_abort | Machine.Hung -> Timeout
    | Machine.Completed -> Crashed

(* Next attempt's iteration budget.  [ceil], not truncation: with a
   growing multiplier a budget of 1 under truncation computes
   [int_of_float 1.5 = 1] forever, and a shrinking multiplier rounds
   below the intended geometric sequence — either way the budget never
   moves as the policy says it should.  Clamped to [1, max_int]. *)
let backed_off policy budget =
  let next = Float.ceil (float_of_int budget *. policy.backoff) in
  if Float.is_nan next then 1
  else if next >= float_of_int max_int then max_int
  else max 1 (int_of_float next)

(* Observability: attempts and retries feed the ambient metrics/trace
   sinks (no-ops when none is installed).  Observation only — nothing here
   touches the RNG or the classification. *)
let note_attempt ~index ~outcome ~retired ~requested =
  (match Perple_util.Metrics.active () with
  | Some m ->
    Perple_util.Metrics.add m "supervisor.attempts" 1;
    Perple_util.Metrics.add m ("supervisor.attempts." ^ outcome_name outcome) 1
  | None -> ());
  Perple_util.Trace_event.instant ~name:"supervisor.attempt"
    ~args:
      [
        ("index", Perple_util.Trace_event.Int index);
        ("outcome", Perple_util.Trace_event.String (outcome_name outcome));
        ("retired", Perple_util.Trace_event.Int retired);
        ("requested", Perple_util.Trace_event.Int requested);
      ]
    ()

let note_retry ~budget ~next =
  Perple_util.Metrics.incr "supervisor.retries";
  Perple_util.Trace_event.instant ~name:"supervisor.backoff"
    ~args:
      [
        ("budget", Perple_util.Trace_event.Int budget);
        ("next", Perple_util.Trace_event.Int next);
      ]
    ()

let run_perpetual ?(config = Config.default) ?(stress_threads = 0) ~policy
    ~rng ~image ~t_reads ~iterations () =
  let nthreads = Array.length t_reads in
  let attempts = ref [] in
  let total_rounds = ref 0 in
  (* Best salvageable partial seen across failed attempts: if retries run
     out, its prefix is still better than nothing (checkpoint salvage). *)
  let best = ref None in
  let finish outcome run salvaged =
    {
      attempts = List.rev !attempts;
      outcome;
      run;
      salvaged_iterations = salvaged;
      degraded = salvaged < iterations;
      total_rounds = !total_rounds;
    }
  in
  let rec go index budget =
    let arng = Rng.split rng in
    let last_regs = Array.make nthreads [||] in
    let snapshot ~thread ~iteration:_ ~regs =
      (* The machine reuses [regs] across iterations: copy defensively. *)
      if thread < nthreads then last_regs.(thread) <- Array.copy regs
    in
    let watchdog ~round ~iterations:_ = round > policy.watchdog_rounds in
    let record outcome ~retired ~rounds ~lost_stores ~termination ~exn =
      note_attempt ~index ~outcome ~retired ~requested:budget;
      attempts :=
        {
          index;
          outcome;
          requested = budget;
          retired;
          rounds;
          lost_stores;
          termination;
          exn;
          last_regs;
        }
        :: !attempts
    in
    let retry_or_fail outcome =
      if index >= policy.max_retries then
        match !best with
        | Some (retired, run) ->
          finish Truncated
            (Some (Perpetual.truncate run ~iterations:retired))
            retired
        | None -> finish outcome None 0
      else begin
        let next = backed_off policy budget in
        note_retry ~budget ~next;
        go (index + 1) next
      end
    in
    match
      try
        Stdlib.Ok
          (Perpetual.run ~config ~stress_threads ~watchdog
             ~on_iteration_end:snapshot ~rng:arng ~image ~t_reads
             ~iterations:budget ())
      with e -> Stdlib.Error (Printexc.to_string e)
    with
    | Stdlib.Error msg ->
      record Crashed ~retired:0 ~rounds:0 ~lost_stores:0
        ~termination:Machine.Completed ~exn:(Some msg);
      retry_or_fail Crashed
    | Stdlib.Ok run ->
      let stats = run.Perpetual.machine in
      total_rounds := !total_rounds + run.Perpetual.virtual_runtime;
      let retired = Perpetual.retired run in
      let outcome = classify policy ~requested:budget ~retired
          stats.Machine.termination
      in
      record outcome ~retired ~rounds:stats.Machine.rounds
        ~lost_stores:stats.Machine.lost_stores
        ~termination:stats.Machine.termination ~exn:None;
      (match outcome with
      | Ok -> finish Ok (Some run) retired
      | Truncated ->
        finish Truncated
          (Some (Perpetual.truncate run ~iterations:retired))
          retired
      | Timeout | Crashed | Unrecoverable ->
        (* [classify] never yields [Unrecoverable]; grouped for totality. *)
        (match !best with
        | Some (r, _) when r >= retired -> ()
        | Some _ | None -> if retired > 0 then best := Some (retired, run));
        retry_or_fail outcome)
  in
  go 0 iterations

type litmus7_supervised = {
  l7_attempts : attempt list;
  l7_outcome : outcome;
  l7_result : Litmus7.result option;
  l7_total_rounds : int;
}

let run_litmus7 ?(config = Config.default) ?(stress_threads = 0) ~policy ~rng
    ~test ~mode ~iterations () =
  let nthreads = Ast.thread_count test in
  let attempts = ref [] in
  let total_rounds = ref 0 in
  let best = ref None in
  let finish outcome result =
    {
      l7_attempts = List.rev !attempts;
      l7_outcome = outcome;
      l7_result = result;
      l7_total_rounds = !total_rounds;
    }
  in
  let rec go index budget =
    let arng = Rng.split rng in
    let last_regs = Array.make nthreads [||] in
    let watchdog ~round ~iterations:_ = round > policy.watchdog_rounds in
    let retry_or_fail outcome =
      if index >= policy.max_retries then
        match !best with
        | Some (_, result) -> finish Truncated (Some result)
        | None -> finish outcome None
      else begin
        let next = backed_off policy budget in
        note_retry ~budget ~next;
        go (index + 1) next
      end
    in
    match
      try
        Stdlib.Ok
          (Litmus7.run ~config ~stress_threads ~watchdog ~rng:arng ~test
             ~mode ~iterations:budget ())
      with e -> Stdlib.Error (Printexc.to_string e)
    with
    | Stdlib.Error msg ->
      note_attempt ~index ~outcome:Crashed ~retired:0 ~requested:budget;
      attempts :=
        {
          index;
          outcome = Crashed;
          requested = budget;
          retired = 0;
          rounds = 0;
          lost_stores = 0;
          termination = Machine.Completed;
          exn = Some msg;
          last_regs;
        }
        :: !attempts;
      retry_or_fail Crashed
    | Stdlib.Ok result ->
      let stats = result.Litmus7.machine in
      total_rounds := !total_rounds + result.Litmus7.virtual_runtime;
      let retired = result.Litmus7.retired in
      let outcome =
        classify policy ~requested:budget ~retired stats.Machine.termination
      in
      note_attempt ~index ~outcome ~retired ~requested:budget;
      attempts :=
        {
          index;
          outcome;
          requested = budget;
          retired;
          rounds = stats.Machine.rounds;
          lost_stores = stats.Machine.lost_stores;
          termination = stats.Machine.termination;
          exn = None;
          last_regs;
        }
        :: !attempts;
      (match outcome with
      | Ok -> finish Ok (Some result)
      | Truncated -> finish Truncated (Some result)
      | Timeout | Crashed | Unrecoverable ->
        (match !best with
        | Some (r, _) when r >= retired -> ()
        | Some _ | None -> if retired > 0 then best := Some (retired, result));
        retry_or_fail outcome)
  in
  go 0 iterations

module Machine = Perple_sim.Machine

type t = User | Userfence | Pthread | Timebase | None_mode

let all = [ User; Userfence; Pthread; Timebase; None_mode ]

let name = function
  | User -> "user"
  | Userfence -> "userfence"
  | Pthread -> "pthread"
  | Timebase -> "timebase"
  | None_mode -> "none"

let of_name = function
  | "user" -> Some User
  | "userfence" -> Some Userfence
  | "pthread" -> Some Pthread
  | "timebase" -> Some Timebase
  | "none" -> Some None_mode
  | _ -> None

(* Calibrated so that the virtual-runtime ratios between modes match the
   ordering and rough magnitudes of the paper's Fig 10 (pthread slowest by
   an order of magnitude, timebase ~2x user, userfence ~ user, none
   fastest) and so that synchronisation dominates user-mode runtime. *)
let barrier = function
  | User -> Machine.Every_iteration { cost = 15; max_release_skew = 50 }
  | Userfence -> Machine.Every_iteration { cost = 18; max_release_skew = 42 }
  | Pthread -> Machine.Every_iteration { cost = 700; max_release_skew = 600 }
  | Timebase -> Machine.Every_iteration { cost = 110; max_release_skew = 10 }
  | None_mode -> Machine.No_barrier

let iteration_overhead = 6

(** Regeneration of the paper's Table II: the perpetual litmus suite with
    [\[T, T_L\]] signatures, split into target-outcome-allowed and
    -forbidden groups — with the classification recomputed from scratch by
    the {!Perple_memmodel} checkers rather than copied from the catalog. *)

type row = {
  name : string;
  t : int;
  t_l : int;
  allowed_tso : bool;  (** Computed by the operational checker. *)
  allowed_axiomatic : bool;  (** Computed by the axiomatic checker. *)
  allowed_pso : bool;
      (** Under the PSO extension (weaker-model support, Sec IX). *)
  matches_catalog : bool;  (** Agreement with Table II's grouping. *)
  convertible : bool;
}

val rows : unit -> row list

val render : unit -> string
(** The table plus a verdict line counting mismatches (expected: none). *)

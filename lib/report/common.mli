(** Shared infrastructure for the experiment drivers: the tool lineup the
    paper compares (PerpLE with either counter, litmus7 in five modes), and
    uniform per-test execution producing target counts and virtual
    runtimes. *)

module Ast := Perple_litmus.Ast
module Outcome := Perple_litmus.Outcome

type tool =
  | Perple of Perple_core.Engine.counter
  | Litmus7 of Perple_harness.Sync_mode.t

val tools : tool list
(** PerpLE exhaustive, PerpLE heuristic, then litmus7 user / userfence /
    pthread / timebase / none. *)

val litmus7_tools : tool list
val tool_name : tool -> string

type params = {
  seed : int;
  iterations : int;  (** [N] for Fig 9 / Fig 10 (paper: 10k). *)
  exhaustive_cap : int;
      (** Max frames for the exhaustive counter; [N] is shrunk to fit
          (documented substitution — the paper runs N^3 on a cluster). *)
  sweep : int list;  (** Iteration counts for Fig 11 (paper: 100..100M). *)
  variety_iterations : int;  (** Fig 13 (paper: 1k). *)
  skew_iterations : int;  (** Fig 12 (paper: 100k). *)
}

val default_params : params
(** Paper-scale where feasible: N=10k, sweep to 1M, exhaustive capped at
    2.5e8 frames. *)

val quick_params : params
(** Small counts for smoke runs and the bench executable's default mode. *)

type tool_result = {
  tool : tool;
  iterations_used : int;
      (** May be smaller than requested for the exhaustive counter. *)
  target_count : int;
  virtual_runtime : int;  (** Execution + counting, virtual rounds. *)
  detection_rate : float;  (** Target occurrences per Mrounds. *)
}

val run_tool :
  ?config:Perple_sim.Config.t ->
  params:params -> iterations:int -> test:Ast.t -> tool -> tool_result
(** Runs one tool on one test.  The seed is derived from [params.seed], the
    tool and the test name, so every (tool, test) pair gets an independent
    but reproducible stream. *)

val target_of : Ast.t -> Outcome.t
(** The test's target outcome (partial); raises on non-convertible
    conditions — callers only pass suite tests. *)

val seed_for : params -> string -> int
(** Stable per-test seed derivation. *)

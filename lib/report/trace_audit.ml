module Catalog = Perple_litmus.Catalog
module Config = Perple_sim.Config
module Convert = Perple_core.Convert
module Trace_check = Perple_core.Trace_check
module Solver = Perple_memmodel.Solver
module Operational = Perple_memmodel.Operational
module Perpetual = Perple_harness.Perpetual
module Rng = Perple_util.Rng
module Table = Perple_util.Table

(* Whole-trace audit: instead of classifying per-iteration outcomes, run
   each machine configuration perpetually and verify the {e entire} trace
   against its specification model with the solver backend.  Clean
   machines must verify on every test; the planted bug configurations
   must be caught (their specification is honest TSO).  This is the
   report-level use of {!Trace_check} — the cross-validation instrument
   the per-iteration outcome view cannot provide, since it never sees
   inter-iteration orderings. *)

let tests = [ "sb"; "mp"; "lb"; "amd5"; "mp+fences"; "n5"; "iriw" ]

let configs =
  [ Config.Sc; Config.Tso; Config.Pso; Config.Tso_store_reorder;
    Config.Tso_fence_ignored ]

type cell = {
  verdict : Solver.verdict;
  caught_expected : bool;  (* a bug config that should eventually trip *)
}

let audit_one (params : Common.params) ~config ~test_name =
  let test = Catalog.find_exn test_name in
  let conv = Result.get_ok (Convert.convert test) in
  let iterations = max 1 (params.Common.variety_iterations / 2) in
  let rng =
    Rng.create
      (Common.seed_for params
         ("trace-audit/" ^ Config.model_name config ^ "/" ^ test_name))
  in
  let run =
    Perpetual.run
      ~config:(Config.with_model config Config.default)
      ~rng ~image:conv.Convert.image ~t_reads:conv.Convert.t_reads
      ~iterations ()
  in
  let model = Trace_check.spec_model config in
  let verdict = Trace_check.verify ~model conv run in
  {
    verdict;
    caught_expected =
      (match config with
      | Config.Tso_store_reorder | Config.Tso_fence_ignored -> true
      | Config.Sc | Config.Tso | Config.Pso -> false);
  }

let render params =
  let table =
    Table.create ~headers:("machine" :: "spec" :: tests)
  in
  let clean_violations = ref 0 in
  let bug_catches = ref 0 in
  List.iter
    (fun config ->
      let cells =
        List.map (fun test_name -> audit_one params ~config ~test_name) tests
      in
      Table.add_row table
        (Config.model_name config
        :: Operational.model_to_string (Trace_check.spec_model config)
        :: List.map
             (fun c ->
               if c.verdict.Solver.consistent then
                 Printf.sprintf "ok/%d" c.verdict.Solver.events
               else begin
                 if c.caught_expected then incr bug_catches
                 else incr clean_violations;
                 "VIOLATION"
               end)
             cells))
    configs;
  Printf.sprintf
    "Trace audit: whole perpetual traces verified by the solver backend\n\
     (cells: ok/<events> or VIOLATION against the specification model)\n%s\n\
     clean machines: %s; planted bugs caught on %d test(s)\n\
     paper shape: clean rows all verify; the bug rows show VIOLATION \
     where their deviation is observable\n"
    (Table.to_string table)
    (if !clean_violations = 0 then "all traces verify"
     else Printf.sprintf "%d UNEXPECTED VIOLATIONS" !clean_violations)
    !bug_catches

module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Table = Perple_util.Table
module Stats = Perple_util.Stats

type cell = {
  mean_improvement : float;
  tests_counted : int;
  tool_nonzero : int;
}

type point = {
  iterations : int;
  cells : (string * cell) list;
  user_nonzero : int;
}

(* The exhaustive counter is excluded from the sweep: the paper's Fig 11
   compares the practical tools (Sec VII-B drops the exhaustive counter
   before this experiment). *)
let sweep_tools =
  List.filter
    (fun t -> Common.tool_name t <> "perple-exh")
    Common.tools

let sweep (params : Common.params) =
  let allowed_tests =
    List.map (fun (e : Catalog.entry) -> e.Catalog.test) Catalog.allowed
  in
  List.map
    (fun iterations ->
      let per_test =
        List.map
          (fun test ->
            let results =
              List.map
                (fun tool ->
                  ( Common.tool_name tool,
                    Common.run_tool ~params ~iterations ~test tool ))
                sweep_tools
            in
            (test.Ast.name, results))
          allowed_tests
      in
      let user_rate results =
        (List.assoc "litmus7-user" results).Common.detection_rate
      in
      let user_nonzero =
        List.length
          (List.filter (fun (_, results) -> user_rate results > 0.0) per_test)
      in
      let cells =
        List.filter_map
          (fun tool ->
            let name = Common.tool_name tool in
            if name = "litmus7-user" then None
            else (
              let ratios =
                List.filter_map
                  (fun (_, results) ->
                    let base = user_rate results in
                    if base <= 0.0 then None
                    else
                      Some
                        ((List.assoc name results).Common.detection_rate
                        /. base))
                  per_test
              in
              let tool_nonzero =
                List.length
                  (List.filter
                     (fun (_, results) ->
                       (List.assoc name results).Common.detection_rate > 0.0)
                     per_test)
              in
              Some
                ( name,
                  {
                    mean_improvement = Stats.mean (Array.of_list ratios);
                    tests_counted = List.length ratios;
                    tool_nonzero;
                  } )))
          sweep_tools
      in
      { iterations; cells; user_nonzero })
    params.Common.sweep

let render params =
  let points = sweep params in
  let tool_names = List.filter_map
      (fun t ->
        let n = Common.tool_name t in
        if n = "litmus7-user" then None else Some n)
      sweep_tools
  in
  let table =
    Table.create ~headers:("iterations" :: "user>0" :: tool_names)
  in
  Table.set_align table 0 Table.Right;
  Table.set_align table 1 Table.Right;
  List.iteri (fun i _ -> Table.set_align table (i + 2) Table.Right) tool_names;
  List.iter
    (fun p ->
      Table.add_row table
        (string_of_int p.iterations
         :: Printf.sprintf "%d/%d" p.user_nonzero
              (List.length Catalog.allowed)
         :: List.map
              (fun n ->
                let c = List.assoc n p.cells in
                if c.tests_counted = 0 then
                  Printf.sprintf "n/a (%d>0)" c.tool_nonzero
                else
                  Printf.sprintf "%s (%d>0)"
                    (Table.ratio_cell c.mean_improvement)
                    c.tool_nonzero)
              tool_names))
    points;
  Printf.sprintf
    "Fig 11: mean target-outcome detection-rate improvement over \
     litmus7-user,\nallowed-target tests only; '(k>0)' counts tests where \
     the tool's own rate was nonzero.\n\
     Tests with a zero user baseline are omitted from the mean (paper, Sec \
     VII-C).\n%s\n\
     paper: PerpLE-heur between 24x and 31000x at 10k iterations; at least \
     four orders of magnitude over user at every iteration count\n"
    (Table.to_string table)

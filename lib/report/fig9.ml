module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Table = Perple_util.Table

type row = {
  name : string;
  allowed : bool;
  results : Common.tool_result list;
}

let rows (params : Common.params) =
  List.map
    (fun (e : Catalog.entry) ->
      let test = e.Catalog.test in
      {
        name = test.Ast.name;
        allowed = e.Catalog.classification = Catalog.Allowed;
        results =
          List.map
            (Common.run_tool ~params ~iterations:params.Common.iterations
               ~test)
            Common.tools;
      })
    Catalog.suite

let shape_violations rows =
  let violations = ref [] in
  List.iter
    (fun r ->
      let by_name name =
        List.find
          (fun (res : Common.tool_result) ->
            Common.tool_name res.Common.tool = name)
          r.results
      in
      let exh = by_name "perple-exh" and heur = by_name "perple-heur" in
      if not r.allowed then
        List.iter
          (fun (res : Common.tool_result) ->
            if res.Common.target_count > 0 then
              violations :=
                Printf.sprintf "%s: forbidden target observed by %s" r.name
                  (Common.tool_name res.Common.tool)
                :: !violations)
          r.results
      else begin
        if exh.Common.target_count = 0 then
          violations := (r.name ^ ": allowed target missed by perple-exh") :: !violations;
        if heur.Common.target_count = 0 then
          violations := (r.name ^ ": allowed target missed by perple-heur") :: !violations;
        (* litmus7 beating the exhaustive counter would contradict Fig 9. *)
        List.iter
          (fun (res : Common.tool_result) ->
            match res.Common.tool with
            | Common.Litmus7 _ ->
              if res.Common.target_count > exh.Common.target_count then
                violations :=
                  Printf.sprintf "%s: %s beats perple-exh" r.name
                    (Common.tool_name res.Common.tool)
                  :: !violations
            | Common.Perple _ -> ())
          r.results
      end)
    rows;
  List.rev !violations

let render params =
  let rows = rows params in
  let table =
    Table.create
      ~headers:
        ("test" :: "tso"
        :: List.map Common.tool_name Common.tools)
  in
  List.iteri (fun i _ -> Table.set_align table (i + 2) Table.Right) Common.tools;
  List.iter
    (fun r ->
      Table.add_row table
        (r.name
         :: (if r.allowed then "A" else "F")
         :: List.map
              (fun (res : Common.tool_result) ->
                string_of_int res.Common.target_count)
              r.results))
    rows;
  let violations = shape_violations rows in
  Printf.sprintf
    "Fig 9: target outcome occurrences, %d iterations (exhaustive capped to \
     %d frames)\n%s\nshape violations: %s\n"
    params.Common.iterations params.Common.exhaustive_cap
    (Table.to_string table)
    (match violations with [] -> "none" | v -> String.concat "; " v)

(** Whole-trace audit table: perpetual runs of selected catalog tests on
    every machine configuration, each full trace verified against its
    specification model by {!Perple_core.Trace_check}.  Clean machines
    must verify everywhere; the planted bug configurations show
    VIOLATION on the tests where their deviation is observable. *)

val render : Common.params -> string

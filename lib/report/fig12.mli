(** Fig 12: probability density of the thread-execution skew between the
    two threads of the perpetual [sb] test (paper: 100k iterations).

    Skew is measured exactly as the paper does — by decoding loaded values
    back to the storing thread's iteration index — and cross-checked against
    the machine's ground-truth iteration counters sampled during the run.
    Shape targets: a wide distribution (far wider than one iteration),
    densest near zero. *)

type result = {
  histogram : Perple_util.Stats.Histogram.t;
  mean : float;
  stddev : float;
  min_skew : int;
  max_skew : int;
  ground_truth_stddev : float;
      (** From periodic machine samples of per-thread iteration counters. *)
}

val measure : ?test_name:string -> Common.params -> result

val render : Common.params -> string

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Engine = Perple_core.Engine
module Sync_mode = Perple_harness.Sync_mode
module Litmus7 = Perple_harness.Litmus7
module Rng = Perple_util.Rng

type tool = Perple of Engine.counter | Litmus7 of Sync_mode.t

let litmus7_tools = List.map (fun m -> Litmus7 m) Sync_mode.all

(* The report layer reproduces the paper's cost comparisons, so its
   "perple-exh" is the reference odometer: the factorized kernel would
   (deliberately) erase the Algorithm-1-vs-Algorithm-2 runtime gap that
   Fig 10 exists to show.  Counts are byte-identical either way. *)
let tools =
  Perple Engine.Exhaustive_reference :: Perple Engine.Heuristic
  :: litmus7_tools

let tool_name = function
  | Perple (Engine.Exhaustive | Engine.Exhaustive_reference) -> "perple-exh"
  | Perple Engine.Heuristic -> "perple-heur"
  | Litmus7 mode -> "litmus7-" ^ Sync_mode.name mode

type params = {
  seed : int;
  iterations : int;
  exhaustive_cap : int;
  sweep : int list;
  variety_iterations : int;
  skew_iterations : int;
}

let default_params =
  {
    seed = 20200613;
    iterations = 10_000;
    exhaustive_cap = 250_000_000;
    sweep = [ 100; 1_000; 10_000; 100_000; 1_000_000 ];
    variety_iterations = 1_000;
    skew_iterations = 100_000;
  }

let quick_params =
  {
    seed = 20200613;
    iterations = 2_000;
    exhaustive_cap = 4_000_000;
    sweep = [ 100; 1_000; 10_000 ];
    variety_iterations = 1_000;
    skew_iterations = 20_000;
  }

type tool_result = {
  tool : tool;
  iterations_used : int;
  target_count : int;
  virtual_runtime : int;
  detection_rate : float;
}

let target_of test =
  match Outcome.of_condition test with
  | Ok o -> o
  | Error m -> invalid_arg ("Common.target_of: " ^ m)

let seed_for params name =
  (* Stable string hash folded with the base seed. *)
  let h = ref (params.seed land 0x3FFFFFFF) in
  String.iter (fun c -> h := (!h * 131) + Char.code c) name;
  !h land max_int

let run_tool ?config ~params ~iterations ~test tool =
  let seed = seed_for params (tool_name tool ^ "/" ^ test.Ast.name) in
  match tool with
  | Perple counter ->
    let report =
      Result.get_ok
        (Engine.run ?config ~counter ~seed ~iterations
           ~exhaustive_cap:params.exhaustive_cap test)
    in
    let count = Engine.target_count report in
    {
      tool;
      iterations_used = report.Engine.run.Perple_harness.Perpetual.iterations;
      target_count = count;
      virtual_runtime = report.Engine.virtual_runtime;
      detection_rate = Engine.detection_rate report;
    }
  | Litmus7 mode ->
    let rng = Rng.create seed in
    let result = Litmus7.run ?config ~rng ~test ~mode ~iterations () in
    (* Conditions over final memory (non-convertible tests in the 88-test
       campaign) are not tracked by the register histogram; they count as
       zero here — only runtimes of those tests matter to Sec VII-G. *)
    let count =
      match Outcome.of_condition test with
      | Ok target -> Litmus7.count result ~partial:target
      | Error _ -> 0
    in
    {
      tool;
      iterations_used = iterations;
      target_count = count;
      virtual_runtime = result.Litmus7.virtual_runtime;
      detection_rate =
        (if result.Litmus7.virtual_runtime = 0 then 0.0
         else
           float_of_int count
           /. float_of_int result.Litmus7.virtual_runtime
           *. 1_000_000.0);
    }

module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Convert = Perple_core.Convert
module Outcome_convert = Perple_core.Outcome_convert
module Count = Perple_core.Count
module Engine = Perple_core.Engine
module Perpetual = Perple_harness.Perpetual
module Rng = Perple_util.Rng
module Table = Perple_util.Table

type row = {
  name : string;
  iterations : int;
  exhaustive_count : int;
  heuristic_count : int;
  accurate : bool;
}

let rows (params : Common.params) =
  List.map
    (fun (e : Catalog.entry) ->
      let test = e.Catalog.test in
      let conv = Result.get_ok (Convert.convert test) in
      let tl = Array.length conv.Convert.load_threads in
      let iterations =
        Engine.exhaustive_iterations_cap ~tl ~cap:params.Common.exhaustive_cap
          ~requested:params.Common.iterations
      in
      let rng =
        Rng.create (Common.seed_for params ("accuracy/" ^ test.Ast.name))
      in
      let run =
        Perpetual.run ~rng ~image:conv.Convert.image
          ~t_reads:conv.Convert.t_reads ~iterations ()
      in
      let target =
        Result.get_ok (Outcome_convert.convert conv (Common.target_of test))
      in
      let exh = Count.exhaustive conv ~outcomes:[ target ] ~run in
      let heur = Count.heuristic_auto conv ~outcomes:[ target ] ~run in
      let exhaustive_count = exh.Count.counts.(0) in
      let heuristic_count = heur.Count.counts.(0) in
      {
        name = test.Ast.name;
        iterations;
        exhaustive_count;
        heuristic_count;
        accurate = exhaustive_count > 0 = (heuristic_count > 0);
      })
    Catalog.suite

let render params =
  let rows = rows params in
  let table =
    Table.create ~headers:[ "test"; "N"; "exhaustive"; "heuristic"; "accurate" ]
  in
  List.iter (fun i -> Table.set_align table i Table.Right) [ 1; 2; 3 ];
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          string_of_int r.iterations;
          string_of_int r.exhaustive_count;
          string_of_int r.heuristic_count;
          (if r.accurate then "yes" else "NO");
        ])
    rows;
  let inaccurate = List.filter (fun r -> not r.accurate) rows in
  Printf.sprintf
    "Sec VII-D: heuristic accuracy (same run, both counters)\n%s\n\
     inaccurate tests: %d (paper: 0)\n"
    (Table.to_string table)
    (List.length inaccurate)

(** Fig 10: testing runtime (execution + outcome counting) relative to
    litmus7 in [user] mode, per suite test and as geometric means.

    Paper values for reference: PerpLE-heuristic is 8.89x faster than
    [user], 17.56x than [timebase], 8.85x than [userfence], 2.52x than
    [none] and 161.35x than [pthread]; the heuristic counter beats the
    exhaustive one by a 305x geomean.  Our virtual-clock model is expected
    to reproduce the ordering and rough magnitudes, not the exact ratios. *)

type row = {
  name : string;
  runtimes : (string * int) list;  (** tool name -> virtual runtime. *)
  speedup_vs_user : (string * float) list;
      (** tool name -> user_runtime / tool_runtime (higher = faster). *)
}

type summary = {
  rows : row list;
  geomean_speedups : (string * float) list;
      (** Geomean across tests of each tool's speedup over [user]. *)
  heur_over_exh : float;  (** Geomean heuristic-vs-exhaustive speedup. *)
}

val summarize : Common.params -> summary

val render : Common.params -> string

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Catalog = Perple_litmus.Catalog
module Convert = Perple_core.Convert
module OC = Perple_core.Outcome_convert
module Count = Perple_core.Count
module Engine = Perple_core.Engine
module Perpetual = Perple_harness.Perpetual
module Machine = Perple_sim.Machine
module Program = Perple_sim.Program
module Rng = Perple_util.Rng
module Table = Perple_util.Table

type coverage_row = {
  name : string;
  iterations : int;
  exhaustive : int;
  heuristic : int;
  coverage : float;
}

let heuristic_coverage (params : Common.params) =
  List.map
    (fun (e : Catalog.entry) ->
      let test = e.Catalog.test in
      let conv = Result.get_ok (Convert.convert test) in
      let tl = Array.length conv.Convert.load_threads in
      let iterations =
        Engine.exhaustive_iterations_cap ~tl
          ~cap:params.Common.exhaustive_cap
          ~requested:params.Common.iterations
      in
      let rng =
        Rng.create (Common.seed_for params ("ablation/" ^ test.Ast.name))
      in
      let run =
        Perpetual.run ~rng ~image:conv.Convert.image
          ~t_reads:conv.Convert.t_reads ~iterations ()
      in
      let target =
        Result.get_ok (OC.convert conv (Common.target_of test))
      in
      let exhaustive =
        (Count.exhaustive conv ~outcomes:[ target ] ~run).Count.counts.(0)
      in
      let heuristic =
        (Count.heuristic_auto conv ~outcomes:[ target ] ~run).Count.counts.(0)
      in
      {
        name = test.Ast.name;
        iterations;
        exhaustive;
        heuristic;
        coverage =
          (if exhaustive = 0 then 1.0
           else float_of_int heuristic /. float_of_int exhaustive);
      })
    Catalog.allowed

type exactness_row = {
  name : string;
  with_exact : int;
  without_exact : int;
}

(* Tests whose targets involve a load preceded by an own store to the same
   location: the cases the strengthening protects. *)
let coherence_tests = [ "n5"; "amd10" ]

let exactness (params : Common.params) =
  List.map
    (fun name ->
      let test = Catalog.find_exn name in
      let conv = Result.get_ok (Convert.convert test) in
      let rng =
        Rng.create (Common.seed_for params ("ablation-exact/" ^ name))
      in
      let run =
        Perpetual.run ~rng ~image:conv.Convert.image
          ~t_reads:conv.Convert.t_reads ~iterations:params.Common.iterations
          ()
      in
      let count ~own_store_exact =
        let target =
          Result.get_ok
            (OC.convert ~own_store_exact conv (Common.target_of test))
        in
        (Count.exhaustive_independent conv ~outcomes:[ target ] ~run)
          .Count.counts.(0)
      in
      {
        name;
        with_exact = count ~own_store_exact:true;
        without_exact = count ~own_store_exact:false;
      })
    coherence_tests

type skew_row = { max_release_skew : int; target_count : int }

let barrier_alignment (params : Common.params) =
  let test = Catalog.sb in
  let target = Common.target_of test in
  List.map
    (fun max_release_skew ->
      let image = Program.compile_litmus test in
      let loads = Outcome.loads test in
      let nloads = List.length loads in
      let values =
        Array.init nloads (fun _ -> Array.make params.Common.iterations 0)
      in
      let loads_arr = Array.of_list loads in
      let rng =
        Rng.create
          (Common.seed_for params
             (Printf.sprintf "ablation-skew/%d" max_release_skew))
      in
      ignore
        (Machine.run ~config:Perple_sim.Config.default ~rng ~image
           ~iterations:params.Common.iterations
           ~barrier:(Machine.Every_iteration { cost = 15; max_release_skew })
           ~on_iteration_end:(fun ~thread ~iteration ~regs ->
             Array.iteri
               (fun i (t, reg, _) ->
                 if t = thread then values.(i).(iteration) <- regs.(reg))
               loads_arr)
           ());
      let target_count = ref 0 in
      for n = 0 to params.Common.iterations - 1 do
        let hit =
          List.for_all
            (fun (b : Outcome.binding) ->
              let rec slot i =
                let t, reg, _ = loads_arr.(i) in
                if t = b.Outcome.thread && reg = b.Outcome.reg then i
                else slot (i + 1)
              in
              values.(slot 0).(n) = b.Outcome.value)
            target
        in
        if hit then incr target_count
      done;
      { max_release_skew; target_count = !target_count })
    [ 0; 5; 10; 20; 50; 100; 200; 400; 800 ]

type stress_row = {
  stress_threads : int;
  perple_count : int;
  litmus7_count : int;
}

let stress_sensitivity (params : Common.params) =
  let test = Catalog.sb in
  let target = Common.target_of test in
  List.map
    (fun stress_threads ->
      let seed k =
        Common.seed_for params (Printf.sprintf "stress/%s/%d" k stress_threads)
      in
      let perple_count =
        Engine.target_count
          (Result.get_ok
             (Engine.run ~stress_threads ~seed:(seed "perple")
                ~iterations:params.Common.iterations test))
      in
      let litmus7_count =
        let result =
          Perple_harness.Litmus7.run ~stress_threads
            ~rng:(Rng.create (seed "litmus7"))
            ~test ~mode:Perple_harness.Sync_mode.User
            ~iterations:params.Common.iterations ()
        in
        Perple_harness.Litmus7.count result ~partial:target
      in
      { stress_threads; perple_count; litmus7_count })
    [ 0; 2; 4; 8 ]

let render params =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Ablation 1: heuristic coverage of exhaustive hits\n";
  let t1 =
    Table.create ~headers:[ "test"; "N"; "exhaustive"; "heuristic"; "coverage" ]
  in
  List.iter (fun i -> Table.set_align t1 i Table.Right) [ 1; 2; 3; 4 ];
  List.iter
    (fun (r : coverage_row) ->
      Table.add_row t1
        [
          r.name;
          string_of_int r.iterations;
          string_of_int r.exhaustive;
          string_of_int r.heuristic;
          Printf.sprintf "%.4f" r.coverage;
        ])
    (heuristic_coverage params);
  Buffer.add_string buf (Table.to_string t1);
  Buffer.add_string buf
    "\nAblation 2: coherence strengthening (forbidden targets; counts \
     should be 0)\n";
  let t2 = Table.create ~headers:[ "test"; "exact rf"; "bare >= rf" ] in
  List.iter (fun i -> Table.set_align t2 i Table.Right) [ 1; 2 ];
  List.iter
    (fun (r : exactness_row) ->
      Table.add_row t2
        [ r.name; string_of_int r.with_exact; string_of_int r.without_exact ])
    (exactness params);
  Buffer.add_string buf (Table.to_string t2);
  Buffer.add_string buf
    "(a nonzero bare->= column is a false positive the strengthened rule \
     removes)\n";
  Buffer.add_string buf
    "\nAblation 3: litmus7 target detection vs barrier release skew (sb, \
     fixed cost)\n";
  let t3 = Table.create ~headers:[ "max skew"; "target occurrences" ] in
  Table.set_align t3 0 Table.Right;
  Table.set_align t3 1 Table.Right;
  List.iter
    (fun (r : skew_row) ->
      Table.add_row t3
        [ string_of_int r.max_release_skew; string_of_int r.target_count ])
    (barrier_alignment params);
  Buffer.add_string buf (Table.to_string t3);
  Buffer.add_string buf
    "(tighter release alignment -> more same-iteration interaction; why \
     timebase leads litmus7 modes)\n";
  Buffer.add_string buf
    "\nAblation 4: stress threads (sb target occurrences; paper Sec II-B1)\n";
  let t4 =
    Table.create ~headers:[ "stress threads"; "perple-heur"; "litmus7-user" ]
  in
  List.iter (fun i -> Table.set_align t4 i Table.Right) [ 0; 1; 2 ];
  List.iter
    (fun (r : stress_row) ->
      Table.add_row t4
        [
          string_of_int r.stress_threads;
          string_of_int r.perple_count;
          string_of_int r.litmus7_count;
        ])
    (stress_sensitivity params);
  Buffer.add_string buf (Table.to_string t4);
  Buffer.contents buf

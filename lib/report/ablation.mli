(** Ablation studies for the design choices DESIGN.md calls out.

    Three questions the paper leaves implicit, answered empirically on the
    simulated substrate:

    - {b Heuristic coverage}: what fraction of the target occurrences the
      exhaustive counter finds does the linear heuristic's single pass
      recover, per allowed test?  (Justifies Algorithm 2: the paper shows
      it stays orders of magnitude ahead of litmus7 despite sampling [N]
      of [N^{T_L}] frames.)
    - {b Coherence strengthening}: with the bare [>=] reads-from rule of
      the paper's step 4 (no own-store equality), do coherence-forbidden
      targets ([n5], [co-iriw]-style) produce false positives on correct
      TSO hardware?  (Motivates this implementation's [exact] rf rule.)
    - {b Barrier alignment}: how does litmus7's target-detection ability
      vary with barrier release skew, at fixed cost?  (Explains the
      ordering of sync modes in Figs 9/13: tighter alignment = more
      interaction.) *)

type coverage_row = {
  name : string;
  iterations : int;
  exhaustive : int;
  heuristic : int;
  coverage : float;  (** heuristic / exhaustive, 1.0 when both zero. *)
}

val heuristic_coverage : Common.params -> coverage_row list

type exactness_row = {
  name : string;
  with_exact : int;  (** Target count, strengthened rule (sound). *)
  without_exact : int;  (** Target count, bare [>=] rule. *)
}

val exactness : Common.params -> exactness_row list
(** Over the coherence-sensitive forbidden tests; [without_exact > 0]
    demonstrates the false positives the strengthening removes. *)

type skew_row = { max_release_skew : int; target_count : int }

val barrier_alignment : Common.params -> skew_row list
(** sb target occurrences under a barrier of fixed cost and varying
    release skew. *)

type stress_row = {
  stress_threads : int;
  perple_count : int;
  litmus7_count : int;
}

val stress_sensitivity : Common.params -> stress_row list
(** sb target occurrences with 0..8 stress threads (paper, Sec II-B1)
    hammering scratch locations, for PerpLE-heuristic and litmus7-user. *)

val render : Common.params -> string

let ids =
  [
    "table2"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "accuracy";
    "overall"; "ablation"; "trace-audit";
  ]

let run params = function
  | "table2" -> Ok (Table_ii.render ())
  | "fig9" -> Ok (Fig9.render params)
  | "fig10" -> Ok (Fig10.render params)
  | "fig11" -> Ok (Fig11.render params)
  | "fig12" -> Ok (Fig12.render params)
  | "fig13" -> Ok (Fig13.render params)
  | "accuracy" -> Ok (Accuracy.render params)
  | "overall" -> Ok (Overall.render params)
  | "ablation" -> Ok (Ablation.render params)
  | "trace-audit" -> Ok (Trace_audit.render params)
  | id ->
    Error
      (Printf.sprintf "unknown experiment %S (known: %s)" id
         (String.concat ", " ids))

let run_all params =
  List.map (fun id -> (id, Result.get_ok (run params id))) ids

(** Sec VII-D: heuristic outcome counter accuracy.

    For each suite test, the exhaustive and heuristic counters run over the
    {e same} perpetual run; the heuristic is accurate for a test when it
    finds the target outcome iff the exhaustive counter does (not
    necessarily the same number of times).  The paper reports perfect
    accuracy; additionally, by construction every heuristic hit corresponds
    to a frame the exhaustive predicate accepts, which the property tests
    check directly. *)

type row = {
  name : string;
  iterations : int;
  exhaustive_count : int;
  heuristic_count : int;
  accurate : bool;
}

val rows : Common.params -> row list

val render : Common.params -> string

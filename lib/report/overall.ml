module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Stats = Perple_util.Stats
module Engine = Perple_core.Engine

let allowed_names =
  List.map (fun (e : Catalog.entry) -> e.Catalog.test.Ast.name) Catalog.allowed

type summary = {
  total_tests : int;
  convertible : int;
  baseline_runtime : int;
  mixed_runtime : int;
  campaign_speedup : float;
  mean_detection_improvement : float;
  perple_only : int;
}

let summarize (params : Common.params) =
  let iterations = params.Common.iterations in
  let campaign = Catalog.extended_88 in
  let results =
    List.map
      (fun (test, convertible) ->
        let user =
          Common.run_tool ~params ~iterations ~test
            (Common.Litmus7 Perple_harness.Sync_mode.User)
        in
        let perple =
          if convertible then
            Some
              (Common.run_tool ~params ~iterations ~test
                 (Common.Perple Engine.Heuristic))
          else None
        in
        (test, convertible, user, perple))
      campaign
  in
  let baseline_runtime =
    List.fold_left
      (fun acc (_, _, user, _) -> acc + user.Common.virtual_runtime)
      0 results
  in
  let mixed_runtime =
    List.fold_left
      (fun acc (_, _, user, perple) ->
        acc
        + (match perple with
          | Some p -> p.Common.virtual_runtime
          | None -> user.Common.virtual_runtime))
      0 results
  in
  let convertible_allowed =
    List.filter
      (fun (test, convertible, _, _) ->
        convertible && List.mem test.Ast.name allowed_names)
      results
  in
  let improvements =
    List.filter_map
      (fun (_, _, user, perple) ->
        match perple with
        | Some p when user.Common.detection_rate > 0.0 ->
          Some (p.Common.detection_rate /. user.Common.detection_rate)
        | Some _ | None -> None)
      convertible_allowed
  in
  let perple_only =
    List.length
      (List.filter
         (fun (_, _, user, perple) ->
           match perple with
           | Some p ->
             user.Common.detection_rate = 0.0
             && p.Common.detection_rate > 0.0
           | None -> false)
         convertible_allowed)
  in
  {
    total_tests = List.length campaign;
    convertible =
      List.length (List.filter (fun (_, c) -> c) campaign);
    baseline_runtime;
    mixed_runtime;
    campaign_speedup =
      float_of_int baseline_runtime /. float_of_int (max 1 mixed_runtime);
    mean_detection_improvement = Stats.mean (Array.of_list improvements);
    perple_only;
  }

let render params =
  let s = summarize params in
  Printf.sprintf
    "Sec VII-G: overall campaign impact, %d iterations per test\n\
     tests: %d total, %d convertible via PerpLE, %d via litmus7 only\n\
     baseline (all litmus7-user) runtime: %d rounds\n\
     mixed (PerpLE for convertible)  runtime: %d rounds\n\
     campaign speedup: %s   (paper: 1.47x)\n\
     mean detection-rate improvement on convertible allowed tests: %s \
     (paper: >20000x), plus %d tests only PerpLE detects\n"
    params.Common.iterations s.total_tests s.convertible
    (s.total_tests - s.convertible)
    s.baseline_runtime s.mixed_runtime
    (Perple_util.Table.ratio_cell s.campaign_speedup)
    (Perple_util.Table.ratio_cell s.mean_detection_improvement)
    s.perple_only

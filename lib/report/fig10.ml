module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Table = Perple_util.Table
module Stats = Perple_util.Stats

type row = {
  name : string;
  runtimes : (string * int) list;
  speedup_vs_user : (string * float) list;
}

type summary = {
  rows : row list;
  geomean_speedups : (string * float) list;
  heur_over_exh : float;
}

let summarize (params : Common.params) =
  let rows =
    List.map
      (fun (e : Catalog.entry) ->
        let test = e.Catalog.test in
        let results =
          List.map
            (fun tool ->
              let r =
                Common.run_tool ~params ~iterations:params.Common.iterations
                  ~test tool
              in
              (Common.tool_name tool, r))
            Common.tools
        in
        let runtimes =
          List.map (fun (n, r) -> (n, r.Common.virtual_runtime)) results
        in
        let user = List.assoc "litmus7-user" runtimes in
        let speedup_vs_user =
          List.map
            (fun (n, rt) -> (n, float_of_int user /. float_of_int (max 1 rt)))
            runtimes
        in
        { name = test.Ast.name; runtimes; speedup_vs_user })
      Catalog.suite
  in
  let geomean_for tool_name =
    Stats.geomean
      (Array.of_list
         (List.map (fun r -> List.assoc tool_name r.speedup_vs_user) rows))
  in
  let names = List.map Common.tool_name Common.tools in
  let geomean_speedups = List.map (fun n -> (n, geomean_for n)) names in
  let heur_over_exh =
    Stats.geomean
      (Array.of_list
         (List.map
            (fun r ->
              let exh = List.assoc "perple-exh" r.runtimes in
              let heur = List.assoc "perple-heur" r.runtimes in
              float_of_int exh /. float_of_int (max 1 heur))
            rows))
  in
  { rows; geomean_speedups; heur_over_exh }

let render params =
  let summary = summarize params in
  let names = List.map Common.tool_name Common.tools in
  let table = Table.create ~headers:("test" :: names) in
  List.iteri (fun i _ -> Table.set_align table (i + 1) Table.Right) names;
  List.iter
    (fun r ->
      Table.add_row table
        (r.name
         :: List.map
              (fun n -> Table.ratio_cell (List.assoc n r.speedup_vs_user))
              names))
    summary.rows;
  Table.add_separator table;
  Table.add_row table
    ("geomean"
     :: List.map
          (fun n -> Table.ratio_cell (List.assoc n summary.geomean_speedups))
          names);
  let paper =
    "paper geomeans (PerpLE-heur speedup over modes): user 8.89x, timebase \
     17.56x, userfence 8.85x, none 2.52x, pthread 161.35x; heur/exh 305x"
  in
  let heur = List.assoc "perple-heur" summary.geomean_speedups in
  let mode_ratio name =
    heur /. List.assoc ("litmus7-" ^ name) summary.geomean_speedups
  in
  Printf.sprintf
    "Fig 10: runtime speedup vs litmus7-user (=1), %d iterations\n\
     %s\n\
     measured: PerpLE-heur vs user %s, timebase %s, userfence %s, none %s, \
     pthread %s; heur/exh %s\n\
     %s\n"
    params.Common.iterations
    (Table.to_string table)
    (Table.ratio_cell heur)
    (Table.ratio_cell (mode_ratio "timebase"))
    (Table.ratio_cell (mode_ratio "userfence"))
    (Table.ratio_cell (mode_ratio "none"))
    (Table.ratio_cell (mode_ratio "pthread"))
    (Table.ratio_cell summary.heur_over_exh)
    paper

module Catalog = Perple_litmus.Catalog
module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Convert = Perple_core.Convert
module Outcome_convert = Perple_core.Outcome_convert
module Count = Perple_core.Count
module Perpetual = Perple_harness.Perpetual
module Litmus7 = Perple_harness.Litmus7
module Operational = Perple_memmodel.Operational
module Rng = Perple_util.Rng
module Table = Perple_util.Table

type test_variety = {
  name : string;
  outcome_labels : string list;
  forbidden : bool list;
  per_tool : (string * int array) list;
}

let variety (params : Common.params) test_name =
  let test = Catalog.find_exn test_name in
  let outcomes = Outcome.all test in
  let iterations = params.Common.variety_iterations in
  let reachable = Operational.reachable_outcomes Operational.Tso test in
  let forbidden =
    List.map
      (fun o -> not (List.exists (Outcome.equal o) reachable))
      outcomes
  in
  (* PerpLE heuristic with independent per-outcome sampling (the figure's
     caption: N frames per outcome). *)
  let conv = Result.get_ok (Convert.convert test) in
  let rng =
    Rng.create (Common.seed_for params ("fig13/" ^ test_name))
  in
  let run =
    Perpetual.run ~rng ~image:conv.Convert.image
      ~t_reads:conv.Convert.t_reads ~iterations ()
  in
  let converted =
    List.map
      (fun o -> Result.get_ok (Outcome_convert.convert conv o))
      outcomes
  in
  let perple =
    (Count.heuristic_independent conv ~outcomes:converted ~run).Count.counts
  in
  let litmus7_counts =
    List.map
      (fun mode ->
        let tool = Common.Litmus7 mode in
        let rng =
          Rng.create
            (Common.seed_for params (Common.tool_name tool ^ "/" ^ test_name))
        in
        let result = Litmus7.run ~rng ~test ~mode ~iterations () in
        let counts =
          Array.of_list
            (List.map
               (fun o -> Litmus7.count result ~partial:o)
               outcomes)
        in
        (Common.tool_name tool, counts))
      Perple_harness.Sync_mode.all
  in
  {
    name = test_name;
    outcome_labels = List.map Outcome.short_label outcomes;
    forbidden;
    per_tool = ("perple-heur", perple) :: litmus7_counts;
  }

let render_one (v : test_variety) iterations =
  let table =
    Table.create
      ~headers:("outcome" :: "tso" :: List.map fst v.per_tool)
  in
  List.iteri
    (fun i _ -> Table.set_align table (i + 2) Table.Right)
    v.per_tool;
  List.iteri
    (fun i label ->
      Table.add_row table
        (label
         :: (if List.nth v.forbidden i then "F" else "A")
         :: List.map (fun (_, counts) -> string_of_int counts.(i)) v.per_tool))
    v.outcome_labels;
  Printf.sprintf "%s (%d iterations):\n%s" v.name iterations
    (Table.to_string table)

let render params =
  let tests = [ "sb"; "lb"; "podwr001" ] in
  let parts =
    List.map
      (fun name ->
        render_one (variety params name) params.Common.variety_iterations)
      tests
  in
  "Fig 13: outcome variety (PerpLE heuristic samples N frames per outcome)\n"
  ^ String.concat "\n" parts
  ^ "\npaper shape: PerpLE counts dominate litmus7 except possibly \
     timebase; forbidden outcomes (F) are never observed\n"

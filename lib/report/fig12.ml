module Catalog = Perple_litmus.Catalog
module Convert = Perple_core.Convert
module Skew = Perple_core.Skew
module Perpetual = Perple_harness.Perpetual
module Stats = Perple_util.Stats
module Chart = Perple_util.Chart
module Rng = Perple_util.Rng

type result = {
  histogram : Stats.Histogram.t;
  mean : float;
  stddev : float;
  min_skew : int;
  max_skew : int;
  ground_truth_stddev : float;
}

let measure ?(test_name = "sb") (params : Common.params) =
  let test = Perple_litmus.Catalog.find_exn test_name in
  let conv = Result.get_ok (Convert.convert test) in
  let rng = Rng.create (Common.seed_for params ("fig12/" ^ test_name)) in
  let ground_truth = Stats.Histogram.create () in
  let run =
    Perpetual.run ~rng ~image:conv.Convert.image ~t_reads:conv.Convert.t_reads
      ~iterations:params.Common.skew_iterations
      ~on_sample:(fun ~round:_ ~iterations ->
        if Array.length iterations >= 2 then
          Stats.Histogram.add ground_truth (iterations.(0) - iterations.(1)))
      ()
  in
  let histogram = Skew.measure conv ~run in
  let min_skew, max_skew =
    Option.value ~default:(0, 0) (Stats.Histogram.range histogram)
  in
  {
    histogram;
    mean = Stats.Histogram.mean histogram;
    stddev = Stats.Histogram.stddev histogram;
    min_skew;
    max_skew;
    ground_truth_stddev = Stats.Histogram.stddev ground_truth;
  }

let render params =
  let r = measure params in
  Printf.sprintf
    "Fig 12: thread skew PDF, perpetual sb, %d iterations\n%s\n\
     mean %.2f, stddev %.2f, range [%d, %d]; ground-truth stddev (machine \
     counters) %.2f\n\
     paper shape: wide distribution (threads run far ahead/behind), densest \
     near 0\n"
    params.Common.skew_iterations
    (Chart.density (Stats.Histogram.pdf r.histogram))
    r.mean r.stddev r.min_skew r.max_skew r.ground_truth_stddev

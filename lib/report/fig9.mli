(** Fig 9: target-outcome occurrences for every test of the perpetual
    litmus suite, PerpLE (both counters) vs litmus7 (all five modes), at a
    fixed iteration count (paper: 10k).

    Shape targets from the paper: PerpLE-exhaustive strictly dominates every
    litmus7 mode; PerpLE-heuristic generally dominates; no tool ever counts
    a target outcome that x86-TSO forbids (no false positives); PerpLE
    exposes the target of {e every} allowed test, while several litmus7
    modes miss many of them. *)

type row = {
  name : string;
  allowed : bool;  (** Table II classification of the target. *)
  results : Common.tool_result list;  (** In {!Common.tools} order. *)
}

val rows : Common.params -> row list

val render : Common.params -> string

val shape_violations : row list -> string list
(** Paper-shape checks that failed, empty when the reproduction matches:
    false positives on forbidden targets, allowed targets PerpLE missed,
    litmus7 modes beating the exhaustive counter. *)

(** Fig 13: outcome variety for [sb], [lb] and [podwr001] (paper: 1k
    iterations) — occurrences of {e every} possible outcome under PerpLE's
    heuristic counter (independent per-outcome sampling, as the figure's
    caption specifies) and under each litmus7 mode.

    Shape targets: PerpLE observes more distinct outcomes and more
    occurrences of each than litmus7 in every mode except (possibly)
    [timebase]; the forbidden [lb] outcome 11 is observed by nobody; litmus7
    total counts equal the iteration count (one outcome per iteration). *)

type test_variety = {
  name : string;
  outcome_labels : string list;  (** Fig 13-style labels, e.g. ["00"]. *)
  forbidden : bool list;  (** Per outcome, forbidden under x86-TSO. *)
  per_tool : (string * int array) list;
      (** tool name -> per-outcome occurrence counts. *)
}

val variety : Common.params -> string -> test_variety
(** For one catalog test. *)

val render : Common.params -> string
(** For the paper's three tests. *)

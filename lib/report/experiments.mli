(** One entry point per reproduced table/figure, keyed by the experiment ids
    used in DESIGN.md's experiment index. *)

val ids : string list
(** ["table2"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "accuracy";
    "overall"; "ablation"]. *)

val run : Common.params -> string -> (string, string) result
(** Render one experiment by id; [Error] for unknown ids. *)

val run_all : Common.params -> (string * string) list
(** Every experiment, in order. *)

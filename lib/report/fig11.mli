(** Fig 11: relative target-outcome detection-rate improvement over
    litmus7-[user], across iteration counts.

    As in the paper (Sec VII-C): for each allowed-target test, each tool's
    detection rate (target occurrences / runtime) is divided by
    litmus7-[user]'s rate on the same test; the bar is the arithmetic mean
    of those ratios across tests.  Tests where the baseline is zero are
    omitted from the mean and reported separately (the paper notes [user]
    detects nothing below ~1M iterations for many tests, while PerpLE is
    already nonzero at 100). *)

type cell = {
  mean_improvement : float;  (** Mean ratio over tests with nonzero user. *)
  tests_counted : int;
  tool_nonzero : int;  (** Tests where this tool found the target at all. *)
}

type point = {
  iterations : int;
  cells : (string * cell) list;  (** tool name -> cell (user excluded). *)
  user_nonzero : int;  (** Allowed tests where the baseline was nonzero. *)
}

val sweep : Common.params -> point list

val render : Common.params -> string

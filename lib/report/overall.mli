(** Sec VII-G: overall impact on a whole testing campaign.

    Model of the paper's 88-test run at a fixed iteration count: the 34
    convertible tests run under PerpLE (heuristic counter) while the
    remaining 54 non-convertible tests run under litmus7-[user] either way;
    the baseline runs all 88 under litmus7-[user].  The paper reports the
    mixed campaign 1.47x faster overall, with a >20000x mean detection-rate
    improvement on the convertible tests. *)

type summary = {
  total_tests : int;
  convertible : int;
  baseline_runtime : int;  (** All tests under litmus7-user. *)
  mixed_runtime : int;  (** PerpLE for convertible, litmus7-user otherwise. *)
  campaign_speedup : float;
  mean_detection_improvement : float;
      (** Across convertible allowed-target tests with nonzero baseline. *)
  perple_only : int;
      (** Convertible allowed tests where only PerpLE found the target. *)
}

val summarize : Common.params -> summary

val render : Common.params -> string

module Ast = Perple_litmus.Ast
module Catalog = Perple_litmus.Catalog
module Operational = Perple_memmodel.Operational
module Axiomatic = Perple_memmodel.Axiomatic
module Table = Perple_util.Table

type row = {
  name : string;
  t : int;
  t_l : int;
  allowed_tso : bool;
  allowed_axiomatic : bool;
  allowed_pso : bool;
  matches_catalog : bool;
  convertible : bool;
}

let rows () =
  List.map
    (fun (e : Catalog.entry) ->
      let test = e.Catalog.test in
      let allowed_tso =
        Result.get_ok (Operational.target_allowed Operational.Tso test)
      in
      let allowed_axiomatic =
        Axiomatic.condition_reachable Operational.Tso test
      in
      let allowed_pso =
        Result.get_ok (Operational.target_allowed Operational.Pso test)
      in
      let expected = e.Catalog.classification = Catalog.Allowed in
      {
        name = test.Ast.name;
        t = Ast.thread_count test;
        t_l = Ast.load_thread_count test;
        allowed_tso;
        allowed_axiomatic;
        allowed_pso;
        matches_catalog = allowed_tso = expected && allowed_axiomatic = expected;
        convertible = Result.is_ok (Perple_core.Convert.convert test);
      })
    Catalog.suite

let render () =
  let rows = rows () in
  let table =
    Table.create
      ~headers:
        [ "test"; "[T,TL]"; "x86-TSO"; "axiomatic"; "PSO"; "convertible"; "check" ]
  in
  let emit group_allowed =
    List.iter
      (fun r ->
        if r.allowed_tso = group_allowed then
          Table.add_row table
            [
              r.name;
              Printf.sprintf "[%d,%d]" r.t r.t_l;
              (if r.allowed_tso then "allowed" else "forbidden");
              (if r.allowed_axiomatic then "allowed" else "forbidden");
              (if r.allowed_pso then "allowed" else "forbidden");
              (if r.convertible then "yes" else "no");
              (if r.matches_catalog then "ok" else "MISMATCH");
            ])
      rows
  in
  emit true;
  Table.add_separator table;
  emit false;
  let mismatches = List.length (List.filter (fun r -> not r.matches_catalog) rows) in
  Printf.sprintf
    "Table II: perpetual litmus suite (%d tests; classification recomputed \
     by both checkers)\n%s\nmismatches vs paper's grouping: %d\n"
    (List.length rows) (Table.to_string table) mismatches

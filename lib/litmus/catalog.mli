(** The perpetual litmus suite (paper, Table II) and companion tests.

    The paper names 34 x86-TSO tests but gives bodies only for [sb], [lb] and
    [podwr001] (Fig 2).  The remaining bodies are reconstructed from the
    x86-TSO literature (Owens/Sarkar/Sewell's test suite, the Intel/AMD
    manual examples, and the shapes of diy-generated [safe]/[rfi] families)
    under two invariants, both checked by the test suite against the
    {!Perple_memmodel} checkers:

    - the [\[T, T_L\]] signature matches Table II, and
    - the target outcome is allowed/forbidden under x86-TSO exactly as
      Table II classifies it.

    Where the literature reuses one body under several names (e.g. [amd3]
    and [iwp2.3.b] are the same manual example), so do we. *)

type classification =
  | Allowed  (** Target outcome observable on x86-TSO hardware. *)
  | Forbidden  (** Target outcome must never be observed on x86-TSO. *)

type entry = {
  test : Ast.t;
  classification : classification;
      (** Table II's grouping of the target outcome under x86-TSO. *)
}

val suite : entry list
(** The 34 tests of Table II, in the table's order (allowed group first). *)

val allowed : entry list
(** The 12 tests whose target outcome x86-TSO allows. *)

val forbidden : entry list
(** The 22 tests whose target outcome x86-TSO forbids. *)

val find : string -> entry option
(** Look up a suite or companion test by name. *)

val find_exn : string -> Ast.t
(** @raise Not_found if the name is unknown. *)

val sb : Ast.t
val lb : Ast.t
val podwr001 : Ast.t
val mp : Ast.t

val non_convertible : Ast.t list
(** Companion tests whose final conditions inspect shared memory locations
    and therefore cannot be converted to perpetual form (paper, Sec V-C):
    classic diy shapes [2+2w], [s], [r], [coww], [w+rw]. *)

type pm_entry = {
  pm_test : Ast.t;
  holds_epoch : bool;
      (** Whether the post-crash condition holds at every crash point under
          correct epoch-ordered persistency. *)
  holds_eager : bool;
      (** Same, under the buggy {e eager} variant whose drain commits
          nothing. *)
}

val pm_suite : pm_entry list
(** Persistent-memory crash-consistency tests: classic shapes
    ([pm-epoch-order], [pm-flush-before-fence], [pm-torn-pair],
    [pm-unflushed], [pm-2t-epoch-order]) with expected verdicts per
    persistency model.  Evaluated by [perple crash-suite], not by the
    perpetual workflow; their volatile condition is the trivial
    [exists ()]. *)

val find_pm : string -> pm_entry option
(** Look up a PM test by name. *)

val extended_88 : (Ast.t * bool) list
(** A model of the paper's full 88-test campaign (Sec VII-G): the 34
    convertible suite tests (flag [true]) plus 54 non-convertible tests
    (flag [false]) — the named companions and variants of suite tests whose
    conditions also pin a final memory value. *)

val all_names : string list
(** Names of every test known to the catalog (suite + companions). *)

type binding = { thread : int; reg : int; value : int }

type t = binding list

(* All loads of the test as (thread, reg, location), in (thread, program
   position) order — which is also (thread, reg) order for valid tests. *)
let loads test =
  let acc = ref [] in
  Array.iteri
    (fun thread program ->
      Array.iter
        (fun instr ->
          match instr with
          | Ast.Load (reg, x) -> acc := (thread, reg, x) :: !acc
          | Ast.Store _ | Ast.Mfence | Ast.Flush _ | Ast.Drain -> ())
        program)
    test.Ast.threads;
  List.rev !acc

let all test =
  let loads = loads test in
  let choices =
    List.map
      (fun (thread, reg, x) ->
        let values =
          Ast.initial_value test x :: Ast.store_constants test x
        in
        List.map (fun value -> { thread; reg; value }) values)
      loads
  in
  (* Cartesian product preserving per-load value order. *)
  List.fold_right
    (fun options acc ->
      List.concat_map
        (fun binding -> List.map (fun rest -> binding :: rest) acc)
        options)
    choices [ [] ]

let of_condition test =
  match test.Ast.condition.quantifier with
  | Ast.Forall -> Error "forall conditions do not denote a single outcome"
  | Ast.Exists | Ast.Not_exists ->
    let rec convert = function
      | [] -> Ok []
      | Ast.Loc_eq (x, _) :: _ ->
        Error
          (Printf.sprintf
             "condition constrains shared location [%s]; not expressible \
              over registers"
             x)
      | Ast.Reg_eq (thread, reg, value) :: rest ->
        Result.map (fun tail -> { thread; reg; value } :: tail) (convert rest)
    in
    convert test.Ast.condition.atoms

let matches ~partial o =
  List.for_all
    (fun b ->
      List.exists
        (fun b' -> b'.thread = b.thread && b'.reg = b.reg && b'.value = b.value)
        o)
    partial

let to_atoms o = List.map (fun b -> Ast.Reg_eq (b.thread, b.reg, b.value)) o

let short_label o = String.concat "" (List.map (fun b -> string_of_int b.value) o)

let to_string o =
  String.concat " && "
    (List.map
       (fun b -> Printf.sprintf "%d:r%d=%d" b.thread b.reg b.value)
       o)

let compare_binding a b =
  match compare a.thread b.thread with
  | 0 -> (
    match compare a.reg b.reg with 0 -> compare a.value b.value | c -> c)
  | c -> c

let compare a b = List.compare compare_binding a b
let equal a b = compare a b = 0

module Rng = Perple_util.Rng

type direction = W | R

type edge =
  | Pod of direction * direction
  | Fenced of direction * direction
  | Rfe
  | Fre
  | Wse

let dir_to_string = function W -> "W" | R -> "R"

let edge_to_string = function
  | Pod (a, b) -> Printf.sprintf "Pod%s%s" (dir_to_string a) (dir_to_string b)
  | Fenced (a, b) ->
    Printf.sprintf "MFenced%s%s" (dir_to_string a) (dir_to_string b)
  | Rfe -> "Rfe"
  | Fre -> "Fre"
  | Wse -> "Wse"

let edge_of_string s =
  let low = String.lowercase_ascii s in
  let dir = function
    | 'w' -> Some W
    | 'r' -> Some R
    | _ -> None
  in
  let two prefix =
    let n = String.length prefix in
    if String.length low = n + 2 && String.sub low 0 n = prefix then
      match (dir low.[n], dir low.[n + 1]) with
      | Some a, Some b -> Some (a, b)
      | _ -> None
    else None
  in
  match low with
  | "rfe" -> Ok Rfe
  | "fre" -> Ok Fre
  | "wse" -> Ok Wse
  | _ -> (
    match two "pod" with
    | Some (a, b) -> Ok (Pod (a, b))
    | None -> (
      match two "mfenced" with
      | Some (a, b) -> Ok (Fenced (a, b))
      | None ->
        Error
          (Printf.sprintf
             "unknown edge %S (expected Pod.., MFenced.., Rfe, Fre, Wse)" s)))

let parse_cycle text =
  let words =
    List.filter
      (fun w -> w <> "")
      (String.split_on_char ' ' (String.trim text))
  in
  if words = [] then Error "empty cycle"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | w :: rest -> (
        match edge_of_string w with
        | Ok e -> go (e :: acc) rest
        | Error _ as err -> err)
    in
    go [] words
  end

(* Directions an edge connects: (source event, destination event). *)
let endpoints = function
  | Pod (a, b) | Fenced (a, b) -> (a, b)
  | Rfe -> (W, R)
  | Fre -> (R, W)
  | Wse -> (W, W)

let is_comm = function
  | Rfe | Fre | Wse -> true
  | Pod _ | Fenced _ -> false

let well_formed cycle =
  let n = List.length cycle in
  if n < 2 then Error "cycle needs at least 2 edges"
  else begin
    let arr = Array.of_list cycle in
    let rec chain i =
      if i >= n then Ok ()
      else begin
        let _, dst = endpoints arr.(i) in
        let src, _ = endpoints arr.((i + 1) mod n) in
        if dst <> src then
          Error
            (Printf.sprintf
               "edge %s ends in %s but edge %s starts with %s"
               (edge_to_string arr.(i))
               (dir_to_string dst)
               (edge_to_string arr.((i + 1) mod n))
               (dir_to_string src))
        else chain (i + 1)
      end
    in
    match chain 0 with
    | Error _ as e -> e
    | Ok () ->
      let comms = List.length (List.filter is_comm cycle) in
      if comms < 2 then Error "cycle needs at least 2 communication edges"
      else Ok ()
  end

(* Rotate so the cycle starts with the first edge after a communication
   edge: thread boundaries then align with list position. *)
let normalise cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  let rec find i = if is_comm arr.((i + n - 1) mod n) then i else find (i + 1) in
  let start = find 0 in
  List.init n (fun i -> arr.((start + i) mod n))

(* An event under construction. *)
type event = {
  id : int;
  thread : int;
  dir : direction;
  mutable loc : int;  (* location class; -1 while unknown *)
  fence_after : bool;
}

let of_cycle ~name cycle =
  match well_formed cycle with
  | Error _ as e -> e
  | Ok () ->
    let cycle = normalise cycle in
    let arr = Array.of_list cycle in
    let n = Array.length arr in
    (* One event per edge source; edge i connects event i to event
       (i+1) mod n.  Threads split at communication edges. *)
    let events =
      Array.init n (fun i ->
          let src, _ = endpoints arr.(i) in
          {
            id = i;
            thread = 0;
            dir = src;
            loc = -1;
            fence_after =
              (match arr.(i) with Fenced _ -> true | _ -> false);
          })
    in
    (* Assign threads: a new thread starts after each comm edge. *)
    let thread = ref 0 in
    let events =
      Array.mapi
        (fun i e ->
          let e = { e with thread = !thread } in
          if is_comm arr.(i) then incr thread;
          e)
        events
    in
    let nthreads = !thread in
    (* The cycle is normalised, so the last edge is a comm edge and the
       wrap-around is a thread boundary, giving exactly [nthreads]
       threads. *)
    (* Location classes: comm edges identify their endpoints' locations;
       po edges (all Pod/Fenced here) separate them. *)
    let next_loc = ref 0 in
    let fresh_loc () =
      let l = !next_loc in
      incr next_loc;
      l
    in
    Array.iteri
      (fun i e ->
        let successor = events.((i + 1) mod n) in
        match arr.(i) with
        | Rfe | Fre | Wse ->
          (* Same location on both sides. *)
          let l =
            if e.loc >= 0 then e.loc
            else if successor.loc >= 0 then successor.loc
            else fresh_loc ()
          in
          e.loc <- l;
          successor.loc <- l
        | Pod _ | Fenced _ ->
          if e.loc < 0 then e.loc <- fresh_loc ())
      events;
    (* Second pass for any event still unassigned (po-successor only). *)
    Array.iter (fun e -> if e.loc < 0 then e.loc <- fresh_loc ()) events;
    (* Check po edges connect different locations. *)
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i e ->
        match arr.(i) with
        | Pod _ | Fenced _ ->
          let successor = events.((i + 1) mod n) in
          if e.loc = successor.loc && !ok = Ok () then
            ok :=
              Error
                (Printf.sprintf
                   "edge %d: program-order endpoints share a location"
                   i)
        | Rfe | Fre | Wse -> ())
      events;
    (match !ok with
    | Error _ as e -> e
    | Ok () ->
      if !next_loc > 8 then Error "too many locations"
      else begin
        let loc_name l = Printf.sprintf "%c" (Char.chr (Char.code 'x' + l)) in
        let loc_name l =
          if l < 3 then loc_name l else Printf.sprintf "v%d" l
        in
        (* Communication structure per event: the unique comm in/out
           edges a cycle gives each event. *)
        let rf_in = Array.make n (-1) in
        let fre_out = Array.make n (-1) in
        let wse_pairs = ref [] in
        Array.iteri
          (fun i e ->
            let successor = events.((i + 1) mod n) in
            match arr.(i) with
            | Rfe -> rf_in.(successor.id) <- e.id
            | Fre -> fre_out.(e.id) <- successor.id
            | Wse -> wse_pairs := (e.id, successor.id) :: !wse_pairs
            | Pod _ | Fenced _ -> ())
          events;
        (* Write serialisation order per location.  This generator keeps at
           most two writes per location and honours the ws constraints the
           witness outcome needs: a read with an Rfe in-edge and an Fre
           out-edge pins its rf source ws-before the fr target, and every
           Wse edge orders its endpoints. *)
        let writes_of loc =
          List.filter
            (fun e -> e.dir = W && e.loc = loc)
            (Array.to_list events)
        in
        let constraints = ref [] in
        Array.iter
          (fun e ->
            if e.dir = R && rf_in.(e.id) >= 0 && fre_out.(e.id) >= 0 then begin
              if rf_in.(e.id) = fre_out.(e.id) then
                constraints := (-1, -1) :: !constraints (* contradiction *)
              else constraints := (rf_in.(e.id), fre_out.(e.id)) :: !constraints
            end)
          events;
        List.iter (fun (a, b) -> constraints := (a, b) :: !constraints)
          !wse_pairs;
        let order_error = ref None in
        let ws_rank = Array.make n 0 in
        List.iter
          (fun loc ->
            let ws = writes_of loc in
            match ws with
            | [] | [ _ ] ->
              List.iteri (fun i e -> ws_rank.(e.id) <- i) ws
            | [ a; b ] ->
              let must_ab =
                List.exists (fun c -> c = (a.id, b.id)) !constraints
                (* Same-thread writes to one location are ws-ordered by
                   program order (CoWW). *)
                || (a.thread = b.thread && a.id < b.id)
              in
              let must_ba =
                List.exists (fun c -> c = (b.id, a.id)) !constraints
                || (a.thread = b.thread && b.id < a.id)
              in
              if must_ab && must_ba then
                order_error := Some "conflicting write-order constraints"
              else if must_ba then begin
                ws_rank.(b.id) <- 0;
                ws_rank.(a.id) <- 1
              end
              else begin
                ws_rank.(a.id) <- 0;
                ws_rank.(b.id) <- 1
              end
            | _ :: _ :: _ :: _ ->
              order_error := Some "more than two writes per location")
          (List.init !next_loc Fun.id);
        if List.exists (fun c -> c = (-1, -1)) !constraints then
          order_error := Some "a read cannot both observe and precede a write";
        (* Coherence sanity of the witness: the value each read observes
           must be compatible with the reading thread's own writes to the
           location — at least as new as any po-earlier own write (CoWR)
           and strictly older than any po-later own write (CoRW2).  Ranks:
           -1 denotes the initial value. *)
        let source_rank e =
          if rf_in.(e.id) >= 0 then ws_rank.(rf_in.(e.id))
          else if fre_out.(e.id) >= 0 then ws_rank.(fre_out.(e.id)) - 1
          else min_int (* unconstrained read; no atom is emitted for it *)
        in
        Array.iter
          (fun e ->
            if e.dir = R && source_rank e > min_int then begin
              let rank = source_rank e in
              Array.iter
                (fun w ->
                  if
                    w.dir = W && w.thread = e.thread && w.loc = e.loc
                  then begin
                    if w.id < e.id && ws_rank.(w.id) > rank then
                      order_error :=
                        Some "a read would observe older than an own write"
                    else if w.id > e.id && ws_rank.(w.id) <= rank then
                      order_error :=
                        Some "a read would observe newer than a later own write"
                  end)
                events
            end)
          events;
        match !order_error with
        | Some m -> Error (m ^ " (cycle unrealisable by this generator)")
        | None ->
        (* Values follow ws rank: 1 + rank. *)
        let value = Array.make n 0 in
        Array.iter
          (fun e -> if e.dir = W then value.(e.id) <- ws_rank.(e.id) + 1)
          events;
        (* Registers: per-thread load counter. *)
        let reg = Array.make n (-1) in
        let reg_counter = Array.make nthreads 0 in
        Array.iter
          (fun e ->
            if e.dir = R then begin
              reg.(e.id) <- reg_counter.(e.thread);
              reg_counter.(e.thread) <- reg_counter.(e.thread) + 1
            end)
          events;
        (* Instruction lists per thread, in event order. *)
        let programs = Array.make nthreads [] in
        Array.iter
          (fun e ->
            let instr =
              match e.dir with
              | W -> Ast.Store (loc_name e.loc, value.(e.id))
              | R -> Ast.Load (reg.(e.id), loc_name e.loc)
            in
            let instrs =
              if e.fence_after then [ instr; Ast.Mfence ] else [ instr ]
            in
            programs.(e.thread) <- programs.(e.thread) @ instrs)
          events;
        (* Condition atoms from communication edges. *)
        let atoms = ref [] in
        Array.iteri
          (fun i e ->
            let successor = events.((i + 1) mod n) in
            match arr.(i) with
            | Rfe ->
              (* successor (a read) observes e's write. *)
              atoms :=
                Ast.Reg_eq (successor.thread, reg.(successor.id), value.(e.id))
                :: !atoms
            | Fre ->
              (* e (a read) observes a write ws-before successor.  With an
                 Rfe in-edge the observation is already pinned; the implied
                 ws edge (rf source before fr target) is free when both
                 writes share a thread (CoWW) but otherwise needs a
                 final-memory witness, like Wse.  Without an Rfe in-edge,
                 read the immediate ws-predecessor or the initial value. *)
              if rf_in.(e.id) < 0 then begin
                let v =
                  if ws_rank.(successor.id) = 0 then 0
                  else ws_rank.(successor.id)
                  (* value of the predecessor = rank, since values are
                     rank + 1 *)
                in
                atoms := Ast.Reg_eq (e.thread, reg.(e.id), v) :: !atoms
              end
              else begin
                let w1 = events.(rf_in.(e.id)) in
                if w1.thread <> successor.thread then begin
                  let last =
                    List.fold_left
                      (fun acc o ->
                        match acc with
                        | None -> Some o
                        | Some a ->
                          if ws_rank.(o.id) > ws_rank.(a.id) then Some o
                          else acc)
                      None
                      (writes_of successor.loc)
                  in
                  match last with
                  | Some o ->
                    atoms :=
                      Ast.Loc_eq (loc_name successor.loc, value.(o.id))
                      :: !atoms
                  | None -> ()
                end
              end
            | Wse ->
              (* Witnessed by the final memory value: the ws-last write of
                 the location (with <= 2 writes, that is the successor). *)
              let last =
                List.fold_left
                  (fun acc o ->
                    match acc with
                    | None -> Some o
                    | Some a ->
                      if ws_rank.(o.id) > ws_rank.(a.id) then Some o else acc)
                  None (writes_of e.loc)
              in
              (match last with
              | Some o ->
                atoms := Ast.Loc_eq (loc_name e.loc, value.(o.id)) :: !atoms
              | None -> ())
            | Pod _ | Fenced _ -> ())
          events;
        let test =
          Ast.make ~name
            ~doc:
              (Printf.sprintf "generated from cycle: %s"
                 (String.concat " " (List.map edge_to_string cycle)))
            ~threads:(Array.to_list programs)
            ~condition:
              { Ast.quantifier = Ast.Exists; atoms = List.rev !atoms }
            ()
        in
        match Ast.validate test with
        | Ok () -> Ok test
        | Error e ->
          Error
            (Format.asprintf "generated test invalid: %a" Ast.pp_error e)
      end)

type prediction = { sc : bool; tso : bool; pso : bool }

(* The cycle is forbidden under a model iff, in every thread segment, the
   segment's entry event reaches its exit event through ordering the model
   preserves: consecutive program-order steps whose direction pair is not
   relaxed, plus fence shortcuts (a fence orders every earlier access of
   the thread with every later one).  A relaxed step can thus be bypassed
   by a later fence, which a naive any-relaxable-edge test misses. *)
let predict cycle =
  let cycle = normalise cycle in
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  (* Per-thread segments: (direction, fence_after) lists. *)
  let segments = ref [] in
  let current = ref [] in
  Array.iter
    (fun e ->
      let src, _ = endpoints e in
      let fence_after = match e with Fenced _ -> true | _ -> false in
      current := (src, fence_after) :: !current;
      if is_comm e then begin
        segments := List.rev !current :: !segments;
        current := []
      end)
    arr;
  ignore n;
  let segments = List.rev !segments in
  let preserved model a b =
    match model with
    | `Sc -> true
    | `Tso -> not (a = W && b = R)
    | `Pso -> not (a = W && (b = R || b = W))
  in
  let segment_ordered model segment =
    let events = Array.of_list segment in
    let len = Array.length events in
    if len <= 1 then true
    else begin
      (* Reachability from position 0 to position len-1. *)
      let reach = Array.make len false in
      reach.(0) <- true;
      let fences =
        List.filteri (fun k _ -> snd events.(k)) (List.init len Fun.id)
      in
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to len - 2 do
          if reach.(i) then begin
            let di, _ = events.(i) in
            (* Preserved program order is pairwise (ppo), not generated by
               adjacent steps: W;R;W preserves the outer W->W even though
               both adjacent steps are relaxable.  hb is then the
               transitive closure, which this fixpoint computes. *)
            for j = i + 1 to len - 1 do
              let dj, _ = events.(j) in
              if preserved model di dj && not reach.(j) then begin
                reach.(j) <- true;
                changed := true
              end
            done;
            (* A fence at position k orders every access at or before k
               with every access after it. *)
            List.iter
              (fun k ->
                if k >= i then
                  for j = k + 1 to len - 1 do
                    if not reach.(j) then begin
                      reach.(j) <- true;
                      changed := true
                    end
                  done)
              fences
          end
        done
      done;
      reach.(len - 1)
    end
  in
  let forbidden model =
    List.for_all (segment_ordered model) segments
  in
  {
    sc = not (forbidden `Sc);
    tso = not (forbidden `Tso);
    pso = not (forbidden `Pso);
  }

let random_cycle rng ~max_edges =
  let max_edges = max 4 max_edges in
  (* Build po segments separated by comm edges; ensure chaining. *)
  let target = 4 + Rng.int rng (max_edges - 3) in
  let rec build acc current_dir remaining started =
    if remaining <= 1 then acc
    else begin
      let want_comm =
        remaining <= 2 || (started && Rng.chance rng 0.45)
      in
      if want_comm then begin
        let candidates =
          List.filter
            (fun e -> fst (endpoints e) = current_dir)
            [ Rfe; Fre; Wse ]
        in
        let e = List.nth candidates (Rng.int rng (List.length candidates)) in
        let _, next = endpoints e in
        build (e :: acc) next (remaining - 1) true
      end
      else begin
        let next = if Rng.bool rng then W else R in
        let e =
          if Rng.chance rng 0.2 then Fenced (current_dir, next)
          else Pod (current_dir, next)
        in
        build (e :: acc) next (remaining - 1) true
      end
    end
  in
  (* Start from a W (most comm edges need one) and close the cycle with a
     comm edge back to W. *)
  let body = build [] W target false in
  let cycle =
    match body with
    | [] -> [ Pod (W, R); Fre; Pod (W, R); Fre ]
    | latest :: _ ->
      let _, dir = endpoints latest in
      let closing = match dir with R -> Fre | W -> Wse in
      List.rev (closing :: body)
  in
  match well_formed cycle with
  | Ok () -> cycle
  | Error _ -> [ Pod (W, R); Fre; Pod (W, R); Fre ]

let named_cycles =
  [
    ("sb", "PodWR Fre PodWR Fre");
    ("mp", "PodWW Rfe PodRR Fre");
    ("lb", "PodRW Rfe PodRW Rfe");
    ("wrc", "Rfe PodRW Rfe PodRR Fre");
    ("iriw", "Rfe PodRR Fre Rfe PodRR Fre");
    ("2+2w", "PodWW Wse PodWW Wse");
    ("sb+fences", "MFencedWR Fre MFencedWR Fre");
    ("mp+fences", "MFencedWW Rfe MFencedRR Fre");
    ("r", "PodWW Wse PodWR Fre");
    ("s", "PodWW Rfe PodRW Wse");
  ]

type classification = Allowed | Forbidden

type entry = { test : Ast.t; classification : classification }

(* Terse builders for the definitions below. *)
let w x a = Ast.Store (x, a)
let r i x = Ast.Load (i, x)
let f = Ast.Mfence
let reg t i v = Ast.Reg_eq (t, i, v)
let loc x v = Ast.Loc_eq (x, v)
let exists atoms = { Ast.quantifier = Ast.Exists; atoms }

let def ?doc name threads atoms classification =
  {
    test = Ast.make ?doc ~name ~threads ~condition:(exists atoms) ();
    classification;
  }

(* --- Allowed group (target outcome observable under x86-TSO) ----------- *)

(* The store-forwarding example shared by the AMD manual (amd3) and the
   Intel white paper (iwp2.3.b): each thread reads its own store early and
   the other thread's store late. *)
let forwarding_threads =
  [
    [ w "x" 1; r 0 "x"; r 1 "y" ];
    [ w "y" 1; r 0 "y"; r 1 "x" ];
  ]

let forwarding_target =
  [ reg 0 0 1; reg 0 1 0; reg 1 0 1; reg 1 1 0 ]

let amd3 =
  def "amd3" ~doc:"AMD manual: intra-processor forwarding"
    forwarding_threads forwarding_target Allowed

let iwp23b =
  def "iwp23b" ~doc:"Intel WP example 2.3.b (same body as amd3)"
    forwarding_threads forwarding_target Allowed

let iwp24 =
  def "iwp24" ~doc:"Intel WP example 2.4: forwarding, outer loads only"
    forwarding_threads
    [ reg 0 1 0; reg 1 1 0 ]
    Allowed

let n1 =
  def "n1" ~doc:"three-thread store buffering with a witness location"
    [
      [ w "z" 1 ];
      [ w "x" 1; r 0 "y"; r 1 "z" ];
      [ w "y" 1; r 0 "x" ];
    ]
    [ reg 1 0 0; reg 1 1 1; reg 2 0 0 ]
    Allowed

let podwr000 =
  def "podwr000" ~doc:"write-then-read, both reads stale (sb shape)"
    [ [ w "x" 2; r 0 "y" ]; [ w "y" 2; r 0 "x" ] ]
    [ reg 0 0 0; reg 1 0 0 ]
    Allowed

let podwr001 =
  def "podwr001" ~doc:"paper Fig 2: sb extended to three threads"
    [
      [ w "x" 1; r 0 "y" ];
      [ w "y" 1; r 0 "z" ];
      [ w "z" 1; r 0 "x" ];
    ]
    [ reg 0 0 0; reg 1 0 0; reg 2 0 0 ]
    Allowed

let rfi009 =
  def "rfi009" ~doc:"asymmetric store forwarding"
    [ [ w "x" 1; r 0 "x"; r 1 "y" ]; [ w "y" 1; r 0 "x" ] ]
    [ reg 0 0 1; reg 0 1 0; reg 1 0 0 ]
    Allowed

let rfi013 =
  def "rfi013" ~doc:"sb with a trailing second store to x (k_x = 2)"
    [ [ w "x" 1; r 0 "y" ]; [ w "y" 1; r 0 "x"; w "x" 2 ] ]
    [ reg 0 0 0; reg 1 0 0 ]
    Allowed

let rfi015 =
  def "rfi015" ~doc:"store forwarding plus a third-thread witness"
    [
      [ w "z" 1 ];
      [ w "x" 1; r 0 "x"; r 1 "y" ];
      [ w "y" 1; r 0 "y"; r 1 "x"; r 2 "z" ];
    ]
    [ reg 1 0 1; reg 1 1 0; reg 2 0 1; reg 2 1 0; reg 2 2 1 ]
    Allowed

let rfi017 =
  def "rfi017" ~doc:"store forwarding with non-unit constants"
    [ [ w "x" 1; r 0 "x"; r 1 "y" ]; [ w "y" 2; r 0 "y"; r 1 "x" ] ]
    [ reg 0 0 1; reg 0 1 0; reg 1 0 2; reg 1 1 0 ]
    Allowed

let rwc_unfenced =
  def "rwc-unfenced" ~doc:"read-to-write causality, no fence"
    [
      [ w "x" 1 ];
      [ r 0 "x"; r 1 "y" ];
      [ w "y" 1; r 0 "x" ];
    ]
    [ reg 1 0 1; reg 1 1 0; reg 2 0 0 ]
    Allowed

let sb =
  def "sb" ~doc:"paper Fig 2: store buffering"
    [ [ w "x" 1; r 0 "y" ]; [ w "y" 1; r 0 "x" ] ]
    [ reg 0 0 0; reg 1 0 0 ]
    Allowed

(* --- Forbidden group (target outcome must not appear under x86-TSO) ---- *)

let amd10 =
  def "amd10" ~doc:"fenced sb with a forwarded witness load"
    [
      [ w "x" 1; f; r 0 "y"; r 1 "x" ];
      [ w "y" 1; f; r 0 "x" ];
    ]
    [ reg 0 0 0; reg 0 1 1; reg 1 0 0 ]
    Forbidden

let amd5 =
  def "amd5" ~doc:"AMD manual: sb with mfences"
    [ [ w "x" 1; f; r 0 "y" ]; [ w "y" 1; f; r 0 "x" ] ]
    [ reg 0 0 0; reg 1 0 0 ]
    Forbidden

let amd5_staleld =
  def "amd5+staleld" ~doc:"fenced sb where a re-read would go stale"
    [ [ w "x" 1; f; r 0 "y" ]; [ w "y" 1; f; r 0 "x"; r 1 "x" ] ]
    [ reg 1 0 1; reg 1 1 0 ]
    Forbidden

let co_iriw =
  def "co-iriw" ~doc:"two readers disagree on the coherence order of x"
    [
      [ w "x" 1 ];
      [ w "x" 2 ];
      [ r 0 "x"; r 1 "x" ];
      [ r 0 "x"; r 1 "x" ];
    ]
    [ reg 2 0 1; reg 2 1 2; reg 3 0 2; reg 3 1 1 ]
    Forbidden

let iriw =
  def "iriw" ~doc:"independent reads of independent writes"
    [
      [ w "x" 1 ];
      [ w "y" 1 ];
      [ r 0 "x"; r 1 "y" ];
      [ r 0 "y"; r 1 "x" ];
    ]
    [ reg 2 0 1; reg 2 1 0; reg 3 0 1; reg 3 1 0 ]
    Forbidden

let lb =
  def "lb" ~doc:"paper Fig 2: load buffering"
    [ [ r 0 "y"; w "x" 1 ]; [ r 0 "x"; w "y" 1 ] ]
    [ reg 0 0 1; reg 1 0 1 ]
    Forbidden

let mp =
  def "mp" ~doc:"message passing"
    [ [ w "x" 1; w "y" 1 ]; [ r 0 "y"; r 1 "x" ] ]
    [ reg 1 0 1; reg 1 1 0 ]
    Forbidden

let mp_staleld =
  def "mp+staleld" ~doc:"message passing with a stale re-read of y"
    [ [ w "x" 1; w "y" 1 ]; [ r 0 "y"; r 1 "y" ] ]
    [ reg 1 0 1; reg 1 1 0 ]
    Forbidden

let mp_fences =
  def "mp+fences" ~doc:"message passing with mfences"
    [ [ w "x" 1; f; w "y" 1 ]; [ r 0 "y"; f; r 1 "x" ] ]
    [ reg 1 0 1; reg 1 1 0 ]
    Forbidden

let n4 =
  def "n4" ~doc:"x86-TSO paper n4: loads reading later stores to x"
    [ [ r 0 "x"; w "x" 1 ]; [ r 0 "x"; w "x" 2 ] ]
    [ reg 0 0 2; reg 1 0 1 ]
    Forbidden

let n5 =
  def "n5" ~doc:"x86-TSO paper n5: incompatible coherence views of x"
    [ [ w "x" 1; r 0 "x" ]; [ w "x" 2; r 0 "x" ] ]
    [ reg 0 0 2; reg 1 0 1 ]
    Forbidden

let rwc_fenced =
  def "rwc-fenced" ~doc:"read-to-write causality with mfence"
    [
      [ w "x" 1 ];
      [ r 0 "x"; r 1 "y" ];
      [ w "y" 1; f; r 0 "x" ];
    ]
    [ reg 1 0 1; reg 1 1 0; reg 2 0 0 ]
    Forbidden

let safe006 =
  def "safe006" ~doc:"load buffering with a one-sided fence"
    [ [ r 0 "y"; w "x" 1 ]; [ r 0 "x"; f; w "y" 1 ] ]
    [ reg 0 0 1; reg 1 0 1 ]
    Forbidden

let safe007 =
  def "safe007" ~doc:"three-thread load-buffering ring (T_L = 3)"
    [
      [ r 0 "z"; w "x" 1 ];
      [ r 0 "x"; w "y" 1 ];
      [ r 0 "y"; w "z" 1 ];
    ]
    [ reg 0 0 1; reg 1 0 1; reg 2 0 1 ]
    Forbidden

let safe012 =
  def "safe012" ~doc:"write-to-read causality chain with fences"
    [
      [ w "x" 1 ];
      [ r 0 "x"; f; w "y" 1 ];
      [ r 0 "y"; f; r 1 "x" ];
    ]
    [ reg 1 0 1; reg 2 0 1; reg 2 1 0 ]
    Forbidden

let safe018 =
  def "safe018" ~doc:"message passing observed by two readers"
    [
      [ w "x" 1; w "y" 1 ];
      [ r 0 "y"; r 1 "x" ];
      [ r 0 "x"; r 1 "y" ];
    ]
    [ reg 1 0 1; reg 1 1 0; reg 2 0 0 ]
    Forbidden

let safe022 =
  def "safe022" ~doc:"message passing with a fenced writer"
    [ [ w "x" 1; f; w "y" 1 ]; [ r 0 "y"; r 1 "x" ] ]
    [ reg 1 0 1; reg 1 1 0 ]
    Forbidden

let safe024 =
  def "safe024" ~doc:"fenced sb plus a third-thread witness store"
    [
      [ w "x" 1; f; r 0 "y"; r 1 "z" ];
      [ w "y" 1; f; r 0 "x" ];
      [ w "z" 1 ];
    ]
    [ reg 0 0 0; reg 0 1 1; reg 1 0 0 ]
    Forbidden

let safe027 =
  def "safe027" ~doc:"iriw with fenced readers"
    [
      [ w "x" 1 ];
      [ w "y" 1 ];
      [ r 0 "x"; f; r 1 "y" ];
      [ r 0 "y"; f; r 1 "x" ];
    ]
    [ reg 2 0 1; reg 2 1 0; reg 3 0 1; reg 3 1 0 ]
    Forbidden

let safe028 =
  def "safe028" ~doc:"fenced read-to-write causality with a readback"
    [
      [ w "x" 1 ];
      [ r 0 "x"; r 1 "y" ];
      [ w "y" 1; f; r 0 "x"; r 1 "y" ];
    ]
    [ reg 1 0 1; reg 1 1 0; reg 2 0 0; reg 2 1 1 ]
    Forbidden

let safe036 =
  def "safe036" ~doc:"fenced sb, roles swapped"
    [ [ w "y" 1; f; r 0 "x" ]; [ w "x" 1; f; r 0 "y" ] ]
    [ reg 0 0 0; reg 1 0 0 ]
    Forbidden

let wrc =
  def "wrc" ~doc:"write-to-read causality"
    [
      [ w "x" 1 ];
      [ r 0 "x"; w "y" 1 ];
      [ r 0 "y"; r 1 "x" ];
    ]
    [ reg 1 0 1; reg 2 0 1; reg 2 1 0 ]
    Forbidden

let suite =
  [
    (* Allowed group, Table II order. *)
    amd3;
    iwp23b;
    iwp24;
    n1;
    podwr000;
    podwr001;
    rfi009;
    rfi013;
    rfi015;
    rfi017;
    rwc_unfenced;
    sb;
    (* Forbidden group, Table II order. *)
    amd10;
    amd5;
    amd5_staleld;
    co_iriw;
    iriw;
    lb;
    mp;
    mp_staleld;
    mp_fences;
    n4;
    n5;
    rwc_fenced;
    safe006;
    safe007;
    safe012;
    safe018;
    safe022;
    safe024;
    safe027;
    safe028;
    safe036;
    wrc;
  ]

let allowed = List.filter (fun e -> e.classification = Allowed) suite
let forbidden = List.filter (fun e -> e.classification = Forbidden) suite

(* --- Non-convertible companions (paper, Sec V-C) ------------------------ *)

let nc name ?doc threads atoms =
  Ast.make ?doc ~name ~threads ~condition:(exists atoms) ()

let two_plus_two_w =
  nc "2+2w" ~doc:"write races decided by final memory"
    [ [ w "x" 1; w "y" 2 ]; [ w "y" 1; w "x" 2 ] ]
    [ loc "x" 1; loc "y" 1 ]

let s_test =
  nc "s" ~doc:"store race with a message-passing read"
    [ [ w "x" 2; w "y" 1 ]; [ r 0 "y"; w "x" 1 ] ]
    [ reg 1 0 1; loc "x" 2 ]

let r_test =
  nc "r" ~doc:"store race against a buffered reader"
    [ [ w "x" 1; w "y" 1 ]; [ w "y" 2; r 0 "x" ] ]
    [ reg 1 0 0; loc "y" 2 ]

let coww =
  nc "coww" ~doc:"coherence of same-thread writes, final memory"
    [ [ w "x" 1; w "x" 2 ]; [ r 0 "x" ] ]
    [ loc "x" 1 ]

let w_plus_rw =
  nc "w+rw" ~doc:"read then overwrite, final memory"
    [ [ w "x" 2 ]; [ r 0 "x"; w "x" 1 ] ]
    [ reg 1 0 2; loc "x" 2 ]

let non_convertible = [ two_plus_two_w; s_test; r_test; coww; w_plus_rw ]

(* --- The 88-test campaign model (Sec VII-G) ----------------------------- *)

(* The paper's remaining 54 tests are real litmus tests whose target
   outcomes require inspecting shared memory (write-serialisation
   witnesses).  We build them with the diy-style generator: every cycle
   below contains a Wse edge, so its canonical witness pins a final memory
   value and the Converter rightly refuses it (Sec V-C). *)
let non_convertible_cycles =
  (* Deterministic catalogue of Wse-bearing cycles; generated names are
     w000, w001, ... in order. *)
  let pos = [ "PodWW"; "PodWR"; "PodRW"; "PodRR"; "MFencedWW"; "MFencedWR" ] in
  let base =
    [
      "PodWW Wse PodWW Wse";
      "PodWR Fre PodWW Wse";
      "PodWW Wse PodWR Fre";
      "PodWW Rfe PodRW Wse";
      "PodRW Wse PodRW Rfe";
      "PodWW Wse PodWW Wse PodWW Wse";
      "MFencedWW Wse MFencedWW Wse";
      "PodWR Fre PodWR Fre PodWW Wse";
      "PodWW Rfe PodRR Fre PodWW Wse";
      "Wse Wse";
      "Wse PodWW Wse PodWW";
      "Rfe PodRW Wse PodWW";
    ]
  in
  let more =
    (* Two-segment cycles <po1> Wse <po2> Wse over assorted po flavours
       whose endpoints chain as W...W. *)
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            let ends_w e =
              String.length e >= 1 && e.[String.length e - 1] = 'W'
            in
            let starts_w e =
              String.length e >= 2
              && e.[String.length e - 2] = 'W'
            in
            ignore starts_w;
            if
              ends_w a && ends_w b
              && a.[String.length a - 2] <> 'R'
              && b.[String.length b - 2] <> 'R'
            then Some (Printf.sprintf "%s Wse %s Wse" a b)
            else None)
          pos)
      pos
  in
  base @ more

let generated_non_convertible =
  let count = ref 0 in
  List.filter_map
    (fun cycle_text ->
      match Generate.parse_cycle cycle_text with
      | Error _ -> None
      | Ok cycle -> (
        let name = Printf.sprintf "w%03d" !count in
        match Generate.of_cycle ~name cycle with
        | Error _ -> None
        | Ok test ->
          (* Only keep genuinely non-convertible results. *)
          let has_memory_atom =
            List.exists
              (function Ast.Loc_eq _ -> true | Ast.Reg_eq _ -> false)
              test.Ast.condition.atoms
          in
          if has_memory_atom then begin
            incr count;
            Some test
          end
          else None))
    non_convertible_cycles

(* Fallback variant construction, only used if the generated pool falls
   short of the 54 the campaign model needs. *)
let memory_variant suffix entry =
  let test = entry.test in
  let locs = Ast.locations test in
  match locs with
  | [] -> None
  | x :: _ ->
    let pinned =
      match Ast.store_constants test x with a :: _ -> a | [] -> 0
    in
    let condition =
      exists (test.Ast.condition.atoms @ [ loc x pinned ])
    in
    Some
      (Ast.make ~doc:test.Ast.doc
         ~name:(test.Ast.name ^ suffix)
         ~init:test.Ast.init
         ~threads:
           (Array.to_list (Array.map Array.to_list test.Ast.threads))
         ~condition ())

let extended_88 =
  let convertible = List.map (fun e -> (e.test, true)) suite in
  let named = List.map (fun t -> (t, false)) non_convertible in
  let generated = List.map (fun t -> (t, false)) generated_non_convertible in
  let pool = convertible @ named @ generated in
  let need = 88 - List.length pool in
  let padding =
    List.filteri (fun i _ -> i < need)
      (List.filter_map
         (fun e ->
           Option.map (fun t -> (t, false)) (memory_variant "+mem" e))
         suite
      @ List.filter_map
          (fun e ->
            Option.map (fun t -> (t, false)) (memory_variant "+mem2" e))
          suite)
  in
  List.filteri (fun i _ -> i < 88) (pool @ padding)

(* --- Persistent-memory suite ------------------------------------------- *)

type pm_entry = { pm_test : Ast.t; holds_epoch : bool; holds_eager : bool }

let fl x = Ast.Flush x
let d = Ast.Drain

let pm_def ?doc name threads ~assumes ~requires ~holds_epoch ~holds_eager =
  {
    pm_test =
      Ast.make ?doc ~name ~threads ~condition:(exists [])
        ~post_crash:{ Ast.assumes; requires } ();
    holds_epoch;
    holds_eager;
  }

let pm_suite =
  [
    (* The canonical epoch-ordering shape: each store is flushed and
       drained before the next epoch begins, so the second store can never
       persist without the first.  The eager bug lets the younger flush
       overtake the older one. *)
    pm_def "pm-epoch-order"
      ~doc:"x persists before y: each epoch is drained before the next"
      [ [ w "x" 1; fl "x"; d; w "y" 1; fl "y"; d ] ]
      ~assumes:[ ("y", 1) ] ~requires:[ ("x", 1) ] ~holds_epoch:true
      ~holds_eager:false;
    (* Same discipline but the last flush is never drained: correct epoch
       ordering still protects it (it can only persist after the earlier
       drained epoch), while the eager bug does not. *)
    pm_def "pm-flush-before-fence"
      ~doc:"trailing undrained flush; earlier epoch already durable"
      [ [ w "x" 1; fl "x"; d; w "y" 1; fl "y" ] ]
      ~assumes:[ ("y", 1) ] ~requires:[ ("x", 1) ] ~holds_epoch:true
      ~holds_eager:false;
    (* A programming bug on any model: both flushes share one epoch, so a
       crash between them (or before the drain) can persist the pair torn. *)
    pm_def "pm-torn-pair"
      ~doc:"two flushes in one epoch: the pair can persist torn"
      [ [ w "x" 1; w "y" 1; fl "x"; fl "y"; d ] ]
      ~assumes:[ ("x", 1) ] ~requires:[ ("y", 1) ] ~holds_epoch:false
      ~holds_eager:false;
    (* A store alone is never durable: without a flush the persistence
       domain keeps the initial value under both models. *)
    pm_def "pm-unflushed"
      ~doc:"store without flush never persists"
      [ [ w "x" 1; d ] ]
      ~assumes:[] ~requires:[ ("x", 0) ] ~holds_epoch:true ~holds_eager:true;
    (* Epoch ordering across threads, under the crash-suite's canonical
       sequential schedule (thread 0 runs to completion before thread 1):
       y only flushes after thread 0's drain has committed x. *)
    pm_def "pm-2t-epoch-order"
      ~doc:"two threads, one epoch each; canonical schedule orders them"
      [ [ w "x" 1; fl "x"; d ]; [ w "y" 1; fl "y"; d ] ]
      ~assumes:[ ("y", 1) ] ~requires:[ ("x", 1) ] ~holds_epoch:true
      ~holds_eager:false;
  ]

let by_name =
  let table = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace table e.test.Ast.name e) suite;
  List.iter
    (fun t ->
      Hashtbl.replace table t.Ast.name { test = t; classification = Forbidden })
    non_convertible;
  List.iter
    (fun e ->
      (* The volatile condition of a PM test is the trivial [exists ()]. *)
      Hashtbl.replace table e.pm_test.Ast.name
        { test = e.pm_test; classification = Allowed })
    pm_suite;
  table

let find name = Hashtbl.find_opt by_name name

let find_exn name =
  match find name with Some e -> e.test | None -> raise Not_found

let all_names =
  List.map (fun e -> e.test.Ast.name) suite
  @ List.map (fun t -> t.Ast.name) non_convertible
  @ List.map (fun e -> e.pm_test.Ast.name) pm_suite

let find_pm name =
  List.find_opt (fun e -> e.pm_test.Ast.name = name) pm_suite

let sb = sb.test
let lb = lb.test
let podwr001 = podwr001.test
let mp = mp.test

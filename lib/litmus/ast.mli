(** Abstract syntax of litmus tests.

    A litmus test is a small multi-threaded program over shared memory
    locations, together with a final condition over the registers loaded by
    its threads (paper, Sec II-B).  The instruction set covers exactly what
    the x86-TSO suite needs: stores of positive constants, loads into
    registers, and [MFENCE].  Register-to-register or read-modify-write
    instructions are outside the scope of both the paper's suite and this
    reproduction.

    Persistent-memory tests additionally use [Flush]/[Drain] (writeback of a
    cache line to the persistence domain, and the fence that orders such
    writebacks) plus a {!post_crash} condition over the durable image. *)

type location = string
(** A shared memory location, e.g. ["x"].  All locations start at 0 unless
    overridden by the test's init section. *)

type instruction =
  | Store of location * int
      (** [Store (x, a)]: [\[x\] <- a].  [a] must be positive; 0 is reserved
          for the initial value. *)
  | Load of int * location
      (** [Load (r, x)]: [reg_{t,r} <- \[x\]] where [t] is the thread the
          instruction belongs to and [r] is a per-thread register index. *)
  | Mfence  (** Full store fence ([MFENCE]). *)
  | Flush of location
      (** [Flush x] ([CLFLUSH \[x\]]): request writeback of the current
          value of [x] to the persistence domain.  The writeback is only
          guaranteed durable after a subsequent [Drain]. *)
  | Drain
      (** [SFENCE]-as-drain: orders this thread's pending flushes — on
          completion every preceding [Flush] of the thread is durable.
          Volatile semantics are those of a full store fence. *)

type atom =
  | Reg_eq of int * int * int
      (** [Reg_eq (t, r, v)]: register [r] of thread [t] equals [v]. *)
  | Loc_eq of location * int
      (** Final value of a shared location equals [v].  Conditions with
          [Loc_eq] atoms make a test non-convertible (paper, Sec V-C). *)

type quantifier =
  | Exists  (** [exists (...)]: the condition is reachable. *)
  | Not_exists  (** [~exists (...)]. *)
  | Forall  (** [forall (...)]. *)

type condition = { quantifier : quantifier; atoms : atom list }
(** A final condition: a quantifier over a conjunction of atoms. *)

type post_crash = {
  assumes : (location * int) list;
      (** Antecedent over the persisted image; an empty list means "always". *)
  requires : (location * int) list;
      (** Consequent: whenever every [assumes] equation holds of a reachable
          persisted image, every [requires] equation must hold too. *)
}
(** A crash-consistency condition, written
    [after recovery x=1 => y=1]: for every crash point and every persisted
    image reachable there, [assumes] implies [requires]. *)

type t = {
  name : string;
  doc : string;  (** Free-form description, may be empty. *)
  init : (location * int) list;
      (** Non-zero initial values; locations not listed start at 0. *)
  threads : instruction array array;  (** [threads.(t).(i)]. *)
  condition : condition;
      (** The test's final condition; its conjunction is the {e target
          outcome} when the quantifier is [Exists] or [Not_exists]. *)
  post_crash : post_crash option;
      (** Crash-consistency condition, if the test has one. *)
}

(** {1 Accessors} *)

val thread_count : t -> int
(** The paper's [T]. *)

val load_threads : t -> int list
(** Indices of threads that perform at least one load, ascending.  The
    paper's load-performing threads; their count is [T_L]. *)

val load_thread_count : t -> int
(** The paper's [T_L]. *)

val loads_per_thread : t -> int array
(** [r_t] for every thread (0 for store-only threads). *)

val locations : t -> location list
(** All locations appearing in instructions, init, or post-crash atoms,
    sorted. *)

val uses_persistency : t -> bool
(** Whether the test contains [Flush]/[Drain] instructions or a post-crash
    condition — i.e. exercises the persistence domain at all. *)

val stores_to : t -> location -> (int * int * int) list
(** [stores_to t x] lists [(thread, instruction_index, constant)] for every
    store to [x], in (thread, index) order. *)

val store_constants : t -> location -> int list
(** Distinct constants stored to a location, sorted ascending.  Its length is
    the paper's [k_mem]. *)

val load_slot : t -> thread:int -> instr:int -> int
(** The ordinal of a load among its thread's loads (0-based); this is the
    [i] in the paper's [buf_t\[r_t * n + i\]].  Raises [Invalid_argument] if
    the instruction is not a load. *)

val register_load : t -> thread:int -> reg:int -> (int * location) option
(** The (instruction index, location) of the unique load writing register
    [reg] of [thread], if any. *)

val initial_value : t -> location -> int

(** {1 Validation} *)

type error =
  | Empty_test
  | Non_positive_store of int * location * int  (** thread, loc, constant *)
  | Duplicate_constant of location * int
      (** Two stores to the same location use the same constant; loaded
          values would be ambiguous (paper, Sec III-B). *)
  | Register_loaded_twice of int * int  (** thread, register *)
  | Condition_unknown_register of int * int
  | Condition_unknown_location of location
  | Condition_impossible_value of int * int * int
      (** thread, register, value: [v] is neither 0, the initial value of
          the loaded location, nor any constant stored to it. *)
  | Post_crash_unknown_location of location
  | Post_crash_impossible_value of location * int
      (** [v] is neither the initial value of the location nor any constant
          stored to it, so no persisted image can ever satisfy the atom. *)

val pp_error : Format.formatter -> error -> unit

val validate : t -> (unit, error) result
(** Structural well-formedness required by conversion: all store constants
    positive and pairwise distinct per location, each register loaded at most
    once, condition atoms refer to loaded registers / known locations and to
    storable values, and post-crash atoms refer to known locations with
    persistable values. *)

val make :
  ?doc:string ->
  ?init:(location * int) list ->
  ?post_crash:post_crash ->
  name:string ->
  threads:instruction list list ->
  condition:condition ->
  unit ->
  t
(** Convenience constructor; does not validate. *)

val equal : t -> t -> bool
val pp_instruction : Format.formatter -> instruction -> unit
val pp_atom : Format.formatter -> atom -> unit

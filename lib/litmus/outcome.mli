(** Outcomes of a litmus test (paper, Sec II-B1).

    An outcome is a conjunction of register conditions covering {e all} loads
    of the test; running one iteration yields exactly one outcome.  A test
    with loads [L_1 ... L_k] over locations with [k_mem] store constants has
    [prod_i (1 + k_{loc(L_i)})] possible outcomes. *)

type binding = { thread : int; reg : int; value : int }

type t = binding list
(** Bindings in (thread, reg) order, one per load of the test. *)

val loads : Ast.t -> (int * int * Ast.location) list
(** Every load of the test as [(thread, register, location)], in (thread,
    program position) order — the order in which {!all} binds values and in
    which per-thread [buf] arrays are filled. *)

val all : Ast.t -> t list
(** Every possible outcome, in lexicographic value order (initial value
    first, then store constants ascending).  The order is stable, so outcome
    indices can be used as labels across tools. *)

val of_condition : Ast.t -> (t, string) result
(** The outcome described by the test's own final condition: the condition's
    register atoms, extended to unconstrained loads by wildcarding — since an
    outcome must bind every load, a condition that leaves some loads
    unconstrained denotes a {e set} of outcomes; this returns the atoms as a
    partial outcome (bindings only for constrained registers).  Errors when
    the condition contains [Loc_eq] atoms (not expressible over registers,
    cf. non-convertible tests) or is not [Exists]/[Not_exists]. *)

val matches : partial:t -> t -> bool
(** [matches ~partial o]: every binding of [partial] appears in [o]. *)

val to_atoms : t -> Ast.atom list

val short_label : t -> string
(** Compact per-figure label, e.g. ["10"] for [reg0=1, reg1=0] — the style
    used by the paper's Fig 13. *)

val to_string : t -> string
(** Human-readable, e.g. ["0:r0=1 && 1:r0=0"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

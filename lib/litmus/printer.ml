let instruction_to_string = function
  | Ast.Store (x, a) -> Printf.sprintf "MOV [%s],$%d" x a
  | Ast.Load (r, x) -> Printf.sprintf "MOV %s,[%s]" (Parser.register_name r) x
  | Ast.Mfence -> "MFENCE"
  | Ast.Flush x -> Printf.sprintf "CLFLUSH [%s]" x
  | Ast.Drain -> "SFENCE"

let atom_to_string = function
  | Ast.Reg_eq (t, r, v) ->
    Printf.sprintf "%d:%s=%d" t (Parser.register_name r) v
  | Ast.Loc_eq (x, v) -> Printf.sprintf "%s=%d" x v

let condition_to_string cond =
  let quantifier =
    match cond.Ast.quantifier with
    | Ast.Exists -> "exists"
    | Ast.Not_exists -> "~exists"
    | Ast.Forall -> "forall"
  in
  Printf.sprintf "%s (%s)" quantifier
    (String.concat " /\\ " (List.map atom_to_string cond.Ast.atoms))

let post_crash_to_string pc =
  let side atoms =
    String.concat " /\\ "
      (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) atoms)
  in
  match pc.Ast.assumes with
  | [] -> Printf.sprintf "after recovery %s" (side pc.Ast.requires)
  | assumes ->
    Printf.sprintf "after recovery %s => %s" (side assumes)
      (side pc.Ast.requires)

let to_string test =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "X86 %s\n" test.Ast.name);
  if test.Ast.doc <> "" then
    Buffer.add_string buf (Printf.sprintf "\"%s\"\n" test.Ast.doc);
  let inits =
    List.map
      (fun x -> Printf.sprintf "%s=%d;" x (Ast.initial_value test x))
      (Ast.locations test)
  in
  Buffer.add_string buf (Printf.sprintf "{ %s }\n" (String.concat " " inits));
  let nthreads = Ast.thread_count test in
  let rows = Array.fold_left (fun acc p -> max acc (Array.length p)) 0 test.Ast.threads in
  let cell t i =
    if i < Array.length test.Ast.threads.(t) then
      instruction_to_string test.Ast.threads.(t).(i)
    else ""
  in
  let col_width t =
    let w = ref (String.length (Printf.sprintf "P%d" t)) in
    for i = 0 to rows - 1 do
      w := max !w (String.length (cell t i))
    done;
    !w
  in
  let widths = Array.init nthreads col_width in
  let emit_row cells =
    Buffer.add_char buf ' ';
    List.iteri
      (fun t c ->
        if t > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (Printf.sprintf "%-*s" widths.(t) c))
      cells;
    Buffer.add_string buf " ;\n"
  in
  emit_row (List.init nthreads (Printf.sprintf "P%d"));
  for i = 0 to rows - 1 do
    emit_row (List.init nthreads (fun t -> cell t i))
  done;
  Buffer.add_string buf (condition_to_string test.Ast.condition);
  Buffer.add_char buf '\n';
  (match test.Ast.post_crash with
  | None -> ()
  | Some pc ->
    Buffer.add_string buf (post_crash_to_string pc);
    Buffer.add_char buf '\n');
  Buffer.contents buf

let summary test =
  Printf.sprintf "%-14s [T=%d, TL=%d]  %s" test.Ast.name
    (Ast.thread_count test)
    (Ast.load_thread_count test)
    (condition_to_string test.Ast.condition)

(** Parser for the litmus7 x86 test format used by the diy suite — the input
    format of the paper's Converter (Sec V-A).  Example:

    {v
    X86 SB
    "Store Buffering"
    { x=0; y=0; }
     P0          | P1          ;
     MOV [x],$1  | MOV [y],$1  ;
     MOV EAX,[y] | MOV EAX,[x] ;
    exists (0:EAX=0 /\ 1:EAX=0)
    v}

    Supported instructions are [MOV \[x\],$n] (store), [MOV reg,\[x\]] (load),
    [MFENCE], and — for persistent-memory tests — [CLFLUSH \[x\]] (alias
    [FLUSH \[x\]]) and [SFENCE] (alias [DRAIN]), with registers
    EAX/EBX/ECX/EDX/ESI/EDI (or the RAX... forms).  A test may carry one
    post-crash clause after its condition:

    {v
    exists (0:EAX=1)
    after recovery y=1 => x=1
    v}

    This covers the whole x86-TSO suite the paper converts plus the PM
    extension; anything else is reported as an error rather than mis-parsed. *)

type error = {
  line : int;
  column : int option;
      (** 1-based source column of the offending token, when known (set for
          unknown instruction mnemonics). *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.t, error) result
(** Parse a complete test from a string. *)

val parse_file : string -> (Ast.t, error) result
(** Parse a test from a file path. *)

val register_index : string -> int option
(** Map an x86 register name (case-insensitive) to this library's per-thread
    register index: EAX/RAX -> 0, EBX/RBX -> 1, ... *)

val register_name : int -> string
(** Inverse of {!register_index} for indices 0..5; falls back to ["R<n>"]. *)

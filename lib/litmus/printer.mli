(** Pretty-printer back to the litmus7 x86 format; inverse of {!Parser}.
    [Parser.parse (Printer.to_string t)] reproduces [t] up to init entries
    with value 0 (which are implicit). *)

val to_string : Ast.t -> string
(** Render a complete test file. *)

val instruction_to_string : Ast.instruction -> string
(** litmus7 x86 syntax, e.g. ["MOV \[x\],$1"], ["MOV EAX,\[y\]"],
    ["MFENCE"]. *)

val condition_to_string : Ast.condition -> string
(** e.g. ["exists (0:EAX=0 /\\ 1:EAX=0)"]. *)

val post_crash_to_string : Ast.post_crash -> string
(** e.g. ["after recovery y=1 => x=1"]; no leading quantifier keyword. *)

val summary : Ast.t -> string
(** One-line human summary: name, [T], [T_L], target condition. *)

(** diy-style litmus test generation from relaxation cycles.

    The diy suite — the toolbox litmus7 belongs to, and the source of the
    paper's [safe]/[rfi]/[podwr] test families — synthesizes litmus tests
    from {e cycles} of relations: program-order edges within a thread and
    communication edges across threads.  A test generated from a cycle has
    a canonical target outcome that makes every communication edge of the
    cycle hold; the outcome is forbidden under a memory model exactly when
    the model preserves every program-order edge of the cycle (the cycle
    then being a happens-before cycle), and allowed as soon as one edge is
    relaxable.

    This module reproduces that construction for the models at hand:

    - [Pod (W, R)] is relaxable under TSO and PSO (store buffering);
    - [Pod (W, W)] is additionally relaxable under PSO;
    - [Fenced] edges are never relaxable;
    - communication edges ([Rfe], [Fre], [Wse]) are never relaxable here
      (single-copy-atomic substrate).

    Example: [PodWR Fre PodWR Fre] is the sb test; [PodWW Rfe PodRR Fre]
    is mp; [Wse] edges yield final-memory conditions and therefore
    non-convertible tests (paper, Sec V-C).

    The generator's prediction is cross-validated against the
    {!Perple_memmodel} checkers by the test suite. *)

type direction = W | R

type edge =
  | Pod of direction * direction
      (** Program order to the {e next} event, different location. *)
  | Fenced of direction * direction
      (** Program order with an [MFENCE] in between. *)
  | Rfe  (** External reads-from: a write feeding another thread's read. *)
  | Fre
      (** External from-read: a read older than another thread's write. *)
  | Wse  (** External write serialisation: coherence between writes. *)

val edge_of_string : string -> (edge, string) result
(** diy-ish names, case-insensitive: ["PodWR"], ["PodRW"], ["PodWW"],
    ["PodRR"], ["MFencedWR"] (etc.), ["Rfe"], ["Fre"], ["Wse"]. *)

val edge_to_string : edge -> string

val parse_cycle : string -> (edge list, string) result
(** Whitespace-separated edge names. *)

val of_cycle : name:string -> edge list -> (Ast.t, string) result
(** Build the litmus test realising the cycle.  Fails when the cycle is
    ill-formed: endpoint directions that do not chain, fewer than two
    communication edges, more threads or events than the instruction set
    supports, or location constraints that cannot be satisfied. *)

type prediction = { sc : bool; tso : bool; pso : bool }
(** Whether the target outcome is {e allowed} under each model. *)

val predict : edge list -> prediction
(** From cycle shape alone: allowed iff some program-order edge of the
    cycle is relaxable under the model. *)

val well_formed : edge list -> (unit, string) result

val random_cycle : Perple_util.Rng.t -> max_edges:int -> edge list
(** A random well-formed cycle with at least two communication edges and
    between 4 and [max_edges] edges.  Useful for property tests. *)

val named_cycles : (string * string) list
(** A catalog of classic cycles and their diy spellings, e.g.
    [("sb", "PodWR Fre PodWR Fre")]. *)

type location = string

type instruction =
  | Store of location * int
  | Load of int * location
  | Mfence
  | Flush of location
  | Drain

type atom = Reg_eq of int * int * int | Loc_eq of location * int

type quantifier = Exists | Not_exists | Forall

type condition = { quantifier : quantifier; atoms : atom list }

type post_crash = {
  assumes : (location * int) list;
  requires : (location * int) list;
}

type t = {
  name : string;
  doc : string;
  init : (location * int) list;
  threads : instruction array array;
  condition : condition;
  post_crash : post_crash option;
}

let thread_count t = Array.length t.threads

let thread_has_load program =
  Array.exists
    (function Load _ -> true | Store _ | Mfence | Flush _ | Drain -> false)
    program

let load_threads t =
  let rec collect i =
    if i >= thread_count t then []
    else if thread_has_load t.threads.(i) then i :: collect (i + 1)
    else collect (i + 1)
  in
  collect 0

let load_thread_count t = List.length (load_threads t)

let loads_per_thread t =
  Array.map
    (fun program ->
      Array.fold_left
        (fun acc i ->
          match i with
          | Load _ -> acc + 1
          | Store _ | Mfence | Flush _ | Drain -> acc)
        0 program)
    t.threads

module String_set = Set.Make (String)

let locations t =
  let set = ref String_set.empty in
  let note x = set := String_set.add x !set in
  List.iter (fun (x, _) -> note x) t.init;
  Array.iter
    (Array.iter (function
      | Store (x, _) | Load (_, x) | Flush x -> note x
      | Mfence | Drain -> ()))
    t.threads;
  (match t.post_crash with
  | None -> ()
  | Some pc ->
    List.iter (fun (x, _) -> note x) pc.assumes;
    List.iter (fun (x, _) -> note x) pc.requires);
  String_set.elements !set

let uses_persistency t =
  t.post_crash <> None
  || Array.exists
       (Array.exists (function
         | Flush _ | Drain -> true
         | Store _ | Load _ | Mfence -> false))
       t.threads

let stores_to t x =
  let acc = ref [] in
  Array.iteri
    (fun thread program ->
      Array.iteri
        (fun i instr ->
          match instr with
          | Store (y, a) when y = x -> acc := (thread, i, a) :: !acc
          | Store _ | Load _ | Mfence | Flush _ | Drain -> ())
        program)
    t.threads;
  List.rev !acc

let store_constants t x =
  List.sort_uniq compare (List.map (fun (_, _, a) -> a) (stores_to t x))

let load_slot t ~thread ~instr =
  let program = t.threads.(thread) in
  (match program.(instr) with
  | Load _ -> ()
  | Store _ | Mfence | Flush _ | Drain ->
    invalid_arg "Ast.load_slot: not a load");
  let slot = ref 0 in
  for i = 0 to instr - 1 do
    match program.(i) with
    | Load _ -> incr slot
    | Store _ | Mfence | Flush _ | Drain -> ()
  done;
  !slot

let register_load t ~thread ~reg =
  let program = t.threads.(thread) in
  let found = ref None in
  Array.iteri
    (fun i instr ->
      match instr with
      | Load (r, x) when r = reg && !found = None -> found := Some (i, x)
      | Load _ | Store _ | Mfence | Flush _ | Drain -> ())
    program;
  !found

let initial_value t x =
  Option.value ~default:0 (List.assoc_opt x t.init)

type error =
  | Empty_test
  | Non_positive_store of int * location * int
  | Duplicate_constant of location * int
  | Register_loaded_twice of int * int
  | Condition_unknown_register of int * int
  | Condition_unknown_location of location
  | Condition_impossible_value of int * int * int
  | Post_crash_unknown_location of location
  | Post_crash_impossible_value of location * int

let pp_error ppf = function
  | Empty_test -> Format.fprintf ppf "test has no threads or no instructions"
  | Non_positive_store (t, x, a) ->
    Format.fprintf ppf "thread %d stores non-positive constant %d to [%s]" t a
      x
  | Duplicate_constant (x, a) ->
    Format.fprintf ppf "constant %d is stored to [%s] by two instructions" a x
  | Register_loaded_twice (t, r) ->
    Format.fprintf ppf "register %d:r%d is the target of two loads" t r
  | Condition_unknown_register (t, r) ->
    Format.fprintf ppf "condition mentions %d:r%d which no load writes" t r
  | Condition_unknown_location x ->
    Format.fprintf ppf "condition mentions unknown location [%s]" x
  | Condition_impossible_value (t, r, v) ->
    Format.fprintf ppf
      "condition %d:r%d=%d: no store writes %d to the loaded location" t r v v
  | Post_crash_unknown_location x ->
    Format.fprintf ppf "post-crash condition mentions unknown location [%s]" x
  | Post_crash_impossible_value (x, v) ->
    Format.fprintf ppf
      "post-crash condition [%s]=%d: no store writes %d to [%s]" x v v x

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    if
      thread_count t = 0
      || Array.for_all (fun p -> Array.length p = 0) t.threads
    then Error Empty_test
    else Ok ()
  in
  let* () =
    let err = ref None in
    Array.iteri
      (fun thread program ->
        Array.iter
          (fun instr ->
            match instr with
            | Store (x, a) when a <= 0 && !err = None ->
              err := Some (Non_positive_store (thread, x, a))
            | Store _ | Load _ | Mfence | Flush _ | Drain -> ())
          program)
      t.threads;
    match !err with Some e -> Error e | None -> Ok ()
  in
  let* () =
    (* Distinct store constants per location. *)
    let rec check_locs = function
      | [] -> Ok ()
      | x :: rest ->
        let constants = List.map (fun (_, _, a) -> a) (stores_to t x) in
        let sorted = List.sort compare constants in
        let rec dup = function
          | a :: (b :: _ as rest) ->
            if a = b then Some a else dup rest
          | [ _ ] | [] -> None
        in
        (match dup sorted with
        | Some a -> Error (Duplicate_constant (x, a))
        | None -> check_locs rest)
    in
    check_locs (locations t)
  in
  let* () =
    let err = ref None in
    Array.iteri
      (fun thread program ->
        let seen = Hashtbl.create 4 in
        Array.iter
          (fun instr ->
            match instr with
            | Load (r, _) ->
              if Hashtbl.mem seen r && !err = None then
                err := Some (Register_loaded_twice (thread, r))
              else Hashtbl.replace seen r ()
            | Store _ | Mfence | Flush _ | Drain -> ())
          program)
      t.threads;
    match !err with Some e -> Error e | None -> Ok ()
  in
  let locs = locations t in
  let rec check_atoms = function
    | [] -> Ok ()
    | Loc_eq (x, _) :: rest ->
      if List.mem x locs then check_atoms rest
      else Error (Condition_unknown_location x)
    | Reg_eq (thread, reg, v) :: rest ->
      if thread < 0 || thread >= thread_count t then
        Error (Condition_unknown_register (thread, reg))
      else begin
        match register_load t ~thread ~reg with
        | None -> Error (Condition_unknown_register (thread, reg))
        | Some (_, x) ->
          if v = initial_value t x || List.mem v (store_constants t x) then
            check_atoms rest
          else Error (Condition_impossible_value (thread, reg, v))
      end
  in
  let* () = check_atoms t.condition.atoms in
  match t.post_crash with
  | None -> Ok ()
  | Some pc ->
    let rec check_pm = function
      | [] -> Ok ()
      | (x, v) :: rest ->
        if not (List.mem x locs) then Error (Post_crash_unknown_location x)
        else if v = initial_value t x || List.mem v (store_constants t x)
        then check_pm rest
        else Error (Post_crash_impossible_value (x, v))
    in
    let* () = check_pm pc.assumes in
    check_pm pc.requires

let make ?(doc = "") ?(init = []) ?post_crash ~name ~threads ~condition () =
  {
    name;
    doc;
    init;
    threads = Array.of_list (List.map Array.of_list threads);
    condition;
    post_crash;
  }

let post_crash_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    List.sort compare a.assumes = List.sort compare b.assumes
    && List.sort compare a.requires = List.sort compare b.requires
  | None, Some _ | Some _, None -> false

let equal a b =
  a.name = b.name && a.doc = b.doc
  && List.sort compare a.init = List.sort compare b.init
  && a.threads = b.threads
  && a.condition.quantifier = b.condition.quantifier
  && a.condition.atoms = b.condition.atoms
  && post_crash_equal a.post_crash b.post_crash

let pp_instruction ppf = function
  | Store (x, a) -> Format.fprintf ppf "[%s] <- %d" x a
  | Load (r, x) -> Format.fprintf ppf "r%d <- [%s]" r x
  | Mfence -> Format.fprintf ppf "mfence"
  | Flush x -> Format.fprintf ppf "flush [%s]" x
  | Drain -> Format.fprintf ppf "drain"

let pp_atom ppf = function
  | Reg_eq (t, r, v) -> Format.fprintf ppf "%d:r%d=%d" t r v
  | Loc_eq (x, v) -> Format.fprintf ppf "[%s]=%d" x v

type error = { line : int; column : int option; message : string }

let pp_error ppf e =
  match e.column with
  | None -> Format.fprintf ppf "line %d: %s" e.line e.message
  | Some c -> Format.fprintf ppf "line %d, column %d: %s" e.line c e.message

exception Parse_error of error

let fail line fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line; column = None; message }))
    fmt

let fail_at line column fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line; column = Some column; message }))
    fmt

let registers = [| "EAX"; "EBX"; "ECX"; "EDX"; "ESI"; "EDI" |]

let register_index name =
  let up = String.uppercase_ascii name in
  (* Accept the 64-bit spellings too. *)
  let up =
    if String.length up = 3 && up.[0] = 'R' then "E" ^ String.sub up 1 2
    else up
  in
  let rec find i =
    if i >= Array.length registers then None
    else if registers.(i) = up then Some i
    else find (i + 1)
  in
  find 0

let register_name i =
  if i >= 0 && i < Array.length registers then registers.(i)
  else Printf.sprintf "R%d" i

let trim = String.trim

let split_on_string ~sep s =
  let sep_len = String.length sep in
  let rec go start acc =
    match
      if start > String.length s - sep_len then None
      else begin
        let rec search i =
          if i > String.length s - sep_len then None
          else if String.sub s i sep_len = sep then Some i
          else search (i + 1)
        in
        search start
      end
    with
    | Some i -> go (i + sep_len) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []

(* --- Instruction parsing ------------------------------------------------ *)

(* "[x]" → "x"; a bare name passes through.  An unterminated bracket or an
   empty bracket pair is a hard error — silently producing an empty-named
   location would make every later layer misattribute its accesses. *)
let unbracket line s =
  if String.length s >= 1 && s.[0] = '[' then begin
    if String.length s < 2 || s.[String.length s - 1] <> ']' then
      fail line "unterminated bracket in %S" s;
    let inner = trim (String.sub s 1 (String.length s - 2)) in
    if inner = "" then fail line "empty location name in %S" s;
    inner
  end
  else s

let parse_operand line s =
  let s = trim s in
  if s = "" then fail line "empty operand"
  else if s.[0] = '[' then `Mem (unbracket line s)
  else if s.[0] = '$' then begin
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> `Imm n
    | None -> fail line "bad immediate %S" s
  end
  else begin
    match register_index s with
    | Some r -> `Reg r
    | None -> fail line "unknown register %S" s
  end

(* [column] is the 1-based source column of the instruction's first
   character, so unknown-mnemonic errors point at the offending token. *)
let parse_instruction ?(column = 1) line s =
  let s = trim s in
  let mnemonic, operands =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, trim (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let upper = String.uppercase_ascii mnemonic in
  let no_operands instr =
    if operands = "" then instr
    else fail line "%s takes no operands, got %S" upper operands
  in
  match upper with
  | "MFENCE" -> no_operands Ast.Mfence
  | "SFENCE" | "DRAIN" -> no_operands Ast.Drain
  | "CLFLUSH" | "FLUSH" -> (
    match parse_operand line operands with
    | `Mem x -> Ast.Flush x
    | `Imm _ | `Reg _ ->
      fail line "%s needs a memory operand, got %S" upper operands)
  | "MOV" -> (
    match split_on_string ~sep:"," operands with
    | [ dst; src ] -> (
      match (parse_operand line dst, parse_operand line src) with
      | `Mem x, `Imm n -> Ast.Store (x, n)
      | `Reg r, `Mem x -> Ast.Load (r, x)
      | `Mem _, `Reg _ ->
        fail line "store-from-register is not supported (constants only): %S"
          s
      | `Reg _, `Imm _ | `Reg _, `Reg _ | `Mem _, `Mem _ | `Imm _, _ ->
        fail line "unsupported MOV form %S" s)
    | _ -> fail line "MOV needs two comma-separated operands: %S" s)
  | _ ->
    fail_at line column
      "unsupported instruction mnemonic %S (expected MOV, MFENCE, \
       CLFLUSH/FLUSH or SFENCE/DRAIN)"
      mnemonic

(* --- Init section ------------------------------------------------------- *)

let parse_init line s =
  (* "x=0; y=1;" — also tolerate "int x = 0" type annotations. *)
  let entries =
    List.filter (fun e -> trim e <> "") (String.split_on_char ';' s)
  in
  let bindings =
    List.map
      (fun entry ->
        let entry = trim entry in
        let entry =
          if String.length entry > 4 && String.sub entry 0 4 = "int " then
            trim (String.sub entry 4 (String.length entry - 4))
          else entry
        in
        if String.contains entry ':' then
          fail line "register initialisation is not supported: %S" entry;
        match String.split_on_char '=' entry with
        | [ loc; value ] -> (
          (* Tolerate "[x]" spelling in init. *)
          let loc = unbracket line (trim loc) in
          if loc = "" then fail line "empty location name in %S" entry;
          match int_of_string_opt (trim value) with
          | Some v -> (loc, v)
          | None -> fail line "bad init value in %S" entry)
        | _ -> fail line "bad init entry %S" entry)
      entries
  in
  (* "x=0; x=1;" is a contradiction, not a last-wins override. *)
  let rec check_dups = function
    | [] -> ()
    | (loc, _) :: rest ->
      if List.mem_assoc loc rest then
        fail line "duplicate init binding for [%s]" loc;
      check_dups rest
  in
  check_dups bindings;
  bindings

(* --- Condition ---------------------------------------------------------- *)

let parse_atom line s =
  let s = trim s in
  match split_on_string ~sep:"=" s with
  | [ lhs; rhs ] -> (
    let lhs = trim lhs and rhs = trim rhs in
    let value =
      match int_of_string_opt rhs with
      | Some v -> v
      | None -> fail line "bad condition value %S" rhs
    in
    match String.index_opt lhs ':' with
    | Some i -> (
      let thread_str = String.sub lhs 0 i in
      let reg_str = String.sub lhs (i + 1) (String.length lhs - i - 1) in
      match (int_of_string_opt thread_str, register_index (trim reg_str)) with
      | Some thread, Some reg -> Ast.Reg_eq (thread, reg, value)
      | None, _ -> fail line "bad thread id %S" thread_str
      | _, None -> fail line "unknown register %S" reg_str)
    | None ->
      let loc = unbracket line lhs in
      if loc = "" then fail line "empty location name in %S" s;
      Ast.Loc_eq (loc, value))
  | _ -> fail line "bad condition atom %S" s

let parse_condition line s =
  let s = trim s in
  let quantifier, rest =
    let try_prefix prefix q =
      let n = String.length prefix in
      if
        String.length s >= n
        && String.lowercase_ascii (String.sub s 0 n) = prefix
      then Some (q, trim (String.sub s n (String.length s - n)))
      else None
    in
    match
      List.find_map
        (fun (p, q) -> try_prefix p q)
        [
          ("~exists", Ast.Not_exists);
          ("exists", Ast.Exists);
          ("forall", Ast.Forall);
        ]
    with
    | Some x -> x
    | None -> fail line "expected exists/~exists/forall, got %S" s
  in
  let rest = trim rest in
  let rest =
    if String.length rest >= 2 && rest.[0] = '(' then begin
      if rest.[String.length rest - 1] <> ')' then
        fail line "unterminated condition";
      String.sub rest 1 (String.length rest - 2)
    end
    else rest
  in
  if String.length rest > 0 && String.contains rest '\\' = false
     && String.length (trim rest) = 0
  then { Ast.quantifier; atoms = [] }
  else begin
    let atoms =
      List.map (parse_atom line)
        (List.filter
           (fun s -> trim s <> "")
           (split_on_string ~sep:"/\\" rest))
    in
    { Ast.quantifier; atoms }
  end

(* --- Post-crash condition ----------------------------------------------- *)

let parse_pm_side line s =
  List.map
    (fun a ->
      match parse_atom line a with
      | Ast.Loc_eq (x, v) -> (x, v)
      | Ast.Reg_eq _ ->
        fail line "post-crash atoms must constrain locations, got %S" (trim a))
    (List.filter (fun s -> trim s <> "") (split_on_string ~sep:"/\\" s))

(* "after recovery[,] [A [/\ A']] => B [/\ B']" or "after recovery[,] B". *)
let parse_post_crash line s =
  let s = trim s in
  let strip_word word s =
    let n = String.length word in
    if
      String.length s >= n
      && String.lowercase_ascii (String.sub s 0 n) = word
    then Some (trim (String.sub s n (String.length s - n)))
    else None
  in
  let rest =
    match strip_word "after" s with
    | None -> fail line "post-crash clause must start with 'after recovery'"
    | Some r -> (
      match strip_word "recovery" r with
      | None -> fail line "expected 'recovery' after 'after' in %S" s
      | Some r -> r)
  in
  let rest =
    if String.length rest > 0 && rest.[0] = ',' then
      trim (String.sub rest 1 (String.length rest - 1))
    else rest
  in
  let assumes_text, requires_text =
    match split_on_string ~sep:"=>" rest with
    | [ only ] -> ("", only)
    | [ lhs; rhs ] -> (lhs, rhs)
    | _ -> fail line "post-crash clause has more than one '=>'"
  in
  let requires = parse_pm_side line requires_text in
  if requires = [] then
    fail line "post-crash clause needs at least one consequent atom";
  { Ast.assumes = parse_pm_side line assumes_text; requires }

(* --- Whole test --------------------------------------------------------- *)

(* Remove a trailing ';' (and trailing blanks) without disturbing leading
   whitespace, so cell columns still refer to the original source line. *)
let strip_semicolon line s =
  let blank c = c = ' ' || c = '\t' || c = '\r' in
  let rec last i = if i >= 0 && blank s.[i] then last (i - 1) else i in
  let e = last (String.length s - 1) in
  if e < 0 then fail line "empty program row"
  else if s.[e] = ';' then String.sub s 0 e
  else String.sub s 0 (e + 1)

(* Split a program row on '|', yielding [(column, cell)] with [column] the
   1-based position of the cell's first non-blank character. *)
let split_columns s =
  let n = String.length s in
  let blank c = c = ' ' || c = '\t' in
  let rec cells start acc =
    let stop =
      match String.index_from_opt s start '|' with
      | Some i when i < n -> i
      | _ -> n
    in
    let cell = trim (String.sub s start (stop - start)) in
    let rec first_nonblank i =
      if i >= stop then start else if blank s.[i] then first_nonblank (i + 1) else i
    in
    let acc = (first_nonblank start + 1, cell) :: acc in
    if stop >= n then List.rev acc else cells (stop + 1) acc
  in
  if n = 0 then [ (1, "") ] else cells 0 []

let parse source =
  try
    let lines = String.split_on_char '\n' source in
    let numbered = List.mapi (fun i l -> (i + 1, l)) lines in
    let significant =
      List.filter (fun (_, l) -> trim l <> "") numbered
    in
    match significant with
    | [] -> Error { line = 1; column = None; message = "empty input" }
    | (hline, header) :: rest ->
      let name =
        match String.split_on_char ' ' (trim header) with
        | arch :: name_parts when String.uppercase_ascii arch = "X86" ->
          let name = trim (String.concat " " name_parts) in
          if name = "" then fail hline "missing test name in header" else name
        | _ -> fail hline "header must be 'X86 <name>', got %S" header
      in
      (* Optional doc string and metadata lines before the init block. *)
      let doc = ref "" in
      let rec skip_meta = function
        | [] -> fail hline "missing init section '{ ... }'"
        | (line, l) :: rest ->
          let l = trim l in
          if l.[0] = '{' then (line, l, rest)
          else begin
            if l.[0] = '"' && !doc = "" then begin
              let stripped = String.sub l 1 (String.length l - 1) in
              let stripped =
                if
                  String.length stripped > 0
                  && stripped.[String.length stripped - 1] = '"'
                then String.sub stripped 0 (String.length stripped - 1)
                else stripped
              in
              doc := stripped
            end;
            skip_meta rest
          end
      in
      let init_line, init_first, rest = skip_meta rest in
      (* Gather init text until the closing '}'. *)
      let rec gather_init acc line text rest =
        match String.index_opt text '}' with
        | Some i ->
          let inner = String.sub text 0 i in
          (acc ^ inner, rest)
        | None -> (
          match rest with
          | [] -> fail line "unterminated init section"
          | (line', text') :: rest' ->
            gather_init (acc ^ text ^ " ") line' (trim text') rest')
      in
      let init_body = String.sub init_first 1 (String.length init_first - 1) in
      let init_text, rest = gather_init "" init_line init_body rest in
      let init =
        List.filter (fun (_, v) -> v <> 0) (parse_init init_line init_text)
      in
      (* Program rows until the condition line. *)
      let is_condition_line l =
        let low = String.lowercase_ascii (trim l) in
        List.exists
          (fun p ->
            String.length low >= String.length p
            && String.sub low 0 (String.length p) = p)
          [ "exists"; "~exists"; "forall"; "locations"; "after " ]
      in
      let rec split_program acc = function
        | [] -> (List.rev acc, [])
        | ((_, l) :: _) as rest when is_condition_line l -> (List.rev acc, rest)
        | row :: rest -> split_program (row :: acc) rest
      in
      let program_rows, tail = split_program [] rest in
      (match program_rows with
      | [] -> fail init_line "missing program section"
      | (header_line, header_row) :: instr_rows ->
        let header_cells =
          List.map snd
            (split_columns (strip_semicolon header_line header_row))
        in
        let nthreads = List.length header_cells in
        List.iteri
          (fun i cell ->
            let expected = Printf.sprintf "P%d" i in
            if String.uppercase_ascii cell <> expected then
              fail header_line "expected thread header %s, got %S" expected
                cell)
          header_cells;
        let programs = Array.make nthreads [] in
        List.iter
          (fun (line, row) ->
            let cells = split_columns (strip_semicolon line row) in
            if List.length cells <> nthreads then
              fail line "row has %d columns, expected %d" (List.length cells)
                nthreads;
            List.iteri
              (fun i (column, cell) ->
                if cell <> "" then
                  programs.(i) <-
                    parse_instruction ~column line cell :: programs.(i))
              cells)
          instr_rows;
        let threads =
          Array.map (fun instrs -> Array.of_list (List.rev instrs)) programs
        in
        (* Skip 'locations' lines; split off the post-crash clause; the
           remaining lines form the (possibly multi-line) condition. *)
        let is_locations l =
          let low = String.lowercase_ascii (trim l) in
          String.length low >= 9 && String.sub low 0 9 = "locations"
        in
        let is_recovery l =
          let low = String.lowercase_ascii (trim l) in
          String.length low >= 6 && String.sub low 0 6 = "after "
        in
        let tail = List.filter (fun (_, l) -> not (is_locations l)) tail in
        let recovery_lines, cond_lines =
          List.partition (fun (_, l) -> is_recovery l) tail
        in
        let post_crash =
          match recovery_lines with
          | [] -> None
          | [ (line, l) ] -> Some (parse_post_crash line (trim l))
          | _ :: (line, _) :: _ -> fail line "duplicate post-crash clause"
        in
        let cond_line, cond_text =
          match cond_lines with
          | [] -> fail hline "missing final condition"
          | (line, l) :: rest ->
            ( line,
              String.concat " "
                (trim l :: List.map (fun (_, s) -> trim s) rest) )
        in
        let condition = parse_condition cond_line cond_text in
        Ok { Ast.name; doc = !doc; init; threads; condition; post_crash })
  with Parse_error e -> Error e

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

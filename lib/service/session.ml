(* Daemon-side session state machine.  Pure protocol discipline over
   virtual time; all I/O and scheduling lives in the driver. *)

module Framed = Perple_util.Framed
module Metrics = Perple_util.Metrics
module Trace = Perple_util.Trace_event

type config = {
  heartbeat_every : int;
  liveness_timeout : int;
  max_outbound : int;
  submit_burst : int;
  submit_refill_every : int;
}

let default_config =
  { heartbeat_every = 1_000; liveness_timeout = 10_000;
    max_outbound = 4 * 1024 * 1024; submit_burst = 8;
    submit_refill_every = 250 }

type terminal =
  | Completed
  | Quarantined of string
  | Timed_out
  | Disconnected

let terminal_name = function
  | Completed -> "completed"
  | Quarantined _ -> "quarantined"
  | Timed_out -> "timed-out"
  | Disconnected -> "disconnected"

type event =
  | Hello_received of string
  | Submitted of Wire.spec
  | Cancel_requested of string
  | Worker_joined of string
  | Lease_renewed of { campaign : string; shard : int; epoch : int }
  | Shard_done of {
      campaign : string;
      shard : int;
      epoch : int;
      records : (int * string) list;
    }
  | Shard_faulted of { campaign : string; shard : int; epoch : int; reason : string }
  | Terminated of terminal

type state = Expect_hello | Active | Closed of terminal

type t = {
  sid : int;
  config : config;
  inbound : Framed.buf;
  outbound : Framed.buf;
  mutable state : state;
  mutable role : [ `Client | `Worker ];
  mutable last_seen : int;  (** Clock of the most recent inbound bytes. *)
  mutable last_beat : int;  (** Clock of our most recent heartbeat. *)
  mutable missed_marked : bool;
      (** One "heartbeats missed" tick per silent stretch, not per tick. *)
  mutable tokens : int;  (** Submit tokens left in this refill window. *)
  mutable refill_at : int;  (** Clock of the next token grant. *)
  span_start : float;  (** Wall-clock trace anchor; observation only. *)
}

let create ?(config = default_config) ~id ~now () =
  Metrics.incr "service.sessions_opened";
  {
    sid = id;
    config;
    inbound = Framed.create ();
    outbound = Framed.create ();
    state = Expect_hello;
    role = `Client;
    last_seen = now;
    last_beat = now;
    missed_marked = false;
    tokens = config.submit_burst;
    refill_at = now + config.submit_refill_every;
    span_start = Trace.now ();
  }

let id t = t.sid
let role t = t.role

let role_name t = match t.role with `Client -> "client" | `Worker -> "worker"

(* The bucket refills one token per [submit_refill_every] ticks up to
   [submit_burst]; while full, the next grant is re-anchored to [now] so
   an idle connection never banks more than one burst. *)
let refill t ~now =
  if t.tokens >= t.config.submit_burst then
    t.refill_at <- now + t.config.submit_refill_every
  else
    while t.tokens < t.config.submit_burst && now >= t.refill_at do
      t.tokens <- t.tokens + 1;
      t.refill_at <-
        (if t.tokens < t.config.submit_burst then
           t.refill_at + t.config.submit_refill_every
         else now + t.config.submit_refill_every)
    done

let terminal t = match t.state with Closed c -> Some c | _ -> None
let active t = t.state = Active

let enqueue t frame =
  Framed.add_string t.outbound (Wire.encode frame);
  Metrics.incr "service.frames_out"

let send t frame =
  match t.state with
  | Closed _ -> `Ok (* dropped: the peer is gone or being flushed out *)
  | Expect_hello | Active ->
    if
      Framed.length t.outbound + String.length (Wire.encode frame)
      > t.config.max_outbound
    then begin
      Metrics.incr "service.backpressure_stalls";
      `Overflow
    end
    else begin
      enqueue t frame;
      `Ok
    end

let send_control t frame = enqueue t frame

let close t reason =
  match t.state with
  | Closed _ -> []
  | _ ->
    t.state <- Closed reason;
    Metrics.incr
      (match reason with
      | Completed -> "service.sessions_completed"
      | Quarantined _ -> "service.sessions_quarantined"
      | Timed_out -> "service.sessions_timed_out"
      | Disconnected -> "service.sessions_disconnected");
    Trace.complete ~name:"service.session" ~since:t.span_start
      ~args:
        [
          ("id", Trace.Int t.sid);
          ("terminal", Trace.String (terminal_name reason));
        ]
      ();
    [ Terminated reason ]

let quarantine t reason =
  (* Tell the peer why, then stop listening to it.  The Error frame
     bypasses backpressure: a session must always be able to explain its
     own death. *)
  send_control t (Wire.Error { code = Wire.Protocol; message = reason });
  close t (Quarantined reason)

let client_only t frame =
  quarantine t
    (Printf.sprintf "client-only frame %s from worker" (Wire.frame_name frame))

let worker_only t frame =
  quarantine t
    (Printf.sprintf "worker-only frame %s from client" (Wire.frame_name frame))

let on_frame t ~now frame =
  Metrics.incr "service.frames_in";
  match (t.state, frame) with
  | Closed _, _ -> []
  | Expect_hello, Wire.Hello { version; peer } ->
    if version <> Wire.protocol_version then
      quarantine t
        (Printf.sprintf "unsupported protocol version %d (want %d)" version
           Wire.protocol_version)
    else begin
      t.state <- Active;
      enqueue t (Wire.Hello { version = Wire.protocol_version; peer = "perpled" });
      [ Hello_received peer ]
    end
  | Expect_hello, Wire.Worker_hello { version; worker } ->
    if version <> Wire.protocol_version then
      quarantine t
        (Printf.sprintf "unsupported protocol version %d (want %d)" version
           Wire.protocol_version)
    else begin
      t.state <- Active;
      t.role <- `Worker;
      enqueue t (Wire.Hello { version = Wire.protocol_version; peer = "perpled" });
      Metrics.incr "service.workers_joined";
      [ Worker_joined worker ]
    end
  | Expect_hello, f ->
    quarantine t (Printf.sprintf "expected hello, got %s" (Wire.frame_name f))
  | Active, (Wire.Hello _ | Wire.Worker_hello _) -> quarantine t "duplicate hello"
  | Active, Wire.Submit spec ->
    if t.role = `Worker then client_only t frame
    else if t.tokens > 0 then begin
      t.tokens <- t.tokens - 1;
      [ Submitted spec ]
    end
    else begin
      (* Declined, not quarantined: a chatty client is throttled with a
         concrete retry hint and keeps its session. *)
      Metrics.incr "service.submits_throttled";
      send_control t (Wire.Busy { retry_after = max 1 (t.refill_at - now) });
      []
    end
  | Active, Wire.Cancel { campaign } ->
    if t.role = `Worker then client_only t frame else [ Cancel_requested campaign ]
  | Active, Wire.Lease_renew { campaign; shard; epoch; sent_at = _ } ->
    if t.role = `Client then worker_only t frame
    else [ Lease_renewed { campaign; shard; epoch } ]
  | Active, Wire.Shard_result { campaign; shard; epoch; records } ->
    if t.role = `Client then worker_only t frame
    else [ Shard_done { campaign; shard; epoch; records } ]
  | Active, Wire.Shard_failed { campaign; shard; epoch; reason } ->
    if t.role = `Client then worker_only t frame
    else [ Shard_faulted { campaign; shard; epoch; reason } ]
  | Active, Wire.Heartbeat _ -> []
  | Active, Wire.Drain -> close t Completed
  | ( Active,
      ( Wire.Accepted _ | Wire.Run_record _ | Wire.Metrics_chunk _ | Wire.Error _
      | Wire.Lease _ | Wire.Revoke _ | Wire.Busy _ | Wire.Progress _ ) ) ->
    quarantine t
      (Printf.sprintf "server-only frame %s from %s" (Wire.frame_name frame)
         (role_name t))

let feed t ~now bytes =
  match t.state with
  | Closed _ -> [] (* quarantined or gone: input is discarded *)
  | _ ->
    if String.length bytes > 0 then begin
      t.last_seen <- now;
      t.missed_marked <- false
    end;
    refill t ~now;
    Framed.add_string t.inbound bytes;
    let rec drain acc =
      match t.state with
      | Closed _ -> acc
      | _ -> (
        match Wire.next_frame t.inbound with
        | `Need_more -> acc
        | `Corrupt reason ->
          acc @ quarantine t (Printf.sprintf "corrupt frame: %s" reason)
        | `Frame f -> drain (acc @ on_frame t ~now f))
    in
    drain []

let eof t ~now =
  ignore now;
  match t.state with Closed _ -> [] | _ -> close t Disconnected

let tick t ~now =
  match t.state with
  | Closed _ -> []
  | _ ->
    refill t ~now;
    if now - t.last_seen >= t.config.liveness_timeout then begin
      send_control t
        (Wire.Error
           { code = Wire.Timeout;
             message =
               Printf.sprintf "no traffic in %d ticks" (now - t.last_seen) });
      close t Timed_out
    end
    else begin
      if
        now - t.last_seen >= 2 * t.config.heartbeat_every
        && not t.missed_marked
      then begin
        (* The peer owes us a heartbeat and hasn't sent one (or any other
           traffic) for two periods; count the silence once. *)
        Metrics.incr "service.heartbeats_missed";
        t.missed_marked <- true
      end;
      if now - t.last_beat >= t.config.heartbeat_every then begin
        t.last_beat <- now;
        enqueue t (Wire.Heartbeat { sent_at = now })
      end;
      []
    end

let output t = t.outbound

(* Daemon-side session state machine.  Pure protocol discipline over
   virtual time; all I/O and scheduling lives in the driver. *)

module Framed = Perple_util.Framed
module Metrics = Perple_util.Metrics
module Trace = Perple_util.Trace_event

type config = {
  heartbeat_every : int;
  liveness_timeout : int;
  max_outbound : int;
}

let default_config =
  { heartbeat_every = 1_000; liveness_timeout = 10_000;
    max_outbound = 4 * 1024 * 1024 }

type terminal =
  | Completed
  | Quarantined of string
  | Timed_out
  | Disconnected

let terminal_name = function
  | Completed -> "completed"
  | Quarantined _ -> "quarantined"
  | Timed_out -> "timed-out"
  | Disconnected -> "disconnected"

type event =
  | Hello_received of string
  | Submitted of Wire.spec
  | Cancel_requested of string
  | Terminated of terminal

type state = Expect_hello | Active | Closed of terminal

type t = {
  sid : int;
  config : config;
  inbound : Framed.buf;
  outbound : Framed.buf;
  mutable state : state;
  mutable last_seen : int;  (** Clock of the most recent inbound bytes. *)
  mutable last_beat : int;  (** Clock of our most recent heartbeat. *)
  mutable missed_marked : bool;
      (** One "heartbeats missed" tick per silent stretch, not per tick. *)
  span_start : float;  (** Wall-clock trace anchor; observation only. *)
}

let create ?(config = default_config) ~id ~now () =
  Metrics.incr "service.sessions_opened";
  {
    sid = id;
    config;
    inbound = Framed.create ();
    outbound = Framed.create ();
    state = Expect_hello;
    last_seen = now;
    last_beat = now;
    missed_marked = false;
    span_start = Trace.now ();
  }

let id t = t.sid

let terminal t = match t.state with Closed c -> Some c | _ -> None
let active t = t.state = Active

let enqueue t frame =
  Framed.add_string t.outbound (Wire.encode frame);
  Metrics.incr "service.frames_out"

let send t frame =
  match t.state with
  | Closed _ -> `Ok (* dropped: the peer is gone or being flushed out *)
  | Expect_hello | Active ->
    if
      Framed.length t.outbound + String.length (Wire.encode frame)
      > t.config.max_outbound
    then begin
      Metrics.incr "service.backpressure_stalls";
      `Overflow
    end
    else begin
      enqueue t frame;
      `Ok
    end

let send_control t frame = enqueue t frame

let close t reason =
  match t.state with
  | Closed _ -> []
  | _ ->
    t.state <- Closed reason;
    Metrics.incr
      (match reason with
      | Completed -> "service.sessions_completed"
      | Quarantined _ -> "service.sessions_quarantined"
      | Timed_out -> "service.sessions_timed_out"
      | Disconnected -> "service.sessions_disconnected");
    Trace.complete ~name:"service.session" ~since:t.span_start
      ~args:
        [
          ("id", Trace.Int t.sid);
          ("terminal", Trace.String (terminal_name reason));
        ]
      ();
    [ Terminated reason ]

let quarantine t reason =
  (* Tell the peer why, then stop listening to it.  The Error frame
     bypasses backpressure: a session must always be able to explain its
     own death. *)
  send_control t (Wire.Error { code = Wire.Protocol; message = reason });
  close t (Quarantined reason)

let on_frame t frame =
  Metrics.incr "service.frames_in";
  match (t.state, frame) with
  | Closed _, _ -> []
  | Expect_hello, Wire.Hello { version; peer } ->
    if version <> Wire.protocol_version then
      quarantine t
        (Printf.sprintf "unsupported protocol version %d (want %d)" version
           Wire.protocol_version)
    else begin
      t.state <- Active;
      enqueue t (Wire.Hello { version = Wire.protocol_version; peer = "perpled" });
      [ Hello_received peer ]
    end
  | Expect_hello, f ->
    quarantine t (Printf.sprintf "expected hello, got %s" (Wire.frame_name f))
  | Active, Wire.Hello _ -> quarantine t "duplicate hello"
  | Active, Wire.Submit spec -> [ Submitted spec ]
  | Active, Wire.Cancel { campaign } -> [ Cancel_requested campaign ]
  | Active, Wire.Heartbeat _ -> []
  | Active, Wire.Drain -> close t Completed
  | Active, (Wire.Accepted _ | Wire.Run_record _ | Wire.Metrics_chunk _ | Wire.Error _)
    ->
    quarantine t
      (Printf.sprintf "server-only frame %s from client" (Wire.frame_name frame))

let feed t ~now bytes =
  match t.state with
  | Closed _ -> [] (* quarantined or gone: input is discarded *)
  | _ ->
    if String.length bytes > 0 then begin
      t.last_seen <- now;
      t.missed_marked <- false
    end;
    Framed.add_string t.inbound bytes;
    let rec drain acc =
      match t.state with
      | Closed _ -> acc
      | _ -> (
        match Wire.next_frame t.inbound with
        | `Need_more -> acc
        | `Corrupt reason ->
          acc @ quarantine t (Printf.sprintf "corrupt frame: %s" reason)
        | `Frame f -> drain (acc @ on_frame t f))
    in
    drain []

let eof t ~now =
  ignore now;
  match t.state with Closed _ -> [] | _ -> close t Disconnected

let tick t ~now =
  match t.state with
  | Closed _ -> []
  | _ ->
    if now - t.last_seen >= t.config.liveness_timeout then begin
      send_control t
        (Wire.Error
           { code = Wire.Timeout;
             message =
               Printf.sprintf "no traffic in %d ticks" (now - t.last_seen) });
      close t Timed_out
    end
    else begin
      if
        now - t.last_seen >= 2 * t.config.heartbeat_every
        && not t.missed_marked
      then begin
        (* The peer owes us a heartbeat and hasn't sent one (or any other
           traffic) for two periods; count the silence once. *)
        Metrics.incr "service.heartbeats_missed";
        t.missed_marked <- true
      end;
      if now - t.last_beat >= t.config.heartbeat_every then begin
        t.last_beat <- now;
        enqueue t (Wire.Heartbeat { sent_at = now })
      end;
      []
    end

let output t = t.outbound

(* Campaign scheduler: journal-backed multiplexing of submitted specs
   over the campaign engine.

   Record kinds in a serve journal (after the standard header):
     {"kind":"spec", ...}     an accepted campaign, in submit order
     {"kind":"crun","campaign":C,"run":{...}}   one completed run
     {"kind":"cancel","campaign":C}
     {"kind":"draining"} / {"kind":"interrupted"}   shutdown markers
     {"kind":"lease"|"revoke"|"shard-dead", ...}   coordinator extras,
       opaque here: preserved through replay and compaction in order and
       handed back to [Perple_service.Coordinator] for lease-epoch
       recovery.

   Specs are journaled before they are acknowledged and runs before they
   are streamed, so every byte a client ever saw is reconstructible from
   the journal alone. *)

module Json = Perple_util.Json
module Journal = Perple_util.Journal
module Metrics = Perple_util.Metrics
module Trace = Perple_util.Trace_event
module Ast = Perple_litmus.Ast
module Parser = Perple_litmus.Parser
module Printer = Perple_litmus.Printer
module Catalog = Perple_litmus.Catalog
module Config = Perple_sim.Config
module Engine = Perple_core.Engine
module Ledger = Perple_core.Ledger
module Convert = Perple_core.Convert

type campaign = {
  spec : Wire.spec;
  digest : string;
  test : Ast.t;
  counter : Engine.counter;
  model : Config.model;
  seeds : int array;
  records : string option array;
  mutable done_count : int;
  mutable cancelled : bool;
  mutable failure : string option;
}

type t = {
  jobs : int;
  pool : Perple_core.Pool.t option;
      (** Persistent worker pool, reused across step batches and across
          campaigns; [None] when [jobs = 1] (sequential). *)
  journal_path : string option;
  mutable journal : Journal.t option;
  campaigns : (string, campaign) Hashtbl.t;
  mutable order : string list;  (** Submit order, oldest first. *)
  mutable rr : int;
      (** Round-robin cursor into [order]: the next campaign {!step}
          serves, so active campaigns interleave instead of starving
          behind the oldest one. *)
  mutable extras : Json.t list;  (** Coordinator records, reversed. *)
}

(* --- spec validation ------------------------------------------------------- *)

let counter_of_name = function
  | "heur" | "heuristic" -> Some Engine.Heuristic
  | "exh" | "exhaustive" -> Some Engine.Exhaustive
  | "exh-ref" | "reference" -> Some Engine.Exhaustive_reference
  | _ -> None

let model_of_name = function
  | "sc" -> Some Config.Sc
  | "tso" -> Some Config.Tso
  | "pso" -> Some Config.Pso
  | "tso+store-reorder-bug" -> Some Config.Tso_store_reorder
  | "tso+fence-ignored-bug" -> Some Config.Tso_fence_ignored
  | _ -> None

let resolve_test text =
  match Catalog.find text with
  | Some entry -> Ok entry.Catalog.test
  | None ->
    if String.contains text '\n' then
      (* Litmus source shipped inline by the client. *)
      match Parser.parse text with
      | Ok test -> Ok test
      | Error e -> Error (Format.asprintf "test source: %a" Parser.pp_error e)
    else
      Error
        (Printf.sprintf
           "unknown test %S (not a catalog name; to submit a file, send its \
            contents)"
           text)

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Validation shared by live submits and journal replay: everything the
   engine will assume later is checked up front, so a rejected spec
   costs one error frame, never a daemon crash mid-campaign. *)
let resolve (spec : Wire.spec) =
  if spec.Wire.campaign = "" then fail "campaign id must be non-empty"
  else if String.length spec.Wire.campaign > 256 then
    fail "campaign id longer than 256 bytes"
  else if spec.Wire.runs < 1 then fail "runs must be positive"
  else if spec.Wire.iterations < 1 then fail "iterations must be positive"
  else if spec.Wire.seed < 0 then fail "seed must be non-negative"
  else
    match counter_of_name spec.Wire.counter with
    | None -> fail "unknown counter %S (heur, exh or exh-ref)" spec.Wire.counter
    | Some counter -> (
      match model_of_name spec.Wire.model with
      | None -> fail "unknown model %S" spec.Wire.model
      | Some model -> (
        match resolve_test spec.Wire.test with
        | Error m -> Error m
        | Ok test -> (
          match Convert.convert test with
          | Error r ->
            fail "test %s is not convertible: %s" test.Ast.name
              (Format.asprintf "%a" Convert.pp_reason r)
          | Ok _ -> (
            match Perple_litmus.Outcome.of_condition test with
            | Error m -> fail "test %s has no countable target: %s" test.Ast.name m
            | Ok _ ->
              let digest =
                Ledger.digest_of_params
                  [
                    ("command", "serve-campaign");
                    ( "test",
                      Digest.to_hex (Digest.string (Printer.to_string test)) );
                    ("iterations", string_of_int spec.Wire.iterations);
                    ("seed", string_of_int spec.Wire.seed);
                    ("counter", Engine.(
                       match counter with
                       | Heuristic -> "heur"
                       | Exhaustive -> "exh"
                       | Exhaustive_reference -> "exh-ref"));
                    ("model", Config.model_name model);
                    ("runs", string_of_int spec.Wire.runs);
                  ]
              in
              Ok
                {
                  spec;
                  digest;
                  test;
                  counter;
                  model;
                  seeds =
                    Engine.campaign_seeds ~runs:spec.Wire.runs
                      ~seed:spec.Wire.seed;
                  records = Array.make spec.Wire.runs None;
                  done_count = 0;
                  cancelled = false;
                  failure = None;
                }))))

(* --- journal records ------------------------------------------------------- *)

let serve_digest = Ledger.digest_of_params [ ("command", "serve") ]

let header_record =
  Ledger.header_to_json
    { Ledger.h_command = "serve"; h_digest = serve_digest; h_runs = 0 }

let spec_record (s : Wire.spec) =
  Json.Obj
    [
      ("kind", Json.String "spec");
      ("campaign", Json.String s.Wire.campaign);
      ("test", Json.String s.Wire.test);
      ("iterations", Json.Int s.Wire.iterations);
      ("seed", Json.Int s.Wire.seed);
      ("runs", Json.Int s.Wire.runs);
      ("counter", Json.String s.Wire.counter);
      ("model", Json.String s.Wire.model);
    ]

let crun_record campaign run_json =
  Json.Obj
    [
      ("kind", Json.String "crun");
      ("campaign", Json.String campaign);
      ("run", run_json);
    ]

let cancel_record campaign =
  Json.Obj
    [ ("kind", Json.String "cancel"); ("campaign", Json.String campaign) ]

let str_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> fail "journal record: %S is not a string" name

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> fail "journal record: %S is not an int" name

let spec_of_record j =
  let ( let* ) = Result.bind in
  let* campaign = str_field "campaign" j in
  let* test = str_field "test" j in
  let* iterations = int_field "iterations" j in
  let* seed = int_field "seed" j in
  let* runs = int_field "runs" j in
  let* counter = str_field "counter" j in
  let* model = str_field "model" j in
  Ok { Wire.campaign; test; iterations; seed; runs; counter; model }

(* --- construction / resume ------------------------------------------------- *)

let append t record =
  match t.journal with None -> () | Some j -> Journal.append j record

let ingest_record t j =
  let ( let* ) = Result.bind in
  match Ledger.kind j with
  | Some ("interrupted" | "draining") -> Ok ()
  | Some "spec" ->
    let* spec = spec_of_record j in
    let* c = resolve spec in
    if Hashtbl.mem t.campaigns spec.Wire.campaign then
      fail "journal: duplicate spec for campaign %S" spec.Wire.campaign
    else begin
      Hashtbl.replace t.campaigns spec.Wire.campaign c;
      t.order <- t.order @ [ spec.Wire.campaign ];
      Ok ()
    end
  | Some "cancel" ->
    let* campaign = str_field "campaign" j in
    (match Hashtbl.find_opt t.campaigns campaign with
    | None -> fail "journal: cancel for unknown campaign %S" campaign
    | Some c ->
      c.cancelled <- true;
      Ok ())
  | Some ("lease" | "revoke" | "shard-dead") ->
    (* Coordinator lease bookkeeping: semantically opaque here, but its
       order and content must survive replay and compaction so lease
       epochs stay monotonic across coordinator restarts. *)
    t.extras <- j :: t.extras;
    Ok ()
  | Some "crun" ->
    let* campaign = str_field "campaign" j in
    (match Hashtbl.find_opt t.campaigns campaign with
    | None -> fail "journal: run for unknown campaign %S" campaign
    | Some c -> (
      match Json.member "run" j with
      | None -> fail "journal: crun record without a run"
      | Some run_json ->
        let* summary = Ledger.of_json run_json in
        let i = summary.Ledger.index in
        if i < 0 || i >= Array.length c.records then
          fail "journal: campaign %S run index %d out of range" campaign i
        else if summary.Ledger.seed <> c.seeds.(i) then
          fail
            "journal: campaign %S run %d was seeded with %d, the spec \
             pre-splits %d"
            campaign i summary.Ledger.seed c.seeds.(i)
        else begin
          if c.records.(i) = None then c.done_count <- c.done_count + 1;
          c.records.(i) <- Some (Ledger.record_line summary);
          Metrics.incr "service.scheduler.resumed_runs";
          Ok ()
        end))
  | Some k -> fail "journal: unexpected %S record" k
  | None -> fail "journal: record without a kind"

(* Rewrite the journal to its live contents (drop shutdown markers and
   CRC-damaged tails) before reopening for append. *)
let compacted t =
  let specs = List.map (fun id -> spec_record (Hashtbl.find t.campaigns id).spec) t.order in
  let cancels =
    List.filter_map
      (fun id ->
        if (Hashtbl.find t.campaigns id).cancelled then
          Some (cancel_record id)
        else None)
      t.order
  in
  let cruns =
    List.concat_map
      (fun id ->
        let c = Hashtbl.find t.campaigns id in
        List.filter_map
          (fun i ->
            match c.records.(i) with
            | None -> None
            | Some line -> (
              match Json.parse line with
              | Ok run_json -> Some (crun_record id run_json)
              | Error _ -> None (* cannot happen: we serialized it *)))
          (List.init (Array.length c.records) Fun.id))
      t.order
  in
  (header_record :: specs) @ cancels @ cruns @ List.rev t.extras

let create ?(jobs = 1) ~journal () =
  if jobs < 1 then invalid_arg "Scheduler.create: jobs must be >= 1";
  let t =
    {
      jobs;
      pool = None;
      journal_path = journal;
      journal = None;
      campaigns = Hashtbl.create 8;
      order = [];
      rr = 0;
      extras = [];
    }
  in
  (* Workers are spawned only once the journal (if any) validated, so a
     rejected resume never leaks parked domains. *)
  let finish t =
    (* Sized to the hardware, not to [jobs]: idle domains beyond the core
       count only tax the GC (see Pool).  [jobs] still caps the batch
       size per step. *)
    let width = min jobs (Perple_core.Pool.available_domains ()) in
    Ok
      (if width > 1 then
         { t with pool = Some (Perple_core.Pool.create ~jobs:width ()) }
       else t)
  in
  match journal with
  | None -> finish t
  | Some path ->
    if not (Sys.file_exists path) then begin
      let j = Journal.create path in
      Journal.append j header_record;
      t.journal <- Some j;
      finish t
    end
    else begin
      match Journal.load path with
      | Error m -> fail "journal %s: %s" path m
      | Ok recovery -> (
        if recovery.Journal.dropped_bytes > 0 then
          Printf.eprintf
            "perpled: journal %s: dropped %d damaged trailing bytes (kept %d \
             intact)\n%!"
            path recovery.Journal.dropped_bytes recovery.Journal.valid_bytes;
        match recovery.Journal.records with
        | [] ->
          (* Created but crashed before the header was durable: start over. *)
          let j = Journal.create path in
          Journal.append j header_record;
          t.journal <- Some j;
          finish t
        | header :: rest -> (
          match Ledger.parse_header header with
          | Error m -> fail "cannot resume: %s" m
          | Ok h ->
            if h.Ledger.h_command <> "serve" then
              fail
                "cannot resume: journal %s was written by 'perple %s', not \
                 'perple serve'"
                path h.Ledger.h_command
            else begin
              let rec ingest = function
                | [] -> Ok ()
                | r :: rest -> (
                  match ingest_record t r with
                  | Error _ as e -> e
                  | Ok () -> ingest rest)
              in
              match ingest rest with
              | Error m -> fail "cannot resume: %s" m
              | Ok () ->
                Journal.compact ~path (compacted t);
                t.journal <- Some (Journal.open_append path);
                finish t
            end))
    end

(* --- queries --------------------------------------------------------------- *)

type resolved = {
  r_digest : string;
  r_test : Ast.t;
  r_counter : Engine.counter;
  r_model : Config.model;
  r_seeds : int array;
}

let resolve_spec spec =
  Result.map
    (fun c ->
      {
        r_digest = c.digest;
        r_test = c.test;
        r_counter = c.counter;
        r_model = c.model;
        r_seeds = c.seeds;
      })
    (resolve spec)

let find t campaign = Hashtbl.find_opt t.campaigns campaign

let campaign_ids t = t.order

let spec_of t ~campaign = Option.map (fun c -> c.spec) (find t campaign)
let digest_of t ~campaign = Option.map (fun c -> c.digest) (find t campaign)
let seeds_of t ~campaign = Option.map (fun c -> Array.copy c.seeds) (find t campaign)

let runs t ~campaign =
  Option.map (fun c -> Array.length c.records) (find t campaign)

let completed t ~campaign =
  match find t campaign with None -> 0 | Some c -> c.done_count

let is_cancelled t ~campaign =
  match find t campaign with None -> false | Some c -> c.cancelled

let is_complete t ~campaign =
  match find t campaign with
  | None -> false
  | Some c -> (not c.cancelled) && c.done_count = Array.length c.records

let failed t ~campaign =
  match find t campaign with None -> None | Some c -> c.failure

let record t ~campaign ~index =
  match find t campaign with
  | None -> None
  | Some c ->
    if index < 0 || index >= Array.length c.records then None
    else c.records.(index)

let runnable c =
  (not c.cancelled) && c.failure = None
  && c.done_count < Array.length c.records

let pending t =
  List.exists (fun id -> runnable (Hashtbl.find t.campaigns id)) t.order

(* --- submit / cancel ------------------------------------------------------- *)

type accepted = { digest : string; runs : int; completed : int }

let submit t spec =
  match resolve spec with
  | Error _ as e -> e
  | Ok fresh -> (
    match find t spec.Wire.campaign with
    | Some existing ->
      if existing.digest <> fresh.digest then
        fail
          "campaign %S already exists with a different configuration \
           (digest %s, submitted %s)"
          spec.Wire.campaign existing.digest fresh.digest
      else if existing.cancelled then
        fail "campaign %S was cancelled" spec.Wire.campaign
      else begin
        Metrics.incr "service.scheduler.resubmits";
        Ok
          {
            digest = existing.digest;
            runs = Array.length existing.records;
            completed = existing.done_count;
          }
      end
    | None ->
      append t (spec_record spec);
      Hashtbl.replace t.campaigns spec.Wire.campaign fresh;
      t.order <- t.order @ [ spec.Wire.campaign ];
      Metrics.incr "service.scheduler.campaigns_accepted";
      Ok { digest = fresh.digest; runs = Array.length fresh.records; completed = 0 })

(* --- remote results -------------------------------------------------------- *)

let extras t = List.rev t.extras

let append_extra t j =
  append t j;
  t.extras <- j :: t.extras

(* A worker-computed record is re-parsed and re-serialized before it is
   journaled: the stream identity argument rests on every stored line
   being the canonical [Ledger.record_line] bytes, whatever a (buggy)
   worker actually sent.  Seed and index are checked against the
   campaign's own pre-split, so a record can never land in a foreign
   slot. *)
let record_external t ~campaign ~line =
  match find t campaign with
  | None -> fail "record for unknown campaign %S" campaign
  | Some c -> (
    match Json.parse line with
    | Error m -> fail "record does not parse: %s" m
    | Ok run_json -> (
      match Ledger.of_json run_json with
      | Error m -> fail "record invalid: %s" m
      | Ok summary ->
        let i = summary.Ledger.index in
        if i < 0 || i >= Array.length c.records then
          fail "run index %d out of range for campaign %S" i campaign
        else if summary.Ledger.seed <> c.seeds.(i) then
          fail "run %d was seeded with %d, the spec pre-splits %d" i
            summary.Ledger.seed c.seeds.(i)
        else
          let canonical = Ledger.record_line summary in
          (match c.records.(i) with
          | Some existing ->
            if String.equal existing canonical then Ok `Duplicate
            else fail "run %d already has a conflicting record" i
          | None ->
            append t (crun_record campaign (Ledger.to_json summary));
            c.done_count <- c.done_count + 1;
            c.records.(i) <- Some canonical;
            Metrics.incr "service.scheduler.remote_runs";
            Ok `Recorded)))

let cancel t ~campaign =
  match find t campaign with
  | None -> false
  | Some c ->
    if not c.cancelled then begin
      c.cancelled <- true;
      append t (cancel_record campaign);
      Metrics.incr "service.scheduler.campaigns_cancelled"
    end;
    true

(* --- execution ------------------------------------------------------------- *)

let step t =
  (* Fair selection: scan from the round-robin cursor, not from the
     oldest campaign, so concurrent campaigns interleave batch for batch
     instead of a long early submit starving everything behind it. *)
  let order = Array.of_list t.order in
  let n = Array.length order in
  let rec pick off =
    if off >= n then None
    else
      let idx = (t.rr + off) mod n in
      if runnable (Hashtbl.find t.campaigns order.(idx)) then Some idx
      else pick (off + 1)
  in
  match if n = 0 then None else pick 0 with
  | None -> None
  | Some idx ->
    let id = order.(idx) in
    t.rr <- (idx + 1) mod n;
    let c = Hashtbl.find t.campaigns id in
    let total = Array.length c.records in
    (* The batch: the next [jobs] missing indices, in index order.  The
       batch is what bounds how stale a kill -9 can make the journal. *)
    let batch = ref [] in
    let n = ref 0 in
    let i = ref 0 in
    while !n < t.jobs && !i < total do
      if c.records.(!i) = None then begin
        batch := !i :: !batch;
        incr n
      end;
      incr i
    done;
    let batch = !batch in
    let in_batch i = List.mem i batch in
    let fresh = ref [] in
    let on_entry entry =
      let summary = Ledger.of_entry entry in
      let line = Ledger.record_line summary in
      append t (crun_record id (Ledger.to_json summary));
      let idx = summary.Ledger.index in
      if c.records.(idx) = None then c.done_count <- c.done_count + 1;
      c.records.(idx) <- Some line;
      fresh := (idx, line) :: !fresh;
      Metrics.incr "service.scheduler.runs_executed"
    in
    Trace.span "service.scheduler.step"
      ~args:[ ("campaign", Trace.String id); ("batch", Trace.Int (List.length batch)) ]
      (fun () ->
        match
          Engine.campaign_entries
            ~config:(Config.with_model c.model Config.default)
            ~counter:c.counter ?pool:t.pool ~jobs:t.jobs
            ~skip:(fun i -> not (in_batch i))
            ~on_entry ~runs:total ~seed:c.spec.Wire.seed
            ~iterations:c.spec.Wire.iterations c.test
        with
        | Ok _ -> ()
        | Error reason ->
          (* Cannot normally happen — convertibility was validated at
             submit — but a campaign must fail closed, not wedge the
             queue. *)
          c.failure <-
            Some (Format.asprintf "%a" Convert.pp_reason reason));
    Some (id, List.sort compare !fresh)

(* --- shutdown -------------------------------------------------------------- *)

let metrics_payload t ~campaign =
  match find t campaign with
  | None -> None
  | Some c ->
    if c.cancelled || c.done_count < Array.length c.records then None
    else begin
      let sink = Metrics.create_sink () in
      Array.iter
        (function
          | None -> ()
          | Some line -> (
            match Json.parse line with
            | Error _ -> ()
            | Ok j -> (
              match Json.member "metrics" j with
              | None -> ()
              | Some m -> ignore (Metrics.merge_json sink m))))
        c.records;
      Some (Json.to_string (Metrics.to_json sink))
    end

let note_draining t = append t Ledger.draining_marker

let close_journal t =
  match t.journal with
  | None -> ()
  | Some j ->
    t.journal <- None;
    Journal.close j

let shutdown_pool t =
  match t.pool with None -> () | Some p -> Perple_core.Pool.shutdown p

let abandon t =
  close_journal t;
  shutdown_pool t

let close t =
  close_journal t;
  shutdown_pool t

(** Fault-tolerant campaign sharding: leased work units over remote
    workers, with journaled reassignment.

    The coordinator splits every accepted campaign into shards of
    [shard_runs] consecutive run indices and hands them to connected
    workers as {e leases}: a lease names the shard's run range, the
    campaign spec (so the worker can execute the runs locally against
    the same pre-split seeds) and a {e lease epoch}.  The worker renews
    the lease ({!Wire.frame.Lease_renew}) while it computes; a lease
    that is not renewed within [lease_ticks] is revoked and its shard
    reassigned.

    Failure taxonomy, all handled by revoke-and-reassign with
    {!Perple_harness.Supervisor.backed_off} backoff:

    - {e deadline missed} — worker wedged or partitioned; it is also
      cooled (no new lease) until it speaks again;
    - {e worker disconnected} — EOF/reset, or quarantined after a
      CRC-corrupt frame (detected in {!Wire.decode}, surfaced as a
      session terminal);
    - {e shard fault} — the worker itself reported
      {!Wire.frame.Shard_failed};
    - {e malformed result} — a CRC-valid frame whose records fail
      validation (wrong indices, seed mismatch, non-canonical line).

    After [max_attempts] failed leases a shard is abandoned: its
    remaining runs are journaled as classified [Unrecoverable] records
    (crashed entries with the abandonment reason) so the campaign
    completes and streams — graceful degradation, never a hang.

    {e Zombie discipline}: epochs are monotonic per shard, across
    coordinator restarts — every grant is journaled.  A result or
    renewal carrying a (campaign, shard, epoch) triple that does not
    match the live lease is discarded idempotently; record slots are
    additionally guarded by index+seed validation in
    {!Scheduler.record_external}, so even a pathological duplicate can
    only ever re-assert identical bytes.

    Everything is journaled through the scheduler ("lease", "revoke",
    "shard-dead" extras plus ordinary "crun" records), so a [kill -9]'d
    coordinator re-created over the same journal resumes with the same
    epochs and produces a byte-identical merged ledger and metrics —
    for any worker count, failure schedule or kill point. *)

type config = {
  shard_runs : int;  (** Runs per shard (last shard may be smaller). *)
  lease_ticks : int;  (** Renewal deadline per lease. *)
  max_attempts : int;  (** Failed leases before a shard is abandoned. *)
  retry_delay : int;  (** Initial reassignment backoff, in ticks. *)
  retry_backoff : float;  (** Backoff multiplier per failed lease. *)
}

val default_config : config
(** 4-run shards, 10 s leases, 5 attempts, 100 ms initial backoff
    doubling per failure. *)

type t

val create : ?config:config -> scheduler:Scheduler.t -> unit -> (t, string) result
(** Build the shard tables for every campaign the scheduler knows and
    replay the journal's coordinator extras: lease epochs resume
    monotonic, abandoned shards stay abandoned (missing [Unrecoverable]
    records are re-derived), completed shards are recognized by their
    journaled runs.  [Error] on a malformed coordinator record —
    validation, not best-effort, like the scheduler's own resume. *)

type command = { target : int; frame : Wire.frame }
(** A frame to deliver to worker connection [target]. *)

val add_worker : t -> id:int -> name:string -> unit
(** A worker session completed its [Worker_hello] handshake. *)

val remove_worker : t -> id:int -> now:int -> unit
(** The worker's session terminated (disconnect, quarantine, timeout):
    its lease, if any, is revoked and the shard reassigned. *)

val worker_count : t -> int

val renew : t ->
  worker:int -> campaign:string -> shard:int -> epoch:int -> now:int ->
  command list
(** Extend the lease deadline if (worker, campaign, shard, epoch) names
    the live lease; otherwise tell the zombie to stop ([Revoke]). *)

val shard_result : t ->
  worker:int -> campaign:string -> shard:int -> epoch:int ->
  records:(int * string) list -> now:int ->
  command list
(** Ingest a completed shard: exactly the leased indices, each record
    validated and journaled via {!Scheduler.record_external}.  A stale
    epoch is discarded idempotently; a malformed result revokes the
    lease and reassigns the shard. *)

val shard_failed : t ->
  worker:int -> campaign:string -> shard:int -> epoch:int -> reason:string ->
  now:int ->
  command list

val tick : t -> now:int -> command list
(** Clock advance: pick up newly accepted campaigns, revoke leases of
    cancelled campaigns and leases past their deadline, then grant new
    leases — idle workers in id order, campaigns round-robin (the fair
    interleave), shards in index order once their backoff has passed. *)

val shard_counts : t -> campaign:string -> int * int * int
(** (completed, leased, abandoned) shard counts, for progress frames. *)

(** The daemon: sessions multiplexed over one scheduler.

    The sans-IO core ({!create} … {!closed}) owns every decision —
    handshakes, accepting and journaling specs, streaming records in
    index order, backpressure, heartbeats, quarantine, draining — over
    an abstract integer clock.  Tests drive it directly (through
    {!Chaos} proxies, with virtual ticks); {!serve} drives the same core
    from a [select] loop over real sockets, adding nothing but byte
    shuffling.

    Streaming contract (what the CI smoke job checks end to end): after
    [Accepted], a client receives every run record of its campaign
    exactly once, in index order, as canonical
    {!Perple_core.Ledger.record_line} bytes — journaled records first
    (replayed after a crash), then live ones as they retire — followed
    by one [Metrics_chunk] built from the per-run captures.  The stream
    is therefore byte-identical whatever [--jobs] was and wherever a
    [kill -9] split the campaign. *)

type t

val create :
  ?session_config:Session.config ->
  ?coordinator:Coordinator.t ->
  scheduler:Scheduler.t ->
  unit ->
  t
(** With a [coordinator], worker sessions are admitted and campaigns
    are sharded out as leases; without one, a [Worker_hello] is
    rejected and closed.  The coordinator must have been created over
    the same scheduler. *)

val connect : t -> now:int -> int
(** Register a new connection; returns its id. *)

val input : t -> conn:int -> now:int -> string -> unit
(** Bytes that arrived from the connection's peer. *)

val eof : t -> conn:int -> now:int -> unit

val tick : t -> now:int -> unit
(** One turn of the daemon: advance session clocks, run at most one
    scheduler batch if work is pending, stream newly available records
    to subscribed connections (respecting backpressure). *)

val flush : t -> conn:int -> string
(** Take the connection's pending outbound bytes (empty if none). *)

val closed : t -> conn:int -> bool
(** The session reached a terminal state and its output is drained —
    the driver should close the transport. *)

val terminal : t -> conn:int -> Session.terminal option
val connections : t -> int list

val drain : t -> now:int -> unit
(** Begin shutdown: journal the ["draining"] marker, notify every live
    session with an [Error Draining] control frame and close it.  New
    connections are refused afterwards. *)

val draining : t -> bool

val idle : t -> bool
(** No live sessions and no pending scheduler work. *)

(** {1 Real transport} *)

val serve :
  socket:string ->
  ?tcp_port:int ->
  ?jobs:int ->
  ?session_config:Session.config ->
  ?coordinator:Coordinator.config ->
  journal:string option ->
  unit ->
  (int, string) result
(** Run the daemon over a Unix-domain socket at [socket] (a stale
    socket file from a dead daemon is detected and replaced) and
    optionally a localhost TCP port.  If [journal] names an existing
    file, the scheduler resumes it — the daemon restart contract needs
    no flag.  With [coordinator], the daemon also accepts workers and
    shards campaigns into leases, falling back to local execution
    whenever no worker is connected.  Blocks until SIGINT or SIGTERM,
    then drains (marker journaled, sessions notified, outputs flushed)
    and returns the signal number for the caller to turn into exit
    130/143. *)

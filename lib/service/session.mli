(** Per-client protocol session: the daemon-side state machine.

    A session owns one connection's framing and discipline and nothing
    else — it never touches sockets, clocks or the scheduler.  The
    driver feeds it inbound bytes ({!feed}), a monotonically
    non-decreasing clock ({!tick}; milliseconds in the real daemon,
    virtual ticks in tests) and connection teardown ({!eof}), and reads
    back {!event}s to act on plus outbound bytes to write ({!output}).
    That sans-IO shape is what makes the chaos suite possible: the same
    state machine is driven deterministically in tests and by the
    [select] loop in production.

    Discipline enforced here:

    - {e handshake}: the first frame must be a version-matching [Hello];
    - {e protocol-error quarantine}: a corrupt frame, or any frame the
      state machine does not allow, closes the session with an [Error]
      frame — input after quarantine is discarded, so one misbehaving
      client costs one session, never a stall of the pool;
    - {e liveness}: heartbeats are emitted every [heartbeat_every] ticks
      and the peer must show traffic within [liveness_timeout] ticks or
      the session times out;
    - {e backpressure}: {!send} refuses ([`Overflow]) once more than
      [max_outbound] bytes are queued — the caller retries after the
      queue drains; small control frames bypass the bound via
      {!send_control} so a session can always be told why it is dying. *)

type config = {
  heartbeat_every : int;
  liveness_timeout : int;
  max_outbound : int;
  submit_burst : int;
      (** Token-bucket capacity for [Submit] frames on one connection. *)
  submit_refill_every : int;
      (** Ticks per token refill.  A submit with no token available is
          declined with a [Busy] frame carrying the ticks until the next
          grant; the session itself survives. *)
}

val default_config : config
(** 1000 ms heartbeats, 10 s liveness, 4 MiB outbound bound, 8-submit
    burst refilling every 250 ms. *)

type terminal =
  | Completed  (** Clean [Drain] handshake. *)
  | Quarantined of string  (** Protocol error; the reason sent back. *)
  | Timed_out
  | Disconnected  (** Peer vanished (EOF/reset). *)

val terminal_name : terminal -> string

type event =
  | Hello_received of string  (** Peer name from its [Hello]. *)
  | Submitted of Wire.spec
  | Cancel_requested of string
  | Worker_joined of string
      (** The peer identified itself as a worker ([Worker_hello]); the
          session dispatches worker frames from here on. *)
  | Lease_renewed of { campaign : string; shard : int; epoch : int }
  | Shard_done of {
      campaign : string;
      shard : int;
      epoch : int;
      records : (int * string) list;
    }
  | Shard_faulted of { campaign : string; shard : int; epoch : int; reason : string }
  | Terminated of terminal
      (** Emitted exactly once; after it only output flushing remains. *)

type t

val create : ?config:config -> id:int -> now:int -> unit -> t
val id : t -> int

val role : t -> [ `Client | `Worker ]
(** [`Client] until a [Worker_hello] arrives.  Client-only frames from a
    worker (and vice versa) quarantine the session. *)

val feed : t -> now:int -> string -> event list
(** Inbound bytes.  Decodes as many complete frames as arrived, walks
    the state machine, and returns the surfaced events in order. *)

val eof : t -> now:int -> event list
(** The transport reported end-of-file or reset. *)

val tick : t -> now:int -> event list
(** Clock advance: emit due heartbeats, enforce the liveness deadline. *)

val send : t -> Wire.frame -> [ `Ok | `Overflow ]
(** Queue a frame for the peer, unless the outbound bound is hit.
    Frames sent to a terminated session are silently dropped ([`Ok]). *)

val send_control : t -> Wire.frame -> unit
(** Queue a small control frame regardless of the outbound bound. *)

val output : t -> Perple_util.Framed.buf
(** The outbound byte queue; the driver writes from it. *)

val terminal : t -> terminal option
val active : t -> bool
(** The handshake completed and no terminal state was reached. *)

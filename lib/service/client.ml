(* The client half of the protocol, sans-IO first (so the chaos suite
   can drive thousands of schedules without a socket), then the small
   blocking driver the CLI uses. *)

module Framed = Perple_util.Framed
module Metrics = Perple_util.Metrics
module Supervisor = Perple_harness.Supervisor

type config = { heartbeat_every : int; liveness_timeout : int }

let default_config = { heartbeat_every = 1_000; liveness_timeout = 10_000 }

type outcome = {
  digest : string;
  completed_at_accept : int;
  records : string list;
  metrics : string;
}

type progress = {
  runs_total : int;
  runs_done : int;
  shards_done : int;
  shards_leased : int;
  shards_failed : int;
}

type status = Pending | Done of outcome | Failed of string

type phase =
  | Awaiting_hello
  | Awaiting_accept
  | Streaming of {
      digest : string;
      completed_at_accept : int;
      total : int;
      mutable got : string list;  (** Reverse index order. *)
      mutable next : int;
    }
  | Terminal of status

type t = {
  config : config;
  spec : Wire.spec;
  on_progress : (progress -> unit) option;
  inbound : Framed.buf;
  outbound : Framed.buf;
  mutable phase : phase;
  mutable last_seen : int;
  mutable last_beat : int;
  mutable progress : progress option;
  mutable retry_hint : int option;
      (** Ticks the daemon asked us to wait ([Busy]) before retrying. *)
}

let send t frame =
  Framed.add_string t.outbound (Wire.encode frame);
  Metrics.incr "service.client.frames_out"

let create ?(config = default_config) ?(peer = "perple-client") ?on_progress
    ~spec ~now () =
  let t =
    {
      config;
      spec;
      on_progress;
      inbound = Framed.create ();
      outbound = Framed.create ();
      phase = Awaiting_hello;
      last_seen = now;
      last_beat = now;
      progress = None;
      retry_hint = None;
    }
  in
  send t (Wire.Hello { version = Wire.protocol_version; peer });
  t

let output t = t.outbound

let status t = match t.phase with Terminal s -> s | _ -> Pending
let progress t = t.progress
let retry_hint t = t.retry_hint

let fail t reason =
  match t.phase with
  | Terminal _ -> ()
  | _ ->
    Metrics.incr "service.client.failures";
    t.phase <- Terminal (Failed reason)

let finish t outcome =
  send t Wire.Drain;
  Metrics.incr "service.client.completed";
  t.phase <- Terminal (Done outcome)

let on_frame t frame =
  Metrics.incr "service.client.frames_in";
  match t.phase with
  | Terminal _ -> ()
  | _ -> (
    match frame with
    | Wire.Heartbeat _ -> ()
    | Wire.Error { code; message } ->
      fail t (Printf.sprintf "%s: %s" (Wire.error_code_name code) message)
    | Wire.Hello { version; _ } -> (
      match t.phase with
      | Awaiting_hello ->
        if version <> Wire.protocol_version then
          fail t
            (Printf.sprintf "protocol: daemon speaks version %d, want %d"
               version Wire.protocol_version)
        else begin
          t.phase <- Awaiting_accept;
          send t (Wire.Submit t.spec)
        end
      | _ -> fail t "protocol: unexpected hello")
    | Wire.Accepted { campaign; digest; runs; completed } -> (
      match t.phase with
      | Awaiting_accept ->
        if campaign <> t.spec.Wire.campaign then
          fail t (Printf.sprintf "protocol: accepted foreign campaign %S" campaign)
        else if runs <> t.spec.Wire.runs then
          fail t
            (Printf.sprintf "protocol: accepted %d runs, submitted %d" runs
               t.spec.Wire.runs)
        else
          t.phase <-
            Streaming
              { digest; completed_at_accept = completed; total = runs;
                got = []; next = 0 }
      | _ -> fail t "protocol: unexpected accepted frame")
    | Wire.Run_record { campaign; index; record } -> (
      match t.phase with
      | Streaming s ->
        if campaign <> t.spec.Wire.campaign then
          fail t (Printf.sprintf "protocol: record for foreign campaign %S" campaign)
        else if index <> s.next then
          (* The stream contract is strict index order; a gap means the
             transport or daemon lost data. *)
          fail t
            (Printf.sprintf "protocol: record %d arrived, expected %d" index
               s.next)
        else begin
          s.got <- record :: s.got;
          s.next <- s.next + 1
        end
      | _ -> fail t "protocol: record before accept")
    | Wire.Metrics_chunk { campaign; payload } -> (
      match t.phase with
      | Streaming s ->
        if campaign <> t.spec.Wire.campaign then
          fail t (Printf.sprintf "protocol: metrics for foreign campaign %S" campaign)
        else if s.next <> s.total then
          fail t
            (Printf.sprintf
               "protocol: metrics chunk after %d of %d records" s.next s.total)
        else
          finish t
            {
              digest = s.digest;
              completed_at_accept = s.completed_at_accept;
              records = List.rev s.got;
              metrics = payload;
            }
      | _ -> fail t "protocol: metrics before accept")
    | Wire.Busy { retry_after } ->
      (* Rate-limited: a retryable verdict carrying the daemon's own
         back-off hint, honoured by [submit_blocking]. *)
      t.retry_hint <- Some retry_after;
      fail t (Printf.sprintf "busy: daemon asked for %d ticks of backoff" retry_after)
    | Wire.Progress p -> (
      match t.phase with
      | Awaiting_accept | Streaming _ ->
        if p.campaign <> t.spec.Wire.campaign then
          fail t
            (Printf.sprintf "protocol: progress for foreign campaign %S" p.campaign)
        else begin
          let progress =
            {
              runs_total = p.runs_total;
              runs_done = p.runs_done;
              shards_done = p.shards_done;
              shards_leased = p.shards_leased;
              shards_failed = p.shards_failed;
            }
          in
          t.progress <- Some progress;
          match t.on_progress with None -> () | Some f -> f progress
        end
      | _ -> fail t "protocol: progress before handshake")
    | Wire.Submit _ | Wire.Cancel _ | Wire.Drain ->
      fail t
        (Printf.sprintf "protocol: client-only frame %s from daemon"
           (Wire.frame_name frame))
    | Wire.Worker_hello _ | Wire.Lease_renew _ | Wire.Shard_result _
    | Wire.Shard_failed _ | Wire.Lease _ | Wire.Revoke _ ->
      fail t
        (Printf.sprintf "protocol: worker frame %s on a client connection"
           (Wire.frame_name frame)))

let input t ~now bytes =
  match t.phase with
  | Terminal _ -> ()
  | _ ->
    if String.length bytes > 0 then t.last_seen <- now;
    Framed.add_string t.inbound bytes;
    let rec drain () =
      match t.phase with
      | Terminal _ -> ()
      | _ -> (
        match Wire.next_frame t.inbound with
        | `Need_more -> ()
        | `Corrupt m -> fail t (Printf.sprintf "corrupt stream: %s" m)
        | `Frame f ->
          on_frame t f;
          drain ())
    in
    drain ()

let eof t ~now =
  ignore now;
  match t.phase with Terminal _ -> () | _ -> fail t "disconnected"

let tick t ~now =
  match t.phase with
  | Terminal _ -> ()
  | _ ->
    if now - t.last_seen >= t.config.liveness_timeout then
      fail t
        (Printf.sprintf "timed out: no traffic in %d ticks" (now - t.last_seen))
    else if now - t.last_beat >= t.config.heartbeat_every then begin
      t.last_beat <- now;
      send t (Wire.Heartbeat { sent_at = now })
    end

(* --- retry classification --------------------------------------------------- *)

let retryable reason =
  (* Transport loss and draining daemons are transient; everything the
     daemon said "no" to is a verdict. *)
  let has_prefix p = String.length reason >= String.length p
                     && String.sub reason 0 (String.length p) = p in
  has_prefix "disconnected" || has_prefix "timed out"
  || has_prefix "corrupt stream" || has_prefix "draining"
  || has_prefix "connect:" || has_prefix "busy"

(* --- blocking driver -------------------------------------------------------- *)

let drive_connection ?on_progress ~socket ~spec () =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    (Failed (Printf.sprintf "connect: %s" (Unix.error_message e)), None)
  | fd -> (
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      (Failed (Printf.sprintf "connect: %s" (Unix.error_message e)), None)
    | () ->
      Unix.set_nonblock fd;
      let epoch = Unix.gettimeofday () in
      let now () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1000.) in
      let t = create ?on_progress ~spec ~now:(now ()) () in
      (* A daemon killed mid-write must classify as a retryable
         disconnect, not SIGPIPE this process. *)
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let finally () =
        Sys.set_signal Sys.sigpipe old_pipe;
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      let rec loop () =
        match status t with
        | (Done _ | Failed _) as s when Framed.is_empty t.outbound ->
          (s, retry_hint t)
        | s -> (
          match s with
          | Failed _ | Done _ ->
            (* Terminal but unsent bytes (the [Drain]); flush best-effort. *)
            (match Framed.write_from fd t.outbound with
            | `Wrote _ | `Would_block -> ()
            | `Closed | `Error _ -> Framed.consume t.outbound (Framed.length t.outbound));
            loop ()
          | Pending ->
            let writers = if Framed.is_empty t.outbound then [] else [ fd ] in
            (match Unix.select [ fd ] writers [] 0.05 with
            | readable, writable, _ ->
              (if writable <> [] then
                 match Framed.write_from fd t.outbound with
                 | `Wrote _ | `Would_block -> ()
                 | `Closed | `Error _ -> eof t ~now:(now ()));
              (if readable <> [] then
                 let stage = Framed.create () in
                 match Framed.read_into fd stage with
                 | `Read _ -> input t ~now:(now ()) (Framed.take_all stage)
                 | `Would_block -> ()
                 | `Closed | `Error _ -> eof t ~now:(now ()))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            tick t ~now:(now ());
            loop ())
      in
      loop ())

let submit_blocking ~socket ?(attempts = 5) ?(backoff = 2.0)
    ?(initial_delay_ms = 50) ?on_progress ~spec () =
  if attempts < 1 then invalid_arg "Client.submit_blocking: attempts < 1";
  (* Reuse the supervisor's budget-growth rounding for the retry sleeps:
     one discipline for "try again, less eagerly" across the repo. *)
  let policy =
    { Supervisor.watchdog_rounds = max_int; min_retired = 1;
      max_retries = attempts - 1; backoff }
  in
  let rec go attempt delay_ms =
    match drive_connection ?on_progress ~socket ~spec () with
    | Done outcome, _ -> Ok outcome
    | Pending, _ -> assert false
    | Failed reason, hint ->
      if attempt + 1 < attempts && retryable reason then begin
        Metrics.incr "service.client.retries";
        (* A [Busy] daemon knows its own refill schedule better than our
           exponential guess: sleep at least what it asked for. *)
        let delay_ms =
          match hint with Some h -> max delay_ms h | None -> delay_ms
        in
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (attempt + 1) (Supervisor.backed_off policy delay_ms)
      end
      else Error reason
  in
  go 0 initial_delay_ms

(** The perpled binary wire protocol: length-prefixed frames.

    On the wire a frame is

    {v
    <u32 big-endian body length> <u32 crc32 of body> <u8 tag> <body fields...>
    v}

    with fixed-width big-endian integers ([u8]/[u32]/[i64]) and
    length-prefixed byte strings ([u32] length + raw bytes).  The layout
    is deliberately dumb: no compression, no optional fields, no
    versioned body shapes — version negotiation happens once, in
    {!frame.Hello}, and every other frame decodes the same way forever.

    The checksum is what makes fault classification sound: a
    desynchronized stream (duplicated or spliced bytes) can otherwise
    produce a {e wrong but decodable} frame by accident, silently
    corrupting a result stream.  With the body CRC (same CRC-32 as the
    durability journal) a splice is detected with probability
    [1 - 2^-32] and surfaces as [Corrupt] — quarantine on the daemon
    side, a classified retryable failure on the client side.

    {!decode} is total over arbitrary bytes: any input yields a complete
    {!frame}, [Need_more] (the buffer holds a frame prefix), or [Corrupt]
    (the bytes can never become a valid frame) — it never raises, however
    the transport tears, truncates or duplicates bytes.  Every frame type
    round-trips: [decode (encode f) = Frame (f, _)], property-tested over
    random frames in the suite. *)

type spec = {
  campaign : string;
      (** Client-chosen campaign id; resubmitting an id the daemon
          already knows (with the same parameters) re-streams its
          results instead of re-running them. *)
  test : string;  (** Catalog test name, or full [.litmus] source text. *)
  iterations : int;
  seed : int;
  runs : int;
  counter : string;  (** [heur], [exh] or [exh-ref] (as the CLI). *)
  model : string;  (** [sc], [tso], [pso] or a buggy-model name. *)
}

type error_code =
  | Protocol  (** The peer broke framing or state-machine rules. *)
  | Rejected  (** A submit failed validation. *)
  | Cancelled
  | Draining  (** The daemon is shutting down; retry after restart. *)
  | Timeout  (** Liveness deadline missed. *)
  | Internal

type frame =
  | Hello of { version : int; peer : string }
      (** First frame in both directions; [version] must match
          {!protocol_version}. *)
  | Submit of spec
  | Accepted of {
      campaign : string;
      digest : string;  (** Config digest, as in campaign journals. *)
      runs : int;
      completed : int;  (** Runs already journaled (re-streamed first). *)
    }
  | Run_record of { campaign : string; index : int; record : string }
      (** One ledger record ({!Perple_core.Ledger.record_line}); the
          daemon streams indices in order, journaled ones first. *)
  | Metrics_chunk of { campaign : string; payload : string }
      (** Terminal frame of a campaign: the merged per-run metrics dump
          (deterministic for any [--jobs] and any kill/restart split). *)
  | Heartbeat of { sent_at : int }
      (** Liveness beacon, both directions; [sent_at] is the sender's
          clock (virtual in tests) and is not interpreted. *)
  | Cancel of { campaign : string }
  | Drain
      (** Client → server: no further requests, close when flushed.
          Server → client: daemon is draining; resubmit after restart. *)
  | Error of { code : error_code; message : string }
  | Worker_hello of { version : int; worker : string }
      (** First frame from a worker connection (instead of {!frame.Hello});
          the coordinator replies with a plain [Hello]. *)
  | Lease of {
      campaign : string;
      digest : string;  (** Config digest the worker must re-derive. *)
      shard : int;
      epoch : int;
          (** Monotonic per shard, across coordinator restarts; results
              carrying a stale epoch are discarded. *)
      lo : int;
      hi : int;  (** Run-index range [lo, hi), within the campaign. *)
      lease_ticks : int;
          (** Renewal deadline: the lease is revoked unless renewed
              within this many ticks. *)
      spec : spec;  (** Everything needed to execute the runs locally. *)
    }
  | Lease_renew of { campaign : string; shard : int; epoch : int; sent_at : int }
      (** Worker → coordinator heartbeat for one lease; extends the
          deadline by the lease's [lease_ticks]. *)
  | Shard_result of {
      campaign : string;
      shard : int;
      epoch : int;
      records : (int * string) list;
          (** (run index, canonical ledger record line), exactly
              [lo .. hi-1] in order. *)
    }
  | Shard_failed of { campaign : string; shard : int; epoch : int; reason : string }
      (** Worker-reported shard fault; the coordinator revokes and
          reassigns with backoff. *)
  | Revoke of { campaign : string; shard : int; epoch : int; reason : string }
      (** Coordinator → worker: stop working on this lease; any late
          result for it will be discarded. *)
  | Busy of { retry_after : int }
      (** Submit declined by the per-connection rate limiter; retry
          after [retry_after] ticks (honoured by the client's backoff). *)
  | Progress of {
      campaign : string;
      runs_total : int;
      runs_done : int;
      shards_done : int;
      shards_leased : int;
      shards_failed : int;  (** Shards abandoned as [Unrecoverable]. *)
    }
      (** Out-of-band campaign progress, streamed to subscribers between
          record frames; purely advisory and never required for
          completion. *)

val protocol_version : int
val max_frame : int
(** Upper bound on a frame's body length; larger declared lengths are
    [Corrupt], bounding what a hostile or broken peer can make the
    daemon buffer. *)

val frame_name : frame -> string
val error_code_name : error_code -> string

val encode : frame -> string
(** The complete wire bytes, length prefix included. *)

type decoded =
  | Frame of frame * int  (** The frame and the bytes it consumed. *)
  | Need_more  (** A valid frame may still be completed by more bytes. *)
  | Corrupt of string  (** No extension of these bytes parses. *)

val decode : ?pos:int -> string -> decoded
(** Decode the frame starting at [pos] (default 0).  Never raises. *)

val next_frame :
  Perple_util.Framed.buf ->
  [ `Frame of frame | `Need_more | `Corrupt of string ]
(** {!decode} against a connection buffer, consuming the frame's bytes
    on success.  A [`Corrupt] result consumes nothing — the caller is
    expected to quarantine the connection, not to resynchronise. *)

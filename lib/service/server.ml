(* Daemon core (sans-IO) and its select-loop driver.

   The core never blocks and never touches a socket: connections are
   integer ids, time is an integer the driver advances, and all bytes
   move through explicit [input]/[flush] calls.  The driver at the
   bottom of this file is deliberately dumb — accept, read, tick,
   write, close — so that everything the chaos suite exercises is
   exactly what production runs. *)

module Framed = Perple_util.Framed
module Metrics = Perple_util.Metrics
module Trace = Perple_util.Trace_event

(* One subscription: a client waiting for a campaign's stream.  [cursor]
   is the next run index to send; records below it have been queued and
   therefore (journal-before-stream) are on disk. *)
type sub = {
  campaign : string;
  mutable cursor : int;
  mutable metrics_sent : bool;
  mutable last_progress : (int * int * int * int) option;
      (** (runs done, shards done/leased/failed) last pushed, so
          progress frames only flow when something moved. *)
}

type conn = {
  cid : int;
  session : Session.t;
  mutable subs : sub list;  (** In subscription order. *)
}

type t = {
  scheduler : Scheduler.t;
  coordinator : Coordinator.t option;
  session_config : Session.config;
  conns : (int, conn) Hashtbl.t;
  mutable next_id : int;
  mutable draining : bool;
}

let create ?(session_config = Session.default_config) ?coordinator ~scheduler
    () =
  {
    scheduler;
    coordinator;
    session_config;
    conns = Hashtbl.create 8;
    next_id = 0;
    draining = false;
  }

let conn t id = Hashtbl.find_opt t.conns id

let connections t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.conns [] |> List.sort compare

let draining t = t.draining

(* --- streaming ------------------------------------------------------------- *)

(* Push whatever the subscription is owed, stopping at the first
   [`Overflow] — the cursor only advances on accepted sends, so
   backpressure is just "try again next tick". *)
let advance_sub t c sub =
  let s = t.scheduler in
  let campaign = sub.campaign in
  match Scheduler.runs s ~campaign with
  | None -> true (* campaign vanished: impossible, but drop the sub *)
  | Some runs ->
    let rec push () =
      if Scheduler.is_cancelled s ~campaign then begin
        Session.send_control c.session
          (Wire.Error { code = Wire.Cancelled; message = campaign });
        true
      end
      else
        match Scheduler.failed s ~campaign with
        | Some m ->
          Session.send_control c.session
            (Wire.Error
               { code = Wire.Internal;
                 message = Printf.sprintf "campaign %s: %s" campaign m });
          true
        | None ->
          if sub.cursor < runs then
            match Scheduler.record s ~campaign ~index:sub.cursor with
            | None -> false (* not executed yet *)
            | Some line -> (
              match
                Session.send c.session
                  (Wire.Run_record
                     { campaign; index = sub.cursor; record = line })
              with
              | `Overflow -> false
              | `Ok ->
                sub.cursor <- sub.cursor + 1;
                Metrics.incr "service.records_streamed";
                push ())
          else if not sub.metrics_sent then
            match Scheduler.metrics_payload s ~campaign with
            | None -> false
            | Some payload -> (
              match
                Session.send c.session (Wire.Metrics_chunk { campaign; payload })
              with
              | `Overflow -> false
              | `Ok ->
                sub.metrics_sent <- true;
                true)
          else true
    in
    push ()

(* Advisory campaign progress: pushed whenever the counts moved, skipped
   under backpressure (the next tick retries), never required for
   completion. *)
let push_progress t c sub =
  match Scheduler.runs t.scheduler ~campaign:sub.campaign with
  | None -> ()
  | Some runs ->
    let runs_done = Scheduler.completed t.scheduler ~campaign:sub.campaign in
    let shards_done, shards_leased, shards_failed =
      match t.coordinator with
      | None -> (0, 0, 0)
      | Some co -> Coordinator.shard_counts co ~campaign:sub.campaign
    in
    let key = (runs_done, shards_done, shards_leased, shards_failed) in
    if sub.last_progress <> Some key then
      match
        Session.send c.session
          (Wire.Progress
             { campaign = sub.campaign; runs_total = runs; runs_done;
               shards_done; shards_leased; shards_failed })
      with
      | `Ok ->
        sub.last_progress <- Some key;
        Metrics.incr "service.progress_streamed"
      | `Overflow -> ()

let advance_conn t c =
  if Session.active c.session then begin
    List.iter (fun sub -> push_progress t c sub) c.subs;
    c.subs <- List.filter (fun sub -> not (advance_sub t c sub)) c.subs
  end

(* --- session events -------------------------------------------------------- *)

let dispatch t commands =
  List.iter
    (fun { Coordinator.target; frame } ->
      match conn t target with
      | None -> () (* worker vanished between decision and delivery *)
      | Some c -> Session.send_control c.session frame)
    commands

let rec on_event t c ~now = function
  | Session.Hello_received _ -> ()
  | Session.Terminated _ -> (
    (* Harmless for plain clients: the coordinator only knows worker
       ids, so this is a no-op unless a lease-holder just died. *)
    match t.coordinator with
    | Some co -> Coordinator.remove_worker co ~id:c.cid ~now
    | None -> ())
  | Session.Worker_joined name -> (
    match t.coordinator with
    | None ->
      (* A worker dialled a plain daemon: classify and close — the
         session already replied [Hello], so explain before EOF. *)
      Session.send_control c.session
        (Wire.Error
           { code = Wire.Rejected; message = "daemon is not a coordinator" });
      List.iter (on_event t c ~now) (Session.eof c.session ~now)
    | Some co -> Coordinator.add_worker co ~id:c.cid ~name)
  | Session.Lease_renewed { campaign; shard; epoch } -> (
    match t.coordinator with
    | None -> ()
    | Some co ->
      dispatch t (Coordinator.renew co ~worker:c.cid ~campaign ~shard ~epoch ~now))
  | Session.Shard_done { campaign; shard; epoch; records } -> (
    match t.coordinator with
    | None -> ()
    | Some co ->
      dispatch t
        (Coordinator.shard_result co ~worker:c.cid ~campaign ~shard ~epoch
           ~records ~now))
  | Session.Shard_faulted { campaign; shard; epoch; reason } -> (
    match t.coordinator with
    | None -> ()
    | Some co ->
      dispatch t
        (Coordinator.shard_failed co ~worker:c.cid ~campaign ~shard ~epoch
           ~reason ~now))
  | Session.Submitted spec ->
    if t.draining then
      Session.send_control c.session
        (Wire.Error { code = Wire.Draining; message = "daemon is draining" })
    else begin
      match Scheduler.submit t.scheduler spec with
      | Error m ->
        Session.send_control c.session
          (Wire.Error { code = Wire.Rejected; message = m })
      | Ok { Scheduler.digest; runs; completed } ->
        Session.send_control c.session
          (Wire.Accepted { campaign = spec.Wire.campaign; digest; runs; completed });
        if
          not
            (List.exists (fun s -> s.campaign = spec.Wire.campaign) c.subs)
        then
          c.subs <-
            c.subs
            @ [ { campaign = spec.Wire.campaign; cursor = 0;
                  metrics_sent = false; last_progress = None } ]
    end
  | Session.Cancel_requested campaign ->
    if not (Scheduler.cancel t.scheduler ~campaign) then
      Session.send_control c.session
        (Wire.Error
           { code = Wire.Rejected;
             message = Printf.sprintf "unknown campaign %S" campaign })

let handle t c ~now events =
  List.iter (on_event t c ~now) events;
  advance_conn t c

(* --- driver-facing surface ------------------------------------------------- *)

let connect t ~now =
  let id = t.next_id in
  t.next_id <- id + 1;
  let session = Session.create ~config:t.session_config ~id ~now () in
  let c = { cid = id; session; subs = [] } in
  Hashtbl.replace t.conns id c;
  if t.draining then begin
    (* Too late: explain and shut the session immediately; the bytes
       still flush so the client gets a classification, not a reset. *)
    Session.send_control session
      (Wire.Error { code = Wire.Draining; message = "daemon is draining" });
    ignore (Session.eof session ~now)
  end;
  id

let input t ~conn:id ~now bytes =
  match conn t id with
  | None -> ()
  | Some c -> handle t c ~now (Session.feed c.session ~now bytes)

let eof t ~conn:id ~now =
  match conn t id with
  | None -> ()
  | Some c -> List.iter (on_event t c ~now) (Session.eof c.session ~now)

let tick t ~now =
  Hashtbl.iter
    (fun _ c -> List.iter (on_event t c ~now) (Session.tick c.session ~now))
    t.conns;
  (match t.coordinator with
  | Some co when not t.draining ->
    dispatch t (Coordinator.tick co ~now);
    (* Graceful degradation: a coordinator with no connected workers
       executes locally, exactly like the single-node daemon, so a
       campaign never waits on a fleet that is not coming back. *)
    if Coordinator.worker_count co = 0 && Scheduler.pending t.scheduler then
      ignore (Scheduler.step t.scheduler)
  | Some _ -> ()
  | None ->
    if (not t.draining) && Scheduler.pending t.scheduler then
      ignore (Scheduler.step t.scheduler));
  (* Deterministic streaming order so tests can compare transcripts. *)
  List.iter
    (fun id -> match conn t id with None -> () | Some c -> advance_conn t c)
    (connections t)

let flush t ~conn:id =
  match conn t id with
  | None -> ""
  | Some c -> Framed.take_all (Session.output c.session)

let closed t ~conn:id =
  match conn t id with
  | None -> true
  | Some c ->
    Session.terminal c.session <> None
    && Framed.is_empty (Session.output c.session)

let terminal t ~conn:id =
  match conn t id with None -> None | Some c -> Session.terminal c.session

let idle t =
  (not (Scheduler.pending t.scheduler))
  && Hashtbl.fold
       (fun _ c acc -> acc && Session.terminal c.session <> None)
       t.conns true

let drain t ~now =
  if not t.draining then begin
    t.draining <- true;
    Scheduler.note_draining t.scheduler;
    Metrics.incr "service.drains";
    Hashtbl.iter
      (fun _ c ->
        if Session.terminal c.session = None then begin
          Session.send_control c.session
            (Wire.Error { code = Wire.Draining; message = "daemon is draining" });
          ignore (Session.eof c.session ~now)
        end)
      t.conns
  end

(* --- real transport -------------------------------------------------------- *)

(* A live socket plus its staging buffers.  [stage] collects raw reads
   before they are handed to the core; [out] collects core output until
   the socket accepts it. *)
type io_conn = { fd : Unix.file_descr; stage : Framed.buf; out : Framed.buf }

let now_ms epoch = int_of_float ((Unix.gettimeofday () -. epoch) *. 1000.)

(* A socket file can be a live daemon or the debris of a dead one; only
   a connection attempt can tell which. *)
let claim_unix_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if live then Error (Printf.sprintf "socket %s: a daemon is already listening" path)
    else begin
      (try Sys.remove path with Sys_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let listen_unix path =
  match claim_unix_socket path with
  | Error _ as e -> e
  | Ok () ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       Unix.set_nonblock fd;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "socket %s: %s" path (Unix.error_message e)))

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    Unix.close fd;
    Error (Printf.sprintf "tcp port %d: %s" port (Unix.error_message e))

let serve ~socket ?tcp_port ?(jobs = 1) ?session_config ?coordinator ~journal
    () =
  match Scheduler.create ~jobs ~journal () with
  | Error _ as e -> e
  | Ok scheduler -> (
    let finish_scheduler () = Scheduler.close scheduler in
    let coordinator =
      match coordinator with
      | None -> Ok None
      | Some config ->
        Result.map Option.some (Coordinator.create ~config ~scheduler ())
    in
    match coordinator with
    | Error m ->
      finish_scheduler ();
      Error m
    | Ok coordinator -> (
    match listen_unix socket with
    | Error m ->
      finish_scheduler ();
      Error m
    | Ok unix_fd -> (
      let tcp =
        match tcp_port with
        | None -> Ok None
        | Some p -> Result.map Option.some (listen_tcp p)
      in
      match tcp with
      | Error m ->
        Unix.close unix_fd;
        (try Sys.remove socket with Sys_error _ -> ());
        finish_scheduler ();
        Error m
      | Ok tcp_fd ->
        let core = create ?session_config ?coordinator ~scheduler () in
        let epoch = Unix.gettimeofday () in
        let stop = ref None in
        let handler s = stop := Some s in
        let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
        let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
        (* A client that vanishes mid-write must surface as [`Closed]
           (EPIPE) on that one connection, not kill the daemon. *)
        let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        let listeners = unix_fd :: Option.to_list tcp_fd in
        let ios : (int, io_conn) Hashtbl.t = Hashtbl.create 8 in
        let close_io id io =
          Hashtbl.remove ios id;
          try Unix.close io.fd with Unix.Unix_error _ -> ()
        in
        let accept_on lfd =
          match Unix.accept ~cloexec:true lfd with
          | fd, _ ->
            Unix.set_nonblock fd;
            let id = connect core ~now:(now_ms epoch) in
            Hashtbl.replace ios id
              { fd; stage = Framed.create (); out = Framed.create () }
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
            ()
        in
        let pump_io () =
          (* Read side, then core turn, then write side. *)
          let now = now_ms epoch in
          Hashtbl.iter
            (fun id io ->
              match Framed.read_into io.fd io.stage with
              | `Read _ -> input core ~conn:id ~now (Framed.take_all io.stage)
              | `Would_block -> ()
              | `Closed | `Error _ -> eof core ~conn:id ~now)
            ios;
          tick core ~now:(now_ms epoch);
          let dead = ref [] in
          Hashtbl.iter
            (fun id io ->
              Framed.add_string io.out (flush core ~conn:id);
              (if not (Framed.is_empty io.out) then
                 match Framed.write_from io.fd io.out with
                 | `Wrote _ | `Would_block -> ()
                 | `Closed | `Error _ ->
                   eof core ~conn:id ~now:(now_ms epoch);
                   Framed.consume io.out (Framed.length io.out));
              if closed core ~conn:id && Framed.is_empty io.out then
                dead := (id, io) :: !dead)
            ios;
          List.iter (fun (id, io) -> close_io id io) !dead
        in
        let finally () =
          Sys.set_signal Sys.sigint old_int;
          Sys.set_signal Sys.sigterm old_term;
          Sys.set_signal Sys.sigpipe old_pipe;
          Hashtbl.iter (fun _ io -> try Unix.close io.fd with _ -> ()) ios;
          List.iter (fun fd -> try Unix.close fd with _ -> ()) listeners;
          (try Sys.remove socket with Sys_error _ -> ());
          finish_scheduler ()
        in
        Fun.protect ~finally @@ fun () ->
        let rec loop () =
          match !stop with
          | Some signum ->
            (* Drain: marker journaled, sessions told why, outputs given
               a bounded window to reach their peers. *)
            drain core ~now:(now_ms epoch);
            let deadline = Unix.gettimeofday () +. 2.0 in
            let rec flush_out () =
              pump_io ();
              if Hashtbl.length ios > 0 && Unix.gettimeofday () < deadline
              then begin
                ignore (Unix.select [] [] [] 0.02);
                flush_out ()
              end
            in
            flush_out ();
            Ok signum
          | None ->
            let conn_fds = Hashtbl.fold (fun _ io acc -> io.fd :: acc) ios [] in
            let writers =
              Hashtbl.fold
                (fun _ io acc ->
                  if Framed.is_empty io.out then acc else io.fd :: acc)
                ios []
            in
            (match Unix.select (listeners @ conn_fds) writers [] 0.05 with
            | readable, _, _ ->
              List.iter
                (fun lfd -> if List.mem lfd readable then accept_on lfd)
                listeners
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            pump_io ();
            loop ()
        in
        loop ())))

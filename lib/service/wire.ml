(* Frame codec.  Encoding is append-to-buffer; decoding is a cursor over
   an immutable string with two local exceptions — [Truncated] for "the
   declared body ended early" and [Bad] for "these bytes are wrong" —
   both caught at the single entry point and turned into [Corrupt].
   Nothing in here allocates proportionally to anything but the frame
   itself, and nothing raises past [decode]. *)

type spec = {
  campaign : string;
  test : string;
  iterations : int;
  seed : int;
  runs : int;
  counter : string;
  model : string;
}

type error_code = Protocol | Rejected | Cancelled | Draining | Timeout | Internal

type frame =
  | Hello of { version : int; peer : string }
  | Submit of spec
  | Accepted of { campaign : string; digest : string; runs : int; completed : int }
  | Run_record of { campaign : string; index : int; record : string }
  | Metrics_chunk of { campaign : string; payload : string }
  | Heartbeat of { sent_at : int }
  | Cancel of { campaign : string }
  | Drain
  | Error of { code : error_code; message : string }
  | Worker_hello of { version : int; worker : string }
  | Lease of {
      campaign : string;
      digest : string;
      shard : int;
      epoch : int;
      lo : int;
      hi : int;
      lease_ticks : int;
      spec : spec;
    }
  | Lease_renew of { campaign : string; shard : int; epoch : int; sent_at : int }
  | Shard_result of {
      campaign : string;
      shard : int;
      epoch : int;
      records : (int * string) list;
    }
  | Shard_failed of { campaign : string; shard : int; epoch : int; reason : string }
  | Revoke of { campaign : string; shard : int; epoch : int; reason : string }
  | Busy of { retry_after : int }
  | Progress of {
      campaign : string;
      runs_total : int;
      runs_done : int;
      shards_done : int;
      shards_leased : int;
      shards_failed : int;
    }

(* 2: the coordinator/worker frames (tags 10-17).  A v1 peer would
   classify them as Corrupt (unknown tag), so the handshake bump keeps
   old binaries off the wire instead of quarantining them mid-stream. *)
let protocol_version = 2

(* Run records embed per-run metrics dumps; litmus sources are a few KiB.
   16 MiB bounds a hostile length prefix without ever constraining real
   traffic. *)
let max_frame = 16 * 1024 * 1024

let frame_name = function
  | Hello _ -> "hello"
  | Submit _ -> "submit"
  | Accepted _ -> "accepted"
  | Run_record _ -> "run-record"
  | Metrics_chunk _ -> "metrics-chunk"
  | Heartbeat _ -> "heartbeat"
  | Cancel _ -> "cancel"
  | Drain -> "drain"
  | Error _ -> "error"
  | Worker_hello _ -> "worker-hello"
  | Lease _ -> "lease"
  | Lease_renew _ -> "lease-renew"
  | Shard_result _ -> "shard-result"
  | Shard_failed _ -> "shard-failed"
  | Revoke _ -> "revoke"
  | Busy _ -> "busy"
  | Progress _ -> "progress"

let error_code_name = function
  | Protocol -> "protocol"
  | Rejected -> "rejected"
  | Cancelled -> "cancelled"
  | Draining -> "draining"
  | Timeout -> "timeout"
  | Internal -> "internal"

let code_byte = function
  | Protocol -> 0
  | Rejected -> 1
  | Cancelled -> 2
  | Draining -> 3
  | Timeout -> 4
  | Internal -> 5

let code_of_byte = function
  | 0 -> Some Protocol
  | 1 -> Some Rejected
  | 2 -> Some Cancelled
  | 3 -> Some Draining
  | 4 -> Some Timeout
  | 5 -> Some Internal
  | _ -> None

(* --- encoding -------------------------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u32 b v =
  if v < 0 || v > 0xFFFF_FFFF then
    invalid_arg (Printf.sprintf "Wire: u32 field out of range: %d" v);
  add_u8 b (v lsr 24);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 8);
  add_u8 b v

let add_i64 b v =
  let v = Int64.of_int v in
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (shift * 8)) 0xFFL)))
  done

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let tag_byte = function
  | Hello _ -> 1
  | Submit _ -> 2
  | Accepted _ -> 3
  | Run_record _ -> 4
  | Metrics_chunk _ -> 5
  | Heartbeat _ -> 6
  | Cancel _ -> 7
  | Drain -> 8
  | Error _ -> 9
  | Worker_hello _ -> 10
  | Lease _ -> 11
  | Lease_renew _ -> 12
  | Shard_result _ -> 13
  | Shard_failed _ -> 14
  | Revoke _ -> 15
  | Busy _ -> 16
  | Progress _ -> 17

let add_spec b { campaign; test; iterations; seed; runs; counter; model } =
  add_str b campaign;
  add_str b test;
  add_i64 b iterations;
  add_i64 b seed;
  add_u32 b runs;
  add_str b counter;
  add_str b model

let encode frame =
  let b = Buffer.create 64 in
  add_u8 b (tag_byte frame);
  (match frame with
  | Hello { version; peer } ->
    add_u32 b version;
    add_str b peer
  | Submit spec -> add_spec b spec
  | Accepted { campaign; digest; runs; completed } ->
    add_str b campaign;
    add_str b digest;
    add_u32 b runs;
    add_u32 b completed
  | Run_record { campaign; index; record } ->
    add_str b campaign;
    add_u32 b index;
    add_str b record
  | Metrics_chunk { campaign; payload } ->
    add_str b campaign;
    add_str b payload
  | Heartbeat { sent_at } -> add_i64 b sent_at
  | Cancel { campaign } -> add_str b campaign
  | Drain -> ()
  | Error { code; message } ->
    add_u8 b (code_byte code);
    add_str b message
  | Worker_hello { version; worker } ->
    add_u32 b version;
    add_str b worker
  | Lease { campaign; digest; shard; epoch; lo; hi; lease_ticks; spec } ->
    add_str b campaign;
    add_str b digest;
    add_u32 b shard;
    add_u32 b epoch;
    add_u32 b lo;
    add_u32 b hi;
    add_u32 b lease_ticks;
    add_spec b spec
  | Lease_renew { campaign; shard; epoch; sent_at } ->
    add_str b campaign;
    add_u32 b shard;
    add_u32 b epoch;
    add_i64 b sent_at
  | Shard_result { campaign; shard; epoch; records } ->
    add_str b campaign;
    add_u32 b shard;
    add_u32 b epoch;
    add_u32 b (List.length records);
    List.iter
      (fun (index, record) ->
        add_u32 b index;
        add_str b record)
      records
  | Shard_failed { campaign; shard; epoch; reason } ->
    add_str b campaign;
    add_u32 b shard;
    add_u32 b epoch;
    add_str b reason
  | Revoke { campaign; shard; epoch; reason } ->
    add_str b campaign;
    add_u32 b shard;
    add_u32 b epoch;
    add_str b reason
  | Busy { retry_after } -> add_u32 b retry_after
  | Progress { campaign; runs_total; runs_done; shards_done; shards_leased; shards_failed } ->
    add_str b campaign;
    add_u32 b runs_total;
    add_u32 b runs_done;
    add_u32 b shards_done;
    add_u32 b shards_leased;
    add_u32 b shards_failed);
  let body = Buffer.contents b in
  let out = Buffer.create (8 + String.length body) in
  add_u32 out (String.length body);
  (* Body checksum: a spliced or duplicated byte stream must classify
     as Corrupt, never decode to a plausible wrong frame. *)
  add_u32 out (Perple_util.Journal.crc32 body);
  Buffer.add_string out body;
  Buffer.contents out

(* --- decoding -------------------------------------------------------------- *)

type decoded = Frame of frame * int | Need_more | Corrupt of string

(* Raised only inside [decode], always caught there. *)
exception Truncated
exception Bad of string

type cursor = { s : string; mutable pos : int; limit : int }

let get_u8 c =
  if c.pos >= c.limit then raise Truncated;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  if c.pos + 4 > c.limit then raise Truncated;
  let b i = Char.code c.s.[c.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  if c.pos + 8 > c.limit then raise Truncated;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.s.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  let n = Int64.to_int !v in
  (* OCaml ints are 63-bit: a wire value outside their range cannot have
     been produced by [encode] and must not be silently wrapped. *)
  if Int64.of_int n <> !v then raise (Bad "integer field out of range");
  n

let get_str c =
  let n = get_u32 c in
  if c.pos + n > c.limit then raise Truncated;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_spec c =
  let campaign = get_str c in
  let test = get_str c in
  let iterations = get_i64 c in
  let seed = get_i64 c in
  let runs = get_u32 c in
  let counter = get_str c in
  let model = get_str c in
  { campaign; test; iterations; seed; runs; counter; model }

let decode_body tag c =
  match tag with
  | 1 ->
    let version = get_u32 c in
    let peer = get_str c in
    Hello { version; peer }
  | 2 -> Submit (get_spec c)
  | 3 ->
    let campaign = get_str c in
    let digest = get_str c in
    let runs = get_u32 c in
    let completed = get_u32 c in
    Accepted { campaign; digest; runs; completed }
  | 4 ->
    let campaign = get_str c in
    let index = get_u32 c in
    let record = get_str c in
    Run_record { campaign; index; record }
  | 5 ->
    let campaign = get_str c in
    let payload = get_str c in
    Metrics_chunk { campaign; payload }
  | 6 -> Heartbeat { sent_at = get_i64 c }
  | 7 -> Cancel { campaign = get_str c }
  | 8 -> Drain
  | 9 ->
    let byte = get_u8 c in
    let message = get_str c in
    (match code_of_byte byte with
    | Some code -> Error { code; message }
    | None -> raise (Bad (Printf.sprintf "unknown error code %d" byte)))
  | 10 ->
    let version = get_u32 c in
    let worker = get_str c in
    Worker_hello { version; worker }
  | 11 ->
    let campaign = get_str c in
    let digest = get_str c in
    let shard = get_u32 c in
    let epoch = get_u32 c in
    let lo = get_u32 c in
    let hi = get_u32 c in
    let lease_ticks = get_u32 c in
    let spec = get_spec c in
    Lease { campaign; digest; shard; epoch; lo; hi; lease_ticks; spec }
  | 12 ->
    let campaign = get_str c in
    let shard = get_u32 c in
    let epoch = get_u32 c in
    let sent_at = get_i64 c in
    Lease_renew { campaign; shard; epoch; sent_at }
  | 13 ->
    let campaign = get_str c in
    let shard = get_u32 c in
    let epoch = get_u32 c in
    let count = get_u32 c in
    (* Each item needs at least 8 bytes, so a hostile count fails on its
       first absent item rather than pre-allocating anything. *)
    let rec items k acc =
      if k = 0 then List.rev acc
      else begin
        let index = get_u32 c in
        let record = get_str c in
        items (k - 1) ((index, record) :: acc)
      end
    in
    Shard_result { campaign; shard; epoch; records = items count [] }
  | 14 ->
    let campaign = get_str c in
    let shard = get_u32 c in
    let epoch = get_u32 c in
    let reason = get_str c in
    Shard_failed { campaign; shard; epoch; reason }
  | 15 ->
    let campaign = get_str c in
    let shard = get_u32 c in
    let epoch = get_u32 c in
    let reason = get_str c in
    Revoke { campaign; shard; epoch; reason }
  | 16 -> Busy { retry_after = get_u32 c }
  | 17 ->
    let campaign = get_str c in
    let runs_total = get_u32 c in
    let runs_done = get_u32 c in
    let shards_done = get_u32 c in
    let shards_leased = get_u32 c in
    let shards_failed = get_u32 c in
    Progress { campaign; runs_total; runs_done; shards_done; shards_leased; shards_failed }
  | t -> raise (Bad (Printf.sprintf "unknown frame tag %d" t))

let decode ?(pos = 0) s =
  let avail = String.length s - pos in
  if pos < 0 || avail < 0 then Corrupt "negative offset"
  else if avail < 4 then Need_more
  else begin
    let b i = Char.code s.[pos + i] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len < 1 then Corrupt "empty frame body"
    else if len > max_frame then
      Corrupt (Printf.sprintf "frame body of %d bytes exceeds limit" len)
    else if avail < 8 + len then Need_more
    else begin
      let crc = (b 4 lsl 24) lor (b 5 lsl 16) lor (b 6 lsl 8) lor b 7 in
      if Perple_util.Journal.crc32 (String.sub s (pos + 8) len) <> crc then
        Corrupt "frame checksum mismatch"
      else begin
        let c = { s; pos = pos + 9; limit = pos + 8 + len } in
        match decode_body (Char.code s.[pos + 8]) c with
        | frame ->
          if c.pos <> c.limit then
            Corrupt
              (Printf.sprintf "%s frame has %d trailing bytes"
                 (frame_name frame) (c.limit - c.pos))
          else Frame (frame, 8 + len)
        (* The body length was declared and present, so an inner field
           running off the end is corruption, not a short read. *)
        | exception Truncated -> Corrupt "frame body truncated"
        | exception Bad m -> Corrupt m
      end
    end
  end

let next_frame buf =
  match decode (Perple_util.Framed.contents buf) with
  | Frame (f, consumed) ->
    Perple_util.Framed.consume buf consumed;
    `Frame f
  | Need_more -> `Need_more
  | Corrupt m -> `Corrupt m

(* The worker half of the coordinator protocol: sans-IO core first (so
   the multi-worker chaos suite can run hundreds of seeded failure
   schedules without a socket), then the reconnecting blocking driver
   behind [perple worker]. *)

module Framed = Perple_util.Framed
module Metrics = Perple_util.Metrics
module Supervisor = Perple_harness.Supervisor
module Engine = Perple_core.Engine
module Ledger = Perple_core.Ledger
module Convert = Perple_core.Convert
module Config = Perple_sim.Config

type config = { heartbeat_every : int; liveness_timeout : int }

let default_config = { heartbeat_every = 1_000; liveness_timeout = 10_000 }

type lease = {
  t_campaign : string;
  t_digest : string;
  t_spec : Wire.spec;
  t_shard : int;
  t_epoch : int;
  t_lo : int;
  t_hi : int;
  mutable t_next : int;  (** Next run index to execute. *)
  mutable t_got : (int * string) list;  (** Completed records, reversed. *)
}

type task = { spec : Wire.spec; digest : string; index : int }

type status = Running | Stopped of string

type t = {
  config : config;
  inbound : Framed.buf;
  outbound : Framed.buf;
  mutable active : bool;  (** Hello handshake completed. *)
  mutable stopped : string option;
  mutable current : lease option;
  mutable queue : lease list;
      (** Leases granted while busy, in grant order; at most one in
          practice (the coordinator leases one shard per worker). *)
  mutable last_seen : int;
  mutable last_beat : int;
  mutable leases_taken : int;
}

let send t frame =
  Framed.add_string t.outbound (Wire.encode frame);
  Metrics.incr "service.worker.frames_out"

let create ?(config = default_config) ?(name = "perple-worker") ~now () =
  let t =
    {
      config;
      inbound = Framed.create ();
      outbound = Framed.create ();
      active = false;
      stopped = None;
      current = None;
      queue = [];
      last_seen = now;
      last_beat = now;
      leases_taken = 0;
    }
  in
  send t (Wire.Worker_hello { version = Wire.protocol_version; worker = name });
  t

let output t = t.outbound
let status t = match t.stopped with Some r -> Stopped r | None -> Running
let leases_taken t = t.leases_taken

let stop t reason =
  if t.stopped = None then begin
    Metrics.incr "service.worker.stops";
    t.stopped <- Some reason
  end

let lease_key l = (l.t_campaign, l.t_shard, l.t_epoch)

let promote t =
  match t.queue with
  | [] -> t.current <- None
  | l :: rest ->
    t.current <- Some l;
    t.queue <- rest

let on_frame t ~now frame =
  Metrics.incr "service.worker.frames_in";
  match frame with
  | Wire.Heartbeat _ -> ()
  | Wire.Hello { version; _ } ->
    if t.active then stop t "protocol: duplicate hello"
    else if version <> Wire.protocol_version then
      stop t
        (Printf.sprintf "protocol: coordinator speaks version %d, want %d"
           version Wire.protocol_version)
    else t.active <- true
  | Wire.Lease { campaign; digest; shard; epoch; lo; hi; lease_ticks = _; spec } ->
    if not t.active then stop t "protocol: lease before hello"
    else if lo < 0 || hi < lo || hi > spec.Wire.runs then
      (* Never execute a range the spec cannot contain; report instead
         of guessing. *)
      send t
        (Wire.Shard_failed
           { campaign; shard; epoch; reason = "malformed lease range" })
    else begin
      let l =
        {
          t_campaign = campaign;
          t_digest = digest;
          t_spec = spec;
          t_shard = shard;
          t_epoch = epoch;
          t_lo = lo;
          t_hi = hi;
          t_next = lo;
          t_got = [];
        }
      in
      let known k = match t.current with
        | Some c when lease_key c = k -> true
        | _ -> List.exists (fun q -> lease_key q = k) t.queue
      in
      if known (lease_key l) then () (* duplicated grant: keep the first *)
      else begin
        t.leases_taken <- t.leases_taken + 1;
        Metrics.incr "service.worker.leases_taken";
        (* Acknowledge immediately: the grant-to-first-renewal gap must
           not count against the lease deadline however long the first
           run takes. *)
        send t (Wire.Lease_renew { campaign; shard; epoch; sent_at = now });
        match t.current with
        | None -> t.current <- Some l
        | Some _ -> t.queue <- t.queue @ [ l ]
      end
    end
  | Wire.Revoke { campaign; shard; epoch; reason = _ } ->
    let key = (campaign, shard, epoch) in
    (match t.current with
    | Some c when lease_key c = key ->
      Metrics.incr "service.worker.leases_revoked";
      promote t
    | _ ->
      let before = List.length t.queue in
      t.queue <- List.filter (fun q -> lease_key q <> key) t.queue;
      if List.length t.queue < before then
        Metrics.incr "service.worker.leases_revoked")
  | Wire.Error { code; message } ->
    stop t (Printf.sprintf "%s: %s" (Wire.error_code_name code) message)
  | Wire.Drain -> stop t "draining: coordinator closed"
  | Wire.Submit _ | Wire.Accepted _ | Wire.Run_record _
  | Wire.Metrics_chunk _ | Wire.Cancel _ | Wire.Worker_hello _
  | Wire.Lease_renew _ | Wire.Shard_result _ | Wire.Shard_failed _
  | Wire.Busy _ | Wire.Progress _ ->
    stop t
      (Printf.sprintf "protocol: unexpected %s frame" (Wire.frame_name frame))

let input t ~now bytes =
  match t.stopped with
  | Some _ -> ()
  | None ->
    if String.length bytes > 0 then t.last_seen <- now;
    Framed.add_string t.inbound bytes;
    let rec drain () =
      match t.stopped with
      | Some _ -> ()
      | None -> (
        match Wire.next_frame t.inbound with
        | `Need_more -> ()
        | `Corrupt m -> stop t (Printf.sprintf "corrupt stream: %s" m)
        | `Frame f ->
          on_frame t ~now f;
          drain ())
    in
    drain ()

let eof t ~now =
  ignore now;
  if t.stopped = None then stop t "disconnected"

let tick t ~now =
  match t.stopped with
  | Some _ -> ()
  | None ->
    if now - t.last_seen >= t.config.liveness_timeout then
      stop t
        (Printf.sprintf "timed out: no traffic in %d ticks" (now - t.last_seen))
    else if now - t.last_beat >= t.config.heartbeat_every then begin
      t.last_beat <- now;
      send t (Wire.Heartbeat { sent_at = now });
      (* The lease renews on the same cadence as the heartbeat: one
         silence budget for both disciplines. *)
      match t.current with
      | Some l ->
        send t
          (Wire.Lease_renew
             { campaign = l.t_campaign; shard = l.t_shard; epoch = l.t_epoch;
               sent_at = now })
      | None -> ()
    end

let task t =
  if t.stopped <> None then None
  else
    match t.current with
    | Some l when l.t_next < l.t_hi ->
      Some { spec = l.t_spec; digest = l.t_digest; index = l.t_next }
    | _ -> None

let task_done t ~now ~record =
  match t.current with
  | None -> ()
  | Some l ->
    l.t_got <- (l.t_next, record) :: l.t_got;
    l.t_next <- l.t_next + 1;
    if l.t_next >= l.t_hi then begin
      send t
        (Wire.Shard_result
           { campaign = l.t_campaign; shard = l.t_shard; epoch = l.t_epoch;
             records = List.rev l.t_got });
      Metrics.incr "service.worker.shards_completed";
      promote t
    end
    else
      send t
        (Wire.Lease_renew
           { campaign = l.t_campaign; shard = l.t_shard; epoch = l.t_epoch;
             sent_at = now })

let task_failed t ~reason =
  match t.current with
  | None -> ()
  | Some l ->
    send t
      (Wire.Shard_failed
         { campaign = l.t_campaign; shard = l.t_shard; epoch = l.t_epoch; reason });
    Metrics.incr "service.worker.shards_failed";
    promote t

(* --- execution --------------------------------------------------------------- *)

(* One campaign run, computed exactly as the scheduler's local [step]
   would: same config, same counter, seeds re-split from the campaign
   seed with every sibling skipped.  This is what makes a worker-merged
   ledger byte-identical to a single-node --jobs run. *)
let run_index ~(resolved : Scheduler.resolved) ~(spec : Wire.spec) ~index =
  let out = ref None in
  match
    Engine.campaign_entries
      ~config:(Config.with_model resolved.Scheduler.r_model Config.default)
      ~counter:resolved.Scheduler.r_counter ~jobs:1
      ~skip:(fun i -> i <> index)
      ~on_entry:(fun entry ->
        out := Some (Ledger.record_line (Ledger.of_entry entry)))
      ~runs:spec.Wire.runs ~seed:spec.Wire.seed
      ~iterations:spec.Wire.iterations resolved.Scheduler.r_test
  with
  | Error reason ->
    Error (Format.asprintf "not convertible: %a" Convert.pp_reason reason)
  | Ok _ -> (
    match !out with
    | Some line -> Ok line
    | None -> Error (Printf.sprintf "run %d produced no entry" index))

(* --- blocking driver --------------------------------------------------------- *)

type address = [ `Unix_socket of string | `Tcp of int ]

let connect_fd address =
  let domain, addr =
    match address with
    | `Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  | fd -> (
    match Unix.connect fd addr with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect: %s" (Unix.error_message e))
    | () ->
      Unix.set_nonblock fd;
      Ok fd)

(* Same classification as the client: transport loss, draining daemons
   and timeouts are transient; protocol verdicts are not. *)
let retryable = Client.retryable

let work_blocking ~address ?(name = "perple-worker") ?(attempts = 10)
    ?(backoff = 2.0) ?(initial_delay_ms = 100) ?(on_note = fun _ -> ()) () =
  if attempts < 1 then invalid_arg "Worker.work_blocking: attempts < 1";
  let stop_signal = ref None in
  let note_signal s = stop_signal := Some s in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle note_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle note_signal) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Fun.protect ~finally:restore @@ fun () ->
  let cache : (string, Scheduler.resolved) Hashtbl.t = Hashtbl.create 4 in
  let execute { spec; digest; index } =
    let resolved =
      match Hashtbl.find_opt cache digest with
      | Some r -> Ok r
      | None -> (
        match Scheduler.resolve_spec spec with
        | Ok r ->
          if r.Scheduler.r_digest <> digest then
            Error "digest mismatch: coordinator and worker disagree on config"
          else begin
            Hashtbl.replace cache digest r;
            Ok r
          end
        | Error m -> Error (Printf.sprintf "spec rejected: %s" m))
    in
    match resolved with
    | Error _ as e -> e
    | Ok r -> run_index ~resolved:r ~spec ~index
  in
  (* One connection: pump the state machine and execute leased runs
     until it stops; returns the stop reason. *)
  let drive_once () =
    match connect_fd address with
    | Error m -> m
    | Ok fd ->
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally @@ fun () ->
      let epoch = Unix.gettimeofday () in
      let now () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1000.) in
      let w = create ~name ~now:(now ()) () in
      let rec loop () =
        if !stop_signal <> None then "signalled"
        else
          match status w with
          | Stopped reason when Framed.is_empty (output w) -> reason
          | Stopped _ ->
            (match Framed.write_from fd w.outbound with
            | `Wrote _ | `Would_block -> ()
            | `Closed | `Error _ ->
              Framed.consume w.outbound (Framed.length w.outbound));
            loop ()
          | Running ->
            (match task w with
            | Some tk -> (
              match execute tk with
              | Ok record -> task_done w ~now:(now ()) ~record
              | Error reason ->
                on_note (Printf.sprintf "shard failed: %s" reason);
                task_failed w ~reason)
            | None -> ());
            let timeout = if task w = None then 0.05 else 0. in
            let writers = if Framed.is_empty w.outbound then [] else [ fd ] in
            (match Unix.select [ fd ] writers [] timeout with
            | readable, writable, _ ->
              (if writable <> [] then
                 match Framed.write_from fd w.outbound with
                 | `Wrote _ | `Would_block -> ()
                 | `Closed | `Error _ -> eof w ~now:(now ()));
              (if readable <> [] then
                 let stage = Framed.create () in
                 match Framed.read_into fd stage with
                 | `Read _ -> input w ~now:(now ()) (Framed.take_all stage)
                 | `Would_block -> ()
                 | `Closed | `Error _ -> eof w ~now:(now ()))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            tick w ~now:(now ());
            loop ()
      in
      let reason = loop () in
      if leases_taken w > 0 then reason ^ "\x00worked" else reason
  in
  let policy =
    { Supervisor.watchdog_rounds = max_int; min_retired = 1;
      max_retries = attempts - 1; backoff }
  in
  let rec go attempt delay_ms =
    match !stop_signal with
    | Some s -> Ok s
    | None ->
      let raw = drive_once () in
      let worked, reason =
        match String.index_opt raw '\x00' with
        | Some i -> (true, String.sub raw 0 i)
        | None -> (false, raw)
      in
      if reason = "signalled" then Ok (Option.value !stop_signal ~default:Sys.sigterm)
      else if retryable reason then begin
        (* Progress on the last connection refills the retry budget: a
           worker only gives up after [attempts] consecutive fruitless
           connections (a restarting coordinator is fine; a gone one is
           not). *)
        let attempt, delay_ms =
          if worked then (0, initial_delay_ms) else (attempt, delay_ms)
        in
        if attempt + 1 < attempts then begin
          on_note (Printf.sprintf "%s; reconnecting in %d ms" reason delay_ms);
          Unix.sleepf (float_of_int delay_ms /. 1000.);
          go (attempt + 1) (Supervisor.backed_off policy delay_ms)
        end
        else Error reason
      end
      else Error reason
  in
  go 0 initial_delay_ms

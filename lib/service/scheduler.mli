(** Campaign scheduler: multiplexes submitted specs over the domain
    pool, journals everything, and resumes exactly after a crash.

    The scheduler is the daemon's only stateful core.  Each accepted
    {!Wire.spec} is journaled, then executed in batches of up to [jobs]
    runs through {!Perple_core.Engine.campaign_entries} (pre-split
    per-run seeds, worker-fault isolation); every retiring run is
    appended to the journal as a ["crun"] record {e before} it is
    streamed.  [kill -9] at any point therefore loses at most work in
    flight, never work acknowledged: a scheduler re-created over the same
    journal path reloads the specs and completed runs, re-streams the
    journaled records byte-for-byte (records are canonical
    {!Perple_core.Ledger.record_line} serializations) and executes only
    the missing indices.

    Everything the scheduler emits is deterministic in the campaign
    parameters: records are keyed and released by run index, so the
    streamed bytes are identical for any [jobs] value and any
    kill/restart split — the property the daemon smoke job in CI
    enforces end to end. *)

type t

val create : ?jobs:int -> journal:string option -> unit -> (t, string) result
(** [journal = Some path]: open (creating) or replay-and-resume the
    journal at [path]; [Error] if its contents belong to a different
    command or fail validation.  [journal = None] runs in-memory
    (tests).  With [jobs > 1] a persistent {!Perple_core.Pool} is
    spawned once here and reused by every {!step} batch of every
    campaign (joined by {!close}/{!abandon}) — no domain is spawned per
    batch. *)

type resolved = {
  r_digest : string;  (** Config digest, as acknowledged to clients. *)
  r_test : Perple_litmus.Ast.t;
  r_counter : Perple_core.Engine.counter;
  r_model : Perple_sim.Config.model;
  r_seeds : int array;  (** The campaign's pre-split per-run seeds. *)
}

val resolve_spec : Wire.spec -> (resolved, string) result
(** Validate a spec exactly as {!submit} would, without a scheduler:
    the worker side of the coordinator protocol re-derives the digest
    and seeds from the leased spec and refuses a lease whose digest
    disagrees — a config-skew guard between coordinator and worker. *)

type accepted = { digest : string; runs : int; completed : int }

val submit : t -> Wire.spec -> (accepted, string) result
(** Validate and accept a spec, journaling it.  Resubmitting a known
    campaign id with identical parameters is idempotent and reports how
    many runs are already journaled; a parameter mismatch, an unknown
    test, a non-convertible test or nonsensical numbers are [Error]
    (surfaced to the client as a [Rejected] error frame). *)

val cancel : t -> campaign:string -> bool
(** Journal a cancellation and stop scheduling the campaign's remaining
    runs.  False if the campaign is unknown. *)

val runs : t -> campaign:string -> int option
val completed : t -> campaign:string -> int
val is_cancelled : t -> campaign:string -> bool
val is_complete : t -> campaign:string -> bool
val failed : t -> campaign:string -> string option
(** A campaign-level execution failure (e.g. the test stopped
    converting), distinct from per-run crashes, which are ordinary
    classified records. *)

val record : t -> campaign:string -> index:int -> string option
(** The canonical record line for a completed run index. *)

val campaign_ids : t -> string list
(** Accepted campaign ids, in submit order. *)

val spec_of : t -> campaign:string -> Wire.spec option
val digest_of : t -> campaign:string -> string option
val seeds_of : t -> campaign:string -> int array option

val record_external : t -> campaign:string -> line:string ->
  ([ `Recorded | `Duplicate ], string) result
(** Ingest a worker-computed record line: parse, validate index and seed
    against the campaign's pre-split, journal it as a ["crun"] and fill
    its slot.  [`Duplicate] if the identical canonical record is already
    present (idempotent); [Error] on any mismatch — the coordinator
    treats that as a faulty shard result and reassigns. *)

val extras : t -> Perple_util.Json.t list
(** Coordinator records (["lease"], ["revoke"], ["shard-dead"]) replayed
    from the journal, in append order. *)

val append_extra : t -> Perple_util.Json.t -> unit
(** Journal a coordinator record; it is preserved verbatim (and in
    order) through compaction on every future resume. *)

val metrics_payload : t -> campaign:string -> string option
(** The campaign's terminal {!Wire.frame.Metrics_chunk} payload: the
    per-run metrics captures of all [runs] records merged (addition is
    commutative), serialized deterministically.  [Some] once the
    campaign is complete. *)

val pending : t -> bool
(** Some campaign still has unexecuted runs. *)

val step : t -> (string * (int * string) list) option
(** Execute the next batch (up to [jobs] missing runs of one incomplete
    campaign), journaling each run as it retires.  Campaigns are served
    round-robin — each call picks up after the previously served
    campaign, so no campaign starves behind an older, larger one.
    Returns the campaign id and the new records in index order, or
    [None] when idle. *)

val note_draining : t -> unit
(** Append a ["draining"] marker — the serve-side analogue of the CLI's
    interrupted marker, written during signal shutdown. *)

val abandon : t -> unit
(** Close the journal descriptor {e without} draining — test hook that
    simulates [kill -9] for the sans-IO crash-equivalence suite.  The
    worker pool (process-local, not crash state) is still joined. *)

val close : t -> unit
(** Close the journal and join the worker pool. *)

(** Worker-side protocol state machine and blocking driver.

    The sans-IO machine mirrors a coordinator-mode {!Session} from the
    other end of the wire: [Worker_hello] handshake, then a loop of
    granted {!Wire.frame.Lease}s.  The embedding executes the leased
    run range one index at a time through {!task} / {!task_done} /
    {!task_failed}; the machine renews the lease after every completed
    run and on each heartbeat, ships the full record batch as one
    {!Wire.frame.Shard_result}, and honours {!Wire.frame.Revoke} by
    dropping the named lease (current or queued).  Any protocol
    violation, corrupt stream, daemon error, silence past the liveness
    deadline or EOF moves the machine to [Stopped] with a reason the
    client-side {!Client.retryable} classification understands.

    {!work_blocking} drives the machine over a real socket and
    reconnects on retryable stops with the
    {!Perple_harness.Supervisor.backed_off} growth discipline;
    reconnecting is safe because the coordinator detects the lost
    session, revokes the lease, and treats any late result from the
    old epoch as a zombie. *)

type config = { heartbeat_every : int; liveness_timeout : int }

val default_config : config

type task = {
  spec : Wire.spec;  (** Campaign parameters, embedded in the lease. *)
  digest : string;  (** Coordinator's parameter digest, for cross-check. *)
  index : int;  (** The run index to execute. *)
}

type status = Running | Stopped of string

type t

val create : ?config:config -> ?name:string -> now:int -> unit -> t
(** A fresh machine with its [Worker_hello] already queued. *)

val input : t -> now:int -> string -> unit
val eof : t -> now:int -> unit
val tick : t -> now:int -> unit
val output : t -> Perple_util.Framed.buf
val status : t -> status

val leases_taken : t -> int
(** Leases accepted over this connection's lifetime. *)

val task : t -> task option
(** The next run to execute under the current lease, if any.  Stable
    until {!task_done} or {!task_failed} is called. *)

val task_done : t -> now:int -> record:string -> unit
(** The pending {!task} produced [record] (a canonical ledger line).
    Queues a lease renewal, or the [Shard_result] batch when this was
    the shard's last run. *)

val task_failed : t -> reason:string -> unit
(** The pending {!task} could not be executed (unresolvable spec,
    digest mismatch, engine fault).  Reports [Shard_failed] and drops
    the lease; the coordinator reassigns or abandons the shard. *)

val run_index :
  resolved:Scheduler.resolved -> spec:Wire.spec -> index:int ->
  (string, string) result
(** Execute one campaign run exactly as the daemon's local scheduler
    would — same config, counter and pre-split seeds, every sibling
    index skipped — and return the canonical record line.  This shared
    path is what makes worker-merged ledgers byte-identical to a
    single-node [--jobs] run. *)

type address = [ `Unix_socket of string | `Tcp of int ]
(** Coordinator endpoint: a filesystem socket or a loopback TCP port. *)

val work_blocking :
  address:address ->
  ?name:string ->
  ?attempts:int ->
  ?backoff:float ->
  ?initial_delay_ms:int ->
  ?on_note:(string -> unit) ->
  unit ->
  (int, string) result
(** Connect to the coordinator, execute leases until told to stop.
    Retryable disconnections reconnect up to [attempts] consecutive
    fruitless times with exponentially grown sleeps; a connection that
    executed at least one lease refills the budget.  Returns [Ok
    signal] when stopped by SIGINT/SIGTERM, [Error reason] when the
    coordinator rejected us or the retry budget ran dry.  [on_note]
    receives human-readable progress lines. *)

(** Client-side protocol state machine and blocking submitter.

    The sans-IO machine mirrors {!Session} from the other end of the
    wire: hello handshake, submit, then a strict record stream —
    records must arrive in index order, exactly [runs] of them,
    followed by one [Metrics_chunk].  Anything else (an error frame, a
    corrupt stream, silence past the liveness deadline, EOF mid-stream)
    moves the machine to [Failed] with a reason — a client can always
    classify how its submission ended, never hang.

    {!submit_blocking} drives the machine over a real socket and
    retries retryable failures (disconnects, timeouts, draining
    daemons) with the {!Perple_harness.Supervisor.backed_off} growth
    discipline; retrying is safe because submits are idempotent per
    campaign id and the daemon re-streams from the journal. *)

type config = { heartbeat_every : int; liveness_timeout : int }

val default_config : config

type outcome = {
  digest : string;  (** Parameter digest echoed by [Accepted]. *)
  completed_at_accept : int;
      (** Runs already journaled server-side when we were accepted. *)
  records : string list;  (** Canonical record lines, index order. *)
  metrics : string;  (** The [Metrics_chunk] payload. *)
}

type progress = {
  runs_total : int;
  runs_done : int;
  shards_done : int;
  shards_leased : int;
  shards_failed : int;
}
(** A {!Wire.frame.Progress} update for our campaign.  Shard counts are
    zero against a non-coordinator daemon. *)

type status = Pending | Done of outcome | Failed of string

type t

val create :
  ?config:config -> ?peer:string -> ?on_progress:(progress -> unit) ->
  spec:Wire.spec -> now:int -> unit -> t
(** A fresh machine with its [Hello] already queued.  [on_progress] is
    invoked on every progress frame (the [--follow] hook); progress is
    advisory and never required for completion. *)

val input : t -> now:int -> string -> unit
val eof : t -> now:int -> unit
val tick : t -> now:int -> unit
val output : t -> Perple_util.Framed.buf
val status : t -> status

val progress : t -> progress option
(** The most recent progress update, if any arrived. *)

val retryable : string -> bool
(** Whether a [Failed] reason is worth a reconnection (transport-level
    loss, a draining daemon, or a [Busy] rate-limit verdict) rather
    than a verdict (rejection, protocol error). *)

val submit_blocking :
  socket:string ->
  ?attempts:int ->
  ?backoff:float ->
  ?initial_delay_ms:int ->
  ?on_progress:(progress -> unit) ->
  spec:Wire.spec ->
  unit ->
  (outcome, string) result
(** Connect to the daemon at [socket], run the machine to a terminal
    status, and retry retryable failures up to [attempts] times with
    exponentially grown sleeps ([initial_delay_ms] scaled by [backoff]
    per retry, {!Perple_harness.Supervisor.backed_off} rounding).  When
    the daemon answers [Busy], the sleep honours its retry-after hint
    if that is longer than the backoff's own delay. *)

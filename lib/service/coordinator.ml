(* Lease-based sharding of campaigns over remote workers.

   Sans-IO, like Session: the server core feeds it worker events and a
   clock, and reads back (worker, frame) commands to deliver.  All
   shard/lease state is derived from the scheduler's journal — lease
   grants, revocations and abandoned shards are journaled as "extras"
   (see Scheduler), so a kill -9'd coordinator resumes with monotonic
   lease epochs and byte-identical output.

   The safety argument, in one place:

   - Run records are keyed by (campaign, index) and validated against
     the campaign's pre-split seeds, so the merged ledger is independent
     of which worker computed a run, in which order, or how many times.
   - A lease carries an epoch, monotonic per shard across coordinator
     restarts (epochs are journaled with each grant).  A result or
     renewal whose (campaign, shard, epoch) does not match the live
     lease is stale — a zombie whose lease was revoked — and is
     discarded idempotently.
   - A shard whose lease dies (deadline missed, worker disconnected,
     fault reported, malformed result) is reassigned with backed-off
     retries; after [max_attempts] failures its remaining runs are
     journaled as classified [Unrecoverable] records so the campaign
     still completes — graceful degradation, never a hang. *)

module Json = Perple_util.Json
module Metrics = Perple_util.Metrics
module Ledger = Perple_core.Ledger
module Supervisor = Perple_harness.Supervisor

type config = {
  shard_runs : int;
  lease_ticks : int;
  max_attempts : int;
  retry_delay : int;
  retry_backoff : float;
}

let default_config =
  { shard_runs = 4; lease_ticks = 10_000; max_attempts = 5; retry_delay = 100;
    retry_backoff = 2.0 }

type lease = { l_worker : int; l_epoch : int; mutable l_deadline : int }

type shard_state = Unassigned | Leased of lease | Done | Dead

type shard = {
  s_index : int;
  s_lo : int;
  s_hi : int;  (** Run-index range [lo, hi). *)
  mutable s_state : shard_state;
  mutable s_epoch : int;  (** Highest epoch ever granted. *)
  mutable s_attempts : int;  (** Failed leases so far. *)
  mutable s_eligible_at : int;  (** Reassignment backoff deadline. *)
  mutable s_delay : int;  (** Next backoff delay. *)
}

type campaign = { c_id : string; c_shards : shard array }

type t = {
  config : config;
  scheduler : Scheduler.t;
  campaigns : (string, campaign) Hashtbl.t;
  workers : (int, string) Hashtbl.t;  (** Connection id -> worker name. *)
  busy : (int, string * int) Hashtbl.t;  (** Worker -> its lease. *)
  cooling : (int, int) Hashtbl.t;
      (** Workers that missed a deadline: no new lease until they show
          protocol traffic again (or the cooldown passes), so a wedged
          worker does not burn one shard attempt per lease period. *)
  mutable rr : int;  (** Round-robin cursor over campaign order. *)
}

type command = { target : int; frame : Wire.frame }

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* --- journal records -------------------------------------------------------- *)

let lease_record ~campaign ~shard ~epoch ~worker =
  Json.Obj
    [
      ("kind", Json.String "lease");
      ("campaign", Json.String campaign);
      ("shard", Json.Int shard);
      ("epoch", Json.Int epoch);
      ("worker", Json.String worker);
    ]

let revoke_record ~campaign ~shard ~epoch ~reason =
  Json.Obj
    [
      ("kind", Json.String "revoke");
      ("campaign", Json.String campaign);
      ("shard", Json.Int shard);
      ("epoch", Json.Int epoch);
      ("reason", Json.String reason);
    ]

let dead_record ~campaign ~shard ~reason =
  Json.Obj
    [
      ("kind", Json.String "shard-dead");
      ("campaign", Json.String campaign);
      ("shard", Json.Int shard);
      ("reason", Json.String reason);
    ]

let str_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> fail "coordinator journal record: %S is not a string" name

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> fail "coordinator journal record: %S is not an int" name

(* --- dead shards ------------------------------------------------------------ *)

(* The classified record for a run whose shard was abandoned.  Built
   from (index, seed, reason) alone so the bytes are identical whether
   written when the shard died or re-derived from the "shard-dead"
   journal record after a coordinator crash between the marker and the
   cruns. *)
let unrecoverable_entry ~index ~seed ~reason =
  {
    Ledger.index;
    seed;
    crashed = Some { Ledger.c_message = reason; c_backtrace = "" };
    iterations = 0;
    requested_iterations = 0;
    frames_examined = 0;
    evaluations = 0;
    virtual_runtime = 0;
    counts = [||];
    degraded = false;
    salvaged_iterations = 0;
    supervision =
      Some
        {
          Ledger.s_outcome = Supervisor.outcome_name Supervisor.Unrecoverable;
          s_total_rounds = 0;
          s_lost = true;
          s_attempts = [];
        };
    metrics = None;
  }

let complete_dead t camp sh ~reason =
  sh.s_state <- Dead;
  match Scheduler.seeds_of t.scheduler ~campaign:camp.c_id with
  | None -> ()
  | Some seeds ->
    for i = sh.s_lo to sh.s_hi - 1 do
      if Scheduler.record t.scheduler ~campaign:camp.c_id ~index:i = None then begin
        let entry = unrecoverable_entry ~index:i ~seed:seeds.(i) ~reason in
        match
          Scheduler.record_external t.scheduler ~campaign:camp.c_id
            ~line:(Ledger.record_line entry)
        with
        | Ok _ -> Metrics.incr "coordinator.runs_abandoned"
        | Error _ -> () (* cannot happen: built from the campaign's own seed *)
      end
    done

let kill_shard t camp sh ~reason =
  Metrics.incr "coordinator.shards_abandoned";
  Scheduler.append_extra t.scheduler
    (dead_record ~campaign:camp.c_id ~shard:sh.s_index ~reason);
  complete_dead t camp sh ~reason

(* --- lease lifecycle -------------------------------------------------------- *)

let backoff_policy config =
  {
    Supervisor.watchdog_rounds = max_int;
    min_retired = 1;
    max_retries = config.max_attempts;
    backoff = config.retry_backoff;
  }

let unlease t sh =
  match sh.s_state with
  | Leased l ->
    Hashtbl.remove t.busy l.l_worker;
    sh.s_state <- Unassigned
  | _ -> ()

(* A lease ended without a usable result: journal the revocation, back
   off the shard, and abandon it once the retry budget is spent. *)
let release t camp sh ~now ~epoch ~reason =
  unlease t sh;
  Scheduler.append_extra t.scheduler
    (revoke_record ~campaign:camp.c_id ~shard:sh.s_index ~epoch ~reason);
  Metrics.incr "coordinator.leases_revoked";
  sh.s_attempts <- sh.s_attempts + 1;
  sh.s_eligible_at <- now + sh.s_delay;
  sh.s_delay <- Supervisor.backed_off (backoff_policy t.config) sh.s_delay;
  if sh.s_attempts >= t.config.max_attempts then
    kill_shard t camp sh
      ~reason:
        (Printf.sprintf "unrecoverable: shard %d abandoned after %d leases (%s)"
           sh.s_index sh.s_attempts reason)

(* A revocation that is nobody's fault (cancelled campaign): free the
   lease without charging the shard's retry budget. *)
let revoke_blameless t camp sh ~epoch ~reason =
  unlease t sh;
  Scheduler.append_extra t.scheduler
    (revoke_record ~campaign:camp.c_id ~shard:sh.s_index ~epoch ~reason);
  Metrics.incr "coordinator.leases_revoked"

(* --- campaign discovery ----------------------------------------------------- *)

let shards_for t id =
  match Scheduler.runs t.scheduler ~campaign:id with
  | None -> [||]
  | Some total ->
    let per = t.config.shard_runs in
    let count = (total + per - 1) / per in
    Array.init count (fun k ->
        let lo = k * per in
        let hi = min total ((k + 1) * per) in
        let missing = ref false in
        for i = lo to hi - 1 do
          if Scheduler.record t.scheduler ~campaign:id ~index:i = None then
            missing := true
        done;
        {
          s_index = k;
          s_lo = lo;
          s_hi = hi;
          s_state = (if !missing then Unassigned else Done);
          s_epoch = 0;
          s_attempts = 0;
          s_eligible_at = 0;
          s_delay = t.config.retry_delay;
        })

let sync_campaigns t =
  List.iter
    (fun id ->
      if not (Hashtbl.mem t.campaigns id) then
        Hashtbl.replace t.campaigns id { c_id = id; c_shards = shards_for t id })
    (Scheduler.campaign_ids t.scheduler)

let find_shard t campaign shard =
  match Hashtbl.find_opt t.campaigns campaign with
  | None -> None
  | Some camp ->
    if shard < 0 || shard >= Array.length camp.c_shards then None
    else Some (camp, camp.c_shards.(shard))

(* --- construction / resume -------------------------------------------------- *)

let apply_extra t j =
  let ( let* ) = Result.bind in
  match Ledger.kind j with
  | Some "lease" ->
    let* campaign = str_field "campaign" j in
    let* shard = int_field "shard" j in
    let* epoch = int_field "epoch" j in
    (match find_shard t campaign shard with
    | None -> fail "journal: lease for unknown shard %s/%d" campaign shard
    | Some (_, sh) ->
      sh.s_epoch <- max sh.s_epoch epoch;
      Ok ())
  | Some "revoke" ->
    let* campaign = str_field "campaign" j in
    let* shard = int_field "shard" j in
    let* epoch = int_field "epoch" j in
    (match find_shard t campaign shard with
    | None -> fail "journal: revoke for unknown shard %s/%d" campaign shard
    | Some (_, sh) ->
      sh.s_epoch <- max sh.s_epoch epoch;
      sh.s_attempts <- sh.s_attempts + 1;
      sh.s_delay <- Supervisor.backed_off (backoff_policy t.config) sh.s_delay;
      Ok ())
  | Some "shard-dead" ->
    let* campaign = str_field "campaign" j in
    let* shard = int_field "shard" j in
    let* reason = str_field "reason" j in
    (match find_shard t campaign shard with
    | None -> fail "journal: shard-dead for unknown shard %s/%d" campaign shard
    | Some (camp, sh) ->
      (* Re-derive any missing Unrecoverable records: a crash between
         the shard-dead marker and its cruns must not strand the
         campaign. *)
      complete_dead t camp sh ~reason;
      Ok ())
  | Some k -> fail "journal: unexpected coordinator record %S" k
  | None -> fail "journal: coordinator record without a kind"

let create ?(config = default_config) ~scheduler () =
  if config.shard_runs < 1 then
    invalid_arg "Coordinator.create: shard_runs must be >= 1";
  if config.lease_ticks < 1 then
    invalid_arg "Coordinator.create: lease_ticks must be >= 1";
  if config.max_attempts < 1 then
    invalid_arg "Coordinator.create: max_attempts must be >= 1";
  let t =
    {
      config;
      scheduler;
      campaigns = Hashtbl.create 8;
      workers = Hashtbl.create 8;
      busy = Hashtbl.create 8;
      cooling = Hashtbl.create 8;
      rr = 0;
    }
  in
  sync_campaigns t;
  let rec apply = function
    | [] -> Ok t
    | j :: rest -> (
      match apply_extra t j with Error _ as e -> e | Ok () -> apply rest)
  in
  apply (Scheduler.extras scheduler)

(* --- workers ---------------------------------------------------------------- *)

let add_worker t ~id ~name =
  Hashtbl.replace t.workers id name;
  Metrics.incr "coordinator.workers_joined"

let remove_worker t ~id ~now =
  if Hashtbl.mem t.workers id then begin
    Hashtbl.remove t.workers id;
    Hashtbl.remove t.cooling id;
    match Hashtbl.find_opt t.busy id with
    | None -> ()
    | Some (cid, sidx) -> (
      Hashtbl.remove t.busy id;
      match find_shard t cid sidx with
      | Some (camp, sh) -> (
        match sh.s_state with
        | Leased l when l.l_worker = id ->
          release t camp sh ~now ~epoch:l.l_epoch ~reason:"worker disconnected"
        | _ -> ())
      | None -> ())
  end

let worker_count t = Hashtbl.length t.workers

(* Any protocol traffic from a worker proves it is alive again. *)
let thaw t worker = Hashtbl.remove t.cooling worker

(* --- worker events ---------------------------------------------------------- *)

let stale_lease ~target ~campaign ~shard ~epoch =
  [ { target; frame = Wire.Revoke { campaign; shard; epoch; reason = "stale lease" } } ]

let renew t ~worker ~campaign ~shard ~epoch ~now =
  thaw t worker;
  match find_shard t campaign shard with
  | Some (_, sh) -> (
    match sh.s_state with
    | Leased l when l.l_worker = worker && l.l_epoch = epoch ->
      l.l_deadline <- now + t.config.lease_ticks;
      []
    | _ ->
      Metrics.incr "coordinator.stale_renewals";
      stale_lease ~target:worker ~campaign ~shard ~epoch)
  | None ->
    Metrics.incr "coordinator.stale_renewals";
    stale_lease ~target:worker ~campaign ~shard ~epoch

let shard_result t ~worker ~campaign ~shard ~epoch ~records ~now =
  thaw t worker;
  match find_shard t campaign shard with
  | None ->
    Metrics.incr "coordinator.zombie_results_discarded";
    []
  | Some (camp, sh) -> (
    match sh.s_state with
    | Leased l when l.l_worker = worker && l.l_epoch = epoch ->
      let reject reason =
        Metrics.incr "coordinator.bad_results";
        release t camp sh ~now ~epoch ~reason;
        [ { target = worker; frame = Wire.Revoke { campaign; shard; epoch; reason } } ]
      in
      let expected = List.init (sh.s_hi - sh.s_lo) (fun k -> sh.s_lo + k) in
      if List.map fst records <> expected then
        reject "malformed shard result: wrong run indices"
      else begin
        let rec ingest = function
          | [] ->
            Hashtbl.remove t.busy worker;
            sh.s_state <- Done;
            Metrics.incr "coordinator.shards_completed";
            []
          | (_, line) :: rest -> (
            match Scheduler.record_external t.scheduler ~campaign ~line with
            | Ok _ -> ingest rest
            | Error m -> reject (Printf.sprintf "bad shard result: %s" m))
        in
        ingest records
      end
    | _ ->
      (* A result for a lease that is no longer live: the worker is a
         zombie (its lease was revoked and possibly re-assigned) or the
         frame is a duplicate.  Either way the records are already
         covered — by the replacement lease or by the Done shard — so
         the result is discarded without side effects. *)
      Metrics.incr "coordinator.zombie_results_discarded";
      [])

let shard_failed t ~worker ~campaign ~shard ~epoch ~reason ~now =
  thaw t worker;
  match find_shard t campaign shard with
  | None ->
    Metrics.incr "coordinator.stale_faults";
    []
  | Some (camp, sh) -> (
    match sh.s_state with
    | Leased l when l.l_worker = worker && l.l_epoch = epoch ->
      Metrics.incr "coordinator.shard_faults";
      Hashtbl.remove t.busy worker;
      release t camp sh ~now ~epoch
        ~reason:(Printf.sprintf "worker fault: %s" reason);
      []
    | _ ->
      Metrics.incr "coordinator.stale_faults";
      [])

(* --- clock ------------------------------------------------------------------ *)

let campaign_runnable t id =
  (not (Scheduler.is_cancelled t.scheduler ~campaign:id))
  && Scheduler.failed t.scheduler ~campaign:id = None

let grant t camp sh ~worker ~now =
  let epoch = sh.s_epoch + 1 in
  sh.s_epoch <- epoch;
  sh.s_state <-
    Leased { l_worker = worker; l_epoch = epoch; l_deadline = now + t.config.lease_ticks };
  Hashtbl.replace t.busy worker (camp.c_id, sh.s_index);
  let name = Option.value (Hashtbl.find_opt t.workers worker) ~default:"?" in
  Scheduler.append_extra t.scheduler
    (lease_record ~campaign:camp.c_id ~shard:sh.s_index ~epoch ~worker:name);
  Metrics.incr "coordinator.leases_granted";
  match
    ( Scheduler.spec_of t.scheduler ~campaign:camp.c_id,
      Scheduler.digest_of t.scheduler ~campaign:camp.c_id )
  with
  | Some spec, Some digest ->
    Some
      {
        target = worker;
        frame =
          Wire.Lease
            {
              campaign = camp.c_id;
              digest;
              shard = sh.s_index;
              epoch;
              lo = sh.s_lo;
              hi = sh.s_hi;
              lease_ticks = t.config.lease_ticks;
              spec;
            };
      }
  | _ -> None (* cannot happen: the campaign came from the scheduler *)

let tick t ~now =
  sync_campaigns t;
  let commands = ref [] in
  let push c = commands := c :: !commands in
  (* Expiry and cancellation, in deterministic campaign order. *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.campaigns id with
      | None -> ()
      | Some camp ->
        let cancelled = Scheduler.is_cancelled t.scheduler ~campaign:id in
        Array.iter
          (fun sh ->
            match sh.s_state with
            | Leased l when cancelled ->
              push
                {
                  target = l.l_worker;
                  frame =
                    Wire.Revoke
                      {
                        campaign = id;
                        shard = sh.s_index;
                        epoch = l.l_epoch;
                        reason = "campaign cancelled";
                      };
                };
              revoke_blameless t camp sh ~epoch:l.l_epoch
                ~reason:"campaign cancelled"
            | Leased l when l.l_deadline <= now ->
              Metrics.incr "coordinator.deadlines_missed";
              (* The worker stays connected but has proven slow: no new
                 lease until it speaks again. *)
              Hashtbl.replace t.cooling l.l_worker (now + t.config.lease_ticks);
              push
                {
                  target = l.l_worker;
                  frame =
                    Wire.Revoke
                      {
                        campaign = id;
                        shard = sh.s_index;
                        epoch = l.l_epoch;
                        reason = "lease deadline missed";
                      };
                };
              release t camp sh ~now ~epoch:l.l_epoch
                ~reason:"lease deadline missed"
            | _ -> ())
          camp.c_shards)
    (Scheduler.campaign_ids t.scheduler);
  (* Assignment: idle, warm workers in id order; campaigns round-robin. *)
  let idle =
    Hashtbl.fold
      (fun id _ acc ->
        if Hashtbl.mem t.busy id then acc
        else
          match Hashtbl.find_opt t.cooling id with
          | Some until when until > now -> acc
          | _ ->
            Hashtbl.remove t.cooling id;
            id :: acc)
      t.workers []
    |> List.sort compare
  in
  let order = Array.of_list (Scheduler.campaign_ids t.scheduler) in
  let n = Array.length order in
  let assign worker =
    let rec scan off =
      if off >= n then ()
      else
        let idx = (t.rr + off) mod n in
        let id = order.(idx) in
        if not (campaign_runnable t id) then scan (off + 1)
        else
          match Hashtbl.find_opt t.campaigns id with
          | None -> scan (off + 1)
          | Some camp -> (
            let eligible sh =
              sh.s_state = Unassigned && sh.s_eligible_at <= now
            in
            match Array.find_opt eligible camp.c_shards with
            | None -> scan (off + 1)
            | Some sh -> (
              t.rr <- (idx + 1) mod n;
              match grant t camp sh ~worker ~now with
              | Some c -> push c
              | None -> ()))
    in
    if n > 0 then scan 0
  in
  List.iter assign idle;
  List.rev !commands

(* --- queries ---------------------------------------------------------------- *)

let shard_counts t ~campaign =
  match Hashtbl.find_opt t.campaigns campaign with
  | None -> (0, 0, 0)
  | Some camp ->
    Array.fold_left
      (fun (d, l, f) sh ->
        match sh.s_state with
        | Done -> (d + 1, l, f)
        | Leased _ -> (d, l + 1, f)
        | Dead -> (d, l, f + 1)
        | Unassigned -> (d, l, f))
      (0, 0, 0) camp.c_shards

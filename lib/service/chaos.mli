(** Deterministic byte-stream fault injector for the protocol suites.

    A [t] sits between a test client and the daemon state machines in
    place of a socket: the test {!push}es the bytes one side wrote and
    {!pull}s what the other side would observe.  In between, seeded
    faults are applied — frames torn at arbitrary byte offsets, segments
    delayed or stalled, bytes duplicated (corrupting the stream, which
    must end in quarantine, not a crash), and mid-frame disconnects.
    Delivery is FIFO with non-decreasing release times: like TCP, the
    proxy never reorders, it only mangles timing and integrity.

    Everything is a pure function of the seed and the pushed traffic, so
    a failing schedule replays exactly from its seed.  Each injected
    fault increments a [chaos.*] metric and {!faults} so suites can
    assert coverage. *)

type profile = {
  tear : float;  (** P(a pushed chunk is split at random offsets). *)
  delay : float;  (** P(a segment's release is pushed into the future). *)
  duplicate : float;  (** P(a segment is delivered twice). *)
  disconnect : float;  (** P(the stream is cut inside a pushed chunk). *)
  stall : float;  (** P(a segment is stalled for [max_delay] ticks). *)
  max_delay : int;  (** Upper bound on injected delay, in ticks. *)
}

val quiet : profile
(** All probabilities zero: a transparent proxy. *)

val rough : profile
(** The default chaos mix used by the qcheck schedules. *)

type t

val create : seed:int -> profile -> t

val push : t -> now:int -> string -> unit
(** Bytes written by the sender at tick [now].  Ignored after a cut. *)

val pull : t -> now:int -> [ `Data of string | `Idle | `Cut ]
(** What the receiver observes at tick [now]: the next released segment,
    nothing yet ([`Idle] — possibly with bytes still in flight), or the
    end of a severed connection ([`Cut], reported once all bytes that
    preceded the cut have been delivered, i.e. a mid-frame disconnect
    delivers the frame's prefix first). *)

val cut : t -> bool
(** A disconnect fault has fired (bytes may still be draining). *)

val in_flight : t -> int
(** Bytes pushed but not yet pulled. *)

val faults : t -> int
(** Total faults injected so far. *)

(** {1 Worker-process faults}

    The byte-stream proxy above mangles transport; these plan failures
    of whole worker {e processes} for the multi-node suites.  A
    {!plan} draws one verdict per accepted lease ({!draw_fault}), so a
    schedule is a pure function of (plan seed, lease order) and a
    failing case replays exactly. *)

type worker_fault =
  | Die_mid_shard
      (** The process vanishes after completing a prefix of the leased
          runs ({!draw_point} picks how many) — EOF at the coordinator,
          the shard reassigns. *)
  | Stall_past_deadline
      (** The worker stops renewing (wedged, not dead) until past the
          lease deadline; the coordinator must revoke and cool it. *)
  | Result_then_die
      (** The shard result is delivered, then the connection dies —
          exercises journal-before-ack on the coordinator side. *)
  | Reconnect_as_zombie
      (** The worker misses its [Revoke], reconnects, and ships a
          result under the old epoch — which must be discarded. *)

val worker_fault_name : worker_fault -> string

type worker_profile = {
  die_mid_shard : float;
  stall_past_deadline : float;
  result_then_die : float;
  reconnect_as_zombie : float;
}
(** Per-lease probabilities; at most one fault fires per lease. *)

val calm_workers : worker_profile
(** All probabilities zero: every lease completes. *)

val rough_workers : worker_profile
(** The default multi-node chaos mix (~36% of leases faulted). *)

type plan

val plan : seed:int -> worker_profile -> plan

val draw_fault : plan -> worker_fault option
(** The verdict for the next accepted lease.  Increments a
    [chaos.worker.*] metric per planned fault. *)

val draw_point : plan -> max:int -> int
(** Uniform in [\[0, max)]: where within the shard a planned fault
    triggers (0 when [max <= 0]). *)

val planned_faults : plan -> int

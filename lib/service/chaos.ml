(* Seeded fault injection over a FIFO byte stream.  All draws come from
   one SplitMix64 stream in push order, so (seed, pushed traffic) fully
   determine every fault — the property the qcheck schedules rely on to
   shrink and replay. *)

module Rng = Perple_util.Rng
module Metrics = Perple_util.Metrics

type profile = {
  tear : float;
  delay : float;
  duplicate : float;
  disconnect : float;
  stall : float;
  max_delay : int;
}

let quiet =
  { tear = 0.0; delay = 0.0; duplicate = 0.0; disconnect = 0.0; stall = 0.0;
    max_delay = 0 }

let rough =
  { tear = 0.35; delay = 0.3; duplicate = 0.05; disconnect = 0.04;
    stall = 0.05; max_delay = 40 }

type segment = { bytes : string; release : int }

type t = {
  rng : Rng.t;
  profile : profile;
  queue : segment Queue.t;
  mutable last_release : int;
  mutable cut : bool;
  mutable faults : int;
}

let create ~seed profile =
  {
    rng = Rng.create seed;
    profile;
    queue = Queue.create ();
    last_release = 0;
    cut = false;
    faults = 0;
  }

let fault t name =
  t.faults <- t.faults + 1;
  Metrics.incr name

(* Split [s] into 1..n pieces at distinct random offsets. *)
let shred t s =
  let len = String.length s in
  if len <= 1 then [ s ]
  else begin
    let cuts = 1 + Rng.int t.rng (min 3 (len - 1)) in
    let offsets =
      List.init cuts (fun _ -> 1 + Rng.int t.rng (len - 1))
      |> List.sort_uniq compare
    in
    let rec pieces start = function
      | [] -> [ String.sub s start (len - start) ]
      | o :: rest -> String.sub s start (o - start) :: pieces o rest
    in
    pieces 0 offsets
  end

let enqueue t ~now bytes =
  if String.length bytes > 0 then begin
    let p = t.profile in
    let release = ref now in
    if Rng.chance t.rng p.delay && p.max_delay > 0 then begin
      fault t "chaos.delays";
      release := now + 1 + Rng.int t.rng p.max_delay
    end;
    if Rng.chance t.rng p.stall && p.max_delay > 0 then begin
      fault t "chaos.stalls";
      release := !release + p.max_delay
    end;
    (* FIFO: a segment never releases before its predecessor. *)
    t.last_release <- max t.last_release !release;
    Queue.add { bytes; release = t.last_release } t.queue;
    if Rng.chance t.rng p.duplicate then begin
      (* A duplicated segment desynchronizes the framing downstream —
         the receiver must classify the stream as corrupt, never hang. *)
      fault t "chaos.duplicates";
      Queue.add { bytes; release = t.last_release } t.queue
    end
  end

let push t ~now data =
  if (not t.cut) && String.length data > 0 then begin
    let p = t.profile in
    let data, cut_here =
      if Rng.chance t.rng p.disconnect then begin
        fault t "chaos.disconnects";
        (* Sever mid-chunk: the prefix is still delivered, so a frame in
           progress arrives torn — the receiver sees EOF inside a frame. *)
        (String.sub data 0 (Rng.int t.rng (String.length data)), true)
      end
      else (data, false)
    in
    let segments =
      if Rng.chance t.rng p.tear then begin
        fault t "chaos.tears";
        shred t data
      end
      else [ data ]
    in
    List.iter (enqueue t ~now) segments;
    if cut_here then t.cut <- true
  end

let pull t ~now =
  match Queue.peek_opt t.queue with
  | Some seg when seg.release <= now ->
    ignore (Queue.pop t.queue);
    `Data seg.bytes
  | Some _ -> `Idle
  | None -> if t.cut then `Cut else `Idle

let cut t = t.cut
let in_flight t = Queue.fold (fun n s -> n + String.length s.bytes) 0 t.queue
let faults t = t.faults

(* --- worker-process faults --------------------------------------------------- *)

type worker_fault =
  | Die_mid_shard
  | Stall_past_deadline
  | Result_then_die
  | Reconnect_as_zombie

let worker_fault_name = function
  | Die_mid_shard -> "die-mid-shard"
  | Stall_past_deadline -> "stall-past-deadline"
  | Result_then_die -> "result-then-die"
  | Reconnect_as_zombie -> "reconnect-as-zombie"

type worker_profile = {
  die_mid_shard : float;
  stall_past_deadline : float;
  result_then_die : float;
  reconnect_as_zombie : float;
}

let calm_workers =
  { die_mid_shard = 0.0; stall_past_deadline = 0.0; result_then_die = 0.0;
    reconnect_as_zombie = 0.0 }

let rough_workers =
  { die_mid_shard = 0.12; stall_past_deadline = 0.1; result_then_die = 0.06;
    reconnect_as_zombie = 0.08 }

type plan = { prng : Rng.t; wp : worker_profile; mutable planned : int }

let plan ~seed wp = { prng = Rng.create seed; wp; planned = 0 }

(* One uniform draw per lease acceptance, walked through the cumulative
   fault weights — the draw sequence (and so the whole schedule) is a
   pure function of the plan seed and the number of leases taken. *)
let draw_fault p =
  let u = Rng.float p.prng 1.0 in
  let pick acc fault prob =
    let acc' = acc +. prob in
    if u < acc' then Some (acc', Some fault) else Some (acc', None)
  in
  let walk =
    List.fold_left
      (fun st (fault, prob) ->
        match st with
        | Some (_, Some _) -> st
        | Some (acc, None) -> pick acc fault prob
        | None -> pick 0.0 fault prob)
      None
      [
        (Die_mid_shard, p.wp.die_mid_shard);
        (Stall_past_deadline, p.wp.stall_past_deadline);
        (Result_then_die, p.wp.result_then_die);
        (Reconnect_as_zombie, p.wp.reconnect_as_zombie);
      ]
  in
  match walk with
  | Some (_, Some fault) ->
    p.planned <- p.planned + 1;
    Metrics.incr (Printf.sprintf "chaos.worker.%s" (worker_fault_name fault));
    Some fault
  | _ -> None

let draw_point p ~max:bound = if bound <= 0 then 0 else Rng.int p.prng bound
let planned_faults p = p.planned

module Rng = Perple_util.Rng

type entry = { ploc : int; pcell : int; pvalue : int }

type t = {
  durable : int array array;
  mutable pending : entry list array;  (* per thread, oldest first *)
}

let create ~nthreads ~nlocs ~cells ~init =
  {
    durable = Array.init nlocs (fun l -> Array.make cells init.(l));
    pending = Array.make nthreads [];
  }

let flush t ~thread ~loc ~cell ~value =
  t.pending.(thread) <-
    t.pending.(thread) @ [ { ploc = loc; pcell = cell; pvalue = value } ]

let commit_entry t e = t.durable.(e.ploc).(e.pcell) <- e.pvalue

let drain t ~persistency ~thread =
  match (persistency : Config.persistency) with
  | Config.Epoch ->
    List.iter (commit_entry t) t.pending.(thread);
    t.pending.(thread) <- []
  | Config.Eager ->
    (* The bug: the drain completes without committing anything, leaving
       every flushed line to persist lazily on its own. *)
    ()

let pending_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.pending

(* All pending entries in the canonical cross-thread apply order:
   (thread, flush index).  Cross-thread completion order is genuinely
   arbitrary on hardware; fixing it keeps snapshots and exhaustive
   enumeration comparable between the operational and axiomatic sides. *)
let all_pending t =
  Array.to_list t.pending |> List.concat

let copy_durable t = Array.map Array.copy t.durable

let durable_snapshot = copy_durable

let crash_snapshot t ~rng =
  let image = copy_durable t in
  List.iter
    (fun e -> if Rng.bool rng then image.(e.ploc).(e.pcell) <- e.pvalue)
    (all_pending t);
  image

let reachable_images t =
  let pending = Array.of_list (all_pending t) in
  let n = Array.length pending in
  if n > 20 then
    invalid_arg "Pmem.reachable_images: too many pending flushes to enumerate";
  let images = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let image = copy_durable t in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then
        image.(pending.(i).ploc).(pending.(i).pcell) <- pending.(i).pvalue
    done;
    images := image :: !images
  done;
  List.sort_uniq compare !images

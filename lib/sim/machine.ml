module Rng = Perple_util.Rng
module Metrics = Perple_util.Metrics
module Trace_event = Perple_util.Trace_event

type barrier = No_barrier | Every_iteration of { cost : int; max_release_skew : int }

type event =
  | Exec of { thread : int; iteration : int; instr : Program.instr; value : int }
  | Drain of { thread : int; loc : int; value : int }
  | Barrier_release
  | Stall of { thread : int; until : int }

type termination =
  | Completed
  | Watchdog_abort
  | Hung

let termination_name = function
  | Completed -> "completed"
  | Watchdog_abort -> "watchdog_abort"
  | Hung -> "hung"

type stats = {
  rounds : int;
  instructions : int;
  drains : int;
  barriers : int;
  stalls : int;
  termination : termination;
  iterations_retired : int array;
  lost_stores : int;
  persisted : int array array option;
}

(* A store-buffer entry: destination cell and value. *)
type entry = { loc : int; cell : int; value : int }

type thread_state = {
  mutable pc : int;
  mutable iteration : int;
  mutable buffer : entry list;  (* newest first *)
  mutable stall_until : int;
  mutable waiting : bool;  (* at the barrier *)
  mutable finished : bool;
  mutable hung : bool;  (* fault-injected: never retires again *)
  regs : int array;
}

let image_uses_indexed (image : Program.image) =
  Array.exists
    (fun (t : Program.thread) ->
      Array.exists
        (function
          | Program.Store { addr = Program.Indexed; _ }
          | Program.Load { addr = Program.Indexed; _ }
          | Program.Flush { addr = Program.Indexed; _ } ->
            true
          | Program.Store _ | Program.Load _ | Program.Fence
          | Program.Flush _ | Program.Drain ->
            false)
        t.body)
    image.programs

let run ?on_iteration_end ?on_sample ?on_event ?watchdog
    ?(sample_interval = 64) ~config ~rng ~image ~iterations ~barrier () =
  if iterations <= 0 then invalid_arg "Machine.run: iterations must be > 0";
  (* Ambient observability, resolved once per run so the per-round cost of
     disabled instrumentation is a match on an immutable local. *)
  let mx = Metrics.active () in
  let trace_start = Trace_event.now () in
  let nthreads = Array.length image.Program.programs in
  let nlocs = Array.length image.Program.location_names in
  let cells = if image_uses_indexed image then iterations else 1 in
  let memory =
    Array.init nlocs (fun l -> Array.make cells image.Program.init.(l))
  in
  (* The persistence domain exists only for programs that exercise it, so
     ordinary runs allocate nothing and draw no extra randomness. *)
  let pmem =
    if Program.uses_persistency image then
      Some (Pmem.create ~nthreads ~nlocs ~cells ~init:image.Program.init)
    else None
  in
  let crash_image = ref None in
  let threads =
    Array.map
      (fun (p : Program.thread) ->
        {
          pc = 0;
          iteration = 0;
          buffer = [];
          stall_until = 0;
          waiting = false;
          finished = false;
          hung = false;
          regs = Array.make (max 1 p.reg_count) 0;
        })
      image.Program.programs
  in
  (* Arm the fault profile once per thread, up front, so the arming draws
     sit at a fixed point of the random stream.  An empty profile draws
     nothing: fault-free runs are bit-identical to pre-fault builds. *)
  let faults =
    if config.Config.faults = [] then [||]
    else
      Array.map
        (fun _ -> Fault.arm config.Config.faults ~rng ~iterations)
        threads
  in
  let has_faults = Array.length faults > 0 in
  (match mx with
  | Some m ->
    Array.iter
      (fun (a : Fault.armed) ->
        if a.Fault.hang_at <> None then Metrics.add m "machine.fault_arms.hang" 1;
        if a.Fault.crash_at <> None then
          Metrics.add m "machine.fault_arms.crash" 1;
        if a.Fault.livelock_at <> None then
          Metrics.add m "machine.fault_arms.livelock" 1;
        if a.Fault.loss_chance > 0.0 then
          Metrics.add m "machine.fault_arms.store_loss" 1)
      faults
  | None -> ());
  let fault_of t = if has_faults then faults.(t) else Fault.disarmed in
  let clock = ref 0 in
  let last_progress = ref 0 in
  let instructions = ref 0 in
  let drains = ref 0 in
  let barriers = ref 0 in
  let stalls = ref 0 in
  let lost_stores = ref 0 in
  let aborted = ref None in
  let next_watchdog = ref sample_interval in
  let cell_of addr (st : thread_state) =
    match (addr : Program.addressing) with
    | Program.Shared -> 0
    | Program.Indexed -> st.iteration
  in
  (* Store forwarding wants the youngest matching entry; with the buffer
     held newest-first that is the first match, so the scan short-circuits
     instead of folding the whole buffer. *)
  let rec forwarded_in loc cell = function
    | [] -> None
    | e :: rest ->
      if e.loc = loc && e.cell = cell then Some e.value
      else forwarded_in loc cell rest
  in
  let forwarded st loc cell = forwarded_in loc cell st.buffer in
  (* Split off the oldest entry (the list's last), keeping the rest in
     newest-first order. *)
  let rec split_oldest acc = function
    | [] -> assert false
    | [ oldest ] -> (oldest, List.rev acc)
    | e :: rest -> split_oldest (e :: acc) rest
  in
  let emit event =
    match on_event with
    | Some hook -> hook ~round:!clock event
    | None -> ()
  in
  let drain_one t st =
    last_progress := !clock;
    match st.buffer with
    | [] -> ()
    | _ :: _ ->
      let entry, remaining =
        match config.Config.model with
        | Config.Tso_store_reorder ->
          (* Buggy hardware: any buffered entry may drain first.  The
             drawn index historically addressed the buffer oldest-first;
             map it onto the newest-first list so seeded runs stay
             bit-identical. *)
          let n = List.length st.buffer in
          let i = Rng.int rng n in
          let j = n - 1 - i in
          let chosen = List.nth st.buffer j in
          (chosen, List.filteri (fun k _ -> k <> j) st.buffer)
        | Config.Pso ->
          (* Oldest entry of a uniformly chosen buffered location: FIFO per
             location, reorderable across locations. *)
          let locs =
            List.sort_uniq compare (List.map (fun e -> e.loc) st.buffer)
          in
          let loc = List.nth locs (Rng.int rng (List.length locs)) in
          (* Oldest entry of [loc] = last match in newest-first order.
             Entries are distinct allocations, so physical inequality
             removes exactly the chosen one. *)
          let chosen =
            match
              List.fold_left
                (fun acc e -> if e.loc = loc then Some e else acc)
                None st.buffer
            with
            | Some e -> e
            | None -> assert false
          in
          (chosen, List.filter (fun e -> e != chosen) st.buffer)
        | Config.Sc | Config.Tso | Config.Tso_fence_ignored ->
          split_oldest [] st.buffer
      in
      st.buffer <- remaining;
      let loss = (fault_of t).Fault.loss_chance in
      if loss > 0.0 && Rng.chance rng loss then
        (* Silent store loss: the entry leaves the buffer but never
           reaches memory, and no event betrays it. *)
        incr lost_stores
      else begin
        memory.(entry.loc).(entry.cell) <- entry.value;
        emit (Drain { thread = t; loc = entry.loc; value = entry.value });
        incr drains
      end
  in
  let finish_iteration t st =
    (match on_iteration_end with
    | Some hook -> hook ~thread:t ~iteration:st.iteration ~regs:st.regs
    | None -> ());
    match barrier with
    | No_barrier ->
      st.iteration <- st.iteration + 1;
      st.pc <- 0;
      if st.iteration >= iterations then st.finished <- true
    | Every_iteration _ -> st.waiting <- true
  in
  let execute t st =
    last_progress := !clock;
    let program = image.Program.programs.(t) in
    let instr = program.body.(st.pc) in
    match instr with
    | Program.Store { loc; addr; value } ->
      let stored = Program.eval_operand value ~iteration:st.iteration in
      if
        config.Config.model = Config.Sc
      then begin
        memory.(loc).(cell_of addr st) <- stored;
        st.pc <- st.pc + 1;
        incr instructions;
        emit
          (Exec { thread = t; iteration = st.iteration; instr; value = stored })
      end
      else if List.length st.buffer >= config.Config.buffer_capacity then
        () (* stall: buffer full, retry next round *)
      else begin
        st.buffer <-
          { loc; cell = cell_of addr st; value = stored } :: st.buffer;
        (match mx with
        | Some m ->
          Metrics.observe m "machine.buffer_occupancy"
            (List.length st.buffer)
        | None -> ());
        st.pc <- st.pc + 1;
        incr instructions;
        emit
          (Exec { thread = t; iteration = st.iteration; instr; value = stored })
      end
    | Program.Load { loc; addr; reg } ->
      let cell = cell_of addr st in
      let value =
        match
          if config.Config.model = Config.Sc then None
          else forwarded st loc cell
        with
        | Some v -> v
        | None -> memory.(loc).(cell)
      in
      st.regs.(reg) <- value;
      st.pc <- st.pc + 1;
      incr instructions;
      emit (Exec { thread = t; iteration = st.iteration; instr; value })
    | Program.Fence ->
      (match config.Config.model with
      | Config.Tso_fence_ignored | Config.Sc ->
        st.pc <- st.pc + 1;
        incr instructions;
        emit (Exec { thread = t; iteration = st.iteration; instr; value = 0 })
      | Config.Tso | Config.Pso | Config.Tso_store_reorder ->
        if st.buffer = [] then begin
          st.pc <- st.pc + 1;
          incr instructions;
          emit
            (Exec { thread = t; iteration = st.iteration; instr; value = 0 })
        end
        (* else stall until the buffer drains *))
    | Program.Flush { loc; addr } ->
      let cell = cell_of addr st in
      (* Enabled only once no older store to the same cell is buffered, so
         the captured value includes this thread's own prior stores (x86
         orders CLFLUSH after older stores to the same line). *)
      if forwarded st loc cell <> None then () (* stall *)
      else begin
        let value = memory.(loc).(cell) in
        (match pmem with
        | Some pm -> Pmem.flush pm ~thread:t ~loc ~cell ~value
        | None -> ());
        st.pc <- st.pc + 1;
        incr instructions;
        emit (Exec { thread = t; iteration = st.iteration; instr; value })
      end
    | Program.Drain ->
      (* Waits for an empty buffer like MFENCE — under every model: the
         fence-ignored bug targets MFENCE specifically, and SC has no
         buffer to wait for. *)
      if st.buffer = [] then begin
        (match pmem with
        | Some pm ->
          Pmem.drain pm ~persistency:config.Config.persistency ~thread:t
        | None -> ());
        st.pc <- st.pc + 1;
        incr instructions;
        emit (Exec { thread = t; iteration = st.iteration; instr; value = 0 })
      end
  in
  let all_finished () = Array.for_all (fun st -> st.finished) threads in
  let all_waiting () =
    Array.for_all (fun st -> st.finished || st.waiting) threads
  in
  while !aborted = None && not (all_finished ()) do
    incr clock;
    if !clock - !last_progress > 2_000_000 then
      failwith
        "Machine.run: livelock (no instruction or drain for 2M rounds; is \
         drain_chance 0 with a full store buffer?)";
    (* Watchdog: polled at the sampling cadence ([>=] so fast-forward
       jumps cannot skip a check).  Observation only — no rng draws. *)
    (match watchdog with
    | Some should_abort when !clock >= !next_watchdog ->
      next_watchdog := !clock + sample_interval;
      if
        should_abort ~round:!clock
          ~iterations:(Array.map (fun st -> st.iteration) threads)
      then aborted := Some Watchdog_abort
    | Some _ | None -> ());
    if !aborted = None then begin
    (* Randomised round-robin offset avoids systematic thread bias. *)
    let offset = Rng.int rng nthreads in
    for i = 0 to nthreads - 1 do
      let t = (i + offset) mod nthreads in
      let st = threads.(t) in
      (* Fault triggers: crash and hang fire as soon as the thread's
         iteration reaches the armed onset, even while stalled or at the
         barrier.  Neither draws from the rng. *)
      if has_faults then begin
        let a = fault_of t in
        (match a.Fault.crash_at with
        | Some c when (not st.finished) && st.iteration >= c ->
          (* The first crash freezes the persisted image: the durable
             state plus a coin flip per pending writeback.  Draws nothing
             when nothing is pending (or without a persistence domain). *)
          (match (pmem, !crash_image) with
          | Some pm, None -> crash_image := Some (Pmem.crash_snapshot pm ~rng)
          | (Some _ | None), _ -> ());
          st.finished <- true;
          st.waiting <- false
        | Some _ | None -> ());
        match a.Fault.hang_at with
        | Some h when (not st.hung) && st.iteration >= h -> st.hung <- true
        | Some _ | None -> ()
      end;
      if
        (not st.finished) && (not st.waiting) && (not st.hung)
        && st.stall_until <= !clock
      then begin
        if config.Config.jitter_chance > 0.0
           && Rng.chance rng config.Config.jitter_chance
        then begin
          st.stall_until <-
            !clock
            + 1
            + Rng.geometric rng (1.0 /. float_of_int config.Config.jitter_mean);
          emit (Stall { thread = t; until = st.stall_until });
          incr stalls
        end
        else begin
        let progress_chance =
          match (fault_of t).Fault.livelock_at with
          | Some l when st.iteration >= l ->
            config.Config.progress_chance *. Fault.livelock_factor
          | Some _ | None -> config.Config.progress_chance
        in
        if Rng.chance rng progress_chance then begin
          let program = image.Program.programs.(t) in
          if st.pc >= Array.length program.body then finish_iteration t st
          else execute t st;
          (* A body may be empty (store-only thread with zero instructions
             cannot happen, but guard anyway). *)
          if (not st.finished) && (not st.waiting)
             && st.pc >= Array.length program.body
          then finish_iteration t st
        end
        end
      end
    done;
    (* Drain phase. *)
    Array.iteri
      (fun t st ->
        if st.buffer <> [] && Rng.chance rng config.Config.drain_chance then
          drain_one t st)
      threads;
    (* Barrier rendezvous. *)
    (match barrier with
    | Every_iteration { cost; max_release_skew }
      when all_waiting () && not (all_finished ()) ->
      clock := !clock + cost;
      Array.iteri
        (fun t st ->
          if not st.finished then begin
            while st.buffer <> [] do
              drain_one t st
            done;
            st.waiting <- false;
            st.iteration <- st.iteration + 1;
            st.pc <- 0;
            st.stall_until <-
              (if max_release_skew > 0 then
                 !clock + Rng.int rng (max_release_skew + 1)
               else 0);
            if st.iteration >= iterations then st.finished <- true
          end)
        threads;
      emit Barrier_release;
      incr barriers
    | Every_iteration _ | No_barrier -> ());
    (match on_sample with
    | Some hook when !clock mod sample_interval = 0 ->
      hook ~round:!clock
        ~iterations:(Array.map (fun st -> st.iteration) threads)
    | Some _ | None -> ());
    (* Fast-forward through provably idle spans: when every live,
       non-waiting thread is stalled beyond the next round and no store
       buffer has anything to drain, no event can occur until the earliest
       stall expires — jump the clock there.  This keeps barrier release
       skew and long jitter bursts from costing simulation time without
       changing any observable behaviour. *)
    if Array.for_all (fun st -> st.buffer = []) threads then begin
      let earliest = ref max_int in
      let all_idle =
        Array.for_all
          (fun st ->
            if st.finished || st.waiting || st.hung then true
            else begin
              if st.stall_until < !earliest then earliest := st.stall_until;
              st.stall_until > !clock + 1
            end)
          threads
      in
      if all_idle && !earliest > !clock + 1 && !earliest < max_int then
        clock := !earliest - 1
    end;
    (* Fault quiescence: when every unfinished thread is hung (or parked
       at a barrier that a hung thread prevents from ever releasing) and
       no buffered store remains, no event can ever happen again — abort
       instead of spinning to the livelock limit. *)
    if
      has_faults
      && Array.exists (fun st -> st.hung && not st.finished) threads
      && Array.for_all (fun st -> st.finished || st.hung || st.waiting) threads
      && Array.for_all (fun st -> st.buffer = []) threads
    then aborted := Some Hung
    end
  done;
  (* Termination flush: on real hardware every buffered store eventually
     reaches memory; drain the leftovers, one round each.  An aborted run
     stops dead instead — its in-flight stores are part of the loss. *)
  if !aborted = None then
    Array.iteri
      (fun t st ->
        while st.buffer <> [] do
          incr clock;
          drain_one t st
        done)
      threads;
  let termination = Option.value ~default:Completed !aborted in
  (match mx with
  | Some m ->
    Metrics.add m "machine.runs" 1;
    Metrics.add m "machine.rounds" !clock;
    Metrics.add m "machine.instructions" !instructions;
    Metrics.add m "machine.drains" !drains;
    Metrics.add m "machine.barriers" !barriers;
    Metrics.add m "machine.stalls" !stalls;
    Metrics.add m "machine.lost_stores" !lost_stores;
    Metrics.add m ("machine.termination." ^ termination_name termination) 1
  | None -> ());
  Trace_event.complete ~name:"machine.run" ~since:trace_start
    ~args:
      [
        ("rounds", Trace_event.Int !clock);
        ("instructions", Trace_event.Int !instructions);
        ("iterations", Trace_event.Int iterations);
        ("termination", Trace_event.String (termination_name termination));
      ]
    ();
  {
    rounds = !clock;
    instructions = !instructions;
    drains = !drains;
    barriers = !barriers;
    stalls = !stalls;
    termination;
    iterations_retired = Array.map (fun st -> st.iteration) threads;
    lost_stores = !lost_stores;
    persisted =
      (match (pmem, !crash_image) with
      | None, _ -> None
      | Some _, (Some _ as snapshot) -> snapshot
      | Some pm, None -> Some (Pmem.durable_snapshot pm));
  }

module Rng = Perple_util.Rng

type barrier = No_barrier | Every_iteration of { cost : int; max_release_skew : int }

type event =
  | Exec of { thread : int; iteration : int; instr : Program.instr; value : int }
  | Drain of { thread : int; loc : int; value : int }
  | Barrier_release
  | Stall of { thread : int; until : int }

type stats = {
  rounds : int;
  instructions : int;
  drains : int;
  barriers : int;
  stalls : int;
}

(* A store-buffer entry: destination cell and value. *)
type entry = { loc : int; cell : int; value : int }

type thread_state = {
  mutable pc : int;
  mutable iteration : int;
  mutable buffer : entry list;  (* oldest first *)
  mutable stall_until : int;
  mutable waiting : bool;  (* at the barrier *)
  mutable finished : bool;
  regs : int array;
}

let image_uses_indexed (image : Program.image) =
  Array.exists
    (fun (t : Program.thread) ->
      Array.exists
        (function
          | Program.Store { addr = Program.Indexed; _ }
          | Program.Load { addr = Program.Indexed; _ } ->
            true
          | Program.Store _ | Program.Load _ | Program.Fence -> false)
        t.body)
    image.programs

let run ?on_iteration_end ?on_sample ?on_event ?(sample_interval = 64)
    ~config ~rng ~image ~iterations ~barrier () =
  if iterations <= 0 then invalid_arg "Machine.run: iterations must be > 0";
  let nthreads = Array.length image.Program.programs in
  let nlocs = Array.length image.Program.location_names in
  let cells = if image_uses_indexed image then iterations else 1 in
  let memory =
    Array.init nlocs (fun l -> Array.make cells image.Program.init.(l))
  in
  let threads =
    Array.map
      (fun (p : Program.thread) ->
        {
          pc = 0;
          iteration = 0;
          buffer = [];
          stall_until = 0;
          waiting = false;
          finished = false;
          regs = Array.make (max 1 p.reg_count) 0;
        })
      image.Program.programs
  in
  let clock = ref 0 in
  let last_progress = ref 0 in
  let instructions = ref 0 in
  let drains = ref 0 in
  let barriers = ref 0 in
  let stalls = ref 0 in
  let cell_of addr (st : thread_state) =
    match (addr : Program.addressing) with
    | Program.Shared -> 0
    | Program.Indexed -> st.iteration
  in
  let forwarded st loc cell =
    List.fold_left
      (fun acc e -> if e.loc = loc && e.cell = cell then Some e.value else acc)
      None st.buffer
  in
  let emit event =
    match on_event with
    | Some hook -> hook ~round:!clock event
    | None -> ()
  in
  let drain_one t st =
    last_progress := !clock;
    match st.buffer with
    | [] -> ()
    | oldest :: rest ->
      let entry, remaining =
        match config.Config.model with
        | Config.Tso_store_reorder ->
          (* Buggy hardware: any buffered entry may drain first. *)
          let n = List.length st.buffer in
          let i = Rng.int rng n in
          let chosen = List.nth st.buffer i in
          (chosen, List.filteri (fun j _ -> j <> i) st.buffer)
        | Config.Pso ->
          (* Oldest entry of a uniformly chosen buffered location: FIFO per
             location, reorderable across locations. *)
          let locs =
            List.sort_uniq compare (List.map (fun e -> e.loc) st.buffer)
          in
          let loc = List.nth locs (Rng.int rng (List.length locs)) in
          let chosen =
            List.find (fun e -> e.loc = loc) st.buffer
          in
          let removed = ref false in
          let remaining =
            List.filter
              (fun e ->
                if (not !removed) && e == chosen then begin
                  removed := true;
                  false
                end
                else true)
              st.buffer
          in
          (chosen, remaining)
        | Config.Sc | Config.Tso | Config.Tso_fence_ignored ->
          (oldest, rest)
      in
      st.buffer <- remaining;
      memory.(entry.loc).(entry.cell) <- entry.value;
      emit (Drain { thread = t; loc = entry.loc; value = entry.value });
      incr drains
  in
  let finish_iteration t st =
    (match on_iteration_end with
    | Some hook -> hook ~thread:t ~iteration:st.iteration ~regs:st.regs
    | None -> ());
    match barrier with
    | No_barrier ->
      st.iteration <- st.iteration + 1;
      st.pc <- 0;
      if st.iteration >= iterations then st.finished <- true
    | Every_iteration _ -> st.waiting <- true
  in
  let execute t st =
    last_progress := !clock;
    let program = image.Program.programs.(t) in
    let instr = program.body.(st.pc) in
    match instr with
    | Program.Store { loc; addr; value } ->
      let stored = Program.eval_operand value ~iteration:st.iteration in
      if
        config.Config.model = Config.Sc
      then begin
        memory.(loc).(cell_of addr st) <- stored;
        st.pc <- st.pc + 1;
        incr instructions;
        emit
          (Exec { thread = t; iteration = st.iteration; instr; value = stored })
      end
      else if List.length st.buffer >= config.Config.buffer_capacity then
        () (* stall: buffer full, retry next round *)
      else begin
        st.buffer <-
          st.buffer @ [ { loc; cell = cell_of addr st; value = stored } ];
        st.pc <- st.pc + 1;
        incr instructions;
        emit
          (Exec { thread = t; iteration = st.iteration; instr; value = stored })
      end
    | Program.Load { loc; addr; reg } ->
      let cell = cell_of addr st in
      let value =
        match
          if config.Config.model = Config.Sc then None
          else forwarded st loc cell
        with
        | Some v -> v
        | None -> memory.(loc).(cell)
      in
      st.regs.(reg) <- value;
      st.pc <- st.pc + 1;
      incr instructions;
      emit (Exec { thread = t; iteration = st.iteration; instr; value })
    | Program.Fence ->
      (match config.Config.model with
      | Config.Tso_fence_ignored | Config.Sc ->
        st.pc <- st.pc + 1;
        incr instructions;
        emit (Exec { thread = t; iteration = st.iteration; instr; value = 0 })
      | Config.Tso | Config.Pso | Config.Tso_store_reorder ->
        if st.buffer = [] then begin
          st.pc <- st.pc + 1;
          incr instructions;
          emit
            (Exec { thread = t; iteration = st.iteration; instr; value = 0 })
        end
        (* else stall until the buffer drains *))
  in
  let all_finished () = Array.for_all (fun st -> st.finished) threads in
  let all_waiting () =
    Array.for_all (fun st -> st.finished || st.waiting) threads
  in
  while not (all_finished ()) do
    incr clock;
    if !clock - !last_progress > 2_000_000 then
      failwith
        "Machine.run: livelock (no instruction or drain for 2M rounds; is \
         drain_chance 0 with a full store buffer?)";
    (* Randomised round-robin offset avoids systematic thread bias. *)
    let offset = Rng.int rng nthreads in
    for i = 0 to nthreads - 1 do
      let t = (i + offset) mod nthreads in
      let st = threads.(t) in
      if (not st.finished) && (not st.waiting) && st.stall_until <= !clock
      then begin
        if config.Config.jitter_chance > 0.0
           && Rng.chance rng config.Config.jitter_chance
        then begin
          st.stall_until <-
            !clock
            + 1
            + Rng.geometric rng (1.0 /. float_of_int config.Config.jitter_mean);
          emit (Stall { thread = t; until = st.stall_until });
          incr stalls
        end
        else if Rng.chance rng config.Config.progress_chance then begin
          let program = image.Program.programs.(t) in
          if st.pc >= Array.length program.body then finish_iteration t st
          else execute t st;
          (* A body may be empty (store-only thread with zero instructions
             cannot happen, but guard anyway). *)
          if (not st.finished) && (not st.waiting)
             && st.pc >= Array.length program.body
          then finish_iteration t st
        end
      end
    done;
    (* Drain phase. *)
    Array.iteri
      (fun t st ->
        if st.buffer <> [] && Rng.chance rng config.Config.drain_chance then
          drain_one t st)
      threads;
    (* Barrier rendezvous. *)
    (match barrier with
    | Every_iteration { cost; max_release_skew }
      when all_waiting () && not (all_finished ()) ->
      clock := !clock + cost;
      Array.iter
        (fun st ->
          if not st.finished then begin
            while st.buffer <> [] do
              drain_one 0 st
            done;
            st.waiting <- false;
            st.iteration <- st.iteration + 1;
            st.pc <- 0;
            st.stall_until <-
              (if max_release_skew > 0 then
                 !clock + Rng.int rng (max_release_skew + 1)
               else 0);
            if st.iteration >= iterations then st.finished <- true
          end)
        threads;
      emit Barrier_release;
      incr barriers
    | Every_iteration _ | No_barrier -> ());
    (match on_sample with
    | Some hook when !clock mod sample_interval = 0 ->
      hook ~round:!clock
        ~iterations:(Array.map (fun st -> st.iteration) threads)
    | Some _ | None -> ());
    (* Fast-forward through provably idle spans: when every live,
       non-waiting thread is stalled beyond the next round and no store
       buffer has anything to drain, no event can occur until the earliest
       stall expires — jump the clock there.  This keeps barrier release
       skew and long jitter bursts from costing simulation time without
       changing any observable behaviour. *)
    if Array.for_all (fun st -> st.buffer = []) threads then begin
      let earliest = ref max_int in
      let all_idle =
        Array.for_all
          (fun st ->
            if st.finished || st.waiting then true
            else begin
              if st.stall_until < !earliest then earliest := st.stall_until;
              st.stall_until > !clock + 1
            end)
          threads
      in
      if all_idle && !earliest > !clock + 1 && !earliest < max_int then
        clock := !earliest - 1
    end
  done;
  (* Termination flush: on real hardware every buffered store eventually
     reaches memory; drain the leftovers, one round each. *)
  Array.iter
    (fun st ->
      while st.buffer <> [] do
        incr clock;
        drain_one 0 st
      done)
    threads;
  {
    rounds = !clock;
    instructions = !instructions;
    drains = !drains;
    barriers = !barriers;
    stalls = !stalls;
  }

module Rng = Perple_util.Rng
module Metrics = Perple_util.Metrics
module Trace_event = Perple_util.Trace_event

type barrier = No_barrier | Every_iteration of { cost : int; max_release_skew : int }

type event =
  | Exec of { thread : int; iteration : int; instr : Program.instr; value : int }
  | Drain of { thread : int; loc : int; value : int }
  | Barrier_release
  | Stall of { thread : int; until : int }

type termination =
  | Completed
  | Watchdog_abort
  | Hung

let termination_name = function
  | Completed -> "completed"
  | Watchdog_abort -> "watchdog_abort"
  | Hung -> "hung"

type stats = {
  rounds : int;
  instructions : int;
  drains : int;
  barriers : int;
  stalls : int;
  termination : termination;
  iterations_retired : int array;
  lost_stores : int;
  persisted : int array array option;
}

(* Per-thread interpreter state: everything the hot loop touches is an
   unboxed int field or a preallocated int array.  The store buffer is a
   flat circular buffer over three parallel arrays (location, cell,
   value), oldest entry at [sb_start], newest at
   [(sb_start + sb_len - 1) land sb_mask] — no allocation per store,
   and store-forwarding is a backwards scan over at most
   [buffer_capacity] ints.

   [ready_at] is the single scheduling word the round loop tests: the
   first round in which the thread may act, or [max_int] while it cannot
   act on its own (finished, fault-hung, or parked at the barrier).  It
   subsumes the finished/waiting/hung flags on the hot path; the flags
   remain authoritative for the slow paths that need to distinguish the
   cases. *)
type tstate = {
  code : int array;  (* flat body, Program.encode_thread *)
  code_len : int;
  body : Program.instr array;  (* original instrs, for on_event only *)
  regs : int array;
  sb_loc : int array;
  sb_cell : int array;
  sb_val : int array;
  sb_mask : int;
  mutable sb_start : int;
  mutable sb_len : int;
  mutable pc : int;  (* offset into [code]; multiple of instr_width *)
  mutable iteration : int;
  mutable ready_at : int;
  mutable waiting : bool;  (* at the barrier *)
  mutable finished : bool;
  mutable hung : bool;  (* fault-injected: never retires again *)
  mutable livelocked : bool;  (* fault-injected: progress collapsed *)
  mutable jitter_skip : int;  (* ready rounds to next jitter hit *)
  mutable progress_skip : int;  (* collapsed-progress skip (livelocked only) *)
  mutable loss_threshold : int;  (* per-drain silent-loss lane threshold *)
}

let image_uses_indexed (image : Program.image) =
  Array.exists
    (fun (t : Program.thread) ->
      Array.exists
        (function
          | Program.Store { addr = Program.Indexed; _ }
          | Program.Load { addr = Program.Indexed; _ }
          | Program.Flush { addr = Program.Indexed; _ } ->
            true
          | Program.Store _ | Program.Load _ | Program.Fence
          | Program.Flush _ | Program.Drain ->
            false)
        t.body)
    image.programs

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let run ?on_iteration_end ?on_sample ?on_event ?watchdog
    ?(sample_interval = 64) ~config ~rng ~image ~iterations ~barrier () =
  if iterations <= 0 then invalid_arg "Machine.run: iterations must be > 0";
  (* Ambient observability, resolved once per run so the per-round cost of
     disabled instrumentation is a compare on an immutable local.  The
     resolution NEVER changes which random lanes are consumed: enabled and
     disabled runs execute the same schedule. *)
  let mx = Metrics.active () in
  let has_events = on_event <> None in
  let trace_start = Trace_event.now () in
  let nthreads = Array.length image.Program.programs in
  let nlocs = Array.length image.Program.location_names in
  let cells = if image_uses_indexed image then iterations else 1 in
  (* Memory as one flat int array, [loc * cells + cell]. *)
  let memory = Array.make (nlocs * cells) 0 in
  Array.iteri
    (fun l init -> Array.fill memory (l * cells) cells init)
    image.Program.init;
  (* The persistence domain exists only for programs that exercise it, so
     ordinary runs allocate nothing for it. *)
  let pmem =
    if Program.uses_persistency image then
      Some (Pmem.create ~nthreads ~nlocs ~cells ~init:image.Program.init)
    else None
  in
  let crash_image = ref None in
  let ring = next_pow2 (max 1 config.Config.buffer_capacity) 1 in
  let threads =
    Array.map
      (fun (p : Program.thread) ->
        {
          code = Program.encode_thread p;
          code_len = Array.length p.body * Program.instr_width;
          body = p.body;
          regs = Array.make (max 1 p.reg_count) 0;
          sb_loc = Array.make ring 0;
          sb_cell = Array.make ring 0;
          sb_val = Array.make ring 0;
          sb_mask = ring - 1;
          sb_start = 0;
          sb_len = 0;
          pc = 0;
          iteration = 0;
          ready_at = 0;
          waiting = false;
          finished = false;
          hung = false;
          livelocked = false;
          jitter_skip = max_int;
          progress_skip = 0;
          loss_threshold = 0;
        })
      image.Program.programs
  in
  (* Arm the fault profile once per thread, up front, from the run RNG, so
     arming sits at a fixed point of that stream.  An empty profile draws
     nothing. *)
  let faults =
    if config.Config.faults = [] then [||]
    else
      Array.map
        (fun _ -> Fault.arm config.Config.faults ~rng ~iterations)
        threads
  in
  let has_faults = Array.length faults > 0 in
  (match mx with
  | Some m ->
    Array.iter
      (fun (a : Fault.armed) ->
        if a.Fault.hang_at <> None then Metrics.add m "machine.fault_arms.hang" 1;
        if a.Fault.crash_at <> None then
          Metrics.add m "machine.fault_arms.crash" 1;
        if a.Fault.livelock_at <> None then
          Metrics.add m "machine.fault_arms.livelock" 1;
        if a.Fault.loss_chance > 0.0 then
          Metrics.add m "machine.fault_arms.store_loss" 1)
      faults
  | None -> ());
  if has_faults then
    Array.iteri
      (fun t st ->
        st.loss_threshold <- Lane.threshold faults.(t).Fault.loss_chance)
      threads;
  (* The lane stream: all hot-loop randomness (progress/drain/jitter
     coins, stall lengths, buggy-model drain picks, store loss, barrier
     skew) comes from this native-int splitmix stream, seeded from the
     run RNG with one draw.  [Fault.arm] above and [Pmem.crash_snapshot]
     below keep drawing from the run RNG itself — both are out of the
     hot loop.  Each round draws ONE mix whose three 16-bit lanes serve
     the first three threads' progress coins positionally (reading a
     bit-slice does not advance the stream, so stalled threads skipping
     their slice costs nothing); everything rarer pulls 16-bit lanes
     from the same stream via [lane ()].  This is the documented
     one-time remap of the machine's random stream (docs/internals.md,
     "Performance"). *)
  let lstate = ref (Int64.to_int (Rng.bits64 rng) land max_int) in
  let lbuf = ref 0 in
  let lcnt = ref 0 in
  let lane () =
    if !lcnt = 0 then begin
      lstate := (!lstate + Lane.gamma) land max_int;
      let z = Lane.mix !lstate in
      lbuf := z lsr 16;
      lcnt := 2;
      z land 0xFFFF
    end
    else begin
      let b = !lbuf in
      lbuf := b lsr 16;
      lcnt := !lcnt - 1;
      b land 0xFFFF
    end
  in
  (* Per-round Bernoulli decisions as lane thresholds; rare events
     (jitter, collapsed livelock progress) as geometric skip counters so
     their per-round cost is one decrement. *)
  let progress_threshold = Lane.threshold config.Config.progress_chance in
  let drain_threshold = Lane.threshold config.Config.drain_chance in
  let jitter_on = config.Config.jitter_chance > 0.0 in
  let jitter_table =
    if jitter_on then Lane.geometric_table (min 1.0 config.Config.jitter_chance)
    else [||]
  in
  let stall_table =
    if jitter_on then
      Lane.geometric_table (1.0 /. float_of_int (max 1 config.Config.jitter_mean))
    else [||]
  in
  let livelock_p = config.Config.progress_chance *. Fault.livelock_factor in
  let livelock_table =
    if
      has_faults && livelock_p > 0.0
      && Array.exists (fun (a : Fault.armed) -> a.Fault.livelock_at <> None) faults
    then Lane.geometric_table (min 1.0 livelock_p)
    else [||]
  in
  let skip_of table = Array.unsafe_get table (lane () lsr Lane.shift_for_table) in
  if jitter_on then
    Array.iter (fun st -> st.jitter_skip <- skip_of jitter_table) threads;
  (* Model dispatch, resolved once. *)
  let model = config.Config.model in
  let model_sc = model = Config.Sc in
  let fence_waits =
    match model with
    | Config.Tso | Config.Pso | Config.Tso_store_reorder -> true
    | Config.Sc | Config.Tso_fence_ignored -> false
  in
  let buffer_capacity = config.Config.buffer_capacity in
  (* O(1) liveness bookkeeping instead of per-round [Array.for_all]. *)
  let live = ref nthreads in
  let buffered = ref 0 in
  let any_hung = ref false in
  (* Threads parked at the barrier; the rendezvous fires when every
     unfinished thread is parked, i.e. [nwaiting = live]. *)
  let nwaiting = ref 0 in
  let barrier_on, barrier_cost, barrier_skew =
    match barrier with
    | Every_iteration { cost; max_release_skew } -> (true, cost, max_release_skew)
    | No_barrier -> (false, 0, 0)
  in
  let clock = ref 0 in
  let last_progress = ref 0 in
  let instructions = ref 0 in
  let drains = ref 0 in
  let barriers = ref 0 in
  let stalls = ref 0 in
  let lost_stores = ref 0 in
  (* Store-buffer occupancy distribution, accumulated locally and flushed
     to the sink once per run: a hashtable probe per buffered store would
     dominate the store fast path under an active sink. *)
  let occ_hist = match mx with Some _ -> Array.make (ring + 1) 0 | None -> [||] in
  (* 0 = running, 1 = watchdog abort, 2 = hung. *)
  let aborted = ref 0 in
  let next_watchdog =
    ref (match watchdog with Some _ -> sample_interval | None -> max_int)
  in
  let next_sample =
    ref (match on_sample with Some _ -> sample_interval | None -> max_int)
  in
  let iteration_snapshot () = Array.map (fun st -> st.iteration) threads in
  (* Youngest buffered store to (loc, cell): backwards ring scan, first
     match; -1 when absent.  Newest-to-oldest order is what makes
     store-forwarding return the youngest matching entry. *)
  let sb_find st loc cell =
    let i = ref (st.sb_len - 1) in
    let found = ref (-1) in
    while !found < 0 && !i >= 0 do
      let idx = (st.sb_start + !i) land st.sb_mask in
      if
        Array.unsafe_get st.sb_loc idx = loc
        && Array.unsafe_get st.sb_cell idx = cell
      then found := idx
      else decr i
    done;
    !found
  in
  (* Remove the oldest-first position [i] from the ring, preserving the
     order of the rest: shift the older side up one slot. *)
  let sb_remove_at st i =
    for k = i downto 1 do
      let dst = (st.sb_start + k) land st.sb_mask in
      let src = (st.sb_start + k - 1) land st.sb_mask in
      Array.unsafe_set st.sb_loc dst (Array.unsafe_get st.sb_loc src);
      Array.unsafe_set st.sb_cell dst (Array.unsafe_get st.sb_cell src);
      Array.unsafe_set st.sb_val dst (Array.unsafe_get st.sb_val src)
    done;
    st.sb_start <- (st.sb_start + 1) land st.sb_mask;
    st.sb_len <- st.sb_len - 1;
    if st.sb_len = 0 then decr buffered
  in
  (* Scratch for the Pso drain pick (distinct buffered locations in
     ascending id order). *)
  let pso_locs = Array.make (max 1 nlocs) 0 in
  (* Fast-forward scratch, hoisted so the per-round scan allocates
     nothing. *)
  let ff_earliest = ref 0 in
  let drain_one t st =
    last_progress := !clock;
    if st.sb_len > 0 then begin
      (* Select the entry to drain, removing it from the ring. *)
      let pos =
        match model with
        | Config.Tso_store_reorder ->
          (* Buggy hardware: any buffered entry may drain first; the
             pick is uniform over oldest-first positions. *)
          if st.sb_len = 1 then 0 else (lane () * st.sb_len) lsr Lane.lane_bits
        | Config.Pso ->
          (* Oldest entry of a uniformly chosen buffered location: FIFO
             per location, reorderable across locations. *)
          if st.sb_len = 1 then 0
          else begin
            let count = ref 0 in
            for l = 0 to nlocs - 1 do
              let present = ref false in
              for k = 0 to st.sb_len - 1 do
                if
                  Array.unsafe_get st.sb_loc ((st.sb_start + k) land st.sb_mask)
                  = l
                then present := true
              done;
              if !present then begin
                pso_locs.(!count) <- l;
                incr count
              end
            done;
            let loc =
              if !count = 1 then pso_locs.(0)
              else pso_locs.((lane () * !count) lsr Lane.lane_bits)
            in
            (* Oldest entry of [loc]: first match oldest-first. *)
            let k = ref 0 in
            while
              Array.unsafe_get st.sb_loc ((st.sb_start + !k) land st.sb_mask)
              <> loc
            do
              incr k
            done;
            !k
          end
        | Config.Sc | Config.Tso | Config.Tso_fence_ignored -> 0
      in
      let idx = (st.sb_start + pos) land st.sb_mask in
      let loc = Array.unsafe_get st.sb_loc idx in
      let cell = Array.unsafe_get st.sb_cell idx in
      let value = Array.unsafe_get st.sb_val idx in
      sb_remove_at st pos;
      if st.loss_threshold > 0 && lane () < st.loss_threshold then
        (* Silent store loss: the entry leaves the buffer but never
           reaches memory, and no event betrays it. *)
        incr lost_stores
      else begin
        Array.unsafe_set memory ((loc * cells) + cell) value;
        if has_events then
          (match on_event with
          | Some hook -> hook ~round:!clock (Drain { thread = t; loc; value })
          | None -> ());
        incr drains
      end
    end
  in
  let set_finished st =
    if not st.finished then begin
      st.finished <- true;
      st.ready_at <- max_int;
      decr live
    end
  in
  let finish_iteration t st =
    (match on_iteration_end with
    | Some hook -> hook ~thread:t ~iteration:st.iteration ~regs:st.regs
    | None -> ());
    match barrier with
    | No_barrier ->
      st.iteration <- st.iteration + 1;
      st.pc <- 0;
      if st.iteration >= iterations then set_finished st
    | Every_iteration _ ->
      st.waiting <- true;
      incr nwaiting;
      st.ready_at <- max_int
  in
  let emit_exec t st value =
    match on_event with
    | Some hook ->
      hook ~round:!clock
        (Exec
           {
             thread = t;
             iteration = st.iteration;
             (* pc already advanced past the retiring instruction *)
             instr = st.body.((st.pc - Program.instr_width) / Program.instr_width);
             value;
           })
    | None -> ()
  in
  let execute t st =
    last_progress := !clock;
    let code = st.code in
    let pc = st.pc in
    let tag = Array.unsafe_get code pc in
    let loc = Array.unsafe_get code (pc + 1) in
    match tag with
    | 0 | 1 ->
      (* Store: value = k * iteration + a (Const stores have k = 0). *)
      let stored =
        (Array.unsafe_get code (pc + 2) * st.iteration)
        + Array.unsafe_get code (pc + 3)
      in
      let cell = if tag = 1 then st.iteration else 0 in
      if model_sc then begin
        Array.unsafe_set memory ((loc * cells) + cell) stored;
        st.pc <- pc + 4;
        incr instructions;
        if has_events then emit_exec t st stored
      end
      else if st.sb_len >= buffer_capacity then
        () (* stall: buffer full, retry next round *)
      else begin
        let idx = (st.sb_start + st.sb_len) land st.sb_mask in
        Array.unsafe_set st.sb_loc idx loc;
        Array.unsafe_set st.sb_cell idx cell;
        Array.unsafe_set st.sb_val idx stored;
        if st.sb_len = 0 then incr buffered;
        st.sb_len <- st.sb_len + 1;
        if Array.length occ_hist > 0 then
          occ_hist.(st.sb_len) <- occ_hist.(st.sb_len) + 1;
        st.pc <- pc + 4;
        incr instructions;
        if has_events then emit_exec t st stored
      end
    | 2 | 3 ->
      (* Load: forwarded from the youngest matching buffered store, else
         from memory. *)
      let cell = if tag = 3 then st.iteration else 0 in
      let fwd = if model_sc || st.sb_len = 0 then -1 else sb_find st loc cell in
      let value =
        if fwd >= 0 then Array.unsafe_get st.sb_val fwd
        else Array.unsafe_get memory ((loc * cells) + cell)
      in
      st.regs.(Array.unsafe_get code (pc + 2)) <- value;
      st.pc <- pc + 4;
      incr instructions;
      if has_events then emit_exec t st value
    | 4 ->
      (* Fence: waits for an empty buffer, except under SC (no buffer)
         and the fence-ignored bug. *)
      if (not fence_waits) || st.sb_len = 0 then begin
        st.pc <- pc + 4;
        incr instructions;
        if has_events then emit_exec t st 0
      end
    | 5 | 6 ->
      (* Flush: enabled only once no older store to the same cell is
         buffered, so the captured value includes this thread's own
         prior stores (x86 orders CLFLUSH after older stores to the same
         line). *)
      let cell = if tag = 6 then st.iteration else 0 in
      if st.sb_len > 0 && sb_find st loc cell >= 0 then () (* stall *)
      else begin
        let value = Array.unsafe_get memory ((loc * cells) + cell) in
        (match pmem with
        | Some pm -> Pmem.flush pm ~thread:t ~loc ~cell ~value
        | None -> ());
        st.pc <- pc + 4;
        incr instructions;
        if has_events then emit_exec t st value
      end
    | _ ->
      (* Drain: waits for an empty buffer like MFENCE — under every
         model: the fence-ignored bug targets MFENCE specifically, and
         SC has no buffer to wait for. *)
      if st.sb_len = 0 then begin
        (match pmem with
        | Some pm ->
          Pmem.drain pm ~persistency:config.Config.persistency ~thread:t
        | None -> ());
        st.pc <- pc + 4;
        incr instructions;
        if has_events then emit_exec t st 0
      end
  in
  (* One thread's scheduling step, given its 16-bit progress lane.
     [@inline] is advisory under Closure, but the call sites are direct. *)
  let step t st plane =
    if jitter_on && st.jitter_skip = 0 then begin
      (* OS jitter: preempt this thread for 1 + Geometric rounds. *)
      st.jitter_skip <- skip_of jitter_table;
      let until = !clock + 1 + skip_of stall_table in
      st.ready_at <- until;
      if has_events then
        (match on_event with
        | Some hook -> hook ~round:!clock (Stall { thread = t; until })
        | None -> ());
      incr stalls
    end
    else begin
      if jitter_on then st.jitter_skip <- st.jitter_skip - 1;
      let fires =
        if st.livelocked then
          if st.progress_skip = 0 then begin
            st.progress_skip <-
              (if Array.length livelock_table = 0 then max_int
               else skip_of livelock_table);
            true
          end
          else begin
            st.progress_skip <- st.progress_skip - 1;
            false
          end
        else plane < progress_threshold
      in
      if fires then begin
        if st.pc >= st.code_len then finish_iteration t st
        else begin
          execute t st;
          if (not st.finished) && (not st.waiting) && st.pc >= st.code_len
          then finish_iteration t st
        end
      end
    end
  in
  (* Fault triggers: crash and hang fire as soon as the thread's
     iteration reaches the armed onset, even while stalled or at the
     barrier.  None draws any lane. *)
  let fault_triggers t st =
    let a = faults.(t) in
    (match a.Fault.crash_at with
    | Some c when (not st.finished) && st.iteration >= c ->
      (* The first crash freezes the persisted image: the durable state
         plus a coin flip per pending writeback, drawn from the run RNG
         (out of the hot loop).  Draws nothing when nothing is pending
         (or without a persistence domain). *)
      (match (pmem, !crash_image) with
      | Some pm, None -> crash_image := Some (Pmem.crash_snapshot pm ~rng)
      | (Some _ | None), _ -> ());
      set_finished st;
      if st.waiting then begin
        st.waiting <- false;
        decr nwaiting
      end
    | Some _ | None -> ());
    (match a.Fault.hang_at with
    | Some h when (not st.hung) && st.iteration >= h ->
      st.hung <- true;
      st.ready_at <- max_int;
      any_hung := true
    | Some _ | None -> ());
    match a.Fault.livelock_at with
    | Some l when (not st.livelocked) && st.iteration >= l ->
      (* Progress collapses by [livelock_factor]: switch the thread to a
         skip counter over the collapsed probability. *)
      st.livelocked <- true;
      st.progress_skip <-
        (if Array.length livelock_table = 0 then max_int
         else skip_of livelock_table)
    | Some _ | None -> ()
  in
  (* Round-robin rotation: the thread scan starts one position later
     every round, which removes systematic thread-order bias just as the
     historical random offset did (both are uniform over cyclic shifts;
     within-round execution order was never a random permutation). *)
  let rot = ref 0 in
  while !aborted = 0 && !live > 0 do
    incr clock;
    if !clock - !last_progress > 2_000_000 then
      failwith
        "Machine.run: livelock (no instruction or drain for 2M rounds; is \
         drain_chance 0 with a full store buffer?)";
    (* Watchdog: polled at the sampling cadence ([>=] so fast-forward
       jumps cannot skip a check).  Observation only — no lane draws. *)
    if !clock >= !next_watchdog then begin
      next_watchdog := !clock + sample_interval;
      match watchdog with
      | Some should_abort ->
        if should_abort ~round:!clock ~iterations:(iteration_snapshot ()) then
          aborted := 1
      | None -> ()
    end;
    if !aborted = 0 then begin
      (* The round mix: threads at scan positions 0-2 read their progress
         lane from [z] positionally; later positions (>= 4 threads) fall
         back to the sequential lane stream. *)
      lstate := (!lstate + Lane.gamma) land max_int;
      let z = Lane.mix !lstate in
      let offset = !rot in
      rot := (if offset + 1 >= nthreads then 0 else offset + 1);
      for i = 0 to nthreads - 1 do
        let t =
          let t = i + offset in
          if t >= nthreads then t - nthreads else t
        in
        let st = Array.unsafe_get threads t in
        if has_faults then fault_triggers t st;
        if st.ready_at <= !clock then
          step t st
            (if i < 3 then (z lsr (i lsl 4)) land 0xFFFF else lane ())
      done;
      (* Drain phase. *)
      if !buffered > 0 then
        for t = 0 to nthreads - 1 do
          let st = Array.unsafe_get threads t in
          if
            st.sb_len > 0
            && (drain_threshold >= Lane.lane_bound
                || (drain_threshold > 0 && lane () < drain_threshold))
          then drain_one t st
        done;
      (* Barrier rendezvous: fires when every unfinished thread is parked
         (finished threads never wait; hung-while-waiting threads still
         count, exactly as the flag scan did). *)
      if barrier_on && !live > 0 && !nwaiting = !live then begin
        clock := !clock + barrier_cost;
        nwaiting := 0;
        Array.iteri
          (fun t st ->
            if not st.finished then begin
              while st.sb_len > 0 do
                drain_one t st
              done;
              st.waiting <- false;
              st.iteration <- st.iteration + 1;
              st.pc <- 0;
              st.ready_at <-
                (if barrier_skew > 0 then
                   !clock + ((lane () * (barrier_skew + 1)) lsr Lane.lane_bits)
                 else 0);
              if st.iteration >= iterations then set_finished st
            end)
          threads;
        if has_events then
          (match on_event with
          | Some hook -> hook ~round:!clock Barrier_release
          | None -> ());
        incr barriers
      end;
      if !clock >= !next_sample then begin
        (* Fires on exact multiples of the cadence only: rounds the
           fast-forward jumped over do not fire retroactively. *)
        (if !clock mod sample_interval = 0 then
           match on_sample with
           | Some hook -> hook ~round:!clock ~iterations:(iteration_snapshot ())
           | None -> ());
        next_sample := ((!clock / sample_interval) + 1) * sample_interval
      end;
      (* Fast-forward through provably idle spans: when every thread that
         could ever act again is stalled beyond the next round and no
         store buffer has anything to drain, no event can occur until the
         earliest stall expires — jump the clock there.  This keeps
         barrier release skew and long jitter bursts from costing
         simulation time without changing any observable behaviour.
         (Finished, hung and barrier-parked threads sit at [max_int] and
         fall out of the minimum.) *)
      if !buffered = 0 then begin
        ff_earliest := max_int;
        for t = 0 to nthreads - 1 do
          let r = (Array.unsafe_get threads t).ready_at in
          if r < !ff_earliest then ff_earliest := r
        done;
        if !ff_earliest > !clock + 1 && !ff_earliest < max_int then
          clock := !ff_earliest - 1
      end;
      (* Fault quiescence: when every unfinished thread is hung (or parked
         at a barrier that a hung thread prevents from ever releasing) and
         no buffered store remains, no event can ever happen again — abort
         instead of spinning to the livelock limit. *)
      if
        !any_hung && !buffered = 0
        && Array.exists (fun st -> st.hung && not st.finished) threads
        && Array.for_all
             (fun st -> st.finished || st.hung || st.waiting)
             threads
      then aborted := 2
    end
  done;
  (* Termination flush: on real hardware every buffered store eventually
     reaches memory; drain the leftovers, one round each.  An aborted run
     stops dead instead — its in-flight stores are part of the loss. *)
  if !aborted = 0 then
    Array.iteri
      (fun t st ->
        while st.sb_len > 0 do
          incr clock;
          drain_one t st
        done)
      threads;
  let termination =
    match !aborted with 0 -> Completed | 1 -> Watchdog_abort | _ -> Hung
  in
  (match mx with
  | Some m ->
    Metrics.add m "machine.runs" 1;
    Metrics.add m "machine.rounds" !clock;
    Metrics.add m "machine.instructions" !instructions;
    Metrics.add m "machine.drains" !drains;
    Metrics.add m "machine.barriers" !barriers;
    Metrics.add m "machine.stalls" !stalls;
    Metrics.add m "machine.lost_stores" !lost_stores;
    Metrics.add m ("machine.termination." ^ termination_name termination) 1;
    Array.iteri
      (fun occ count ->
        if count > 0 then
          Metrics.observe_many m "machine.buffer_occupancy" occ count)
      occ_hist
  | None -> ());
  Trace_event.complete ~name:"machine.run" ~since:trace_start
    ~args:
      [
        ("rounds", Trace_event.Int !clock);
        ("instructions", Trace_event.Int !instructions);
        ("iterations", Trace_event.Int iterations);
        ("termination", Trace_event.String (termination_name termination));
      ]
    ();
  {
    rounds = !clock;
    instructions = !instructions;
    drains = !drains;
    barriers = !barriers;
    stalls = !stalls;
    termination;
    iterations_retired = iteration_snapshot ();
    lost_stores = !lost_stores;
    persisted =
      (match (pmem, !crash_image) with
      | None, _ -> None
      | Some _, (Some _ as snapshot) -> snapshot
      | Some pm, None -> Some (Pmem.durable_snapshot pm));
  }

type model = Sc | Tso | Pso | Tso_store_reorder | Tso_fence_ignored

type persistency = Epoch | Eager

type t = {
  model : model;
  persistency : persistency;
  progress_chance : float;
  drain_chance : float;
  buffer_capacity : int;
  jitter_chance : float;
  jitter_mean : int;
  faults : Fault.profile;
}

let default =
  {
    model = Tso;
    persistency = Epoch;
    progress_chance = 0.9;
    drain_chance = 0.55;
    buffer_capacity = 8;
    jitter_chance = 0.002;
    jitter_mean = 400;
    faults = Fault.none;
  }

let model_name = function
  | Sc -> "sc"
  | Tso -> "tso"
  | Pso -> "pso"
  | Tso_store_reorder -> "tso+store-reorder-bug"
  | Tso_fence_ignored -> "tso+fence-ignored-bug"

let persistency_name = function Epoch -> "epoch" | Eager -> "eager-bug"

let persistency_of_name = function
  | "epoch" -> Some Epoch
  | "eager-bug" | "eager" -> Some Eager
  | _ -> None

let with_model model t = { t with model }

let with_persistency persistency t = { t with persistency }

let no_jitter t = { t with jitter_chance = 0.0 }

let with_faults faults t = { t with faults }

type model = Sc | Tso | Pso | Tso_store_reorder | Tso_fence_ignored

type t = {
  model : model;
  progress_chance : float;
  drain_chance : float;
  buffer_capacity : int;
  jitter_chance : float;
  jitter_mean : int;
  faults : Fault.profile;
}

let default =
  {
    model = Tso;
    progress_chance = 0.9;
    drain_chance = 0.55;
    buffer_capacity = 8;
    jitter_chance = 0.002;
    jitter_mean = 400;
    faults = Fault.none;
  }

let model_name = function
  | Sc -> "sc"
  | Tso -> "tso"
  | Pso -> "pso"
  | Tso_store_reorder -> "tso+store-reorder-bug"
  | Tso_fence_ignored -> "tso+fence-ignored-bug"

let with_model model t = { t with model }

let no_jitter t = { t with jitter_chance = 0.0 }

let with_faults faults t = { t with faults }

(* Native-int randomness primitives for the simulator hot loop.

   The machine's inner loop historically drew every decision from
   {!Perple_util.Rng} — a splitmix64 over boxed [Int64], costing an
   allocation and several boxed operations per draw, with the round loop
   making ~6 draws per round.  The hot loop now consumes cheap 16-bit
   "lanes" of a native-int splitmix stream instead (three lanes per
   mix), and turns per-round Bernoulli draws into either threshold
   comparisons or geometric skip counters fed by the inverse-CDF tables
   below.  This module holds the shared pure pieces; the machine inlines
   the stream state itself.

   Determinism: everything here is a pure function of its inputs; the
   machine seeds its stream from one [Rng.bits64] draw of the run RNG,
   so runs remain a function of the run seed alone.  Requires 64-bit
   [int] (the default everywhere dune builds this project). *)

(* splitmix64's constants truncated to OCaml's 63-bit int.  The mixer
   loses the top bit of each multiply; for scheduling noise (not
   cryptography, not statistics papers) the avalanche quality is still
   far beyond what the simulator can observe. *)
let gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let lane_bits = 16
let lane_bound = 65536

(* A probability as a 16-bit lane threshold: an event with probability
   [p] fires iff [lane < threshold p].  0 means never, [lane_bound]
   means always; probabilities below 2^-16 are rounded UP to one lane
   step so they stay reachable (a 1e-6 progress chance must still make
   progress eventually). *)
let threshold p =
  if p <= 0.0 then 0
  else if p >= 1.0 then lane_bound
  else max 1 (int_of_float (p *. float_of_int lane_bound))

(* Geometric skip tables: [T.(u)] is the [u]-th quantile of the number
   of failures before the first success of a Bernoulli([p]) stream, so
   [T.(lane lsr 4)] draws a whole run of failures in one table read.
   4096 entries (12 of the lane's 16 bits) keep a table at 32 KB —
   L1/L2-resident — while still resolving skips out to the ~1/4096
   tail; beyond that the distribution is truncated, which for
   scheduling noise is invisible.  Tables are cached per probability
   for the life of the process; the cache is mutex-guarded because pool
   workers build tables concurrently. *)
let table_size = 4096

let shift_for_table = lane_bits - 12

let build_table p =
  if p >= 1.0 then Array.make table_size 0
  else begin
    let q = log1p (-.p) in
    Array.init table_size (fun u ->
        let tail =
          (float_of_int (table_size - u) -. 0.5) /. float_of_int table_size
        in
        int_of_float (log tail /. q))
  end

let cache : (float, int array) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let geometric_table p =
  if p <= 0.0 then invalid_arg "Lane.geometric_table: p must be positive";
  Mutex.lock cache_mutex;
  let table =
    match Hashtbl.find_opt cache p with
    | Some t -> t
    | None ->
      let t = build_table p in
      Hashtbl.add cache p t;
      t
  in
  Mutex.unlock cache_mutex;
  table

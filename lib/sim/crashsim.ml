module Ast = Perple_litmus.Ast

type point_result = {
  point : int;
  images : int;
  violations : int;
  witness : (string * int) list option;
}

let interned test =
  let names = Array.of_list (Ast.locations test) in
  let id_of x =
    let rec find i =
      if i >= Array.length names then raise Not_found
      else if names.(i) = x then i
      else find (i + 1)
    in
    find 0
  in
  (names, id_of)

let instruction_count test =
  Array.fold_left (fun acc p -> acc + Array.length p) 0 test.Ast.threads

let crash_points test = instruction_count test + 1

(* Execute the first [point] instructions of the canonical sequential
   schedule — thread 0 to completion, then thread 1, ... — with SC volatile
   semantics, tracking the persistence domain. *)
let run_prefix ~persistency test ~point =
  let names, id_of = interned test in
  let nlocs = Array.length names in
  let init = Array.map (fun x -> Ast.initial_value test x) names in
  let memory = Array.copy init in
  let pm =
    Pmem.create ~nthreads:(Ast.thread_count test) ~nlocs ~cells:1 ~init
  in
  let executed = ref 0 in
  Array.iteri
    (fun thread program ->
      Array.iter
        (fun instr ->
          if !executed < point then begin
            incr executed;
            match instr with
            | Ast.Store (x, a) -> memory.(id_of x) <- a
            | Ast.Load _ | Ast.Mfence -> ()
            | Ast.Flush x ->
              let loc = id_of x in
              Pmem.flush pm ~thread ~loc ~cell:0 ~value:memory.(loc)
            | Ast.Drain -> Pmem.drain pm ~persistency ~thread
          end)
        program)
    test.Ast.threads;
  if !executed < point then
    invalid_arg
      (Printf.sprintf "Crashsim.run_prefix: point %d > %d instructions" point
         !executed);
  (names, memory, pm)

let assoc_of_image names image =
  Array.to_list (Array.mapi (fun l (cells : int array) -> (names.(l), cells.(0))) image)

let reachable_images ~persistency test ~point =
  let names, _memory, pm = run_prefix ~persistency test ~point in
  List.sort_uniq compare
    (List.map (assoc_of_image names) (Pmem.reachable_images pm))

let satisfies atoms image =
  List.for_all
    (fun (x, v) ->
      match List.assoc_opt x image with Some w -> w = v | None -> v = 0)
    atoms

let evaluate_point ~persistency test ~point =
  let images = reachable_images ~persistency test ~point in
  match test.Ast.post_crash with
  | None ->
    { point; images = List.length images; violations = 0; witness = None }
  | Some pc ->
    let violating =
      List.filter
        (fun image ->
          satisfies pc.Ast.assumes image
          && not (satisfies pc.Ast.requires image))
        images
    in
    {
      point;
      images = List.length images;
      violations = List.length violating;
      witness = (match violating with [] -> None | w :: _ -> Some w);
    }

let evaluate ~persistency test =
  List.init (crash_points test) (fun point ->
      evaluate_point ~persistency test ~point)

let violation_free ~persistency test =
  List.for_all (fun r -> r.violations = 0) (evaluate ~persistency test)

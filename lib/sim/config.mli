(** Configuration of the simulated multicore machine.

    This is the substitution for the paper's hardware under test (an Intel
    Xeon cluster): a discrete-round simulator in which every round each
    thread may execute one instruction, store buffers drain probabilistically
    and the OS-jitter model occasionally preempts a thread for a long burst —
    the source of the wide thread-skew distribution of the paper's Fig 12.

    The [model] field selects the consistency behaviour.  [Tso] is the
    x86-TSO abstract machine and is the default; the buggy variants violate
    it in controlled ways so that forbidden target outcomes become observable
    and the violation-detection workflow can be demonstrated end to end. *)

type model =
  | Sc  (** Stores bypass the buffer: sequential consistency. *)
  | Tso  (** FIFO store buffer with forwarding: x86-TSO. *)
  | Pso
      (** Store buffer FIFO per location only: stores to different
          locations drain out of order (SPARC-PSO-style; the weaker-model
          extension the paper's conclusion gestures at).  Coherence is
          preserved, unlike {!Tso_store_reorder}. *)
  | Tso_store_reorder
      (** Buggy: the buffer drains in random order, so same-thread stores
          can be reordered (breaks e.g. [mp]). *)
  | Tso_fence_ignored
      (** Buggy: [MFENCE] neither drains nor waits (breaks e.g. [amd5]). *)

type persistency =
  | Epoch
      (** Correct epoch ordering: [drain] commits the thread's pending
          flushes to the persistence domain in order, so flushes separated
          by a drain persist in that order. *)
  | Eager
      (** Buggy controller: [drain] fails to commit — every flushed line
          persists lazily and independently, so flushes from different
          epochs can reach the persistence domain out of order (breaks e.g.
          [pm-epoch-order]). *)

type t = {
  model : model;
  persistency : persistency;
      (** Persistency behaviour of [flush]/[drain]; irrelevant (and
          drawing no randomness) for programs without those instructions. *)
  progress_chance : float;
      (** Per round, the chance a runnable thread executes its next
          instruction; models per-core speed variation. *)
  drain_chance : float;
      (** Per round, the chance a non-empty store buffer drains one entry. *)
  buffer_capacity : int;
      (** Stores stall when the buffer is full. *)
  jitter_chance : float;
      (** Per instruction attempt, the chance the thread is preempted. *)
  jitter_mean : int;
      (** Mean preemption length in rounds (geometric). *)
  faults : Fault.profile;
      (** Fault-injection profile (default empty).  With an empty profile
          the machine draws no extra random numbers, so fault-free runs
          stay bit-identical to builds that predate fault injection. *)
}

val default : t
(** TSO with moderate buffering and OS jitter; the configuration used by the
    paper-reproduction experiments. *)

val model_name : model -> string

val persistency_name : persistency -> string
(** ["epoch"] or ["eager-bug"]. *)

val persistency_of_name : string -> persistency option
(** Inverse of {!persistency_name}; also accepts ["eager"]. *)

val with_model : model -> t -> t

val with_persistency : persistency -> t -> t

val no_jitter : t -> t
(** Same machine without preemption bursts; useful in unit tests that need
    tightly interleaved threads. *)

val with_faults : Fault.profile -> t -> t

(** The persistence domain of the simulated machine.

    Volatile memory loses its contents at a crash; this module models what
    survives.  A [Store] alone is never durable: a [flush] of the location
    captures the current coherent value of the cell into the issuing
    thread's {e pending} writeback queue, and a subsequent [drain] commits
    that thread's pending writebacks — under the correct {!Config.Epoch}
    model, in flush order.  Under the buggy {!Config.Eager} variant the
    drain commits nothing and every pending writeback persists lazily and
    independently, which is exactly the failure the [pm-*] catalog tests
    detect.

    Cross-thread writeback completion order is canonicalised to
    (thread, flush index); both the crash snapshot and the exhaustive
    enumeration use it, keeping the operational simulator and the axiomatic
    persistency checker image-for-image comparable. *)

type t

val create : nthreads:int -> nlocs:int -> cells:int -> init:int array -> t
(** Durable image starts equal to the volatile initial values ([init] is
    indexed by location id, replicated across [cells]). *)

val flush : t -> thread:int -> loc:int -> cell:int -> value:int -> unit
(** Append a captured cell value to the thread's pending queue. *)

val drain : t -> persistency:Config.persistency -> thread:int -> unit
(** [Epoch]: commit the thread's pending queue in order and clear it.
    [Eager]: nothing (the bug). *)

val pending_count : t -> int
(** Flushed-but-uncommitted writebacks across all threads. *)

val durable_snapshot : t -> int array array
(** Copy of the committed durable image, [loc -> cell -> value]. *)

val crash_snapshot : t -> rng:Perple_util.Rng.t -> int array array
(** The persisted image at a crash: the durable image plus an independent
    coin flip per pending writeback (applied in canonical order).  Draws
    exactly [pending_count t] booleans — zero when nothing is pending, so
    crash-free and flush-free runs stay bit-identical. *)

val reachable_images : t -> int array array list
(** Every persisted image reachable at this point: the durable image
    overlaid with each subset of pending writebacks (canonical order),
    deduplicated and sorted.  Raises [Invalid_argument] beyond 20 pending
    writebacks (2^n images). *)

module Rng = Perple_util.Rng

type kind = Hang | Crash | Store_loss | Livelock

type spec = { kind : kind; probability : float }

type profile = spec list

let none = []

let livelock_factor = 0.001

let kind_name = function
  | Hang -> "hang"
  | Crash -> "crash"
  | Store_loss -> "store-loss"
  | Livelock -> "livelock"

let kind_of_name = function
  | "hang" -> Some Hang
  | "crash" -> Some Crash
  | "store-loss" | "store_loss" | "loss" -> Some Store_loss
  | "livelock" -> Some Livelock
  | _ -> None

let of_string s =
  match String.index_opt s '@' with
  | None ->
    Error
      (Printf.sprintf
         "fault spec %S: expected KIND@PROB (e.g. hang@0.01)" s)
  | Some i -> (
    let name = String.sub s 0 i in
    let prob = String.sub s (i + 1) (String.length s - i - 1) in
    match kind_of_name name with
    | None ->
      Error
        (Printf.sprintf
           "unknown fault kind %S (expected hang, crash, store-loss or \
            livelock)"
           name)
    | Some kind -> (
      match float_of_string_opt prob with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok { kind; probability = p }
      | Some _ | None ->
        Error
          (Printf.sprintf "fault probability %S: expected a float in [0, 1]"
             prob)))

let to_string { kind; probability } =
  Printf.sprintf "%s@%g" (kind_name kind) probability

let pp ppf spec = Format.pp_print_string ppf (to_string spec)

let profile_to_string = function
  | [] -> "none"
  | profile -> String.concat "," (List.map to_string profile)

type armed = {
  hang_at : int option;
  crash_at : int option;
  loss_chance : float;
  livelock_at : int option;
}

let disarmed =
  { hang_at = None; crash_at = None; loss_chance = 0.0; livelock_at = None }

let earliest a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let arm profile ~rng ~iterations =
  let onset () = Some (Rng.int rng (max 1 iterations)) in
  List.fold_left
    (fun armed spec ->
      match spec.kind with
      | Store_loss ->
        { armed with loss_chance = Float.max armed.loss_chance spec.probability }
      | Hang when Rng.chance rng spec.probability ->
        { armed with hang_at = earliest armed.hang_at (onset ()) }
      | Crash when Rng.chance rng spec.probability ->
        { armed with crash_at = earliest armed.crash_at (onset ()) }
      | Livelock when Rng.chance rng spec.probability ->
        { armed with livelock_at = earliest armed.livelock_at (onset ()) }
      | Hang | Crash | Livelock -> armed)
    disarmed profile

(** The simulated multicore machine.

    Executes one {!Program.image} for a given number of iterations per
    thread, under a {!Config.t}.  Time advances in rounds; in each round
    every runnable thread may execute at most one instruction and every
    non-empty store buffer may drain one entry.  The round counter is the
    {e virtual clock}: harness-level costs (synchronisation barriers,
    per-iteration bookkeeping, outcome counting) are charged against it by
    {!Perple_harness}, which lets the reproduction compare testing runtimes
    the way the paper's Fig 10 does without real x86 hardware. *)

type barrier =
  | No_barrier
      (** Threads run all their iterations freely (perpetual tests, and
          litmus7's [none] mode). *)
  | Every_iteration of { cost : int; max_release_skew : int }
      (** All threads rendezvous after each iteration; the rendezvous
          advances the virtual clock by [cost] rounds and drains all store
          buffers (a real barrier is long enough for buffers to empty).
          On release each thread restarts after an independent uniform delay
          in [\[0, max_release_skew\]] rounds — the start-time misalignment
          that makes per-iteration thread interaction rare on real hardware
          and distinguishes litmus7's synchronisation modes (a timebase
          barrier aligns tightly; a pthread barrier poorly). *)

type event =
  | Exec of { thread : int; iteration : int; instr : Program.instr; value : int }
      (** An instruction retired; [value] is the stored or loaded value
          (0 for fences). *)
  | Drain of { thread : int; loc : int; value : int }
      (** A store-buffer entry became globally visible. *)
  | Barrier_release  (** All threads passed the per-iteration barrier. *)
  | Stall of { thread : int; until : int }  (** OS-jitter preemption. *)

type termination =
  | Completed  (** Every thread retired all its iterations. *)
  | Watchdog_abort  (** The [watchdog] callback requested an abort. *)
  | Hung
      (** Fault injection left every unfinished thread hung (or parked at
          a barrier a hung thread can never release) with empty buffers:
          no event could ever happen again. *)

val termination_name : termination -> string
(** ["completed"], ["watchdog_abort"] or ["hung"] — the spelling used in
    metrics counter names and trace span arguments. *)

type stats = {
  rounds : int;  (** Final virtual clock value. *)
  instructions : int;  (** Instructions executed across all threads. *)
  drains : int;  (** Store-buffer drain events. *)
  barriers : int;  (** Barrier rendezvous performed. *)
  stalls : int;  (** Jitter preemptions suffered. *)
  termination : termination;
      (** [Completed] unless the run was cut short; aborted runs skip the
          termination flush, so in-flight stores stay unperformed. *)
  iterations_retired : int array;
      (** Per thread, the number of fully retired iterations; equals
          [iterations] everywhere iff the run completed without crash
          faults. *)
  lost_stores : int;
      (** Stores silently dropped by {!Fault.Store_loss} injection. *)
  persisted : int array array option;
      (** The persisted image [loc -> cell -> value], present iff the
          program uses the persistence domain ([Flush]/[Drain]).  For a
          crashed run this is the image frozen at the first crash fault
          (durable state plus a seeded coin flip per pending writeback);
          otherwise the durable state at termination. *)
}

val run :
  ?on_iteration_end:(thread:int -> iteration:int -> regs:int array -> unit) ->
  ?on_sample:(round:int -> iterations:int array -> unit) ->
  ?on_event:(round:int -> event -> unit) ->
  ?watchdog:(round:int -> iterations:int array -> bool) ->
  ?sample_interval:int ->
  config:Config.t ->
  rng:Perple_util.Rng.t ->
  image:Program.image ->
  iterations:int ->
  barrier:barrier ->
  unit ->
  stats
(** Runs every thread for [iterations] iterations of its body.

    [on_iteration_end] fires when a thread finishes an iteration, with that
    thread's register file.  {b Hazard}: the [regs] array is the thread's
    live register file, reused across calls — a callback that retains it
    without [Array.copy] will observe the values being clobbered by later
    iterations (regression-tested in [test_sim]; the supervision layer
    copies defensively).

    [watchdog] is polled at the sampling cadence with the current round and
    per-thread iteration counts; returning [true] aborts the run with
    [termination = Watchdog_abort].  Partial results (register files already
    delivered through [on_iteration_end]) remain valid — this is how the
    supervisor bounds runs that fault injection has hung or livelocked.

    Fault injection ([config.faults]) is armed per thread at run start from
    [rng]; an empty profile draws nothing from it.  The hot loop's own
    scheduling randomness (offsets, progress/drain/jitter coins, buggy-model
    drain picks) comes from a {!Lane} stream seeded by a single [rng] draw
    taken after arming, so a run is a pure function of the run seed and the
    fault-arming draws sit at a fixed point of the [rng] stream regardless
    of schedule length.

    [on_sample] fires every [sample_interval] rounds (default 64) with each
    thread's current iteration index; used to measure ground-truth thread
    skew against the paper's value-decoding estimate.

    [on_event] observes every instruction retirement, buffer drain, barrier
    release and jitter stall with the current virtual round — the machine's
    execution trace (pretty-printed by {!Perple_harness.Trace} and the
    [perple trace] command).  Observation only; the schedule is unchanged.

    Memory for [Indexed] operands has one cell per iteration, as litmus7
    allocates; [Shared] operands use a single cell per location. *)

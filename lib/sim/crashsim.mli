(** Operational crash-point executor.

    Runs a litmus test under the {e canonical sequential schedule} — thread
    0 to completion, then thread 1, ... — with SC volatile semantics,
    maintaining the {!Pmem} persistence domain as it goes.  A {e crash
    point} [k] is the machine state after exactly [k] instructions of that
    schedule (so a test with [N] instructions has [N+1] crash points,
    enumerated the way [test_journal] truncates a journal at every byte
    offset).  At each point the reachable persisted images are the durable
    state overlaid with every subset of pending writebacks
    ({!Pmem.reachable_images}); recovery evaluates the test's post-crash
    condition against each.

    The canonical schedule is a deliberate simplification: crash
    consistency here is about the {e order of writebacks}, not volatile
    interleavings, and one fixed schedule keeps the image sets exactly
    comparable with the axiomatic persistency checker (which classifies the
    same prefixes declaratively). *)

type point_result = {
  point : int;  (** Instructions executed before the crash. *)
  images : int;  (** Distinct reachable persisted images. *)
  violations : int;  (** Images where [assumes] holds but [requires] fails. *)
  witness : (string * int) list option;
      (** A violating image, if any (sorted by location name). *)
}

val instruction_count : Perple_litmus.Ast.t -> int

val crash_points : Perple_litmus.Ast.t -> int
(** [instruction_count + 1]: one point per instruction boundary. *)

val reachable_images :
  persistency:Config.persistency ->
  Perple_litmus.Ast.t ->
  point:int ->
  (string * int) list list
(** The persisted images reachable at a crash point, each a sorted
    [(location, value)] list over all of the test's locations; the list of
    images is sorted and duplicate-free. *)

val evaluate_point :
  persistency:Config.persistency ->
  Perple_litmus.Ast.t ->
  point:int ->
  point_result
(** Tests without a post-crash condition report zero violations. *)

val evaluate :
  persistency:Config.persistency -> Perple_litmus.Ast.t -> point_result list
(** [evaluate_point] at every crash point, in order. *)

val violation_free :
  persistency:Config.persistency -> Perple_litmus.Ast.t -> bool

(** Native-int randomness primitives for the simulator hot loop.

    {!Machine.run}'s inner loop draws its scheduling noise (round-robin
    offsets, progress/drain/jitter coins, stall lengths, buggy-model
    drain picks) from a native-int splitmix stream consumed as 16-bit
    {e lanes}, rather than from boxed {!Perple_util.Rng} draws.  This
    module holds the pure shared pieces — the mixer, probability
    thresholds, and cached geometric inverse-CDF tables; the machine
    keeps the stream state in local mutables.

    The switch from [Rng] is the documented one-time remap of the
    machine's random stream (see docs/internals.md, "Performance"):
    runs are still a pure function of the run seed — the lane stream is
    seeded from one [Rng.bits64] draw — but seeded runs produce
    different (equally valid) schedules than pre-remap builds. *)

val gamma : int
(** Additive stream constant (splitmix64's golden gamma, truncated to
    63 bits).  Advance the stream with
    [state <- (state + gamma) land max_int]. *)

val mix : int -> int
(** Finalizing mixer: maps the raw stream state to a well-scrambled
    non-negative 63-bit value.  Each mixed value yields three 16-bit
    lanes (bits 0–47). *)

val lane_bits : int
(** Bits per lane (16). *)

val lane_bound : int
(** Exclusive upper bound of a lane value (2^16). *)

val threshold : float -> int
(** [threshold p] encodes probability [p] as a lane threshold: an event
    fires iff [lane < threshold p].  [0] = never, {!lane_bound} =
    always; positive probabilities below 2^-16 round up to one step so
    they remain reachable. *)

val geometric_table : float -> int array
(** [geometric_table p] is a cached {!table_size}-entry inverse-CDF
    table of Geometric([p]) (number of failures before the first
    success): indexing it with [lane lsr shift_for_table] draws a whole
    failure run in one read.  The tail beyond the 1/{!table_size}
    quantile is truncated.  Thread-safe; tables live for the process.
    @raise Invalid_argument if [p <= 0]. *)

val table_size : int
(** Entries per geometric table (4096). *)

val shift_for_table : int
(** Right-shift turning a 16-bit lane into a table index (4). *)

(** Fault injection for the simulated machine.

    The paper's campaigns run on real hardware where individual runs hang,
    die or silently lose data; a verification campaign is only as good as
    its ability to survive those failures.  This module models the failure
    modes so the supervision layer ({!Perple_harness.Supervisor}) can be
    exercised deterministically: every fault decision is drawn from the
    run's own {!Perple_util.Rng}, so a seed reproduces the faults exactly.

    A {e profile} is a list of fault specs; {!Config.t} carries one in its
    [faults] field (empty by default, in which case the machine draws no
    extra random numbers and behaves bit-identically to a fault-free
    build).  At the start of a run the machine {e arms} the profile once
    per thread: each probabilistic spec either triggers for that thread —
    fixing the onset point — or stays dormant for the whole run. *)

type kind =
  | Hang
      (** The thread stops retiring instructions at a uniformly drawn
          iteration and never resumes; its buffered stores still drain.
          The run cannot complete — a watchdog must abort it. *)
  | Crash
      (** The thread's iteration loop terminates early at a uniformly
          drawn iteration, leaving a short [buf] prefix; the rest of the
          machine runs to completion. *)
  | Store_loss
      (** Each drained store is silently dropped (removed from the buffer
          but never written to memory) with the given probability.  No
          event is emitted — the loss is invisible except through the
          [lost_stores] counter and wrong memory contents. *)
  | Livelock
      (** From a uniformly drawn iteration on, the thread's effective
          progress chance collapses by {!livelock_factor}: it still
          crawls forward, defeating pure no-progress detection, but a
          round-budget watchdog catches it. *)

type spec = { kind : kind; probability : float }
(** For [Hang], [Crash] and [Livelock], [probability] is the per-thread,
    per-run chance the fault triggers at all; for [Store_loss] it is the
    per-drain loss probability (armed on every thread). *)

type profile = spec list

val none : profile

val livelock_factor : float
(** Multiplier applied to [progress_chance] once a livelock fault sets
    in (0.001). *)

val kind_name : kind -> string

val kind_of_name : string -> kind option

val of_string : string -> (spec, string) result
(** Parses the CLI syntax [KIND\@PROB], e.g. ["hang\@0.01"],
    ["store-loss\@0.002"].  The probability must be in [\[0, 1\]]. *)

val to_string : spec -> string
(** Inverse of {!of_string}. *)

val pp : Format.formatter -> spec -> unit

val profile_to_string : profile -> string
(** Comma-separated specs; ["none"] for the empty profile. *)

(** {2 Arming (used by {!Machine})} *)

type armed = {
  hang_at : int option;  (** Iteration at which the thread hangs. *)
  crash_at : int option;  (** Iteration at which the thread crashes. *)
  loss_chance : float;  (** Per-drain silent-loss probability. *)
  livelock_at : int option;
      (** Iteration from which progress collapses. *)
}

val disarmed : armed

val arm : profile -> rng:Perple_util.Rng.t -> iterations:int -> armed
(** Draws one thread's armed faults.  Deterministic: equal rng states and
    profiles give equal arms.  Onset iterations are uniform over
    [\[0, iterations)].  When several specs of the same kind trigger, the
    earliest onset (respectively the largest loss probability) wins. *)

module Ast = Perple_litmus.Ast

type operand = Const of int | Seq of { k : int; a : int }

type addressing = Shared | Indexed

type instr =
  | Store of { loc : int; addr : addressing; value : operand }
  | Load of { loc : int; addr : addressing; reg : int }
  | Fence
  | Flush of { loc : int; addr : addressing }
  | Drain

type thread = { body : instr array; reg_count : int }

type image = {
  programs : thread array;
  location_names : string array;
  init : int array;
}

let eval_operand op ~iteration =
  match op with Const a -> a | Seq { k; a } -> (k * iteration) + a

let compile_litmus test =
  let names = Array.of_list (Ast.locations test) in
  let id_of name =
    let rec find i =
      if i >= Array.length names then raise Not_found
      else if names.(i) = name then i
      else find (i + 1)
    in
    find 0
  in
  let compile_thread program =
    let reg_count = ref 0 in
    let body =
      Array.map
        (fun instr ->
          match instr with
          | Ast.Store (x, a) ->
            Store { loc = id_of x; addr = Indexed; value = Const a }
          | Ast.Load (r, x) ->
            reg_count := max !reg_count (r + 1);
            Load { loc = id_of x; addr = Indexed; reg = r }
          | Ast.Mfence -> Fence
          | Ast.Flush x -> Flush { loc = id_of x; addr = Indexed }
          | Ast.Drain -> Drain)
        program
    in
    { body; reg_count = !reg_count }
  in
  {
    programs = Array.map compile_thread test.Ast.threads;
    location_names = names;
    init = Array.map (fun x -> Ast.initial_value test x) names;
  }

(* Flat int encoding for the interpreter hot loop: each instruction is
   four consecutive ints [tag; loc; x; y], so the machine walks a thread
   body with unboxed int reads instead of matching heap-allocated
   constructors.  Tags pack the operation with its addressing mode:

     0  Store Shared     loc, k, a   (value = k * iteration + a)
     1  Store Indexed    loc, k, a
     2  Load  Shared     loc, reg, -
     3  Load  Indexed    loc, reg, -
     4  Fence            -, -, -
     5  Flush Shared     loc, -, -
     6  Flush Indexed    loc, -, -
     7  Drain            -, -, -

   [Const a] stores encode as [k = 0], so the interpreter evaluates
   every store operand as [k * iteration + a] branch-free. *)
let instr_width = 4

let encode_thread (t : thread) =
  let n = Array.length t.body in
  let code = Array.make (n * instr_width) 0 in
  Array.iteri
    (fun i instr ->
      let base = i * instr_width in
      match instr with
      | Store { loc; addr; value } ->
        code.(base) <- (match addr with Shared -> 0 | Indexed -> 1);
        code.(base + 1) <- loc;
        let k, a = match value with Const a -> (0, a) | Seq { k; a } -> (k, a) in
        code.(base + 2) <- k;
        code.(base + 3) <- a
      | Load { loc; addr; reg } ->
        code.(base) <- (match addr with Shared -> 2 | Indexed -> 3);
        code.(base + 1) <- loc;
        code.(base + 2) <- reg
      | Fence -> code.(base) <- 4
      | Flush { loc; addr } ->
        code.(base) <- (match addr with Shared -> 5 | Indexed -> 6);
        code.(base + 1) <- loc
      | Drain -> code.(base) <- 7)
    t.body;
  code

let location_id image name =
  let rec find i =
    if i >= Array.length image.location_names then raise Not_found
    else if image.location_names.(i) = name then i
    else find (i + 1)
  in
  find 0

let pp_instr ~location_names ppf = function
  | Store { loc; addr; value } ->
    let value_str =
      match value with
      | Const a -> string_of_int a
      | Seq { k; a } -> Printf.sprintf "%d*n+%d" k a
    in
    Format.fprintf ppf "[%s%s] <- %s" location_names.(loc)
      (match addr with Shared -> "" | Indexed -> "[n]")
      value_str
  | Load { loc; addr; reg } ->
    Format.fprintf ppf "r%d <- [%s%s]" reg location_names.(loc)
      (match addr with Shared -> "" | Indexed -> "[n]")
  | Fence -> Format.fprintf ppf "mfence"
  | Flush { loc; addr } ->
    Format.fprintf ppf "flush [%s%s]" location_names.(loc)
      (match addr with Shared -> "" | Indexed -> "[n]")
  | Drain -> Format.fprintf ppf "drain"

let uses_persistency image =
  Array.exists
    (fun (t : thread) ->
      Array.exists
        (function
          | Flush _ | Drain -> true | Store _ | Load _ | Fence -> false)
        t.body)
    image.programs

(** Executable thread programs for the simulated machine.

    The machine executes a lower-level representation than
    {!Perple_litmus.Ast}: locations are interned to integers, store values
    may depend on the executing thread's iteration index (the arithmetic
    sequences of perpetual tests, paper Sec III-B), and memory operands can
    be per-iteration indexed (litmus7 allocates one cell per iteration so
    that unsynchronised iterations do not pollute each other). *)

type operand =
  | Const of int  (** The literal constant of an ordinary litmus test. *)
  | Seq of { k : int; a : int }
      (** [k * n + a] where [n] is the executing thread's iteration index —
          a perpetual test's arithmetic sequence. *)

type addressing =
  | Shared  (** One memory cell per location (perpetual tests). *)
  | Indexed
      (** Cell [n] of the location's array, where [n] is the executing
          thread's iteration (litmus7-style per-iteration cells). *)

type instr =
  | Store of { loc : int; addr : addressing; value : operand }
  | Load of { loc : int; addr : addressing; reg : int }
  | Fence
  | Flush of { loc : int; addr : addressing }
      (** Writeback of the cell's current coherent value to the persistence
          domain; durable only after a subsequent [Drain]. *)
  | Drain  (** Persistency fence; see {!Pmem} and {!Config.persistency}. *)

type thread = { body : instr array; reg_count : int }

type image = {
  programs : thread array;  (** One entry per test thread. *)
  location_names : string array;  (** Interned location id -> name. *)
  init : int array;  (** Initial value per location id. *)
}

val eval_operand : operand -> iteration:int -> int

val compile_litmus : Perple_litmus.Ast.t -> image
(** The litmus7-style image: constants, per-iteration indexed cells.  This
    is the baseline representation the paper's Sec III-A describes. *)

val location_id : image -> string -> int
(** Interned id of a location name.  @raise Not_found if unknown. *)

val instr_width : int
(** Ints per instruction in the flat encoding (4). *)

val encode_thread : thread -> int array
(** Flat int encoding walked by the {!Machine} interpreter: instruction
    [i] occupies ints [4i .. 4i+3] as [tag; loc; x; y], where the tag
    packs operation and addressing mode —
    [0]/[1] Store Shared/Indexed ([x = k], [y = a], value
    [k * iteration + a]; [Const a] encodes as [k = 0]),
    [2]/[3] Load Shared/Indexed ([x = reg]),
    [4] Fence, [5]/[6] Flush Shared/Indexed, [7] Drain.
    Purely a representation change: the encoded body is
    instruction-for-instruction equivalent to [t.body]. *)

val uses_persistency : image -> bool
(** Whether any thread contains a [Flush] or [Drain]; when false the
    machine allocates no persistence domain and draws no extra
    randomness. *)

val pp_instr : location_names:string array -> Format.formatter -> instr -> unit

(* Append-only CRC-checksummed record journal.

   Line format: 8 lowercase hex chars of CRC-32 over the payload, one
   space, the payload (compact JSON, which never contains a raw newline),
   and '\n'.  Appends are fsync'd; recovery accepts the longest prefix of
   structurally valid, checksum-clean lines and reports the rest as
   dropped.  Validation is strict on purpose: a single flipped bit
   anywhere in a line (checksum field, separator, payload or terminator)
   invalidates that line, so damage can never masquerade as data. *)

(* --- CRC-32 (IEEE 802.3 / zlib polynomial, table-driven) ------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- Record encoding ------------------------------------------------------- *)

let encode record =
  let payload = Json.to_string record in
  Printf.sprintf "%08x %s\n" (crc32 payload) payload

(* Strict lowercase-hex parse.  [int_of_string "0x.."] would accept
   uppercase digits, and 'a' vs 'A' differ by exactly one bit — a
   permissive parser would wave some single-bit flips in the checksum
   field straight through. *)
let hex8 s =
  let value = ref 0 in
  let ok = ref (String.length s = 8) in
  if !ok then
    String.iter
      (fun c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | _ ->
            ok := false;
            0
        in
        value := (!value lsl 4) lor d)
      s;
  if !ok then Some !value else None

(* A complete line, newline stripped.  Any failure means the line (and,
   per the prefix rule, everything after it) is discarded. *)
let decode line =
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    match hex8 (String.sub line 0 8) with
    | None -> None
    | Some crc ->
      let payload = String.sub line 9 (String.length line - 9) in
      if crc32 payload <> crc then None
      else begin
        match Json.parse payload with
        | Ok record -> Some record
        | Error _ -> None
      end

(* --- Recovery -------------------------------------------------------------- *)

type recovery = {
  records : Json.t list;
  valid_bytes : int;
  dropped_bytes : int;
}

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text ->
    let n = String.length text in
    let rec scan pos acc =
      match String.index_from_opt text pos '\n' with
      | None -> (pos, acc) (* torn tail: no terminator *)
      | Some nl -> (
        match decode (String.sub text pos (nl - pos)) with
        | Some record -> scan (nl + 1) (record :: acc)
        | None -> (pos, acc))
    in
    let valid_bytes, acc = if n = 0 then (0, []) else scan 0 [] in
    Ok
      {
        records = List.rev acc;
        valid_bytes;
        dropped_bytes = n - valid_bytes;
      }

(* --- Appending ------------------------------------------------------------- *)

type t = { fd : Unix.file_descr; mutex : Mutex.t }

let open_mode mode path =
  (* [O_CREAT] may add a directory entry, and fsync'ing the file alone
     does not make that entry durable: after a power cut the journal's
     appends could survive while the file itself has no name.  Sync the
     containing directory whenever this open created the file, the same
     discipline {!Atomic_file.write} applies after its rename. *)
  let existed = Sys.file_exists path in
  let fd = Unix.openfile path (Unix.O_WRONLY :: Unix.O_CLOEXEC :: mode) 0o644 in
  if not existed then Atomic_file.fsync_dir (Filename.dirname path);
  { fd; mutex = Mutex.create () }

let create path = open_mode [ Unix.O_CREAT; Unix.O_TRUNC ] path
let open_append path = open_mode [ Unix.O_CREAT; Unix.O_APPEND ] path

let append_locked t record =
  Atomic_file.write_all t.fd (encode record);
  Unix.fsync t.fd

let append t record =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> append_locked t record)

let try_append t record =
  if Mutex.try_lock t.mutex then begin
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () -> append_locked t record);
    true
  end
  else false

let close t = Unix.close t.fd

(* --- Compaction ------------------------------------------------------------ *)

let compact ~path records =
  let b = Buffer.create 4096 in
  List.iter (fun r -> Buffer.add_string b (encode r)) records;
  Atomic_file.write ~path (Buffer.contents b)

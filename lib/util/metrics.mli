(** Deterministic counters and integer histograms for the pipeline
    ([perple run --metrics FILE]).

    One ambient sink is installed per command; instrumented layers add to
    it through {!active}/{!add} (hoisting the [active] lookup out of hot
    loops) or the {!incr}/{!record} conveniences.  All module-level entry
    points are no-ops when no sink is installed.

    {b Determinism contract}: every recorded value is an integer count
    derived from the seeded computation (rounds, evaluations, retries...),
    never from the wall clock, and all updates are commutative additions —
    so {!to_json} output is bit-identical however pool domains interleave
    and for any [--jobs N].  Names are sorted at dump time.  Anything
    timing-related belongs in {!Trace_event}, not here. *)

type sink

val create_sink : unit -> sink
val install : sink -> unit
val uninstall : unit -> unit

val active : unit -> sink option
(** The innermost {!scoped} sink of the calling domain, if any, else the
    globally installed sink. *)

val enabled : unit -> bool

val scoped : sink -> (unit -> 'a) -> 'a
(** [scoped sink f] makes [sink] the active sink {e for the calling
    domain} for the dynamic extent of [f]: everything [f] records lands
    in [sink] instead of the global one, while other domains are
    unaffected.  Campaigns use this to capture one run's counters in
    isolation (for the durability journal) and then {!merge} them into
    the ambient sink, keeping the final dump byte-identical. *)

val merge : sink -> sink -> unit
(** [merge dst src] adds every counter and histogram of [src] into
    [dst].  Addition is commutative, so merge order never changes the
    resulting dump. *)

val merge_json : sink -> Json.t -> (unit, string) result
(** Replay a {!to_json} dump into [sink] — how a resumed campaign
    re-credits the metrics of journaled runs it will not re-execute.
    Strict about shape: malformed input yields [Error] without partial
    guarantees. *)

val add : sink -> string -> int -> unit
(** [add sink name by] adds [by] to counter [name] (created at 0). *)

val observe : sink -> string -> int -> unit
(** [observe sink name v] counts one observation of [v] in histogram
    [name]. *)

val observe_many : sink -> string -> int -> int -> unit
(** [observe_many sink name v count] records [count] observations of [v]
    in histogram [name] with a single sink probe — for hot loops that
    accumulate a local histogram and flush it once (equivalent to [count]
    calls to {!observe}). *)

val incr : ?by:int -> string -> unit
(** Ambient {!add}; no-op when disabled.  [by] defaults to 1. *)

val record : ?value:int -> string -> unit
(** Ambient {!observe}; no-op when disabled. *)

val counter : sink -> string -> int
(** Current value of a counter; 0 if never touched. *)

val to_json : sink -> Json.t
(** [{"schema": "perple-metrics/1", "counters": {...}, "histograms":
    {name: {count, sum, min, max, buckets}}}], names sorted. *)

val write : sink -> path:string -> unit

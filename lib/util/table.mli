(** Plain-text table rendering for experiment output.

    The report drivers print the same rows as the paper's tables and figures;
    this module handles column sizing and alignment so every driver produces
    uniform output. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with one column per header.  Columns default to left alignment;
    use {!set_align} for numeric columns. *)

val set_align : t -> int -> align -> unit
(** [set_align t i a] sets the alignment of the [i]-th column. *)

val add_row : t -> string list -> unit
(** Rows must have exactly as many cells as there are headers. *)

val add_separator : t -> unit
(** Insert a horizontal rule between the rows added so far and the next. *)

val to_string : t -> string
(** Render with a header rule, e.g.
    {v
    test     | T | TL
    ---------+---+---
    sb       | 2 | 2
    v} *)

val print : t -> unit
(** [to_string] to stdout followed by a newline. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)

val ratio_cell : float -> string
(** Format a speedup/improvement ratio compactly: ["8.89x"], ["3.1e4x"]. *)

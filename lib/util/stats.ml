let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let geomean a =
  let n = Array.length a in
  if n = 0 then 1.0
  else begin
    let sum_logs = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry";
        sum_logs := !sum_logs +. log x)
      a;
    exp (!sum_logs /. float_of_int n)
  end

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (acc /. float_of_int n)
  end

(* Sorted with Float.compare: a total order even in the presence of NaN
   (which sorts below every number), unlike polymorphic compare on floats. *)
let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted_copy a in
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then b.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
    end
  end

let median a = percentile a 50.0

(* Extrema ignore NaN entries and are total: [None] (for the [_opt]
   variants) or 0.0 only when no finite-or-infinite entry exists at all —
   the same degenerate-input default mean/median/percentile use, instead
   of the unbounded-fold artifacts [infinity]/[neg_infinity]. *)
let extremum_opt f a =
  Array.fold_left
    (fun acc x ->
      if Float.is_nan x then acc
      else
        match acc with None -> Some x | Some y -> Some (f y x))
    None a

let minimum_opt a = extremum_opt Float.min a
let maximum_opt a = extremum_opt Float.max a
let minimum a = Option.value ~default:0.0 (minimum_opt a)
let maximum a = Option.value ~default:0.0 (maximum_opt a)

module Int_map = Map.Make (Int)

module Histogram = struct
  type t = { mutable counts : int Int_map.t; mutable total : int }

  let create () = { counts = Int_map.empty; total = 0 }

  let add_many h v n =
    if n < 0 then invalid_arg "Histogram.add_many: negative count";
    if n > 0 then begin
      let prev = Option.value ~default:0 (Int_map.find_opt v h.counts) in
      h.counts <- Int_map.add v (prev + n) h.counts;
      h.total <- h.total + n
    end

  let add h v = add_many h v 1

  let count h v = Option.value ~default:0 (Int_map.find_opt v h.counts)

  let total h = h.total

  let bindings h = Int_map.bindings h.counts

  let pdf h =
    if h.total = 0 then []
    else begin
      let denom = float_of_int h.total in
      List.map (fun (v, c) -> (v, float_of_int c /. denom)) (bindings h)
    end

  let mean h =
    if h.total = 0 then 0.0
    else begin
      let acc =
        Int_map.fold
          (fun v c acc -> acc +. (float_of_int v *. float_of_int c))
          h.counts 0.0
      in
      acc /. float_of_int h.total
    end

  let stddev h =
    if h.total < 2 then 0.0
    else begin
      let m = mean h in
      let acc =
        Int_map.fold
          (fun v c acc ->
            acc +. (float_of_int c *. ((float_of_int v -. m) ** 2.0)))
          h.counts 0.0
      in
      sqrt (acc /. float_of_int h.total)
    end

  let range h =
    if h.total = 0 then None
    else begin
      let lo, _ = Int_map.min_binding h.counts in
      let hi, _ = Int_map.max_binding h.counts in
      Some (lo, hi)
    end
end

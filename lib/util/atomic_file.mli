(** Crash-safe whole-file writes: write to a temporary file in the target
    directory, [fsync], then atomically [rename] over the destination (and
    [fsync] the directory so the rename itself is durable).

    A reader never observes a torn file: it sees either the complete old
    contents or the complete new contents, whatever the writer was doing
    when the machine died.  Every emitter whose output outlives the
    process (bench JSON, [--trace]/[--metrics] dumps, journal compaction)
    writes through this helper. *)

val write : path:string -> string -> unit
(** [write ~path data] atomically replaces [path] with [data].  The
    temporary file lives next to [path] (same filesystem, so the rename
    is atomic) and is removed if the write fails.  Raises [Unix_error]
    or [Sys_error] on I/O failure. *)

val fsync_dir : string -> unit
(** Best-effort [fsync] of a directory, making a completed rename inside
    it durable.  Silently does nothing where directories cannot be
    opened or synced (non-POSIX filesystems). *)

val write_all : Unix.file_descr -> string -> unit
(** Write an entire string to a descriptor, looping over short writes.
    (Shared with {!Journal}, whose appends go to a long-lived fd.) *)

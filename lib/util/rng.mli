(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    simulation, harness run and experiment is reproducible from a single
    integer seed.  The generator is SplitMix64 (Steele, Lea & Flood 2014),
    which is fast, has a 64-bit state, passes BigCrush, and supports cheap
    splitting — convenient for giving each simulated thread its own
    independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Generators created from equal
    seeds produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream; the
    original is unaffected by draws on the copy. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0, 1\]]). *)

val geometric : t -> float -> int
(** [geometric t p] draws the number of failures before the first success in
    Bernoulli(p) trials; used for burst lengths in the jitter model.
    [p] must be in (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

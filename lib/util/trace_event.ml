(* Low-overhead span/instant tracing with Chrome trace-event JSON output.

   A single ambient sink is installed for the duration of a traced command
   (`perple run --trace FILE`); every instrumented layer (machine, counters,
   engine, supervisor, pool) emits through it.  With no sink installed each
   emission point is one read of [ambient] plus a branch — the disabled
   cost the <5% overhead budget is measured against.

   The sink is shared across pool domains: appends take a mutex, and each
   event records the emitting domain id as its [tid], which is what makes
   per-domain utilization visible in the viewer.  Timestamps come from the
   wall clock and are inherently non-deterministic; nothing read back into
   results may come from a trace (see docs/internals.md, "determinism
   contract").

   The wall clock can step backwards (NTP adjustment, VM migration); raw
   [Unix.gettimeofday] would then produce spans with negative durations,
   which trace viewers silently misrender.  Every read goes through a
   process-global monotonized wrapper — the maximum of the raw clock and
   the last value handed out — so timestamps never decrease.  Spans whose
   [since] was captured before the sink was installed carry the [no_sink]
   sentinel and are dropped rather than recorded with a bogus epoch. *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type event = {
  name : string;
  phase : [ `Complete | `Instant ];
  ts : float;  (* microseconds since sink creation *)
  dur : float;  (* microseconds; 0 for instants *)
  tid : int;
  args : (string * arg) list;
}

type sink = {
  mutable events : event list;  (* newest first *)
  mutable count : int;
  mutex : Mutex.t;
  t0 : float;  (* Unix epoch seconds at sink creation *)
}

let ambient : sink option ref = ref None

(* Monotonized wall clock, shared by every sink in the process: never
   returns less than any value it has already returned, even if the
   underlying clock steps backwards between calls. *)
let last_time = Atomic.make neg_infinity

let rec mono_time () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last_time in
  if t <= prev then prev
  else if Atomic.compare_and_set last_time prev t then t
  else mono_time ()

let create_sink () =
  { events = []; count = 0; mutex = Mutex.create (); t0 = mono_time () }

let install sink = ambient := Some sink
let uninstall () = ambient := None
let active () = !ambient
let enabled () = !ambient <> None

(* Sentinel returned by [now] when no sink is installed: a [since] capture
   from before the sink existed has no epoch to be relative to, so
   [complete] drops such spans instead of recording garbage. *)
let no_sink = -1.0

(* Microseconds since the ambient sink's epoch.  Never negative when a
   sink is installed: the sink's [t0] came from the same monotonized
   source. *)
let now () =
  match !ambient with
  | None -> no_sink
  | Some sink -> (mono_time () -. sink.t0) *. 1e6

let record sink ev =
  Mutex.lock sink.mutex;
  sink.events <- ev :: sink.events;
  sink.count <- sink.count + 1;
  Mutex.unlock sink.mutex

let complete ?(args = []) ~name ~since () =
  match !ambient with
  | None -> ()
  | Some sink ->
    if since < 0.0 then ()  (* captured before the sink was installed *)
    else begin
      let ts = (mono_time () -. sink.t0) *. 1e6 in
      record sink
        {
          name;
          phase = `Complete;
          ts = since;
          dur = Float.max 0.0 (ts -. since);
          tid = (Domain.self () :> int);
          args;
        }
    end

let instant ?(args = []) ~name () =
  match !ambient with
  | None -> ()
  | Some sink ->
    record sink
      {
        name;
        phase = `Instant;
        ts = (mono_time () -. sink.t0) *. 1e6;
        dur = 0.0;
        tid = (Domain.self () :> int);
        args;
      }

let span ?args name f =
  match !ambient with
  | None -> f ()
  | Some _ ->
    let since = now () in
    Fun.protect ~finally:(fun () -> complete ?args ~name ~since ()) f

let length sink = sink.count

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s
  | Bool b -> Json.Bool b

let json_of_event ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String "perple");
      ( "ph",
        Json.String (match ev.phase with `Complete -> "X" | `Instant -> "i") );
      ("ts", Json.Float ev.ts);
    ]
  in
  let dur =
    match ev.phase with
    | `Complete -> [ ("dur", Json.Float ev.dur) ]
    | `Instant -> [ ("s", Json.String "t") ]
  in
  let tail = [ ("pid", Json.Int 1); ("tid", Json.Int ev.tid) ] in
  let args =
    match ev.args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Json.Obj (base @ dur @ tail @ args)

let to_json sink =
  Mutex.lock sink.mutex;
  let events = sink.events in
  Mutex.unlock sink.mutex;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev_map json_of_event events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write sink ~path = Json.write_file ~path (to_json sink)

(* Atomic whole-file replacement: write → fsync → rename → fsync dir.

   The write-then-rename dance is the standard POSIX recipe: the rename
   replaces the destination in one step, so a crash at any point leaves
   either the old complete file or the new complete file, never a torn
   mixture.  The temporary lives in the destination's own directory —
   rename is only atomic within a filesystem. *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write_all fd data =
  let n = String.length data in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd data !sent (n - !sent)
  done

let write ~path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  (try
     let fd =
       Unix.openfile tmp
         [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
         0o644
     in
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         write_all fd data;
         Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

(* Minimal JSON: a tree type, a deterministic serializer and a strict
   parser.  Shared by every emitter in the project (bench results, trace
   files, metrics summaries) so escaping bugs are fixed in one place, and
   by the tests that round-trip those files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- Escaping ------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- Serialization -------------------------------------------------------- *)

(* Non-finite floats have no JSON spelling: emit null.  Finite floats use
   a fixed format so equal trees always serialize to equal bytes. *)
let float_repr f =
  if Float.is_nan f || Float.is_integer f && Float.abs f > 1e15 then "null"
  else if not (Float.is_finite f) then "null"
  else if Float.is_integer f then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6f" f

let rec add_json b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string b "\n" in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    sep ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char b ',';
          sep ()
        end;
        pad (level + 1);
        add_json b ~indent ~level:(level + 1) item)
      items;
    sep ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    sep ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b (if indent then "\": " else "\":");
        add_json b ~indent ~level:(level + 1) item)
      fields;
    sep ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 1024 in
  add_json b ~indent ~level:0 v;
  Buffer.contents b

(* Atomic replacement (write → fsync → rename): a crash mid-dump leaves
   the previous complete file, never a torn JSON document. *)
let write_file ~path v = Atomic_file.write ~path (to_string ~indent:true v ^ "\n")

(* --- Parsing -------------------------------------------------------------- *)

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %C, found %C" c d
    | None -> fail "expected %C, found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  (* Encode a Unicode scalar value as UTF-8 bytes. *)
  let add_uchar b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub text !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "truncated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            let u = hex4 () in
            if u >= 0xD800 && u <= 0xDBFF then begin
              (* High surrogate: require the paired low surrogate. *)
              if
                !pos + 2 <= n
                && text.[!pos] = '\\'
                && text.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then fail "invalid surrogate pair";
                add_uchar b
                  (0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00)))
              end
              else fail "unpaired surrogate"
            end
            else add_uchar b u
          | c -> fail "invalid escape \\%C" c));
        go ()
      | Some c when Char.code c < 0x20 -> fail "unescaped control character"
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let any = ref false in
      while
        !pos < n && match text.[!pos] with '0' .. '9' -> true | _ -> false
      do
        any := true;
        advance ()
      done;
      if not !any then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let token = String.sub text start (!pos - start) in
    if !is_float then Float (float_of_string token)
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> Float (float_of_string token)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let parse_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse text

(* --- Accessors (for tests and validators) --------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let scale_value ~log_scale v =
  if v < 0.0 then invalid_arg "Chart: negative value";
  if log_scale then log10 (1.0 +. v) else v

let bar_string ~width ~max_scaled scaled =
  if max_scaled <= 0.0 then ""
  else begin
    let n = int_of_float (Float.round (scaled /. max_scaled *. float_of_int width)) in
    String.make (max 0 n) '#'
  end

let value_label v =
  if Float.is_integer v && Float.abs v < 1e7 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1e5 || (Float.abs v < 1e-2 && v <> 0.0) then
    Printf.sprintf "%.2e" v
  else Printf.sprintf "%.3f" v

let hbar ?(width = 50) ?(log_scale = false) series =
  let scaled = List.map (fun (_, v) -> scale_value ~log_scale v) series in
  let max_scaled = List.fold_left Float.max 0.0 scaled in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let buf = Buffer.create 256 in
  List.iter2
    (fun (label, v) s ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s %s\n" label_width label
           (bar_string ~width ~max_scaled s)
           (value_label v)))
    series scaled;
  Buffer.contents buf

let grouped_hbar ?(width = 40) ?(log_scale = false) ~group_labels ~series () =
  let groups = List.length group_labels in
  List.iter
    (fun (name, values) ->
      if Array.length values <> groups then
        invalid_arg
          (Printf.sprintf
             "Chart.grouped_hbar: series %S has %d values for %d groups" name
             (Array.length values) groups))
    series;
  let max_scaled =
    List.fold_left
      (fun acc (_, values) ->
        Array.fold_left
          (fun acc v -> Float.max acc (scale_value ~log_scale v))
          acc values)
      0.0 series
  in
  let series_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 series
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun gi glabel ->
      Buffer.add_string buf glabel;
      Buffer.add_char buf '\n';
      List.iter
        (fun (name, values) ->
          let v = values.(gi) in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s |%s %s\n" series_width name
               (bar_string ~width ~max_scaled (scale_value ~log_scale v))
               (value_label v)))
        series)
    group_labels;
  Buffer.contents buf

let density ?(width = 70) ?(height = 12) pdf =
  match pdf with
  | [] -> "(empty distribution)\n"
  | _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pdf in
    let lo = fst (List.hd sorted) in
    let hi = fst (List.nth sorted (List.length sorted - 1)) in
    let span = hi - lo + 1 in
    let columns = min width span in
    let bin v = min (columns - 1) ((v - lo) * columns / span) in
    let col_mass = Array.make columns 0.0 in
    List.iter (fun (v, p) -> col_mass.(bin v) <- col_mass.(bin v) +. p) sorted;
    let max_mass = Array.fold_left Float.max 0.0 col_mass in
    let buf = Buffer.create 1024 in
    for row = height downto 1 do
      let threshold = float_of_int row /. float_of_int height *. max_mass in
      Buffer.add_string buf
        (if row = height then Printf.sprintf "%8.4f |" max_mass
         else "         |");
      Array.iter
        (fun m -> Buffer.add_char buf (if m >= threshold then '#' else ' '))
        col_mass;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf ("         +" ^ String.make columns '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "          %-*d%*d\n" (columns / 2) lo
         (columns - (columns / 2)) hi);
    Buffer.contents buf

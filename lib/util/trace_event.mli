(** Low-overhead span/instant tracing with Chrome trace-event JSON output
    (loadable in [chrome://tracing] / Perfetto).

    One {e ambient} sink is installed for the duration of a traced command;
    instrumented layers emit through the module-level functions, which are
    no-ops (one ref read and a branch) when no sink is installed.  The sink
    is safe to share across pool domains: appends are mutex-protected and
    every event carries the emitting domain id as its [tid].

    {b Determinism contract}: trace timestamps and durations come from the
    wall clock and are non-deterministic; traces are observation-only and
    nothing in them feeds back into results.  See docs/internals.md.

    {b Clock discipline}: reads go through a process-global monotonized
    wrapper, so timestamps never decrease even if the wall clock steps
    backwards; durations are clamped at [0].  A [since] captured while no
    sink was installed is the negative {!no_sink} sentinel and {!complete}
    drops the span instead of inventing an epoch for it. *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type sink

val create_sink : unit -> sink

val install : sink -> unit
(** Make [sink] the ambient sink.  Not reentrant: one at a time. *)

val uninstall : unit -> unit
val active : unit -> sink option
val enabled : unit -> bool

val no_sink : float
(** Negative sentinel {!now} returns when no sink is installed. *)

val now : unit -> float
(** Microseconds since the ambient sink's creation (never negative, never
    decreasing); {!no_sink} when disabled.  Capture once at the start of
    an operation and pass to {!complete}. *)

val complete : ?args:(string * arg) list -> name:string -> since:float -> unit -> unit
(** Record a complete ("X") span from [since] (a {!now} capture) to the
    current time; the duration is clamped at [0].  No-op when disabled,
    and a negative [since] ({!no_sink} — captured before the sink was
    installed) drops the span. *)

val instant : ?args:(string * arg) list -> name:string -> unit -> unit
(** Record an instant ("i") event.  No-op when disabled. *)

val span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a complete span (recorded even if [f]
    raises).  When disabled, exactly [f ()]. *)

val length : sink -> int
(** Events recorded so far. *)

val to_json : sink -> Json.t
(** The Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}], events in recorded
    order. *)

val write : sink -> path:string -> unit

(** Low-overhead span/instant tracing with Chrome trace-event JSON output
    (loadable in [chrome://tracing] / Perfetto).

    One {e ambient} sink is installed for the duration of a traced command;
    instrumented layers emit through the module-level functions, which are
    no-ops (one ref read and a branch) when no sink is installed.  The sink
    is safe to share across pool domains: appends are mutex-protected and
    every event carries the emitting domain id as its [tid].

    {b Determinism contract}: trace timestamps and durations come from the
    wall clock and are non-deterministic; traces are observation-only and
    nothing in them feeds back into results.  See docs/internals.md. *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type sink

val create_sink : unit -> sink

val install : sink -> unit
(** Make [sink] the ambient sink.  Not reentrant: one at a time. *)

val uninstall : unit -> unit
val active : unit -> sink option
val enabled : unit -> bool

val now : unit -> float
(** Microseconds since the ambient sink's creation; [0.] when disabled.
    Capture once at the start of an operation and pass to {!complete}. *)

val complete : ?args:(string * arg) list -> name:string -> since:float -> unit -> unit
(** Record a complete ("X") span from [since] (a {!now} capture) to the
    current time.  No-op when disabled. *)

val instant : ?args:(string * arg) list -> name:string -> unit -> unit
(** Record an instant ("i") event.  No-op when disabled. *)

val span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a complete span (recorded even if [f]
    raises).  When disabled, exactly [f ()]. *)

val length : sink -> int
(** Events recorded so far. *)

val to_json : sink -> Json.t
(** The Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}], events in recorded
    order. *)

val write : sink -> path:string -> unit

(** Durable append-only campaign journal.

    A journal is a sequence of JSON records, one per line, each protected
    by a CRC-32 checksum:

    {v
    <crc32, 8 lowercase hex chars> <record as compact JSON>\n
    v}

    Appends are [fsync]'d, so every record that {!append} returned for
    survives a crash, an OOM-kill or a power cut.  A crash {e during} an
    append leaves at most one torn line at the tail; {!load} detects torn
    or bit-flipped damage by CRC and structure checks and salvages the
    longest valid record prefix instead of failing, reporting how many
    bytes it dropped.  {!compact} rewrites a journal atomically
    (write → fsync → rename via {!Atomic_file}), which is how recovery
    truncates a damaged tail before new appends continue after it.

    The format is deliberately line-oriented and self-describing: a
    journal can be inspected with standard shell tools, and record order
    is append order. *)

type t
(** An open journal handle for appending.  Safe to share across domains:
    appends are serialized by an internal mutex. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of a byte string, in
    [\[0, 2^32)]. *)

val encode : Json.t -> string
(** The exact on-disk line for one record, trailing newline included.
    Compact JSON never contains a raw newline ({!Json.escape} covers
    control characters), so one record is always exactly one line. *)

type recovery = {
  records : Json.t list;  (** The longest valid record prefix, in order. *)
  valid_bytes : int;  (** Bytes covered by [records]. *)
  dropped_bytes : int;
      (** Trailing bytes discarded as torn or corrupt; [0] for a clean
          journal. *)
}

val load : string -> (recovery, string) result
(** Read a journal.  Never fails on damaged contents — scanning stops at
    the first torn, checksum-mismatched or unparseable line and everything
    before it is returned.  [Error] only for I/O-level failures (missing
    file, unreadable path). *)

val create : string -> t
(** Open a fresh journal at the path, truncating any existing file. *)

val open_append : string -> t
(** Open an existing (or new) journal for appending.  The caller is
    responsible for having truncated a damaged tail first — see
    {!load} and {!compact}; appending after a torn line would corrupt
    every subsequent record. *)

val append : t -> Json.t -> unit
(** Append one record and [fsync].  When [append] returns, the record is
    on stable storage. *)

val try_append : t -> Json.t -> bool
(** Like {!append} but gives up (returning [false]) instead of blocking
    if another domain holds the journal lock — safe to call from a signal
    handler, where blocking on a mutex the interrupted code may hold
    would deadlock. *)

val close : t -> unit

val compact : path:string -> Json.t list -> unit
(** Atomically replace the journal at [path] with exactly the given
    records.  Used to truncate recovered damage and to snapshot a long
    journal down to its live records. *)

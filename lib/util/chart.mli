(** ASCII charts for figure reproduction.

    The paper's figures are bar charts (Fig 9, 10, 11, 13) and one
    probability-density plot (Fig 12).  These renderers print the same data
    as labelled horizontal bars so that figure shape is visible directly in
    terminal output and in [bench_output.txt]. *)

val hbar :
  ?width:int -> ?log_scale:bool -> (string * float) list -> string
(** [hbar series] renders one horizontal bar per (label, value).  With
    [log_scale] the bar length is proportional to [log10 (1 + value)], which
    matches the paper's log-scale figures.  Values must be non-negative.
    Default [width] is 50 characters for the longest bar. *)

val grouped_hbar :
  ?width:int -> ?log_scale:bool ->
  group_labels:string list ->
  series:(string * float array) list ->
  unit -> string
(** Grouped bars, e.g. one group per litmus test and one bar per tool within
    the group.  [series] gives (tool name, per-group values); every value
    array must have one entry per group label. *)

val density :
  ?width:int -> ?height:int -> (int * float) list -> string
(** [density pdf] renders an empirical PDF over integer values (Fig 12) as a
    column plot: x is the value, column height is probability.  Input order
    does not matter; the domain is binned down to at most [width] columns. *)

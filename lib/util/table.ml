type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  width : int;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  {
    headers;
    width = List.length headers;
    aligns = Array.make (List.length headers) Left;
    rows = [];
  }

let set_align t i a =
  if i < 0 || i >= t.width then invalid_arg "Table.set_align: bad column";
  t.aligns.(i) <- a

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let to_string t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_row = function
    | Separator -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> widths.(i) <- max widths.(i) (String.length c))
        cells
  in
  List.iter note_row rows;
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else begin
      match t.aligns.(i) with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
    end
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter
    (function Cells cells -> emit_cells cells | Separator -> emit_rule ())
    rows;
  Buffer.contents buf

let print t = print_string (to_string t)

let float_cell ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let ratio_cell x =
  if Float.is_nan x then "n/a"
  else if Float.abs x >= 1e4 then Printf.sprintf "%.1ex" x
  else if Float.is_integer x then Printf.sprintf "%.0fx" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1fx" x
  else Printf.sprintf "%.2fx" x

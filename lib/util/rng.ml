type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

(* Rejection sampling over the top 62 bits keeps the draw unbiased while
   staying within OCaml's native [int] range. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.compare (bits64 t) 0L < 0

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

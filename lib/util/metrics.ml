(* Deterministic counters and histograms for the pipeline.

   Like {!Trace_event}, a single ambient sink is installed per command
   (`--metrics FILE`); every instrumented layer adds to it.  Unlike the
   trace, the metrics summary is part of the *deterministic* surface:
   every recorded value is an integer count derived from the (seeded)
   computation itself — never from the wall clock — and addition is
   commutative, so the dump is bit-identical however pool domains
   interleave and for any --jobs N.  Names are sorted at dump time to make
   that byte-identity independent of first-touch order too. *)

type sink = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Stats.Histogram.t) Hashtbl.t;
  mutex : Mutex.t;
}

let ambient : sink option ref = ref None

(* Per-domain override stack.  [scoped] pushes a private sink for one
   task's dynamic extent so a campaign can capture that run's counters
   in isolation (for journaling) while sibling runs on other domains
   keep recording into their own scopes.  The global ambient sink stays
   the fallback, so installing a sink before spawning domains still
   covers every domain, as before. *)
let scope_stack : sink list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let create_sink () =
  {
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 8;
    mutex = Mutex.create ();
  }

let install sink = ambient := Some sink
let uninstall () = ambient := None

let active () =
  match !(Domain.DLS.get scope_stack) with
  | sink :: _ -> Some sink
  | [] -> !ambient

let enabled () = active () <> None

let scoped sink f =
  let stack = Domain.DLS.get scope_stack in
  stack := sink :: !stack;
  Fun.protect
    ~finally:(fun () ->
      match !stack with _ :: rest -> stack := rest | [] -> ())
    f

let add sink name by =
  Mutex.lock sink.mutex;
  (match Hashtbl.find_opt sink.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add sink.counters name (ref by));
  Mutex.unlock sink.mutex

let observe_many sink name value count =
  Mutex.lock sink.mutex;
  let h =
    match Hashtbl.find_opt sink.histograms name with
    | Some h -> h
    | None ->
      let h = Stats.Histogram.create () in
      Hashtbl.add sink.histograms name h;
      h
  in
  Stats.Histogram.add_many h value count;
  Mutex.unlock sink.mutex

let observe sink name value = observe_many sink name value 1

let incr ?(by = 1) name =
  match active () with None -> () | Some sink -> add sink name by

let record ?(value = 0) name =
  match active () with None -> () | Some sink -> observe sink name value

let counter sink name =
  match Hashtbl.find_opt sink.counters name with Some r -> !r | None -> 0

let sorted_bindings tbl value =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let json_of_histogram h =
  let lo, hi =
    match Stats.Histogram.range h with Some r -> r | None -> (0, 0)
  in
  let sum =
    List.fold_left
      (fun acc (v, c) -> acc + (v * c))
      0 (Stats.Histogram.bindings h)
  in
  Json.Obj
    [
      ("count", Json.Int (Stats.Histogram.total h));
      ("sum", Json.Int sum);
      ("min", Json.Int lo);
      ("max", Json.Int hi);
      ( "buckets",
        Json.Obj
          (List.map
             (fun (v, c) -> (string_of_int v, Json.Int c))
             (Stats.Histogram.bindings h)) );
    ]

let to_json sink =
  Mutex.lock sink.mutex;
  let counters = sorted_bindings sink.counters (fun r -> Json.Int !r) in
  let histograms = sorted_bindings sink.histograms json_of_histogram in
  Mutex.unlock sink.mutex;
  Json.Obj
    [
      ("schema", Json.String "perple-metrics/1");
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj histograms);
    ]

let write sink ~path = Json.write_file ~path (to_json sink)

(* --- Merging --------------------------------------------------------------- *)

(* Addition is commutative, so merging per-run capture sinks into the
   ambient sink in completion order yields the same totals as recording
   into the ambient sink directly — the bit-identical-for-any-jobs dump
   contract survives per-run capture. *)
let merge dst src =
  Mutex.lock src.mutex;
  let counters =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) src.counters []
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc -> (name, Stats.Histogram.bindings h) :: acc)
      src.histograms []
  in
  Mutex.unlock src.mutex;
  List.iter (fun (name, v) -> add dst name v) counters;
  List.iter
    (fun (name, bindings) ->
      List.iter (fun (v, c) -> observe_many dst name v c) bindings)
    histograms

(* Replay a {!to_json} dump (e.g. a journaled per-run capture) into a
   live sink.  Strict: anything structurally unexpected is an error, so
   a corrupt journal record cannot silently skew a resumed campaign's
   metrics. *)
let merge_json sink json =
  let ( let* ) = Result.bind in
  let obj_member name v =
    match Json.member name v with
    | Some (Json.Obj fields) -> Stdlib.Ok fields
    | Some _ | None ->
      Stdlib.Error (Printf.sprintf "metrics record: %S is not an object" name)
  in
  let rec each f = function
    | [] -> Stdlib.Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let* counters = obj_member "counters" json in
  let* histograms = obj_member "histograms" json in
  let* () =
    each
      (function
        | name, Json.Int v ->
          add sink name v;
          Stdlib.Ok ()
        | name, _ ->
          Stdlib.Error
            (Printf.sprintf "metrics record: counter %S is not an int" name))
      counters
  in
  each
    (fun (name, h) ->
      let* buckets = obj_member "buckets" h in
      each
        (function
          | value, Json.Int c -> (
            match int_of_string_opt value with
            | Some v when c >= 0 ->
              observe_many sink name v c;
              Stdlib.Ok ()
            | _ ->
              Stdlib.Error
                (Printf.sprintf "metrics record: bad bucket in %S" name))
          | _, _ ->
            Stdlib.Error
              (Printf.sprintf "metrics record: bad bucket count in %S" name))
        buckets)
    histograms

(* Deterministic counters and histograms for the pipeline.

   Like {!Trace_event}, a single ambient sink is installed per command
   (`--metrics FILE`); every instrumented layer adds to it.  Unlike the
   trace, the metrics summary is part of the *deterministic* surface:
   every recorded value is an integer count derived from the (seeded)
   computation itself — never from the wall clock — and addition is
   commutative, so the dump is bit-identical however pool domains
   interleave and for any --jobs N.  Names are sorted at dump time to make
   that byte-identity independent of first-touch order too. *)

type sink = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Stats.Histogram.t) Hashtbl.t;
  mutex : Mutex.t;
}

let ambient : sink option ref = ref None

let create_sink () =
  {
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 8;
    mutex = Mutex.create ();
  }

let install sink = ambient := Some sink
let uninstall () = ambient := None
let active () = !ambient
let enabled () = !ambient <> None

let add sink name by =
  Mutex.lock sink.mutex;
  (match Hashtbl.find_opt sink.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add sink.counters name (ref by));
  Mutex.unlock sink.mutex

let observe sink name value =
  Mutex.lock sink.mutex;
  let h =
    match Hashtbl.find_opt sink.histograms name with
    | Some h -> h
    | None ->
      let h = Stats.Histogram.create () in
      Hashtbl.add sink.histograms name h;
      h
  in
  Stats.Histogram.add h value;
  Mutex.unlock sink.mutex

let incr ?(by = 1) name =
  match !ambient with None -> () | Some sink -> add sink name by

let record ?(value = 0) name =
  match !ambient with None -> () | Some sink -> observe sink name value

let counter sink name =
  match Hashtbl.find_opt sink.counters name with Some r -> !r | None -> 0

let sorted_bindings tbl value =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let json_of_histogram h =
  let lo, hi =
    match Stats.Histogram.range h with Some r -> r | None -> (0, 0)
  in
  let sum =
    List.fold_left
      (fun acc (v, c) -> acc + (v * c))
      0 (Stats.Histogram.bindings h)
  in
  Json.Obj
    [
      ("count", Json.Int (Stats.Histogram.total h));
      ("sum", Json.Int sum);
      ("min", Json.Int lo);
      ("max", Json.Int hi);
      ( "buckets",
        Json.Obj
          (List.map
             (fun (v, c) -> (string_of_int v, Json.Int c))
             (Stats.Histogram.bindings h)) );
    ]

let to_json sink =
  Mutex.lock sink.mutex;
  let counters = sorted_bindings sink.counters (fun r -> Json.Int !r) in
  let histograms = sorted_bindings sink.histograms json_of_histogram in
  Mutex.unlock sink.mutex;
  Json.Obj
    [
      ("schema", Json.String "perple-metrics/1");
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj histograms);
    ]

let write sink ~path = Json.write_file ~path (to_json sink)

(** Minimal JSON support shared by every emitter in the project (bench
    results, Chrome trace files, metrics summaries) and by the tests that
    round-trip those files.

    Serialization is {e deterministic}: equal trees produce equal bytes
    (fields keep their given order; floats use a fixed format).  The
    parser is strict RFC-8259 JSON — it exists so emitted files can be
    validated without external tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape a string for embedding between JSON double quotes: quotes,
    backslashes, and every control character U+0000–U+001F (the common
    ones as [\n]-style shorthands, the rest as [\u00xx]). *)

val to_string : ?indent:bool -> t -> string
(** Serialize.  [indent] pretty-prints with two-space indentation.
    Non-finite floats (and integral floats too large to round-trip)
    serialize as [null]. *)

val write_file : path:string -> t -> unit
(** [to_string ~indent:true] plus a trailing newline, written to [path]
    atomically ({!Atomic_file.write}): a crash mid-write leaves the
    previous complete file, never a torn document. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

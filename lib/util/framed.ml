(* Growable FIFO byte buffer + nonblocking descriptor adapters.

   The buffer is a plain [Bytes.t] with head/tail offsets.  Consuming
   advances the head; when the buffer empties, both offsets snap back to
   zero, and appends compact (shift live bytes to the front) before
   growing, so steady-state framed traffic never reallocates. *)

type buf = { mutable data : Bytes.t; mutable head : int; mutable tail : int }

let create ?(initial = 256) () =
  { data = Bytes.create (max 16 initial); head = 0; tail = 0 }

let length b = b.tail - b.head
let is_empty b = b.tail = b.head

let reserve b n =
  let live = length b in
  if b.tail + n > Bytes.length b.data then begin
    if live + n <= Bytes.length b.data then begin
      (* Compaction alone makes room. *)
      Bytes.blit b.data b.head b.data 0 live;
      b.head <- 0;
      b.tail <- live
    end
    else begin
      let cap = ref (max 16 (Bytes.length b.data)) in
      while !cap < live + n do
        cap := !cap * 2
      done;
      let grown = Bytes.create !cap in
      Bytes.blit b.data b.head grown 0 live;
      b.data <- grown;
      b.head <- 0;
      b.tail <- live
    end
  end

let add_string b s =
  let n = String.length s in
  if n > 0 then begin
    reserve b n;
    Bytes.blit_string s 0 b.data b.tail n;
    b.tail <- b.tail + n
  end

let contents b = Bytes.sub_string b.data b.head (length b)

let peek b n =
  if n < 0 then invalid_arg "Framed.peek: negative count"
  else if length b < n then None
  else Some (Bytes.sub_string b.data b.head n)

let consume b n =
  if n < 0 || n > length b then invalid_arg "Framed.consume: out of range";
  b.head <- b.head + n;
  if b.head = b.tail then begin
    b.head <- 0;
    b.tail <- 0
  end

let take_all b =
  let s = contents b in
  consume b (length b);
  s

(* --- nonblocking descriptor adapters -------------------------------------- *)

let chunk = 8192

let read_into fd b =
  reserve b chunk;
  match Unix.read fd b.data b.tail chunk with
  | 0 -> `Closed
  | n ->
    b.tail <- b.tail + n;
    `Read n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    `Would_block
  | exception
      Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.ENOTCONN), _, _) ->
    `Closed
  | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)

let write_from fd b =
  let n = length b in
  if n = 0 then `Wrote 0
  else
    match Unix.write fd b.data b.head n with
    | written ->
      consume b written;
      `Wrote written
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      `Would_block
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.ENOTCONN), _, _)
      ->
      `Closed
    | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)

(** Byte buffers and nonblocking descriptor I/O for framed protocols.

    A {!buf} is a growable FIFO of bytes: producers {!add_string} at the
    tail, consumers {!peek}/{!consume} at the head.  The service layer
    keeps one inbound and one outbound buffer per connection; the wire
    codec ({!Perple_service.Wire}) extracts complete frames from the
    inbound buffer and never sees a partial read, and short writes simply
    leave the unsent suffix queued.

    {!read_into}/{!write_from} adapt the buffers to nonblocking
    [Unix.file_descr]s: they translate [EAGAIN]/[EWOULDBLOCK] into
    [`Would_block] and connection teardown ([EPIPE], [ECONNRESET], EOF)
    into [`Closed], so the event loop never handles exceptions on the hot
    path.  Everything here is single-domain: one buffer belongs to one
    connection, which belongs to one event loop. *)

type buf

val create : ?initial:int -> unit -> buf
(** A fresh empty buffer.  [initial] (default 256) is a capacity hint. *)

val length : buf -> int
(** Bytes currently queued. *)

val is_empty : buf -> bool

val add_string : buf -> string -> unit
(** Queue bytes at the tail, growing the buffer as needed. *)

val contents : buf -> string
(** The queued bytes, head first, without consuming them. *)

val peek : buf -> int -> string option
(** [peek b n] is the first [n] queued bytes without consuming them, or
    [None] if fewer than [n] are queued. *)

val consume : buf -> int -> unit
(** Drop the first [n] queued bytes.  Raises [Invalid_argument] if more
    than {!length} bytes are asked for. *)

val take_all : buf -> string
(** {!contents} followed by a full {!consume} — drain the buffer. *)

val read_into :
  Unix.file_descr ->
  buf ->
  [ `Read of int | `Closed | `Would_block | `Error of string ]
(** One nonblocking read appended at the tail.  [`Read 0] never happens:
    end-of-file is [`Closed].  [`Error] covers hard I/O failures beyond
    ordinary teardown. *)

val write_from :
  Unix.file_descr ->
  buf ->
  [ `Wrote of int | `Would_block | `Closed | `Error of string ]
(** One nonblocking write from the head; written bytes are consumed.
    Called with an empty buffer it reports [`Wrote 0]. *)

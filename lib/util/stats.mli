(** Small statistics toolkit used by the experiment drivers: means,
    geometric means (the paper reports geomean speedups), percentiles, and
    integer-valued histograms / empirical PDFs (Fig 12). *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values; raises [Invalid_argument] on
    non-positive entries, returns 1.0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val median : float array -> float
(** Median (does not modify its argument); 0 on the empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0, 100\]], nearest-rank with linear
    interpolation; does not modify its argument.  Sorting uses
    [Float.compare], a total order: NaN entries sort below every number
    (so they can only surface at low percentiles), and the result is
    deterministic on any input.  0 on the empty array. *)

val minimum_opt : float array -> float option
val maximum_opt : float array -> float option
(** Smallest/largest non-NaN entry; [None] when there is none (empty or
    all-NaN input). *)

val minimum : float array -> float
val maximum : float array -> float
(** [minimum_opt]/[maximum_opt] with the degenerate default 0.0 — the
    same total-on-empty convention as [mean]/[median]/[percentile],
    replacing the historical [infinity]/[neg_infinity] fold artifacts. *)

(** Integer histograms keyed by arbitrary [int] values (e.g. thread skew,
    which can be negative). *)
module Histogram : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Count one observation of the given value. *)

  val add_many : t -> int -> int -> unit
  (** [add_many h v n] counts [n] observations of [v]. *)

  val count : t -> int -> int
  (** Observations of one value. *)

  val total : t -> int
  (** Total number of observations. *)

  val bindings : t -> (int * int) list
  (** All (value, count) pairs in increasing value order. *)

  val pdf : t -> (int * float) list
  (** Empirical probability of each observed value, increasing value order. *)

  val mean : t -> float
  val stddev : t -> float

  val range : t -> (int * int) option
  (** Smallest and largest observed values, or [None] if empty. *)
end

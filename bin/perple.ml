(* perple — command-line front end for the PerpLE reproduction.

   Subcommands mirror the PerpLE workflow (paper, Fig 3): inspect litmus
   tests, convert them to perpetual form, run them on the simulated machine
   with either outcome counter, run the litmus7-style baseline, emit the
   Converter's C/assembly artifacts, and regenerate the paper's tables and
   figures. *)

open Cmdliner
module Ast = Perple_litmus.Ast
module Parser = Perple_litmus.Parser
module Printer = Perple_litmus.Printer
module Outcome = Perple_litmus.Outcome
module Catalog = Perple_litmus.Catalog
module Operational = Perple_memmodel.Operational
module Axiomatic = Perple_memmodel.Axiomatic
module Solver = Perple_memmodel.Solver
module Trace_check = Perple_core.Trace_check
module Config = Perple_sim.Config
module Fault = Perple_sim.Fault
module Sync_mode = Perple_harness.Sync_mode
module Litmus7 = Perple_harness.Litmus7
module Supervisor = Perple_harness.Supervisor
module Convert = Perple_core.Convert
module Outcome_convert = Perple_core.Outcome_convert
module Engine = Perple_core.Engine
module Codegen = Perple_core.Codegen
module Report = Perple_report

let load_test spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then begin
    match Parser.parse_file spec with
    | Ok test -> Ok test
    | Error e -> Error (Format.asprintf "%s: %a" spec Parser.pp_error e)
  end
  else begin
    match Catalog.find spec with
    | Some entry -> Ok entry.Catalog.test
    | None ->
      Error
        (Printf.sprintf
           "unknown test %S (not a catalog name or a readable file); try \
            'perple list'"
           spec)
  end

let test_arg =
  let doc = "Catalog test name (see $(b,perple list)) or path to a .litmus file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TEST" ~doc)

let iterations_arg =
  let doc = "Number of test iterations N." in
  Arg.(value & opt int 10_000 & info [ "n"; "iterations" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed; equal seeds reproduce runs exactly." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let model_conv =
  let parse s =
    match s with
    | "sc" -> Ok Config.Sc
    | "tso" -> Ok Config.Tso
    | "pso" -> Ok Config.Pso
    | "tso+store-reorder-bug" -> Ok Config.Tso_store_reorder
    | "tso+fence-ignored-bug" -> Ok Config.Tso_fence_ignored
    | _ ->
      Error
        (`Msg
           "expected sc, tso, pso, tso+store-reorder-bug or \
            tso+fence-ignored-bug")
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Config.model_name m))

let model_arg =
  let doc =
    "Simulated hardware model: $(b,sc), $(b,tso) (default), $(b,pso), \
     $(b,tso+store-reorder-bug) or $(b,tso+fence-ignored-bug)."
  in
  Arg.(value & opt model_conv Config.Tso & info [ "model" ] ~docv:"MODEL" ~doc)

let config_of_model model = Config.with_model model Config.default

let stress_arg =
  Arg.(
    value & opt int 0
    & info [ "stress" ] ~docv:"K"
        ~doc:
          "Add $(docv) stress threads hammering scratch locations (paper, \
           Sec II-B1).")

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Every resumable subcommand (run, supervise, crash-suite) shares this
   up-front check, so --resume without --journal fails immediately with
   the same actionable message instead of partway into setup. *)
let resume_requires_journal =
  "--resume requires --journal FILE: resume continues the campaign \
   recorded in that journal, so pass the same --journal path the \
   interrupted command used"

let check_resume ~journal ~resume =
  if resume && journal = None then Error resume_requires_journal else Ok ()

(* --- observability -------------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans across the pipeline (engine, machine, counters, \
           supervisor, pool) and write them to $(docv) as Chrome \
           trace-event JSON (loadable in chrome://tracing or Perfetto).  \
           Observation only: the printed ledger is byte-identical with or \
           without tracing.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON summary of deterministic pipeline counters \
           (machine rounds, counter evaluations, supervisor retries, ...) \
           to $(docv).  The summary is bit-identical for any $(b,--jobs) \
           value and with or without $(b,--trace).")

(* Install ambient sinks for [f], then write the requested files.  Notes
   go to stderr so the stdout ledger stays byte-identical with and
   without observability. *)
let with_observability ~trace ~metrics f =
  let module Tr = Perple_util.Trace_event in
  let module Mx = Perple_util.Metrics in
  let tsink = Option.map (fun _ -> Tr.create_sink ()) trace in
  let msink = Option.map (fun _ -> Mx.create_sink ()) metrics in
  Option.iter Tr.install tsink;
  Option.iter Mx.install msink;
  let result =
    Fun.protect
      ~finally:(fun () ->
        Tr.uninstall ();
        Mx.uninstall ())
      f
  in
  (match (trace, tsink) with
  | Some path, Some sink ->
    Tr.write sink ~path;
    Printf.eprintf "perple: wrote %d trace events to %s\n%!"
      (Tr.length sink) path
  | _ -> ());
  (match (metrics, msink) with
  | Some path, Some sink ->
    Mx.write sink ~path;
    Printf.eprintf "perple: wrote metrics summary to %s\n%!" path
  | _ -> ());
  result

let wrap f =
  let report = function
    | Ok () -> ()
    | Error m ->
      prerr_endline ("perple: " ^ m);
      Stdlib.exit 1
  in
  Term.(const report $ f)

(* --- durability: campaign journal and resume ------------------------------ *)

module Journal = Perple_util.Journal
module Ledger = Perple_core.Ledger

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append every completed run to $(docv) as a CRC-checksummed, \
           fsync'd record the moment it retires, so an interrupted campaign \
           can be continued with $(b,--resume).  Refuses to overwrite an \
           existing journal unless resuming.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Continue the campaign recorded in $(b,--journal): journaled runs \
           are replayed from the journal and only the missing ones execute.  \
           Per-run seeds are pre-split from the campaign seed, so the \
           resumed ledger is byte-identical to an uninterrupted one.  The \
           journal must match this command's configuration digest.")

type 'a campaign_journal = {
  cj_completed : (int, 'a) Hashtbl.t;
  cj_journal : Journal.t option;
  cj_path : string option;
}

let journal_errors f =
  try f () with
  | Unix.Unix_error (e, op, arg) ->
    fail "journal: %s %s: %s" op arg (Unix.error_message e)
  | Sys_error m -> fail "journal: %s" m

(* Validate and ingest a journal being resumed: header digest and unit
   count must match this command, and every record must parse
   ([of_record]) and pass the command's own [validate] (run campaigns
   check the journaled seed against the pre-split one; crash suites are
   deterministic and need no extra check).  Shared by the per-run
   journals of run/supervise (kind "run") and the per-crash-point
   journal of crash-suite (kind "point").  Damaged trailing bytes were
   already dropped by {!Journal.load}; compaction below rewrites the
   file without them (and without interrupted markers) before reopening
   for append. *)
let ingest_journal ~path ~command ~digest ~runs ~what ~record_kind
    ~of_record ~to_record ~index_of ~validate recovery =
  let open Journal in
  if recovery.dropped_bytes > 0 then
    Printf.eprintf
      "perple: journal %s: dropped %d damaged trailing bytes (kept %d \
       intact)\n%!"
      path recovery.dropped_bytes recovery.valid_bytes;
  match recovery.records with
  | [] -> fail "cannot resume: journal %s holds no intact records" path
  | header :: rest -> (
    match Ledger.parse_header header with
    | Error m -> fail "cannot resume: %s" m
    | Ok h ->
      if h.Ledger.h_command <> command then
        fail
          "cannot resume: journal %s was written by 'perple %s', not \
           'perple %s'"
          path h.Ledger.h_command command
      else if h.Ledger.h_digest <> digest then
        fail
          "cannot resume: journal %s was written under a different \
           configuration; rerun with the original arguments (only --jobs, \
           --trace and --metrics may change)"
          path
      else if h.Ledger.h_runs <> runs then
        fail "cannot resume: journal %s covers %d %s, this command asks \
              for %d"
          path h.Ledger.h_runs what runs
      else begin
        let completed = Hashtbl.create 16 in
        let rec ingest = function
          | [] -> Ok ()
          | r :: rest -> (
            match Ledger.kind r with
            | Some "interrupted" -> ingest rest
            | Some k when k = record_kind -> (
              match of_record r with
              | Error m -> fail "cannot resume: %s" m
              | Ok s ->
                let i = index_of s in
                if i < 0 || i >= runs then
                  fail "cannot resume: journal %s has %s index %d out of \
                        range"
                    path record_kind i
                else begin
                  match validate i s with
                  | Error _ as e -> e
                  | Ok () ->
                    Hashtbl.replace completed i s;
                    ingest rest
                end)
            | Some k ->
              fail "cannot resume: journal %s has an unexpected %S record"
                path k
            | None ->
              fail "cannot resume: journal %s has a record without a kind"
                path)
        in
        match ingest rest with
        | Error _ as e -> e
        | Ok () ->
          let indices =
            List.sort compare
              (Hashtbl.fold (fun i _ acc -> i :: acc) completed [])
          in
          Journal.compact ~path
            (header
            :: List.map
                 (fun i -> to_record (Hashtbl.find completed i))
                 indices);
          let j = Journal.open_append path in
          Printf.eprintf "perple: resuming: %d of %d %s journaled in %s\n%!"
            (Hashtbl.length completed) runs what path;
          Ok
            {
              cj_completed = completed;
              cj_journal = Some j;
              cj_path = Some path;
            }
      end)

let open_campaign_journal ~journal ~resume ~command ~digest ~runs ~what
    ~record_kind ~of_record ~to_record ~index_of ~validate =
  match (journal, resume) with
  | None, true -> Error resume_requires_journal
  | None, false ->
    Ok
      {
        cj_completed = Hashtbl.create 1;
        cj_journal = None;
        cj_path = None;
      }
  | Some path, false ->
    if Sys.file_exists path then
      fail
        "journal %s already exists; pass --resume to continue it or remove \
         it first"
        path
    else
      journal_errors @@ fun () ->
      let j = Journal.create path in
      Journal.append j
        (Ledger.header_to_json
           { Ledger.h_command = command; h_digest = digest; h_runs = runs });
      Ok
        {
          cj_completed = Hashtbl.create 16;
          cj_journal = Some j;
          cj_path = Some path;
        }
  | Some path, true -> (
    journal_errors @@ fun () ->
    match Journal.load path with
    | Error m -> fail "cannot resume: %s" m
    | Ok recovery ->
      ingest_journal ~path ~command ~digest ~runs ~what ~record_kind
        ~of_record ~to_record ~index_of ~validate recovery)

(* Resume replays the metrics of journaled runs instead of re-executing
   them; additions are commutative, so merging them up front keeps the
   final --metrics dump byte-identical to an uninterrupted campaign. *)
let merge_journaled_metrics cj =
  match Perple_util.Metrics.active () with
  | None -> Ok ()
  | Some sink ->
    Hashtbl.fold
      (fun i (s : Ledger.t) acc ->
        match (acc, s.Ledger.metrics) with
        | Error _, _ | Ok (), None -> acc
        | Ok (), Some m -> (
          match Perple_util.Metrics.merge_json sink m with
          | Ok () -> Ok ()
          | Error e -> fail "journal: run %d: %s" i e))
      cj.cj_completed (Ok ())

(* While a journaled campaign runs, SIGINT/SIGTERM flush an interrupted
   marker (via the handler-safe {!Journal.try_append}) and point at
   --resume; completed runs are already on disk, fsync'd. *)
let with_journal_signals cj ~runs ~what ~journaled f =
  match (cj.cj_journal, cj.cj_path) with
  | Some j, Some path ->
    let handler signum =
      ignore (Journal.try_append j Ledger.interrupted_marker);
      Printf.eprintf
        "\n\
         perple: interrupted: %d of %d %s journaled in %s\n\
         perple: rerun the same command with --resume to finish the \
         campaign\n\
         %!"
        !journaled runs what path;
      Stdlib.exit (if signum = Sys.sigint then 130 else 143)
    in
    let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
    let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
    Fun.protect
      ~finally:(fun () ->
        Sys.set_signal Sys.sigint old_int;
        Sys.set_signal Sys.sigterm old_term;
        Journal.close j)
      f
  | _ -> f ()

(* The shared campaign driver: open/resume the journal, skip journaled
   runs, journal each retiring run, and return one summary per run —
   journaled or freshly computed — for the printers. *)
let campaign_summaries ~journal ~resume ~command ~digest ~runs ~seed ~execute
    =
  let seeds = Engine.campaign_seeds ~runs ~seed in
  let validate i (s : Ledger.t) =
    if s.Ledger.seed <> seeds.(i) then
      fail
        "cannot resume: journal run %d was seeded with %d, this campaign \
         pre-splits %d"
        i s.Ledger.seed seeds.(i)
    else Ok ()
  in
  Result.bind
    (open_campaign_journal ~journal ~resume ~command ~digest ~runs
       ~what:"runs" ~record_kind:"run" ~of_record:Ledger.of_json
       ~to_record:Ledger.to_json
       ~index_of:(fun (s : Ledger.t) -> s.Ledger.index)
       ~validate)
  @@ fun cj ->
  Result.bind (merge_journaled_metrics cj) @@ fun () ->
  let journaled = ref (Hashtbl.length cj.cj_completed) in
  let on_entry =
    match cj.cj_journal with
    | None -> None
    | Some j ->
      Some
        (fun entry ->
          Journal.append j (Ledger.to_json (Ledger.of_entry entry));
          incr journaled)
  in
  let skip i = Hashtbl.mem cj.cj_completed i in
  match
    journal_errors (fun () ->
        Result.map_error
          (fun r -> Format.asprintf "%a" Convert.pp_reason r)
          (with_journal_signals cj ~runs ~what:"runs" ~journaled (fun () ->
               execute ~skip ~on_entry)))
  with
  | Error _ as e -> e
  | Ok entries ->
    Ok
      (Array.init runs (fun i ->
           match entries.(i) with
           | Some e -> Ledger.of_entry e
           | None -> (
             match Hashtbl.find_opt cj.cj_completed i with
             | Some s -> s
             | None -> assert false)))

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "Perpetual litmus suite (Table II):";
    List.iter
      (fun (e : Catalog.entry) ->
        Printf.printf "  %-14s %s  %s\n" e.Catalog.test.Ast.name
          (match e.Catalog.classification with
          | Catalog.Allowed -> "allowed  "
          | Catalog.Forbidden -> "forbidden")
          e.Catalog.test.Ast.doc)
      Catalog.suite;
    print_endline "Non-convertible companions (Sec V-C):";
    List.iter
      (fun t -> Printf.printf "  %-14s %s\n" t.Ast.name t.Ast.doc)
      Catalog.non_convertible;
    Ok ()
  in
  Cmd.v (Cmd.info "list" ~doc:"List the tests the catalog knows.")
    (wrap Term.(const run $ const ()))

(* --- show ---------------------------------------------------------------- *)

let show_cmd =
  let run spec =
    Result.map
      (fun test ->
        print_string (Printer.to_string test);
        Printf.printf "\n%s\n" (Printer.summary test);
        (match
           ( test.Ast.condition.Ast.quantifier,
             Operational.condition_verdict Operational.Tso test )
         with
        | Ast.Forall, Ok holds ->
          Printf.printf "forall condition under x86-TSO: %s\n"
            (if holds then "holds in every execution" else "violated")
        | (Ast.Exists | Ast.Not_exists), Ok allowed ->
          Printf.printf "target under x86-TSO: %s\n"
            (if allowed then "allowed" else "forbidden")
        | _, Error m -> Printf.printf "target under x86-TSO: n/a (%s)\n" m);
        match Convert.convert test with
        | Ok _ -> print_endline "convertible to perpetual form: yes"
        | Error r ->
          Format.printf "convertible to perpetual form: no (%a)@."
            Convert.pp_reason r)
      (load_test spec)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a test in litmus7 format with analysis.")
    (wrap Term.(const run $ test_arg))

(* --- check --------------------------------------------------------------- *)

type backend = Operational_b | Axiomatic_b | Solver_b

let backend_name = function
  | Operational_b -> "operational"
  | Axiomatic_b -> "axiomatic"
  | Solver_b -> "solver"

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (function
         | "operational" -> Ok Operational_b
         | "axiomatic" -> Ok Axiomatic_b
         | "solver" -> Ok Solver_b
         | _ -> Error (`Msg "expected operational, axiomatic or solver")),
        fun ppf b -> Format.pp_print_string ppf (backend_name b) )
  in
  Arg.(
    value
    & opt backend_conv Operational_b
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Consistency checker: $(b,operational) (default, state-space \
           enumeration), $(b,axiomatic) (candidate executions against the \
           acyclicity axioms) or $(b,solver) (constraint search over rf \
           choices and write orderings, with a polynomial fast path).")

let crosscheck_arg =
  Arg.(
    value & flag
    & info [ "crosscheck" ]
        ~doc:
          "Run all three backends and fail if any two disagree on the \
           reachable outcomes or the condition verdict.")

let reachable_with backend model test =
  match backend with
  | Operational_b -> Operational.reachable_outcomes model test
  | Axiomatic_b -> Axiomatic.reachable_outcomes model test
  | Solver_b -> Solver.reachable_outcomes model test

let same_outcomes a b =
  let sort = List.sort Outcome.compare in
  let a = sort a and b = sort b in
  List.length a = List.length b && List.for_all2 Outcome.equal a b

let check_cmd =
  let print_verdict test = function
    | Ok v ->
      (match test.Ast.condition.Ast.quantifier with
      | Ast.Forall ->
        Printf.printf "  forall condition: %s\n"
          (if v then "holds in every execution" else "violated")
      | Ast.Exists | Ast.Not_exists ->
        Printf.printf "  target: %s\n" (if v then "allowed" else "forbidden"))
    | Error m -> Printf.printf "  target: n/a (%s)\n" m
  in
  let crosscheck test =
    let failures = ref 0 in
    List.iter
      (fun model ->
        let name = Operational.model_to_string model in
        let op = Operational.reachable_outcomes model test in
        let ax = Axiomatic.reachable_outcomes model test in
        let sv = Solver.reachable_outcomes model test in
        let outcomes_ok = same_outcomes op ax && same_outcomes op sv in
        (* The axiomatic and solver backends both evaluate the final
           condition over full executions, so Loc_eq conditions the
           operational register view cannot express still crosscheck. *)
        let fc_ax = Axiomatic.condition_reachable model test in
        let fc_sv = Solver.final_condition_reachable model test in
        let verdict_ok =
          fc_ax = fc_sv
          &&
          match
            (Operational.target_allowed model test, Solver.target_allowed model test)
          with
          | Ok a, Ok b -> a = b
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false
        in
        if outcomes_ok && verdict_ok then
          Printf.printf "%s: all three backends agree (%d outcomes)\n" name
            (List.length op)
        else begin
          incr failures;
          Printf.printf "%s: BACKEND DISAGREEMENT\n" name;
          List.iter
            (fun (b, outcomes) ->
              Printf.printf "  %-12s %s\n" b
                (String.concat "; " (List.map Outcome.to_string outcomes)))
            [ ("operational", op); ("axiomatic", ax); ("solver", sv) ];
          Printf.printf "  final condition: axiomatic=%b solver=%b\n" fc_ax
            fc_sv
        end)
      [ Operational.Sc; Operational.Tso; Operational.Pso ];
    if !failures = 0 then Ok ()
    else fail "%d model(s) with backend disagreement" !failures
  in
  let check_one backend test =
    List.iter
      (fun model ->
        let outcomes = reachable_with backend model test in
        Printf.printf "%s reachable outcomes (%s):\n"
          (Operational.model_to_string model)
          (backend_name backend);
        List.iter
          (fun o -> Printf.printf "  %s\n" (Outcome.to_string o))
          outcomes;
        (match backend with
        | Operational_b ->
          print_verdict test (Operational.condition_verdict model test)
        | Solver_b -> print_verdict test (Solver.condition_verdict model test)
        | Axiomatic_b ->
          (* Axiomatic reachability is quantifier-blind; a forall verdict
             needs the operational or solver backend. *)
          print_verdict test
            (match test.Ast.condition.Ast.quantifier with
            | Ast.Forall ->
              Error "forall verdicts need --backend operational or solver"
            | Ast.Exists | Ast.Not_exists ->
              Ok (Axiomatic.condition_reachable model test)));
        if backend <> Solver_b then begin
          let ax = Axiomatic.reachable_outcomes model test in
          Printf.printf "  axiomatic checker agrees: %b\n"
            (same_outcomes ax outcomes)
        end)
      [ Operational.Sc; Operational.Tso; Operational.Pso ];
    Ok ()
  in
  let run spec backend crosscheck_flag =
    Result.bind (load_test spec) (fun test ->
        if crosscheck_flag then crosscheck test else check_one backend test)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Enumerate reachable outcomes under SC, x86-TSO and PSO with a \
          chosen backend, or crosscheck all three.")
    (wrap Term.(const run $ test_arg $ backend_arg $ crosscheck_arg))

(* --- convert ------------------------------------------------------------- *)

let convert_cmd =
  let run spec =
    Result.bind (load_test spec) (fun test ->
        match Convert.convert test with
        | Error r -> fail "%s" (Format.asprintf "%a" Convert.pp_reason r)
        | Ok conv ->
          Printf.printf "Perpetual version of %s:\n" test.Ast.name;
          Array.iteri
            (fun t (program : Perple_sim.Program.thread) ->
              Printf.printf "  thread %d (%d loads/iteration):\n" t
                conv.Convert.t_reads.(t);
              Array.iter
                (fun instr ->
                  Format.printf "    %a@."
                    (Perple_sim.Program.pp_instr
                       ~location_names:
                         conv.Convert.image.Perple_sim.Program.location_names)
                    instr)
                program.Perple_sim.Program.body)
            conv.Convert.image.Perple_sim.Program.programs;
          List.iter
            (fun x ->
              Printf.printf "  k_%s = %d\n" x
                (List.length (Ast.store_constants test x)))
            (Ast.locations test);
          print_endline "Perpetual outcomes (step 4 inequalities):";
          List.iter
            (fun o ->
              match Outcome_convert.convert conv o with
              | Ok c ->
                Printf.printf "  %-12s %s\n" (Outcome.short_label o)
                  (Outcome_convert.describe conv c);
                let plan = Outcome_convert.heuristic_plan conv c in
                Printf.printf "  %-12s heuristic: %s\n" ""
                  (Outcome_convert.describe_heuristic conv c plan)
              | Error m ->
                Printf.printf "  %-12s (not convertible: %s)\n"
                  (Outcome.short_label o) m)
            (Outcome.all test);
          Ok ())
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Show the perpetual test and its converted outcomes.")
    (wrap Term.(const run $ test_arg))

(* --- run ----------------------------------------------------------------- *)

let counter_name = function
  | Engine.Heuristic -> "heuristic"
  | Engine.Exhaustive -> "exhaustive"
  | Engine.Exhaustive_reference -> "exhaustive-reference"

let counter_arg =
  let counter_conv =
    Arg.conv
      ( (function
         | "heur" | "heuristic" -> Ok Engine.Heuristic
         | "exh" | "exhaustive" -> Ok Engine.Exhaustive
         | "exh-ref" | "reference" -> Ok Engine.Exhaustive_reference
         | _ -> Error (`Msg "expected heur, exh or exh-ref")),
        fun ppf c ->
          Format.pp_print_string ppf
            (match c with
            | Engine.Heuristic -> "heur"
            | Engine.Exhaustive -> "exh"
            | Engine.Exhaustive_reference -> "exh-ref") )
  in
  Arg.(
    value
    & opt counter_conv Engine.Heuristic
    & info [ "counter" ] ~docv:"COUNTER"
        ~doc:
          "Outcome counter: $(b,heur) (linear), $(b,exh) (full N^TL frame \
           space via the factorized kernel) or $(b,exh-ref) (the naive \
           N^TL odometer, for fidelity/correctness baselines).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Distribute campaign runs over $(docv) domains.  Per-run seeds \
           are pre-split from the campaign seed, so output is \
           bit-identical for every $(docv).")

let all_outcomes_arg =
  Arg.(
    value & flag
    & info [ "all-outcomes" ]
        ~doc:"Count every possible outcome, not just the target.")

let cap_arg =
  Arg.(
    value
    & opt int 250_000_000
    & info [ "cap" ] ~docv:"FRAMES"
        ~doc:
          "Frame budget for the exhaustive counter; the run length is \
           capped to stay within it (the cap is reported, not silent).")

let run_cmd =
  let runs_arg =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"R"
          ~doc:
            "Run a campaign of $(docv) independent runs (seeds pre-split \
             from $(b,--seed)) instead of a single run.")
  in
  let print_single counter model report =
    Printf.printf "PerpLE run of %s: %d iterations, %s counter, model %s\n"
      report.Engine.conversion.Convert.test.Ast.name
      report.Engine.run.Perple_harness.Perpetual.iterations
      (counter_name counter) (Config.model_name model);
    if
      report.Engine.run.Perple_harness.Perpetual.iterations
      <> report.Engine.requested_iterations
    then
      Printf.printf
        "note: requested %d iterations, ran %d (exhaustive counter \
         cap keeps the frame count within budget)\n"
        report.Engine.requested_iterations
        report.Engine.run.Perple_harness.Perpetual.iterations;
    List.iteri
      (fun i o ->
        Printf.printf "  %-24s %d\n" (Outcome.to_string o)
          report.Engine.counts.(i))
      report.Engine.outcomes;
    Printf.printf
      "frames examined: %d; virtual runtime: %d rounds; target \
       detection rate: %.3f per Mround\n"
      report.Engine.frames_examined report.Engine.virtual_runtime
      (Engine.detection_rate report)
  in
  let print_campaign ~test ~runs ~iterations ~counter ~model
      (summaries : Ledger.t array) =
    Printf.printf
      "PerpLE campaign of %s: %d runs x %d iterations, %s counter, model \
       %s\n"
      test.Ast.name runs iterations (counter_name counter)
      (Config.model_name model);
    let total_targets = ref 0 and total_runtime = ref 0 in
    Array.iteri
      (fun i (s : Ledger.t) ->
        match s.Ledger.crashed with
        | Some c ->
          Printf.printf "run %3d  crashed: %s\n" (i + 1) c.Ledger.c_message
        | None ->
          total_targets := !total_targets + Ledger.target_count s;
          total_runtime := !total_runtime + s.Ledger.virtual_runtime;
          Printf.printf
            "run %3d  iterations %d  frames %d  runtime %d  target %d%s\n"
            (i + 1) s.Ledger.iterations s.Ledger.frames_examined
            s.Ledger.virtual_runtime (Ledger.target_count s)
            (if s.Ledger.degraded then "  [degraded]" else ""))
      summaries;
    Printf.printf
      "campaign total: %d target occurrences; %d virtual rounds; detection \
       rate %.3f per Mround\n"
      !total_targets !total_runtime
      (if !total_runtime = 0 then 0.0
       else
         float_of_int !total_targets
         /. float_of_int !total_runtime
         *. 1_000_000.0)
  in
  let verify_trace_arg =
    Arg.(
      value & flag
      & info [ "verify-trace" ]
          ~doc:
            "After the run, decode the whole perpetual trace and verify it \
             against the model's axioms with the solver backend \
             (single-run only).  Buggy machine variants are judged against \
             honest TSO; a violation fails the command.")
  in
  let print_trace_verdict model (report : Engine.report) =
    let spec = Trace_check.spec_model model in
    let v =
      Trace_check.verify ~model:spec report.Engine.conversion
        report.Engine.run
    in
    Printf.printf
      "trace verification against %s: %s (%d events, %d decisions, %d \
       backtracks)\n"
      (Operational.model_to_string spec)
      (if v.Solver.consistent then "consistent" else "VIOLATION")
      v.Solver.events v.Solver.decisions v.Solver.backtracks;
    if v.Solver.consistent then Ok ()
    else
      fail "trace violates %s: %s"
        (Operational.model_to_string spec)
        (Option.value ~default:"?" v.Solver.violation)
  in
  let run spec iterations seed counter model all_outcomes stress cap runs
      jobs journal resume verify_trace trace metrics =
    if runs <= 0 then fail "--runs must be positive"
    else if jobs <= 0 then fail "--jobs must be positive"
    else if verify_trace && runs <> 1 then
      fail "--verify-trace works on a single run (--runs 1)"
    else
      Result.bind (check_resume ~journal ~resume) @@ fun () ->
      if journal <> None && runs < 2 then
        fail "--journal records campaigns; it requires --runs >= 2"
      else
      with_observability ~trace ~metrics @@ fun () ->
      Result.bind (load_test spec) (fun test ->
          let outcomes =
            if all_outcomes then Some (Outcome.all test) else None
          in
          if runs = 1 then
            match
              Engine.run ~config:(config_of_model model) ~counter ?outcomes
                ~exhaustive_cap:cap ~stress_threads:stress ~seed ~iterations
                test
            with
            | Error r -> fail "%s" (Format.asprintf "%a" Convert.pp_reason r)
            | Ok report ->
              print_single counter model report;
              if verify_trace then print_trace_verdict model report else Ok ()
          else
            let digest =
              Ledger.digest_of_params
                [
                  ("command", "run");
                  ( "test",
                    Digest.to_hex (Digest.string (Printer.to_string test)) );
                  ("iterations", string_of_int iterations);
                  ("seed", string_of_int seed);
                  ("counter", counter_name counter);
                  ("model", Config.model_name model);
                  ("all_outcomes", string_of_bool all_outcomes);
                  ("stress", string_of_int stress);
                  ("cap", string_of_int cap);
                  ("runs", string_of_int runs);
                ]
            in
            let execute ~skip ~on_entry =
              Engine.campaign_entries ~config:(config_of_model model)
                ~counter ?outcomes ~exhaustive_cap:cap ~stress_threads:stress
                ~jobs ~skip ?on_entry ~runs ~seed ~iterations test
            in
            Result.map
              (print_campaign ~test ~runs ~iterations ~counter ~model)
              (campaign_summaries ~journal ~resume ~command:"run" ~digest
                 ~runs ~seed ~execute))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Convert a test and run its perpetual version on the simulator.")
    (wrap
       Term.(
         const run $ test_arg $ iterations_arg $ seed_arg $ counter_arg
         $ model_arg $ all_outcomes_arg $ stress_arg $ cap_arg $ runs_arg
         $ jobs_arg $ journal_arg $ resume_arg $ verify_trace_arg $ trace_arg
         $ metrics_arg))

(* --- litmus7 baseline ---------------------------------------------------- *)

let mode_arg =
  let mode_conv =
    Arg.conv
      ( (fun s ->
          match Sync_mode.of_name s with
          | Some m -> Ok m
          | None ->
            Error
              (`Msg "expected user, userfence, pthread, timebase or none")),
        fun ppf m -> Format.pp_print_string ppf (Sync_mode.name m) )
  in
  Arg.(
    value
    & opt mode_conv Sync_mode.User
    & info [ "mode" ] ~docv:"MODE" ~doc:"litmus7 synchronisation mode.")

let litmus7_cmd =
  let run spec iterations seed mode model stress =
    Result.map
      (fun test ->
        let rng = Perple_util.Rng.create seed in
        let result =
          Litmus7.run ~config:(config_of_model model) ~stress_threads:stress
            ~rng ~test ~mode ~iterations ()
        in
        Printf.printf "litmus7-style run of %s: %d iterations, %s mode\n"
          test.Ast.name iterations (Sync_mode.name mode);
        List.iter
          (fun (o, n) ->
            if n > 0 then Printf.printf "  %-24s %d\n" (Outcome.to_string o) n)
          result.Litmus7.histogram;
        (match Outcome.of_condition test with
        | Ok target ->
          Printf.printf "target occurrences: %d\n"
            (Litmus7.count result ~partial:target)
        | Error _ -> ());
        Printf.printf "virtual runtime: %d rounds\n"
          result.Litmus7.virtual_runtime)
      (load_test spec)
  in
  Cmd.v
    (Cmd.info "litmus7"
       ~doc:"Run the litmus7-style synchronised baseline on the simulator.")
    (wrap
       Term.(
         const run $ test_arg $ iterations_arg $ seed_arg $ mode_arg
         $ model_arg $ stress_arg))

(* --- supervise ------------------------------------------------------------ *)

let fault_conv =
  Arg.conv
    ( (fun s ->
        match Fault.of_string s with
        | Ok f -> Ok f
        | Error m -> Error (`Msg m)),
      Fault.pp )

let supervise_cmd =
  let faults_arg =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ] ~docv:"KIND@PROB"
          ~doc:
            "Inject a fault (repeatable): $(b,hang\\@P), $(b,crash\\@P), \
             $(b,livelock\\@P) trigger per thread per run with probability \
             P; $(b,store-loss\\@P) silently drops each drained store with \
             probability P.")
  in
  let runs_arg =
    Arg.(
      value & opt int 10
      & info [ "runs" ] ~docv:"R"
          ~doc:"Number of supervised runs in the campaign.")
  in
  let watchdog_arg =
    Arg.(
      value & opt (some int) None
      & info [ "watchdog-rounds" ] ~docv:"ROUNDS"
          ~doc:
            "Abort an attempt past this many virtual rounds (default: \
             64*N + 10000).")
  in
  let min_retired_arg =
    Arg.(
      value & opt (some int) None
      & info [ "min-retired" ] ~docv:"K"
          ~doc:
            "Smallest salvageable prefix: an aborted attempt with at least \
             $(docv) retired iterations is accepted as truncated (default: \
             N/100).")
  in
  let retries_arg =
    Arg.(
      value & opt int 3
      & info [ "max-retries" ] ~docv:"R"
          ~doc:"Retries per run after the first attempt.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 0.5
      & info [ "backoff" ] ~docv:"F"
          ~doc:
            "Iteration-budget multiplier per retry (> 0): < 1 retries \
             with a shrunken budget, > 1 grows it.")
  in
  (* The ledger is printed sequentially from per-run summaries, in run
     order — the same summaries the journal stores, so a resumed
     campaign's stdout is byte-identical to an uninterrupted one. *)
  let print_ledger ~iterations (summaries : Ledger.t array) =
    let by_class = Hashtbl.create 4 in
    let tally cls =
      Hashtbl.replace by_class cls
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_class cls))
    in
    let total_retries = ref 0 in
    let total_targets = ref 0 in
    let total_runtime = ref 0 in
    let failed = ref 0 in
    Array.iteri
      (fun idx (s : Ledger.t) ->
        let i = idx + 1 in
        let crashed_line m =
          tally Supervisor.Crashed;
          incr failed;
          Printf.printf "run %3d  crashed: %s\n" i m
        in
        match (s.Ledger.crashed, s.Ledger.supervision) with
        | Some c, _ -> crashed_line c.Ledger.c_message
        | None, None -> crashed_line "journal record lacks supervision data"
        | None, Some sup ->
          let attempts = sup.Ledger.s_attempts in
          tally
            (Option.value ~default:Supervisor.Crashed
               (Supervisor.outcome_of_name sup.Ledger.s_outcome));
          total_retries := !total_retries + List.length attempts - 1;
          total_targets := !total_targets + Ledger.target_count s;
          total_runtime := !total_runtime + s.Ledger.virtual_runtime;
          if sup.Ledger.s_lost then incr failed;
          Printf.printf
            "run %3d  %-9s  attempts %d  retired %d/%d  rounds %d  target \
             %d%s\n"
            i sup.Ledger.s_outcome (List.length attempts)
            s.Ledger.salvaged_iterations iterations sup.Ledger.s_total_rounds
            (Ledger.target_count s)
            (if s.Ledger.degraded then "  [degraded]" else "");
          if List.length attempts > 1 then
            List.iter
              (fun (a : Ledger.attempt) ->
                Printf.printf
                  "         #%d %-9s  retired %d/%d  rounds %d%s%s\n"
                  a.Ledger.a_index a.Ledger.a_outcome a.Ledger.a_retired
                  a.Ledger.a_requested a.Ledger.a_rounds
                  (if a.Ledger.a_lost_stores > 0 then
                     Printf.sprintf "  lost stores %d" a.Ledger.a_lost_stores
                   else "")
                  (match a.Ledger.a_exn with
                  | Some m -> "  exn: " ^ m
                  | None -> ""))
              attempts)
      summaries;
    let count cls =
      Option.value ~default:0 (Hashtbl.find_opt by_class cls)
    in
    Printf.printf
      "campaign summary: %d ok, %d truncated, %d timeout, %d crashed; %d \
       retries; %d runs lost\n"
      (count Supervisor.Ok)
      (count Supervisor.Truncated)
      (count Supervisor.Timeout)
      (count Supervisor.Crashed)
      !total_retries !failed;
    Printf.printf
      "total target occurrences: %d; total virtual runtime: %d rounds; \
       detection rate: %.3f per Mround\n"
      !total_targets !total_runtime
      (if !total_runtime = 0 then 0.0
       else
         float_of_int !total_targets
         /. float_of_int !total_runtime
         *. 1_000_000.0)
  in
  let run spec iterations seed model stress faults runs watchdog min_retired
      retries backoff jobs journal resume trace metrics =
    if runs <= 0 then fail "--runs must be positive"
    else if jobs <= 0 then fail "--jobs must be positive"
    else if backoff <= 0.0 then fail "--backoff must be positive"
    else
      Result.bind (check_resume ~journal ~resume) @@ fun () ->
      with_observability ~trace ~metrics @@ fun () ->
      Result.bind (load_test spec) (fun test ->
          let config =
            Config.with_faults faults (config_of_model model)
          in
          let base = Supervisor.default_policy ~iterations in
          let policy =
            {
              Supervisor.watchdog_rounds =
                Option.value watchdog ~default:base.Supervisor.watchdog_rounds;
              min_retired =
                Option.value min_retired
                  ~default:base.Supervisor.min_retired;
              max_retries = retries;
              backoff;
            }
          in
          Printf.printf
            "supervised campaign: %s, %d runs x %d iterations, faults: %s\n"
            test.Ast.name runs iterations
            (Fault.profile_to_string faults);
          Printf.printf
            "policy: watchdog %d rounds, min retired %d, max retries %d, \
             backoff %.2f\n"
            policy.Supervisor.watchdog_rounds policy.Supervisor.min_retired
            policy.Supervisor.max_retries policy.Supervisor.backoff;
          let digest =
            Ledger.digest_of_params
              [
                ("command", "supervise");
                ( "test",
                  Digest.to_hex (Digest.string (Printer.to_string test)) );
                ("iterations", string_of_int iterations);
                ("seed", string_of_int seed);
                ("model", Config.model_name model);
                ("stress", string_of_int stress);
                ("faults", Fault.profile_to_string faults);
                ( "watchdog_rounds",
                  string_of_int policy.Supervisor.watchdog_rounds );
                ("min_retired", string_of_int policy.Supervisor.min_retired);
                ("max_retries", string_of_int policy.Supervisor.max_retries);
                ("backoff", Printf.sprintf "%.17g" policy.Supervisor.backoff);
                ("runs", string_of_int runs);
              ]
          in
          let execute ~skip ~on_entry =
            Engine.campaign_entries ~config ~policy ~stress_threads:stress
              ~jobs ~skip ?on_entry ~runs ~seed ~iterations test
          in
          Result.map
            (print_ledger ~iterations)
            (campaign_summaries ~journal ~resume ~command:"supervise" ~digest
               ~runs ~seed ~execute))
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Run a fault-injected campaign under the supervisor: watchdog, \
          outcome classification, retry with backoff, checkpoint salvage; \
          prints the per-run supervision ledger.")
    (wrap
       Term.(
         const run $ test_arg $ iterations_arg $ seed_arg $ model_arg
         $ stress_arg $ faults_arg $ runs_arg $ watchdog_arg
         $ min_retired_arg $ retries_arg $ backoff_arg $ jobs_arg
         $ journal_arg $ resume_arg $ trace_arg $ metrics_arg))

(* --- crash-suite ---------------------------------------------------------- *)

module Crashsim = Perple_sim.Crashsim
module Crash_suite = Perple_core.Crash_suite
module Persistency = Perple_memmodel.Persistency

let persistency_conv =
  let parse s =
    match Config.persistency_of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected epoch or eager-bug")
  in
  Arg.conv
    (parse, fun ppf p -> Format.pp_print_string ppf (Config.persistency_name p))

let persistency_arg =
  Arg.(
    value
    & opt persistency_conv Config.Epoch
    & info [ "persistency" ] ~docv:"MODEL"
        ~doc:
          "Persistency controller model: $(b,epoch) (default: a drain \
           commits the thread's pending writebacks in flush order) or \
           $(b,eager-bug) (the planted bug: drain commits nothing, \
           writebacks persist lazily and independently).")

let crash_suite_cmd =
  (* The report is printed in point order from the indexed record array —
     never in completion order — so stdout is bit-identical for every
     --jobs value and for any kill/resume split. *)
  let print_suite ~test ~persistency ~crosscheck
      (records : Crash_suite.record array) =
    Printf.printf "crash suite of %s: %d crash points, persistency %s\n"
      test.Ast.name (Array.length records)
      (Config.persistency_name persistency);
    if test.Ast.post_crash = None then
      Printf.printf
        "note: %s has no post-crash condition; reporting reachable images \
         only\n"
        test.Ast.name;
    let violating = ref 0 and unrecoverable = ref 0 and images = ref 0 in
    Array.iter
      (fun (r : Crash_suite.record) ->
        match r.Crash_suite.outcome with
        | Supervisor.Unrecoverable ->
          incr unrecoverable;
          Printf.printf "point %3d  unrecoverable: %s\n" r.Crash_suite.point
            (Option.value ~default:"recovery failed" r.Crash_suite.error)
        | _ ->
          images := !images + r.Crash_suite.images;
          if r.Crash_suite.violations > 0 then begin
            incr violating;
            Printf.printf "point %3d  images %3d  VIOLATED x%d%s\n"
              r.Crash_suite.point r.Crash_suite.images r.Crash_suite.violations
              (match r.Crash_suite.witness with
              | Some w ->
                "  witness "
                ^ String.concat " "
                    (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) w)
              | None -> "")
          end
          else
            Printf.printf "point %3d  images %3d  ok\n" r.Crash_suite.point
              r.Crash_suite.images)
      records;
    Printf.printf
      "suite verdict: %s (%d of %d points violated, %d unrecoverable, %d \
       images examined)\n"
      (if !violating > 0 then "VIOLATED"
       else if !unrecoverable > 0 then "UNRECOVERABLE"
       else "consistent")
      !violating (Array.length records) !unrecoverable !images;
    if crosscheck then
      Printf.printf "axiomatic cross-check: %s\n"
        (let model =
           match persistency with
           | Config.Epoch -> Persistency.Epoch
           | Config.Eager -> Persistency.Eager
         in
         let operational_holds = !violating = 0 && !unrecoverable = 0 in
         if Persistency.condition_holds model test = operational_holds then
           "agrees"
         else "DISAGREES (checker bug)")
  in
  let crosscheck_arg =
    Arg.(
      value & flag
      & info [ "crosscheck" ]
          ~doc:
            "Also evaluate the post-crash condition with the declarative \
             (axiomatic) persistency checker and report whether the two \
             verdicts agree.")
  in
  let run spec persistency jobs journal resume crosscheck =
    if jobs <= 0 then fail "--jobs must be positive"
    else
      Result.bind (check_resume ~journal ~resume) @@ fun () ->
      Result.bind (load_test spec) @@ fun test ->
      let points = Crashsim.crash_points test in
      let digest =
        Ledger.digest_of_params
          [
            ("command", "crash-suite");
            ("test", Digest.to_hex (Digest.string (Printer.to_string test)));
            ("persistency", Config.persistency_name persistency);
            ("points", string_of_int points);
          ]
      in
      Result.bind
        (open_campaign_journal ~journal ~resume ~command:"crash-suite"
           ~digest ~runs:points ~what:"crash points" ~record_kind:"point"
           ~of_record:Crash_suite.of_json ~to_record:Crash_suite.to_json
           ~index_of:(fun (r : Crash_suite.record) -> r.Crash_suite.point)
           ~validate:(fun _ _ -> Ok ()))
      @@ fun cj ->
      let journaled = ref (Hashtbl.length cj.cj_completed) in
      let on_record =
        match cj.cj_journal with
        | None -> None
        | Some j ->
          Some
            (fun r ->
              Journal.append j (Crash_suite.to_json r);
              incr journaled)
      in
      let skip p = Hashtbl.mem cj.cj_completed p in
      Result.bind
        (journal_errors (fun () ->
             Ok
               (with_journal_signals cj ~runs:points ~what:"crash points"
                  ~journaled (fun () ->
                    Crash_suite.evaluate ~jobs ~skip ?on_record ~persistency
                      test))))
      @@ fun computed ->
      let records =
        Array.init points (fun p ->
            match computed.(p) with
            | Some r -> r
            | None -> (
              match Hashtbl.find_opt cj.cj_completed p with
              | Some r -> r
              | None -> assert false))
      in
      print_suite ~test ~persistency ~crosscheck records;
      Ok ()
  in
  Cmd.v
    (Cmd.info "crash-suite"
       ~doc:
         "Exhaustively crash a test at every instruction boundary and \
          evaluate its post-crash condition against every reachable \
          persisted image; a violation means the persistency model lets a \
          crash expose inconsistent durable state.")
    (wrap
       Term.(
         const run $ test_arg $ persistency_arg $ jobs_arg $ journal_arg
         $ resume_arg $ crosscheck_arg))

(* --- emit ---------------------------------------------------------------- *)

let emit_cmd =
  let out_arg =
    Arg.(
      value & opt string "perple-out"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let native_arg =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Also compile the emitted harness with $(b,cc) and run it on \
             the host (requires a C toolchain; the artifacts target x86-64).")
  in
  let native_iters_arg =
    Arg.(
      value & opt int 100_000
      & info [ "native-iterations" ] ~docv:"N"
          ~doc:"Iteration count passed to the native harness.")
  in
  let run spec dir native native_iters =
    Result.bind (load_test spec) (fun test ->
        match Convert.convert test with
        | Error r -> fail "%s" (Format.asprintf "%a" Convert.pp_reason r)
        | Ok conv -> (
          match Codegen.all_files conv ~outcomes:(Outcome.all test) with
          | Error m -> fail "outcome conversion failed: %s" m
          | Ok files ->
            Codegen.write_to_dir ~dir files;
            List.iter
              (fun (f : Codegen.file) ->
                Printf.printf "wrote %s\n"
                  (Filename.concat dir f.Codegen.filename))
              files;
            if not native then Ok ()
            else begin
              let name =
                String.map
                  (function
                    | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c
                    | _ -> '_')
                  test.Ast.name
              in
              let sources =
                List.filter
                  (fun (f : Codegen.file) ->
                    Filename.check_suffix f.Codegen.filename ".c"
                    || Filename.check_suffix f.Codegen.filename ".s")
                  files
              in
              let cmd =
                Printf.sprintf "cc -O2 -pthread -o %s %s 2>/dev/null"
                  (Filename.quote (Filename.concat dir (name ^ "_native")))
                  (String.concat " "
                     (List.map
                        (fun (f : Codegen.file) ->
                          Filename.quote
                            (Filename.concat dir f.Codegen.filename))
                        sources))
              in
              if Sys.command cmd <> 0 then
                fail "native build failed (is a C toolchain available?)"
              else begin
                Printf.printf "running native harness (%d iterations)...\n%!"
                  native_iters;
                let run_cmd =
                  Printf.sprintf "%s %d"
                    (Filename.quote (Filename.concat dir (name ^ "_native")))
                    native_iters
                in
                if Sys.command run_cmd <> 0 then fail "native run failed"
                else Ok ()
              end
            end))
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Emit the Converter's x86 assembly, C counters, parameters and \
          harness files.")
    (wrap Term.(const run $ test_arg $ out_arg $ native_arg $ native_iters_arg))

(* --- trace ---------------------------------------------------------------- *)

let trace_cmd =
  let events_arg =
    Arg.(
      value & opt int 60
      & info [ "events" ] ~docv:"K" ~doc:"Number of events to record.")
  in
  let run spec iterations seed model events =
    Result.bind (load_test spec) (fun test ->
        match Convert.convert test with
        | Error r -> fail "%s" (Format.asprintf "%a" Convert.pp_reason r)
        | Ok conv ->
          let module Trace = Perple_harness.Trace in
          let trace, _run =
            Trace.trace_perpetual ~config:(config_of_model model)
              ~limit:events
              ~rng:(Perple_util.Rng.create seed)
              ~image:conv.Convert.image ~t_reads:conv.Convert.t_reads
              ~iterations ()
          in
          Printf.printf
            "First %d machine events of the perpetual %s run (model %s):\n"
            (Trace.length trace) test.Ast.name (Config.model_name model);
          print_string
            (Trace.render
               ~location_names:
                 conv.Convert.image.Perple_sim.Program.location_names
               trace);
          Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a perpetual test while recording the machine's event trace \
          (instruction retirements, buffer drains, stalls).")
    (wrap
       Term.(
         const run $ test_arg $ iterations_arg $ seed_arg $ model_arg
         $ events_arg))

(* --- generate ------------------------------------------------------------ *)

let generate_cmd =
  let cycle_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CYCLE"
          ~doc:
            "Whitespace-separated relaxation-cycle edges (diy style): \
             $(b,PodWR) $(b,PodWW) $(b,PodRW) $(b,PodRR), fenced variants \
             $(b,MFencedWR) ..., and communication edges $(b,Rfe) $(b,Fre) \
             $(b,Wse); or one of the named cycles from $(b,--list-cycles).")
  in
  let name_arg =
    Arg.(
      value & opt string "generated"
      & info [ "name" ] ~docv:"NAME" ~doc:"Name for the generated test.")
  in
  let run spec name =
    let module Generate = Perple_litmus.Generate in
    let cycle_text =
      match List.assoc_opt spec Generate.named_cycles with
      | Some text -> text
      | None -> spec
    in
    Result.bind
      (Generate.parse_cycle cycle_text)
      (fun cycle ->
        match Generate.of_cycle ~name cycle with
        | Error m -> fail "cannot realise cycle: %s" m
        | Ok test ->
          print_string (Printer.to_string test);
          let p = Generate.predict cycle in
          Printf.printf
            "
predicted target: SC %s, TSO %s, PSO %s (from cycle shape)
"
            (if p.Generate.sc then "allowed" else "forbidden")
            (if p.Generate.tso then "allowed" else "forbidden")
            (if p.Generate.pso then "allowed" else "forbidden");
          (match Outcome.of_condition test with
          | Ok _ ->
            List.iter
              (fun model ->
                Printf.printf "checker verdict under %s: %s
"
                  (Operational.model_to_string model)
                  (if Result.get_ok (Operational.target_allowed model test)
                   then "allowed"
                   else "forbidden"))
              [ Operational.Sc; Operational.Tso; Operational.Pso ]
          | Error _ ->
            print_endline
              "condition inspects final memory (Wse edge): not convertible \
               to perpetual form; checker verdicts via the axiomatic model:";
            List.iter
              (fun model ->
                Printf.printf "checker verdict under %s: %s
"
                  (Operational.model_to_string model)
                  (if Axiomatic.condition_reachable model test then "allowed"
                   else "forbidden"))
              [ Operational.Sc; Operational.Tso; Operational.Pso ]);
          Ok ())
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate a litmus test from a diy-style relaxation cycle and \
          classify its target.")
    (wrap Term.(const run $ cycle_arg $ name_arg))

(* --- export -------------------------------------------------------------- *)

let export_cmd =
  let dir_arg =
    Arg.(
      value & opt string "litmus"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write test =
      let path = Filename.concat dir (test.Ast.name ^ ".litmus") in
      let oc = open_out path in
      output_string oc (Printer.to_string test);
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    List.iter (fun (e : Catalog.entry) -> write e.Catalog.test) Catalog.suite;
    List.iter write Catalog.non_convertible;
    Ok ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write every catalog test as a .litmus file (litmus7 format).")
    (wrap Term.(const run $ dir_arg))

(* --- suite / experiment -------------------------------------------------- *)

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Use small iteration counts (smoke-test scale).")

let opt_iterations_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Override iteration count.")

let opt_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Override the experiment seed (default: the paper-run seed).")

let params_of quick iterations seed =
  let base =
    if quick then Report.Common.quick_params else Report.Common.default_params
  in
  let base =
    match iterations with
    | Some n -> { base with Report.Common.iterations = n }
    | None -> base
  in
  match seed with
  | Some seed -> { base with Report.Common.seed }
  | None -> base

let experiment_cmd =
  let id_arg =
    let doc =
      Printf.sprintf "Experiment id: %s, or $(b,all)."
        (String.concat ", " Report.Experiments.ids)
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id quick iterations seed =
    let params = params_of quick iterations seed in
    if id = "all" then begin
      List.iter
        (fun (id, text) -> Printf.printf "==== %s ====\n%s\n" id text)
        (Report.Experiments.run_all params);
      Ok ()
    end
    else Result.map print_string (Report.Experiments.run params id)
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the paper's tables/figures (or all).")
    (wrap
       Term.(const run $ id_arg $ quick_arg $ opt_iterations_arg $ opt_seed_arg))

let suite_cmd =
  let run quick iterations seed =
    let params = params_of quick iterations seed in
    print_string (Report.Fig9.render params);
    Ok ()
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the whole perpetual litmus suite (Fig 9 summary).")
    (wrap Term.(const run $ quick_arg $ opt_iterations_arg $ opt_seed_arg))

(* --- serve / submit ------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "perpled.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket the daemon listens on (a stale socket file \
           left by a dead daemon is detected and replaced).")

let serve_cmd =
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Also listen on localhost TCP port $(docv).")
  in
  let coordinator_arg =
    Arg.(
      value & flag
      & info [ "coordinator" ]
          ~doc:
            "Shard campaigns into leased work units and farm them out to \
             $(b,perple worker) processes (falling back to local execution \
             while no worker is connected).  Leases that miss their renewal \
             deadline are revoked and reassigned; the merged ledger stays \
             byte-identical to a single-node run.")
  in
  let shard_runs_arg =
    Arg.(
      value
      & opt int Perple_service.Coordinator.default_config.shard_runs
      & info [ "shard-runs" ] ~docv:"N"
          ~doc:"Runs per leased shard (with $(b,--coordinator)).")
  in
  let lease_ms_arg =
    Arg.(
      value
      & opt int Perple_service.Coordinator.default_config.lease_ticks
      & info [ "lease-ms" ] ~docv:"MS"
          ~doc:
            "Lease renewal deadline in milliseconds (with \
             $(b,--coordinator)): a worker silent for $(docv) ms loses its \
             shard.")
  in
  let run socket tcp jobs journal coordinator shard_runs lease_ms trace
      metrics =
    if jobs <= 0 then fail "--jobs must be positive"
    else if shard_runs <= 0 then fail "--shard-runs must be positive"
    else if lease_ms <= 0 then fail "--lease-ms must be positive"
    else begin
      Printf.eprintf "perpled: listening on %s%s, %d job%s%s%s\n%!" socket
        (match tcp with
        | None -> ""
        | Some p -> Printf.sprintf " and tcp 127.0.0.1:%d" p)
        jobs
        (if jobs = 1 then "" else "s")
        (if coordinator then
           Printf.sprintf ", coordinating %d-run shards under %d ms leases"
             shard_runs lease_ms
         else "")
        (match journal with
        | None -> " (no journal: campaigns are lost on restart)"
        | Some path ->
          if Sys.file_exists path then
            Printf.sprintf ", resuming journal %s" path
          else Printf.sprintf ", journal %s" path);
      let coordinator =
        if coordinator then
          Some
            {
              Perple_service.Coordinator.default_config with
              shard_runs;
              lease_ticks = lease_ms;
            }
        else None
      in
      match
        with_observability ~trace ~metrics @@ fun () ->
        Perple_service.Server.serve ~socket ?tcp_port:tcp ~jobs ?coordinator
          ~journal ()
      with
      | Error m -> Error m
      | Ok signum ->
        Printf.eprintf
          "\nperpled: %s: drained, journal flushed\nperpled: resume with: \
           perple serve --socket %s%s%s\n%!"
          (if signum = Sys.sigint then "interrupted" else "terminated")
          socket
          (match journal with
          | None -> ""
          | Some path -> " --journal " ^ Filename.quote path)
          (if jobs = 1 then "" else Printf.sprintf " --jobs %d" jobs);
        (* Exit the standard interrupted codes so scripts and the CI
           smoke job can tell a drain from a crash; observability files
           were already written by [with_observability]. *)
        Stdlib.exit (if signum = Sys.sigint then 130 else 143)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: accept submitted campaigns over a \
          length-prefixed binary protocol, journal every accepted spec and \
          completed run, and stream back records that are byte-identical \
          across crashes, restarts and $(b,--jobs) values.")
    (wrap
       Term.(
         const run $ socket_arg $ tcp_arg $ jobs_arg $ journal_arg
         $ coordinator_arg $ shard_runs_arg $ lease_ms_arg $ trace_arg
         $ metrics_arg))

let submit_cmd =
  let campaign_arg =
    let doc =
      "Campaign identifier.  Resubmitting the same identifier with the \
       same parameters is idempotent: already-journaled runs are \
       re-streamed byte-for-byte."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CAMPAIGN" ~doc)
  in
  let submit_test_arg =
    let doc =
      "Catalog test name (see $(b,perple list)) or path to a .litmus file \
       (the file's contents are shipped to the daemon)."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TEST" ~doc)
  in
  let runs_arg =
    Arg.(
      value & opt int 2
      & info [ "runs" ] ~docv:"R"
          ~doc:"Campaign size: $(docv) runs with pre-split seeds.")
  in
  let retries_arg =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Reconnection attempts on transport loss (exponentially \
             backed-off sleeps); safe because submits are idempotent.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Print live campaign progress to stderr as the daemon streams \
             it (runs done, and shard counts under a $(b,--coordinator) \
             daemon).")
  in
  let run campaign spec socket iterations seed runs counter model retries
      follow =
    if retries < 1 then fail "--retries must be positive"
    else
      (* Validate locally first for a fast, friendly error; ship file
         contents so the daemon needs no access to our filesystem. *)
      Result.bind (load_test spec) @@ fun test ->
      let payload =
        if Sys.file_exists spec && not (Sys.is_directory spec) then
          In_channel.with_open_bin spec In_channel.input_all
        else spec
      in
      ignore test;
      let wire_spec =
        {
          Perple_service.Wire.campaign;
          test = payload;
          iterations;
          seed;
          runs;
          counter =
            (match counter with
            | Engine.Heuristic -> "heur"
            | Engine.Exhaustive -> "exh"
            | Engine.Exhaustive_reference -> "exh-ref");
          model = Config.model_name model;
        }
      in
      let on_progress =
        if not follow then None
        else
          Some
            (fun p ->
              Printf.eprintf
                "perple: %s: %d/%d runs%s\n%!" campaign
                p.Perple_service.Client.runs_done
                p.Perple_service.Client.runs_total
                (if
                   p.Perple_service.Client.shards_done
                   + p.Perple_service.Client.shards_leased
                   + p.Perple_service.Client.shards_failed
                   > 0
                 then
                   Printf.sprintf
                     " (shards: %d done, %d leased, %d abandoned)"
                     p.Perple_service.Client.shards_done
                     p.Perple_service.Client.shards_leased
                     p.Perple_service.Client.shards_failed
                 else ""))
      in
      match
        Perple_service.Client.submit_blocking ~socket ~attempts:retries
          ?on_progress ~spec:wire_spec ()
      with
      | Error m -> fail "submit %s: %s" campaign m
      | Ok outcome ->
        Printf.eprintf
          "perple: campaign %s accepted (digest %s, %d of %d runs were \
           already journaled)\n%!"
          campaign outcome.Perple_service.Client.digest
          outcome.Perple_service.Client.completed_at_accept runs;
        List.iter print_endline outcome.Perple_service.Client.records;
        Printf.printf "metrics: %s\n" outcome.Perple_service.Client.metrics;
        Ok ()
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to a running $(b,perple serve) daemon and \
          stream its records to stdout (one canonical ledger line per run, \
          index order, then one metrics line).")
    (wrap
       Term.(
         const run $ campaign_arg $ submit_test_arg $ socket_arg
         $ iterations_arg $ seed_arg $ runs_arg $ counter_arg $ model_arg
         $ retries_arg $ follow_arg))

let worker_cmd =
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Connect to the coordinator on localhost TCP port $(docv) \
             instead of the Unix-domain socket.")
  in
  let name_arg =
    Arg.(
      value
      & opt string (Printf.sprintf "worker-%d" (Unix.getpid ()))
      & info [ "name" ] ~docv:"NAME"
          ~doc:"Worker name reported in the handshake (default: worker-PID).")
  in
  let retries_arg =
    Arg.(
      value & opt int 10
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Consecutive fruitless reconnection attempts before giving up \
             (a connection that executed at least one lease refills the \
             budget, so a restarting coordinator is survived).")
  in
  let run socket tcp name retries trace metrics =
    if retries < 1 then fail "--retries must be positive"
    else begin
      let address =
        match tcp with Some p -> `Tcp p | None -> `Unix_socket socket
      in
      Printf.eprintf "perple worker %s: dialling %s\n%!" name
        (match address with
        | `Tcp p -> Printf.sprintf "tcp 127.0.0.1:%d" p
        | `Unix_socket s -> s);
      match
        with_observability ~trace ~metrics @@ fun () ->
        Perple_service.Worker.work_blocking ~address ~name ~attempts:retries
          ~on_note:(fun line ->
            Printf.eprintf "perple worker %s: %s\n%!" name line)
          ()
      with
      | Error m -> fail "worker %s: %s" name m
      | Ok signum ->
        Printf.eprintf "perple worker %s: %s, stopping\n%!" name
          (if signum = Sys.sigint then "interrupted" else "terminated");
        Stdlib.exit (if signum = Sys.sigint then 130 else 143)
    end
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Execute leased campaign shards for a $(b,perple serve \
          --coordinator) daemon.  Runs are computed with the same engine \
          and pre-split seeds as a local campaign, so the coordinator's \
          merged ledger is byte-identical to a single-node run; on \
          disconnect the worker reconnects with backed-off sleeps and any \
          half-finished lease is safely reassigned.")
    (wrap
       Term.(
         const run $ socket_arg $ tcp_arg $ name_arg $ retries_arg
         $ trace_arg $ metrics_arg))

let main_cmd =
  let info =
    Cmd.info "perple" ~version:"1.0.0"
      ~doc:
        "Perpetual litmus tests for memory consistency testing (PerpLE, \
         MICRO 2020 reproduction)."
  in
  Cmd.group info
    [
      list_cmd;
      show_cmd;
      check_cmd;
      convert_cmd;
      run_cmd;
      litmus7_cmd;
      supervise_cmd;
      crash_suite_cmd;
      emit_cmd;
      trace_cmd;
      generate_cmd;
      export_cmd;
      suite_cmd;
      experiment_cmd;
      serve_cmd;
      submit_cmd;
      worker_cmd;
    ]

let () = exit (Cmd.eval main_cmd)

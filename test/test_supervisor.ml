(* Tests for Perple_harness.Supervisor: outcome classification, retry with
   backoff, checkpoint salvage, ledger determinism (including independence
   from the Stdlib.Random global state), and the supervised Engine path. *)

module Catalog = Perple_litmus.Catalog
module Config = Perple_sim.Config
module Fault = Perple_sim.Fault
module Machine = Perple_sim.Machine
module Rng = Perple_util.Rng
module Perpetual = Perple_harness.Perpetual
module Litmus7 = Perple_harness.Litmus7
module Supervisor = Perple_harness.Supervisor
module Sync_mode = Perple_harness.Sync_mode
module Convert = Perple_core.Convert
module Engine = Perple_core.Engine

let check = Alcotest.check

let fault kind probability = { Fault.kind; probability }

let faulty profile = Config.with_faults profile Config.default

let sb_conversion =
  match Convert.convert_body Catalog.sb with
  | Ok c -> c
  | Error _ -> failwith "sb should convert"

let supervise ?(config = Config.default) ?policy ~seed ~iterations () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Supervisor.default_policy ~iterations
  in
  Supervisor.run_perpetual ~config ~policy ~rng:(Rng.create seed)
    ~image:sb_conversion.Convert.image ~t_reads:sb_conversion.Convert.t_reads
    ~iterations ()

let test_fault_free_is_ok () =
  let sup = supervise ~seed:1 ~iterations:500 () in
  check Alcotest.bool "outcome ok" true (sup.Supervisor.outcome = Supervisor.Ok);
  check Alcotest.int "one attempt" 1 (List.length sup.Supervisor.attempts);
  check Alcotest.int "all iterations salvaged" 500
    sup.Supervisor.salvaged_iterations;
  check Alcotest.bool "not degraded" false sup.Supervisor.degraded;
  match sup.Supervisor.run with
  | None -> Alcotest.fail "run expected"
  | Some run -> check Alcotest.int "run length" 500 run.Perpetual.iterations

let test_hang_salvaged_as_truncated () =
  let iterations = 2_000 in
  let sup =
    supervise ~config:(faulty [ fault Fault.Hang 1.0 ]) ~seed:3 ~iterations ()
  in
  check Alcotest.bool "truncated" true
    (sup.Supervisor.outcome = Supervisor.Truncated);
  check Alcotest.bool "something salvaged" true
    (sup.Supervisor.salvaged_iterations > 0);
  check Alcotest.bool "short of the request" true
    (sup.Supervisor.salvaged_iterations < iterations);
  check Alcotest.bool "degraded" true sup.Supervisor.degraded;
  check Alcotest.bool "attempts bounded" true
    (List.length sup.Supervisor.attempts <= 4);
  match sup.Supervisor.run with
  | None -> Alcotest.fail "salvaged run expected"
  | Some run ->
    let salvaged = sup.Supervisor.salvaged_iterations in
    check Alcotest.int "run truncated" salvaged run.Perpetual.iterations;
    Array.iteri
      (fun t buf ->
        check Alcotest.int
          (Printf.sprintf "buf %d sized to salvage" t)
          (run.Perpetual.t_reads.(t) * salvaged)
          (Array.length buf))
      run.Perpetual.bufs

let test_unsalvageable_crash () =
  (* With a single requested iteration, a certain crash arms at onset 0 on
     every thread of every attempt: nothing ever retires, every retry is
     burned, and the supervisor reports Crashed with no run. *)
  let sup =
    supervise ~config:(faulty [ fault Fault.Crash 1.0 ]) ~seed:5 ~iterations:1
      ()
  in
  check Alcotest.bool "crashed" true
    (sup.Supervisor.outcome = Supervisor.Crashed);
  check Alcotest.bool "no run" true (sup.Supervisor.run = None);
  check Alcotest.int "nothing salvaged" 0 sup.Supervisor.salvaged_iterations;
  check Alcotest.bool "degraded" true sup.Supervisor.degraded;
  check Alcotest.int "initial attempt + max retries" 4
    (List.length sup.Supervisor.attempts);
  List.iter
    (fun (a : Supervisor.attempt) ->
      check Alcotest.bool "each attempt crashed" true
        (a.Supervisor.outcome = Supervisor.Crashed))
    sup.Supervisor.attempts

let test_backoff_shrinks_budgets () =
  let policy =
    {
      (Supervisor.default_policy ~iterations:1_000) with
      Supervisor.min_retired = 1_000;
      (* unreachable under hang@1.0: forces retries *)
      max_retries = 2;
      backoff = 0.5;
    }
  in
  let sup =
    supervise
      ~config:(faulty [ fault Fault.Hang 1.0 ])
      ~policy ~seed:7 ~iterations:1_000 ()
  in
  check
    (Alcotest.list Alcotest.int)
    "budgets halve" [ 1_000; 500; 250 ]
    (List.map (fun a -> a.Supervisor.requested) sup.Supervisor.attempts)

let test_backoff_growth_not_truncated () =
  (* Regression: [backed_off] used [int_of_float] directly, so a growth
     factor applied to a small budget truncated back to the same budget
     (1 * 1.5 -> 1) and the sequence pinned forever.  Ceiling rounding
     makes every growth step strictly increase the budget. *)
  let policy =
    { (Supervisor.default_policy ~iterations:1) with Supervisor.backoff = 1.5 }
  in
  let rec sequence policy budget n =
    if n = 0 then []
    else budget :: sequence policy (Supervisor.backed_off policy budget) (n - 1)
  in
  check
    (Alcotest.list Alcotest.int)
    "budget 1 grows under backoff 1.5" [ 1; 2; 3; 5; 8 ] (sequence policy 1 5);
  (* Shrinking factors keep their exact halving sequence... *)
  let halving = { policy with Supervisor.backoff = 0.5 } in
  check
    (Alcotest.list Alcotest.int)
    "exact halves unchanged" [ 1000; 500; 250 ] (sequence halving 1000 3);
  (* ...but never collapse below one iteration. *)
  check Alcotest.int "floor of one" 1 (Supervisor.backed_off halving 1);
  (* Overflow-safe: a huge factor clamps instead of wrapping negative. *)
  let explosive = { policy with Supervisor.backoff = 1e18 } in
  check Alcotest.bool "clamped, not wrapped" true
    (Supervisor.backed_off explosive max_int > 0)

let test_ledger_deterministic () =
  let campaign () =
    supervise
      ~config:(faulty [ fault Fault.Hang 0.5; fault Fault.Store_loss 0.01 ])
      ~seed:11 ~iterations:1_500 ()
  in
  let a = campaign () in
  (* Perturb the Stdlib.Random global state between runs: supervision must
     draw only from its own Rng. *)
  Random.init 12345;
  ignore (Random.bits ());
  let b = campaign () in
  Random.init 999;
  let c = campaign () in
  check Alcotest.bool "identical ledgers (a=b)" true (a = b);
  check Alcotest.bool "identical ledgers (a=c)" true (a = c)

let test_acceptance_campaign () =
  (* ISSUE acceptance: 20 supervised runs under hang@0.05 complete with no
     uncaught exception, bounded retries, and a coherent degraded flag. *)
  let iterations = 2_000 in
  let campaign_rng = Rng.create 42 in
  for _run = 1 to 20 do
    let seed = Int64.to_int (Rng.bits64 campaign_rng) land max_int in
    let sup =
      supervise
        ~config:(faulty [ fault Fault.Hang 0.05 ])
        ~seed ~iterations ()
    in
    check Alcotest.bool "attempts bounded by retries" true
      (List.length sup.Supervisor.attempts <= 4);
    check Alcotest.bool "degraded iff short" true
      (sup.Supervisor.degraded
      = (sup.Supervisor.salvaged_iterations < iterations));
    match sup.Supervisor.run with
    | Some run ->
      check Alcotest.int "salvage matches run" run.Perpetual.iterations
        sup.Supervisor.salvaged_iterations
    | None ->
      check Alcotest.int "no run, no salvage" 0
        sup.Supervisor.salvaged_iterations
  done

let test_litmus7_supervised () =
  let iterations = 1_000 in
  let policy = Supervisor.default_policy ~iterations in
  let sup =
    Supervisor.run_litmus7
      ~config:(faulty [ fault Fault.Hang 1.0 ])
      ~policy ~rng:(Rng.create 13) ~test:Catalog.sb ~mode:Sync_mode.User
      ~iterations ()
  in
  check Alcotest.bool "truncated" true
    (sup.Supervisor.l7_outcome = Supervisor.Truncated);
  match sup.Supervisor.l7_result with
  | None -> Alcotest.fail "salvaged result expected"
  | Some result ->
    check Alcotest.bool "retired short of request" true
      (result.Litmus7.retired < iterations);
    let tally =
      List.fold_left (fun acc (_, n) -> acc + n) 0 result.Litmus7.histogram
    in
    check Alcotest.int "histogram covers retired prefix" result.Litmus7.retired
      tally

(* --- Engine integration --------------------------------------------------- *)

let engine_run ?faults ?policy ~iterations () =
  match Engine.run ?faults ?policy ~seed:21 ~iterations Catalog.sb with
  | Ok report -> report
  | Error _ -> failwith "sb should run"

let test_engine_supervised_hang () =
  let iterations = 2_000 in
  let policy = Supervisor.default_policy ~iterations in
  let report =
    engine_run ~faults:[ fault Fault.Hang 1.0 ] ~policy ~iterations ()
  in
  check Alcotest.bool "degraded" true report.Engine.degraded;
  check Alcotest.int "requested surfaced" iterations
    report.Engine.requested_iterations;
  check Alcotest.bool "salvaged prefix counted" true
    (report.Engine.salvaged_iterations > 0
    && report.Engine.salvaged_iterations < iterations);
  check Alcotest.int "run matches salvage" report.Engine.salvaged_iterations
    report.Engine.run.Perpetual.iterations;
  (match report.Engine.supervision with
  | None -> Alcotest.fail "supervision ledger expected"
  | Some sup ->
    check Alcotest.bool "ledger truncated" true
      (sup.Supervisor.outcome = Supervisor.Truncated);
    check Alcotest.bool "runtime covers all attempts" true
      (report.Engine.virtual_runtime >= sup.Supervisor.total_rounds));
  check Alcotest.bool "counts are sane" true
    (Array.for_all
       (fun c -> c >= 0 && c <= report.Engine.salvaged_iterations)
       report.Engine.counts)

let test_engine_supervised_total_loss () =
  (* Crash-at-0 on every attempt: the engine must still return a report —
     zero counts over an empty run — rather than raising. *)
  let policy = Supervisor.default_policy ~iterations:1 in
  let report =
    engine_run ~faults:[ fault Fault.Crash 1.0 ] ~policy ~iterations:1 ()
  in
  check Alcotest.bool "degraded" true report.Engine.degraded;
  check Alcotest.int "nothing salvaged" 0 report.Engine.salvaged_iterations;
  check Alcotest.int "zero frames" 0 report.Engine.frames_examined;
  check Alcotest.bool "zero counts" true
    (Array.for_all (fun c -> c = 0) report.Engine.counts);
  check Alcotest.bool "rounds still charged" true
    (report.Engine.virtual_runtime > 0)

let test_engine_unsupervised_crash_salvage () =
  (* Without a policy there is no retry, but the completed prefix of a
     crash-truncated run is still salvaged and counted. *)
  let iterations = 1_000 in
  let report =
    engine_run ~faults:[ fault Fault.Crash 1.0 ] ~iterations ()
  in
  check Alcotest.bool "no ledger" true (report.Engine.supervision = None);
  check Alcotest.bool "degraded" true report.Engine.degraded;
  check Alcotest.bool "partial salvage" true
    (report.Engine.salvaged_iterations > 0
    && report.Engine.salvaged_iterations < iterations);
  check Alcotest.int "run truncated to salvage"
    report.Engine.salvaged_iterations report.Engine.run.Perpetual.iterations

let test_engine_fault_free_untouched () =
  let report = engine_run ~faults:[] ~iterations:800 () in
  check Alcotest.bool "not degraded" false report.Engine.degraded;
  check Alcotest.int "requested = delivered" 800
    report.Engine.requested_iterations;
  check Alcotest.int "salvage = request" 800 report.Engine.salvaged_iterations;
  let baseline =
    match Engine.run ~seed:21 ~iterations:800 Catalog.sb with
    | Ok r -> r
    | Error _ -> failwith "sb should run"
  in
  check
    (Alcotest.array Alcotest.int)
    "explicit empty profile changes nothing" baseline.Engine.counts
    report.Engine.counts

let suite =
  [
    ( "harness.supervisor",
      [
        Alcotest.test_case "fault-free run is ok" `Quick test_fault_free_is_ok;
        Alcotest.test_case "hang salvaged as truncated" `Quick
          test_hang_salvaged_as_truncated;
        Alcotest.test_case "unsalvageable crash" `Quick
          test_unsalvageable_crash;
        Alcotest.test_case "backoff shrinks budgets" `Quick
          test_backoff_shrinks_budgets;
        Alcotest.test_case "backoff growth not truncated" `Quick
          test_backoff_growth_not_truncated;
        Alcotest.test_case "deterministic ledger" `Quick
          test_ledger_deterministic;
        Alcotest.test_case "acceptance campaign" `Quick
          test_acceptance_campaign;
        Alcotest.test_case "litmus7 supervision" `Quick test_litmus7_supervised;
      ] );
    ( "core.engine.supervised",
      [
        Alcotest.test_case "supervised hang" `Quick test_engine_supervised_hang;
        Alcotest.test_case "total loss" `Quick
          test_engine_supervised_total_loss;
        Alcotest.test_case "unsupervised crash salvage" `Quick
          test_engine_unsupervised_crash_salvage;
        Alcotest.test_case "fault-free untouched" `Quick
          test_engine_fault_free_untouched;
      ] );
  ]

(* Tests for Perple_core.Codegen: golden fragments for sb (matching the
   paper's Fig 6/8 conditions), structural checks across the suite, and —
   when a C toolchain is present — compile checks of the emitted C and
   assembly. *)

module Outcome = Perple_litmus.Outcome
module Catalog = Perple_litmus.Catalog
module Convert = Perple_core.Convert
module Codegen = Perple_core.Codegen

let check = Alcotest.check

let conv_of name = Result.get_ok (Convert.convert (Catalog.find_exn name))

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let assert_contains ~what ~sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected to find %S" what sub

let sb_files =
  lazy
    (Result.get_ok
       (Codegen.all_files (conv_of "sb") ~outcomes:(Outcome.all Catalog.sb)))

let file name =
  let f =
    List.find
      (fun (f : Codegen.file) -> f.Codegen.filename = name)
      (Lazy.force sb_files)
  in
  f.Codegen.content

let test_file_set () =
  let names =
    List.map (fun (f : Codegen.file) -> f.Codegen.filename) (Lazy.force sb_files)
  in
  check
    (Alcotest.list Alcotest.string)
    "sb files"
    [
      "sb_thread_0.s"; "sb_thread_1.s"; "sb_count.c"; "sb_counth.c";
      "sb_params.h"; "sb_harness.c"; "sb_c11.c";
    ]
    names

let test_asm_golden () =
  let asm = file "sb_thread_0.s" in
  assert_contains ~what:"asm" ~sub:".globl perple_sb_thread_0" asm;
  (* The arithmetic sequence 1*n + 1. *)
  assert_contains ~what:"asm" ~sub:"leaq 1(%rcx), %rax" asm;
  assert_contains ~what:"asm" ~sub:"movq %rax, x(%rip)" asm;
  assert_contains ~what:"asm" ~sub:"movq y(%rip), %r8" asm;
  (* buf write and loop control. *)
  assert_contains ~what:"asm" ~sub:"movq %r8, (%rdi,%rcx,8)" asm;
  assert_contains ~what:"asm" ~sub:"jb .Lt0_loop" asm

let test_asm_k2_uses_imul () =
  let conv = conv_of "rfi013" in
  let f = Codegen.thread_asm conv ~thread:1 in
  (* Thread 1's second store to x has k = 2: imulq $2. *)
  assert_contains ~what:"rfi013 asm" ~sub:"imulq $2, %rcx, %rax"
    f.Codegen.content

let test_asm_fence_preserved () =
  let conv = conv_of "amd5" in
  let f = Codegen.thread_asm conv ~thread:0 in
  assert_contains ~what:"amd5 asm" ~sub:"mfence" f.Codegen.content

let test_count_golden () =
  let c = file "sb_count.c" in
  (* Fig 6 step 4: p_out_0 is buf0[n] <= m && buf1[m] <= n, emitted as
     strict < with the sequence offset. *)
  assert_contains ~what:"count.c" ~sub:"static inline int p_out_0" c;
  assert_contains ~what:"count.c" ~sub:"if (!(v < m + 1)) return 0;" c;
  assert_contains ~what:"count.c" ~sub:"void count_sb(long N" c;
  (* Algorithm 1: the nested frame loops and else-if chain. *)
  assert_contains ~what:"count.c" ~sub:"for (long n = 0; n < N; n++)" c;
  assert_contains ~what:"count.c" ~sub:"for (long m = 0; m < N; m++)" c;
  assert_contains ~what:"count.c" ~sub:"else if (p_out_1" c

let test_counth_golden () =
  let c = file "sb_counth.c" in
  assert_contains ~what:"counth.c" ~sub:"static inline int p_out_h0" c;
  (* Fig 8 step 5: m is derived from buf0[n]. *)
  assert_contains ~what:"counth.c" ~sub:"m = (v - 1) / 1 + 1;" c;
  assert_contains ~what:"counth.c" ~sub:"if (m < 0 || m >= N) return 0;" c;
  assert_contains ~what:"counth.c" ~sub:"void counth_sb(long N" c

let test_params_golden () =
  let p = file "sb_params.h" in
  assert_contains ~what:"params" ~sub:"#define t_0_reads 1" p;
  assert_contains ~what:"params" ~sub:"#define t_1_reads 1" p;
  assert_contains ~what:"params" ~sub:"#define n_threads 2" p

let test_params_mp () =
  let conv = conv_of "mp" in
  let p = (Codegen.params_header conv).Codegen.content in
  assert_contains ~what:"mp params" ~sub:"#define t_0_reads 0" p;
  assert_contains ~what:"mp params" ~sub:"#define t_1_reads 2" p

let test_harness_golden () =
  let h = file "sb_harness.c" in
  assert_contains ~what:"harness" ~sub:"pthread_barrier_wait" h;
  assert_contains ~what:"harness" ~sub:"the only barrier" h;
  assert_contains ~what:"harness" ~sub:"counth_sb(n, buf0, buf1, counts);" h

let test_c11_golden () =
  let c = file "sb_c11.c" in
  assert_contains ~what:"c11" ~sub:"#include <stdatomic.h>" c;
  assert_contains ~what:"c11" ~sub:"static _Atomic long x = 0;" c;
  assert_contains ~what:"c11"
    ~sub:"atomic_store_explicit(&x, n + 1, memory_order_relaxed);" c;
  assert_contains ~what:"c11" ~sub:"counth_sb(n, buf0, buf1, counts);" c;
  (* The fence mapping. *)
  let conv = conv_of "amd5" in
  let f =
    Result.get_ok
      (Codegen.c11_file conv
         ~outcomes:(Outcome.all (Catalog.find_exn "amd5")))
  in
  assert_contains ~what:"amd5 c11"
    ~sub:"atomic_thread_fence(memory_order_seq_cst);" f.Codegen.content

let test_name_sanitisation () =
  let conv = conv_of "amd5+staleld" in
  let f = Codegen.params_header conv in
  check Alcotest.string "sanitised" "amd5_staleld_params.h" f.Codegen.filename

let test_n5_exact_in_c () =
  let conv = conv_of "n5" in
  let target = Result.get_ok (Outcome.of_condition (Catalog.find_exn "n5")) in
  let f = Result.get_ok (Codegen.exhaustive_counter_c conv ~outcomes:[ target ]) in
  (* Exact rf: equality, not >=. *)
  assert_contains ~what:"n5 count.c" ~sub:"!= m) return 0;" f.Codegen.content

let balanced_braces s =
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then decr depth)
    s;
  !depth = 0

let test_all_suite_emits () =
  List.iter
    (fun (e : Catalog.entry) ->
      let test = e.Catalog.test in
      let conv = Result.get_ok (Convert.convert test) in
      match Codegen.all_files conv ~outcomes:(Outcome.all test) with
      | Error m -> Alcotest.failf "%s emission failed: %s" test.Perple_litmus.Ast.name m
      | Ok files ->
        List.iter
          (fun (f : Codegen.file) ->
            if Filename.check_suffix f.Codegen.filename ".c" then begin
              if not (balanced_braces f.Codegen.content) then
                Alcotest.failf "%s: unbalanced braces" f.Codegen.filename
            end)
          files)
    Catalog.suite

(* Host toolchain checks: only run when cc is available. *)
let have_cc =
  lazy (Sys.command "cc --version >/dev/null 2>&1" = 0)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "perple-codegen-test"
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_c_compiles () =
  if not (Lazy.force have_cc) then ()
  else
    List.iter
      (fun name ->
        let test = Catalog.find_exn name in
        let conv = Result.get_ok (Convert.convert test) in
        let files =
          Result.get_ok (Codegen.all_files conv ~outcomes:(Outcome.all test))
        in
        with_temp_dir (fun dir ->
            Codegen.write_to_dir ~dir files;
            List.iter
              (fun (f : Codegen.file) ->
                let path = Filename.concat dir f.Codegen.filename in
                let cmd =
                  if Filename.check_suffix path ".c" then
                    Some
                      (Printf.sprintf "cc -fsyntax-only -Wall %s 2>/dev/null"
                         (Filename.quote path))
                  else if Filename.check_suffix path ".s" then
                    Some
                      (Printf.sprintf "cc -c -o /dev/null %s 2>/dev/null"
                         (Filename.quote path))
                  else None
                in
                match cmd with
                | Some cmd ->
                  if Sys.command cmd <> 0 then
                    Alcotest.failf "%s does not compile" f.Codegen.filename
                | None -> ())
              files))
      [ "sb"; "mp"; "podwr001"; "co-iriw"; "n5"; "rfi013" ]

let suite =
  [
    ( "core.codegen",
      [
        Alcotest.test_case "file set" `Quick test_file_set;
        Alcotest.test_case "asm golden" `Quick test_asm_golden;
        Alcotest.test_case "asm k=2 imul" `Quick test_asm_k2_uses_imul;
        Alcotest.test_case "asm fence" `Quick test_asm_fence_preserved;
        Alcotest.test_case "count.c golden" `Quick test_count_golden;
        Alcotest.test_case "counth.c golden" `Quick test_counth_golden;
        Alcotest.test_case "params golden" `Quick test_params_golden;
        Alcotest.test_case "params mp" `Quick test_params_mp;
        Alcotest.test_case "harness golden" `Quick test_harness_golden;
        Alcotest.test_case "c11 golden" `Quick test_c11_golden;
        Alcotest.test_case "name sanitisation" `Quick test_name_sanitisation;
        Alcotest.test_case "n5 exact in C" `Quick test_n5_exact_in_c;
        Alcotest.test_case "whole suite emits" `Quick test_all_suite_emits;
        Alcotest.test_case "emitted code compiles (cc)" `Slow test_c_compiles;
      ] );
  ]

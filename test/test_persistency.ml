(* Persistency & crash-consistency tests: the Pmem persistence domain,
   the operational crash-point executor, the axiomatic persistency
   checker, their cross-validation over the PM catalog and random tests,
   and the crash-suite engine's fan-out / fault isolation. *)

module Ast = Perple_litmus.Ast
module Catalog = Perple_litmus.Catalog
module Config = Perple_sim.Config
module Pmem = Perple_sim.Pmem
module Crashsim = Perple_sim.Crashsim
module Program = Perple_sim.Program
module Machine = Perple_sim.Machine
module Persistency = Perple_memmodel.Persistency
module Crash_suite = Perple_core.Crash_suite
module Supervisor = Perple_harness.Supervisor
module Rng = Perple_util.Rng

let check = Alcotest.check

let model_of = function
  | Config.Epoch -> Persistency.Epoch
  | Config.Eager -> Persistency.Eager

(* --- Pmem: the persistence domain ---------------------------------------- *)

let test_pmem_epoch_drain () =
  let pm = Pmem.create ~nthreads:1 ~nlocs:2 ~cells:1 ~init:[| 0; 0 |] in
  Pmem.flush pm ~thread:0 ~loc:0 ~cell:0 ~value:1;
  check Alcotest.int "pending before drain" 1 (Pmem.pending_count pm);
  check Alcotest.bool "not durable before drain" true
    ((Pmem.durable_snapshot pm).(0).(0) = 0);
  Pmem.drain pm ~persistency:Config.Epoch ~thread:0;
  check Alcotest.int "pending after drain" 0 (Pmem.pending_count pm);
  check Alcotest.int "durable after drain" 1 ((Pmem.durable_snapshot pm).(0).(0))

let test_pmem_eager_drain_is_noop () =
  let pm = Pmem.create ~nthreads:1 ~nlocs:1 ~cells:1 ~init:[| 0 |] in
  Pmem.flush pm ~thread:0 ~loc:0 ~cell:0 ~value:7;
  Pmem.drain pm ~persistency:Config.Eager ~thread:0;
  check Alcotest.int "still pending" 1 (Pmem.pending_count pm);
  check Alcotest.int "not durable" 0 ((Pmem.durable_snapshot pm).(0).(0))

let test_pmem_reachable_images () =
  let pm = Pmem.create ~nthreads:1 ~nlocs:2 ~cells:1 ~init:[| 0; 0 |] in
  Pmem.flush pm ~thread:0 ~loc:0 ~cell:0 ~value:1;
  Pmem.flush pm ~thread:0 ~loc:1 ~cell:0 ~value:2;
  let images = Pmem.reachable_images pm in
  (* 2 pending writebacks to distinct cells: all 4 subsets distinct. *)
  check Alcotest.int "2^2 images" 4 (List.length images)

let test_pmem_crash_snapshot_draw_count () =
  (* The bit-identity invariant: a crash snapshot draws exactly one coin
     per pending writeback, and zero when nothing is pending. *)
  let pm = Pmem.create ~nthreads:1 ~nlocs:1 ~cells:1 ~init:[| 0 |] in
  let rng = Rng.create 11 in
  let untouched = Rng.copy rng in
  ignore (Pmem.crash_snapshot pm ~rng);
  check Alcotest.bool "no pending: no draws" true
    (Rng.bits64 rng = Rng.bits64 untouched);
  Pmem.flush pm ~thread:0 ~loc:0 ~cell:0 ~value:1;
  let rng = Rng.create 11 in
  let shadow = Rng.copy rng in
  ignore (Pmem.crash_snapshot pm ~rng);
  ignore (Rng.bool shadow);
  check Alcotest.bool "one pending: one draw" true
    (Rng.bits64 rng = Rng.bits64 shadow)

(* --- PM catalog verdicts -------------------------------------------------- *)

(* Each catalog PM entry declares whether it holds under the epoch model
   and under the eager bug; the operational executor and the axiomatic
   checker must both reproduce exactly those verdicts. *)
let test_pm_suite_verdicts_operational () =
  List.iter
    (fun (e : Catalog.pm_entry) ->
      let name = e.Catalog.pm_test.Ast.name in
      check Alcotest.bool (name ^ " epoch") e.Catalog.holds_epoch
        (Crashsim.violation_free ~persistency:Config.Epoch e.Catalog.pm_test);
      check Alcotest.bool (name ^ " eager") e.Catalog.holds_eager
        (Crashsim.violation_free ~persistency:Config.Eager e.Catalog.pm_test))
    Catalog.pm_suite

let test_pm_suite_verdicts_axiomatic () =
  List.iter
    (fun (e : Catalog.pm_entry) ->
      let name = e.Catalog.pm_test.Ast.name in
      check Alcotest.bool (name ^ " epoch") e.Catalog.holds_epoch
        (Persistency.condition_holds Persistency.Epoch e.Catalog.pm_test);
      check Alcotest.bool (name ^ " eager") e.Catalog.holds_eager
        (Persistency.condition_holds Persistency.Eager e.Catalog.pm_test))
    Catalog.pm_suite

let test_pm_suite_well_formed () =
  List.iter
    (fun (e : Catalog.pm_entry) ->
      let t = e.Catalog.pm_test in
      check Alcotest.bool (t.Ast.name ^ " valid") true
        (Result.is_ok (Ast.validate t));
      check Alcotest.bool (t.Ast.name ^ " uses persistency") true
        (Ast.uses_persistency t);
      check Alcotest.bool (t.Ast.name ^ " findable") true
        (Catalog.find_pm t.Ast.name <> None))
    Catalog.pm_suite;
  check Alcotest.bool "unknown pm test" true (Catalog.find_pm "nope" = None)

(* --- Cross-validation: operational vs axiomatic --------------------------- *)

(* ISSUE acceptance: at EVERY crash point of EVERY catalog PM test, under
   both persistency models, the operational executor and the axiomatic
   checker enumerate exactly the same set of persisted images. *)
let images_testable = Alcotest.(list (list (pair string int)))

let cross_validate t =
  List.iter
    (fun persistency ->
      let points = Crashsim.crash_points t in
      for point = 0 to points - 1 do
        check images_testable
          (Printf.sprintf "%s/%s/point %d" t.Ast.name
             (Config.persistency_name persistency)
             point)
          (Persistency.reachable_images (model_of persistency) t ~point)
          (Crashsim.reachable_images ~persistency t ~point)
      done)
    [ Config.Epoch; Config.Eager ]

let test_cross_validation_pm_suite () =
  List.iter
    (fun (e : Catalog.pm_entry) -> cross_validate e.Catalog.pm_test)
    Catalog.pm_suite

(* The volatile catalog has no flushes: a single initial-valued image at
   every point, under both models. *)
let test_cross_validation_volatile () =
  List.iter
    (fun (e : Catalog.entry) -> cross_validate e.Catalog.test)
    Catalog.suite

let cross_validation_property =
  QCheck.Test.make ~name:"operational/axiomatic persistency agree" ~count:60
    (Gen.arbitrary_test ~max_threads:3 ~max_instrs:3 ~persistency:true ())
    (fun t ->
      List.for_all
        (fun persistency ->
          let points = Crashsim.crash_points t in
          let rec ok point =
            point >= points
            || Persistency.reachable_images (model_of persistency) t ~point
                 = Crashsim.reachable_images ~persistency t ~point
               && ok (point + 1)
          in
          ok 0)
        [ Config.Epoch; Config.Eager ])

(* --- Crashsim ------------------------------------------------------------- *)

let test_crashsim_points () =
  let t = Catalog.find_exn "sb" in
  check Alcotest.int "sb instructions" 4 (Crashsim.instruction_count t);
  check Alcotest.int "sb points" 5 (Crashsim.crash_points t)

let test_crashsim_point_out_of_range () =
  let t = Catalog.find_exn "sb" in
  Alcotest.check_raises "beyond the last boundary"
    (Invalid_argument "Crashsim.run_prefix: point 6 > 4 instructions")
    (fun () ->
      ignore (Crashsim.reachable_images ~persistency:Config.Epoch t ~point:6))

let test_crashsim_witness_sorted () =
  let e = Option.get (Catalog.find_pm "pm-epoch-order") in
  let results = Crashsim.evaluate ~persistency:Config.Eager e.Catalog.pm_test in
  let witnesses =
    List.filter_map (fun (r : Crashsim.point_result) -> r.Crashsim.witness)
      results
  in
  check Alcotest.bool "at least one witness" true (witnesses <> []);
  List.iter
    (fun w ->
      check images_testable "witness sorted" [ List.sort compare w ] [ w ])
    witnesses

(* --- Machine integration --------------------------------------------------- *)

(* Programs without Flush/Drain must not allocate a persistence domain:
   the stats report no persisted state and the volatile rng stream is
   untouched (bit-identity with pre-persistency ledgers). *)
let test_machine_no_pmem_without_persistency () =
  let conv =
    Result.get_ok (Perple_core.Convert.convert (Catalog.find_exn "sb"))
  in
  let stats =
    Machine.run ~config:Config.default ~rng:(Rng.create 3)
      ~image:conv.Perple_core.Convert.image ~iterations:5
      ~barrier:Machine.No_barrier ()
  in
  check Alcotest.bool "no persisted state" true
    (stats.Machine.persisted = None)

let test_machine_persists_flushed_state () =
  let e = Option.get (Catalog.find_pm "pm-epoch-order") in
  let image = Program.compile_litmus e.Catalog.pm_test in
  check Alcotest.bool "image uses persistency" true
    (Program.uses_persistency image);
  let stats =
    Machine.run ~config:Config.default ~rng:(Rng.create 3) ~image
      ~iterations:1 ~barrier:Machine.No_barrier ()
  in
  match stats.Machine.persisted with
  | None -> Alcotest.fail "expected a persisted image"
  | Some persisted ->
    (* Both drains retired under the epoch model: x and y durable. *)
    check Alcotest.int "x durable" 1 persisted.(0).(0);
    check Alcotest.int "y durable" 1 persisted.(1).(0)

(* --- Crash_suite engine ---------------------------------------------------- *)

let records_of_suite ?jobs ?skip ?on_record ?evaluate_point ~persistency test
    =
  Array.map Option.get
    (Crash_suite.evaluate ?jobs ?skip ?on_record ?evaluate_point ~persistency
       test)

let test_crash_suite_finds_planted_bug () =
  let e = Option.get (Catalog.find_pm "pm-epoch-order") in
  let records = records_of_suite ~persistency:Config.Eager e.Catalog.pm_test in
  let violating =
    Array.fold_left
      (fun n (r : Crash_suite.record) ->
        if r.Crash_suite.violations > 0 then n + 1 else n)
      0 records
  in
  check Alcotest.bool "eager bug detected" true (violating > 0);
  let clean = records_of_suite ~persistency:Config.Epoch e.Catalog.pm_test in
  Array.iter
    (fun (r : Crash_suite.record) ->
      check Alcotest.int
        (Printf.sprintf "epoch point %d clean" r.Crash_suite.point)
        0 r.Crash_suite.violations)
    clean

let test_crash_suite_jobs_identical () =
  let e = Option.get (Catalog.find_pm "pm-torn-pair") in
  let records jobs = records_of_suite ~jobs ~persistency:Config.Eager e.Catalog.pm_test in
  check Alcotest.bool "jobs 1 = jobs 4" true (records 1 = records 4)

let test_crash_suite_unrecoverable_isolated () =
  (* A raising evaluator marks only its own point unrecoverable; siblings
     still evaluate, and the suite never raises. *)
  let e = Option.get (Catalog.find_pm "pm-epoch-order") in
  let test = e.Catalog.pm_test in
  let evaluate_point ~point =
    if point = 2 then failwith "recovery exploded"
    else Crashsim.evaluate_point ~persistency:Config.Epoch test ~point
  in
  let records =
    records_of_suite ~jobs:2 ~evaluate_point ~persistency:Config.Epoch test
  in
  Array.iteri
    (fun p (r : Crash_suite.record) ->
      if p = 2 then begin
        check Alcotest.bool "unrecoverable outcome" true
          (r.Crash_suite.outcome = Supervisor.Unrecoverable);
        check Alcotest.bool "carries the message" true
          (match r.Crash_suite.error with
          | Some m ->
            let rec has i =
              i + 8 <= String.length m
              && (String.sub m i 8 = "exploded" || has (i + 1))
            in
            has 0
          | None -> false)
      end
      else
        check Alcotest.bool
          (Printf.sprintf "point %d evaluated" p)
          true
          (r.Crash_suite.outcome = Supervisor.Ok))
    records

let test_crash_suite_skip_and_on_record () =
  let e = Option.get (Catalog.find_pm "pm-unflushed") in
  let retired = ref [] in
  let skip p = p = 0 in
  let on_record (r : Crash_suite.record) =
    retired := r.Crash_suite.point :: !retired
  in
  let records =
    Crash_suite.evaluate ~skip ~on_record ~persistency:Config.Epoch
      e.Catalog.pm_test
  in
  check Alcotest.bool "skipped slot empty" true (records.(0) = None);
  check Alcotest.bool "others filled" true
    (Array.to_list records |> List.tl |> List.for_all Option.is_some);
  check Alcotest.int "one callback per evaluated point"
    (Array.length records - 1)
    (List.length !retired);
  check Alcotest.bool "skipped point not retired" true
    (not (List.mem 0 !retired))

let test_crash_suite_json_roundtrip () =
  let e = Option.get (Catalog.find_pm "pm-torn-pair") in
  let records = records_of_suite ~persistency:Config.Eager e.Catalog.pm_test in
  Array.iter
    (fun (r : Crash_suite.record) ->
      match Crash_suite.of_json (Crash_suite.to_json r) with
      | Error m -> Alcotest.failf "roundtrip failed: %s" m
      | Ok r' ->
        check Alcotest.bool
          (Printf.sprintf "point %d roundtrips" r.Crash_suite.point)
          true (r = r'))
    records;
  (* Strictness: mistyped and missing fields are rejected whole. *)
  let module Json = Perple_util.Json in
  check Alcotest.bool "wrong kind rejected" true
    (Result.is_error
       (Crash_suite.of_json (Json.Obj [ ("kind", Json.String "run") ])));
  check Alcotest.bool "missing fields rejected" true
    (Result.is_error
       (Crash_suite.of_json (Json.Obj [ ("kind", Json.String "point") ])));
  check Alcotest.bool "volatile outcome rejected" true
    (Result.is_error
       (Crash_suite.of_json
          (Json.Obj
             [
               ("kind", Json.String "point");
               ("point", Json.Int 0);
               ("outcome", Json.String "timeout");
               ("images", Json.Int 1);
               ("violations", Json.Int 0);
             ])))

let suite =
  [
    ( "persistency.pmem",
      [
        Alcotest.test_case "epoch drain commits" `Quick test_pmem_epoch_drain;
        Alcotest.test_case "eager drain is a no-op" `Quick
          test_pmem_eager_drain_is_noop;
        Alcotest.test_case "reachable images" `Quick test_pmem_reachable_images;
        Alcotest.test_case "snapshot draw count" `Quick
          test_pmem_crash_snapshot_draw_count;
      ] );
    ( "persistency.verdicts",
      [
        Alcotest.test_case "pm suite well-formed" `Quick
          test_pm_suite_well_formed;
        Alcotest.test_case "operational verdicts" `Quick
          test_pm_suite_verdicts_operational;
        Alcotest.test_case "axiomatic verdicts" `Quick
          test_pm_suite_verdicts_axiomatic;
      ] );
    ( "persistency.crossvalidation",
      [
        Alcotest.test_case "pm suite images agree" `Quick
          test_cross_validation_pm_suite;
        Alcotest.test_case "volatile suite images agree" `Quick
          test_cross_validation_volatile;
        QCheck_alcotest.to_alcotest cross_validation_property;
      ] );
    ( "persistency.crashsim",
      [
        Alcotest.test_case "crash points" `Quick test_crashsim_points;
        Alcotest.test_case "point out of range" `Quick
          test_crashsim_point_out_of_range;
        Alcotest.test_case "witness sorted" `Quick test_crashsim_witness_sorted;
      ] );
    ( "persistency.machine",
      [
        Alcotest.test_case "no pmem without persistency" `Quick
          test_machine_no_pmem_without_persistency;
        Alcotest.test_case "persists flushed state" `Quick
          test_machine_persists_flushed_state;
      ] );
    ( "persistency.crash_suite",
      [
        Alcotest.test_case "finds planted bug" `Quick
          test_crash_suite_finds_planted_bug;
        Alcotest.test_case "jobs identical" `Quick
          test_crash_suite_jobs_identical;
        Alcotest.test_case "unrecoverable isolated" `Quick
          test_crash_suite_unrecoverable_isolated;
        Alcotest.test_case "skip and on_record" `Quick
          test_crash_suite_skip_and_on_record;
        Alcotest.test_case "json roundtrip" `Quick
          test_crash_suite_json_roundtrip;
      ] );
  ]

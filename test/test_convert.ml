(* Tests for Perple_core.Convert: arithmetic-sequence construction,
   constant canonicalisation, decoding, and convertibility detection. *)

module Ast = Perple_litmus.Ast
module Catalog = Perple_litmus.Catalog
module Program = Perple_sim.Program
module Convert = Perple_core.Convert

let check = Alcotest.check

let conv_of name = Result.get_ok (Convert.convert (Catalog.find_exn name))

let test_k_values () =
  let conv = conv_of "rfi013" in
  let x = Program.location_id conv.Convert.image "x" in
  let y = Program.location_id conv.Convert.image "y" in
  check Alcotest.int "k_x" 2 conv.Convert.k_by_loc.(x);
  check Alcotest.int "k_y" 1 conv.Convert.k_by_loc.(y)

let test_t_reads () =
  check (Alcotest.array Alcotest.int) "sb" [| 1; 1 |] (conv_of "sb").Convert.t_reads;
  check (Alcotest.array Alcotest.int) "mp" [| 0; 2 |] (conv_of "mp").Convert.t_reads;
  check (Alcotest.array Alcotest.int) "rfi015" [| 0; 2; 3 |]
    (conv_of "rfi015").Convert.t_reads

let test_load_threads_frames () =
  let conv = conv_of "rfi015" in
  check (Alcotest.array Alcotest.int) "load threads" [| 1; 2 |]
    conv.Convert.load_threads;
  check (Alcotest.array Alcotest.int) "frame index" [| -1; 0; 1 |]
    conv.Convert.frame_index

let test_sequence_operands () =
  let conv = conv_of "sb" in
  match conv.Convert.image.Program.programs.(0).Program.body.(0) with
  | Program.Store { addr = Program.Shared; value = Program.Seq { k = 1; a = 1 }; _ } ->
    ()
  | _ -> Alcotest.fail "expected shared seq store"

let test_canonicalisation () =
  (* rfi017 stores constant 2 to y; canonically it becomes 1 (k_y = 1). *)
  let conv = conv_of "rfi017" in
  let store = Option.get (Convert.store_for_value conv ~location:"y" ~value:2) in
  check Alcotest.int "original" 2 store.Convert.constant;
  check Alcotest.int "canonical" 1 store.Convert.canonical;
  check Alcotest.int "k" 1 store.Convert.k

let test_registers_renumbered () =
  let conv = conv_of "iwp23b" in
  let regs =
    Array.to_list conv.Convert.image.Program.programs.(0).Program.body
    |> List.filter_map (function
         | Program.Load { reg; _ } -> Some reg
         | Program.Store _ | Program.Fence | Program.Flush _ | Program.Drain
           ->
           None)
  in
  check (Alcotest.list Alcotest.int) "slots in order" [ 0; 1 ] regs

let test_seq_value () =
  let conv = conv_of "rfi013" in
  let s1 = Option.get (Convert.store_for_value conv ~location:"x" ~value:1) in
  let s2 = Option.get (Convert.store_for_value conv ~location:"x" ~value:2) in
  check Alcotest.int "2n+1 at 3" 7 (Convert.seq_value s1 ~iteration:3);
  check Alcotest.int "2n+2 at 3" 8 (Convert.seq_value s2 ~iteration:3)

let test_decode () =
  let conv = conv_of "rfi013" in
  let x = Program.location_id conv.Convert.image "x" in
  (match Convert.decode conv ~loc_id:x ~value:0 with
  | Some Convert.Initial -> ()
  | _ -> Alcotest.fail "0 is initial");
  (match Convert.decode conv ~loc_id:x ~value:7 with
  | Some (Convert.Member { store; iteration }) ->
    check Alcotest.int "store constant" 1 store.Convert.constant;
    check Alcotest.int "iteration" 3 iteration
  | _ -> Alcotest.fail "7 should decode");
  check Alcotest.bool "negative undecodable" true
    (Convert.decode conv ~loc_id:x ~value:(-3) = None)

let decode_roundtrip =
  QCheck.Test.make ~name:"decode inverts seq_value" ~count:500
    QCheck.(pair (oneofl [ "sb"; "rfi013"; "co-iriw"; "podwr001" ]) (int_bound 10_000))
    (fun (name, iteration) ->
      let conv = conv_of name in
      List.for_all
        (fun (store : Convert.store) ->
          let value = Convert.seq_value store ~iteration in
          match Convert.decode conv ~loc_id:store.Convert.loc_id ~value with
          | Some (Convert.Member { store = s'; iteration = i' }) ->
            s'.Convert.canonical = store.Convert.canonical
            && s'.Convert.thread = store.Convert.thread
            && i' = iteration
          | Some Convert.Initial | None -> false)
        conv.Convert.stores)

let test_convert_body_vs_convert () =
  (* A memory condition blocks convert but not convert_body. *)
  let t = List.hd Catalog.non_convertible in
  check Alcotest.bool "convert rejects" true
    (Result.is_error (Convert.convert t));
  check Alcotest.bool "convert_body accepts" true
    (Result.is_ok (Convert.convert_body t))

let test_nonzero_init_rejected () =
  let t =
    Ast.make ~name:"init1" ~init:[ ("x", 5) ]
      ~threads:[ [ Ast.Load (0, "x") ] ]
      ~condition:{ Ast.quantifier = Ast.Exists; atoms = [ Ast.Reg_eq (0, 0, 5) ] }
      ()
  in
  match Convert.convert t with
  | Error (Convert.Nonzero_initial "x") -> ()
  | Error _ -> Alcotest.fail "wrong reason"
  | Ok _ -> Alcotest.fail "should reject nonzero init"

let test_invalid_rejected () =
  let t =
    Ast.make ~name:"dup"
      ~threads:[ [ Ast.Store ("x", 1); Ast.Store ("x", 1) ] ]
      ~condition:{ Ast.quantifier = Ast.Exists; atoms = [] }
      ()
  in
  match Convert.convert t with
  | Error (Convert.Invalid (Ast.Duplicate_constant ("x", 1))) -> ()
  | _ -> Alcotest.fail "should surface validation error"

let test_slot_of_register () =
  let conv = conv_of "iwp23b" in
  check (Alcotest.option Alcotest.int) "r1 -> slot 1" (Some 1)
    (Convert.slot_of_register conv ~thread:0 ~reg:1);
  check (Alcotest.option Alcotest.int) "missing" None
    (Convert.slot_of_register conv ~thread:0 ~reg:7)

let test_whole_suite_converts () =
  List.iter
    (fun (e : Catalog.entry) ->
      match Convert.convert e.Catalog.test with
      | Ok conv ->
        check Alcotest.int
          (e.Catalog.test.Ast.name ^ " TL")
          (Ast.load_thread_count e.Catalog.test)
          (Array.length conv.Convert.load_threads)
      | Error r ->
        Alcotest.failf "%s should convert: %s" e.Catalog.test.Ast.name
          (Format.asprintf "%a" Convert.pp_reason r))
    Catalog.suite

let suite =
  [
    ( "core.convert",
      [
        Alcotest.test_case "k values" `Quick test_k_values;
        Alcotest.test_case "t_reads" `Quick test_t_reads;
        Alcotest.test_case "load threads/frames" `Quick
          test_load_threads_frames;
        Alcotest.test_case "sequence operands" `Quick test_sequence_operands;
        Alcotest.test_case "canonicalisation" `Quick test_canonicalisation;
        Alcotest.test_case "registers renumbered" `Quick
          test_registers_renumbered;
        Alcotest.test_case "seq_value" `Quick test_seq_value;
        Alcotest.test_case "decode" `Quick test_decode;
        QCheck_alcotest.to_alcotest decode_roundtrip;
        Alcotest.test_case "convert_body vs convert" `Quick
          test_convert_body_vs_convert;
        Alcotest.test_case "nonzero init" `Quick test_nonzero_init_rejected;
        Alcotest.test_case "invalid test" `Quick test_invalid_rejected;
        Alcotest.test_case "slot_of_register" `Quick test_slot_of_register;
        Alcotest.test_case "whole suite converts" `Quick
          test_whole_suite_converts;
      ] );
  ]

(* Tests for the diy-style cycle generator: edge parsing, classic cycles
   regenerating the classic tests, the prediction-vs-checker theorem on
   named and random cycles, and integration with the PerpLE pipeline
   (generated allowed tests' targets are found; forbidden ones never). *)

module Ast = Perple_litmus.Ast
module Outcome = Perple_litmus.Outcome
module Generate = Perple_litmus.Generate
module Catalog = Perple_litmus.Catalog
module Operational = Perple_memmodel.Operational
module Axiomatic = Perple_memmodel.Axiomatic
module Engine = Perple_core.Engine
module Rng = Perple_util.Rng

let check = Alcotest.check

let cycle_of text = Result.get_ok (Generate.parse_cycle text)

let generated name text =
  Result.get_ok (Generate.of_cycle ~name (cycle_of text))

(* --- Edge parsing --------------------------------------------------------- *)

let test_edge_strings () =
  List.iter
    (fun e ->
      check Alcotest.bool
        (Generate.edge_to_string e ^ " roundtrip")
        true
        (Generate.edge_of_string (Generate.edge_to_string e) = Ok e))
    [
      Generate.Pod (Generate.W, Generate.R);
      Generate.Pod (Generate.R, Generate.W);
      Generate.Pod (Generate.W, Generate.W);
      Generate.Pod (Generate.R, Generate.R);
      Generate.Fenced (Generate.W, Generate.R);
      Generate.Rfe;
      Generate.Fre;
      Generate.Wse;
    ];
  check Alcotest.bool "case insensitive" true
    (Generate.edge_of_string "podwr" = Ok (Generate.Pod (Generate.W, Generate.R)));
  check Alcotest.bool "unknown rejected" true
    (Result.is_error (Generate.edge_of_string "PodXY"));
  check Alcotest.bool "empty cycle rejected" true
    (Result.is_error (Generate.parse_cycle "   "))

let test_well_formed () =
  check Alcotest.bool "sb cycle ok" true
    (Generate.well_formed (cycle_of "PodWR Fre PodWR Fre") = Ok ());
  (* Mismatched chaining: PodWR ends in R but PodWR starts with W. *)
  check Alcotest.bool "bad chain" true
    (Result.is_error (Generate.well_formed (cycle_of "PodWR PodWR Fre Fre")));
  (* Only one communication edge. *)
  check Alcotest.bool "one comm" true
    (Result.is_error (Generate.well_formed (cycle_of "PodWR Fre")))

(* --- Classic cycles regenerate the classic tests ------------------------- *)

let same_shape a b =
  (* Same programs and same condition atoms (names/docs may differ). *)
  a.Ast.threads = b.Ast.threads
  && a.Ast.condition.Ast.atoms = b.Ast.condition.Ast.atoms

let test_sb_cycle () =
  check Alcotest.bool "sb regenerated" true
    (same_shape (generated "sb" "PodWR Fre PodWR Fre") Catalog.sb)

let test_mp_cycle () =
  check Alcotest.bool "mp regenerated" true
    (same_shape (generated "mp" "PodWW Rfe PodRR Fre") Catalog.mp)

let test_wrc_cycle () =
  check Alcotest.bool "wrc regenerated" true
    (same_shape
       (generated "wrc" "Rfe PodRW Rfe PodRR Fre")
       (Catalog.find_exn "wrc"))

(* The generator may order threads/locations differently from the catalog
   (the tests are isomorphic, not equal); compare structural invariants
   and model verdicts instead. *)
let isomorphic_check name text reference =
  let t = generated name text in
  check Alcotest.int (name ^ " threads") (Ast.thread_count reference)
    (Ast.thread_count t);
  check Alcotest.int (name ^ " TL")
    (Ast.load_thread_count reference)
    (Ast.load_thread_count t);
  check Alcotest.int (name ^ " atoms")
    (List.length reference.Ast.condition.Ast.atoms)
    (List.length t.Ast.condition.Ast.atoms);
  List.iter
    (fun model ->
      check Alcotest.bool
        (name ^ " verdict " ^ Operational.model_to_string model)
        (Result.get_ok (Operational.target_allowed model reference))
        (Result.get_ok (Operational.target_allowed model t)))
    [ Operational.Sc; Operational.Tso; Operational.Pso ]

let test_iriw_cycle () =
  isomorphic_check "iriw" "Rfe PodRR Fre Rfe PodRR Fre"
    (Catalog.find_exn "iriw")

let test_lb_cycle () =
  isomorphic_check "lb" "PodRW Rfe PodRW Rfe" Catalog.lb

let test_fenced_cycle () =
  let t = generated "amd5" "MFencedWR Fre MFencedWR Fre" in
  check Alcotest.bool "fences present" true
    (Array.exists (fun i -> i = Ast.Mfence) t.Ast.threads.(0));
  check Alcotest.bool "amd5 shape" true
    (same_shape t (Catalog.find_exn "amd5"))

let test_wse_non_convertible () =
  let t = generated "2+2w" "PodWW Wse PodWW Wse" in
  check Alcotest.bool "memory condition" true
    (List.exists
       (function Ast.Loc_eq _ -> true | Ast.Reg_eq _ -> false)
       t.Ast.condition.Ast.atoms);
  check Alcotest.bool "not convertible" true
    (Result.is_error (Perple_core.Convert.convert t))

(* --- Prediction vs checkers ---------------------------------------------- *)

let verdict model test =
  match Outcome.of_condition test with
  | Ok _ -> Result.get_ok (Operational.target_allowed model test)
  | Error _ -> Axiomatic.condition_reachable model test

let check_prediction name cycle =
  match Generate.of_cycle ~name cycle with
  | Error _ -> () (* unrealisable cycles are skipped *)
  | Ok test ->
    let p = Generate.predict cycle in
    let expect model got =
      if got <> verdict model test then
        Alcotest.failf "%s: %s prediction %b but checker disagrees" name
          (Operational.model_to_string model)
          got
    in
    expect Operational.Sc p.Generate.sc;
    expect Operational.Tso p.Generate.tso;
    expect Operational.Pso p.Generate.pso

let test_named_predictions () =
  List.iter
    (fun (name, text) -> check_prediction name (cycle_of text))
    Generate.named_cycles

let random_prediction_property =
  QCheck.Test.make ~name:"cycle prediction matches checkers" ~count:150
    (QCheck.make
       ~print:(fun cycle ->
         String.concat " " (List.map Generate.edge_to_string cycle))
       (QCheck.Gen.map
          (fun seed ->
            Generate.random_cycle (Rng.create seed) ~max_edges:7)
          QCheck.Gen.(int_bound 1_000_000)))
    (fun cycle ->
      match Generate.of_cycle ~name:"prop" cycle with
      | Error _ -> true
      | Ok test ->
        let p = Generate.predict cycle in
        verdict Operational.Sc test = p.Generate.sc
        && verdict Operational.Tso test = p.Generate.tso
        && verdict Operational.Pso test = p.Generate.pso)

let random_cycles_well_formed =
  QCheck.Test.make ~name:"random cycles are well-formed" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Generate.well_formed
        (Generate.random_cycle (Rng.create seed) ~max_edges:9)
      = Ok ())

(* --- Pipeline integration ------------------------------------------------- *)

let test_generated_through_pipeline () =
  (* A TSO-allowed generated test's target is found by PerpLE; a forbidden
     one's never is. *)
  let allowed = generated "gen-sb" "PodWR Fre PodWR Fre" in
  let report =
    Result.get_ok (Engine.run ~seed:9 ~iterations:4_000 allowed)
  in
  check Alcotest.bool "allowed target found" true
    (Engine.target_count report > 0);
  let forbidden = generated "gen-wrc" "Rfe PodRW Rfe PodRR Fre" in
  let report =
    Result.get_ok (Engine.run ~seed:9 ~iterations:4_000 forbidden)
  in
  check Alcotest.int "forbidden target never" 0 (Engine.target_count report)

let generated_no_false_positives =
  QCheck.Test.make ~name:"generated forbidden targets never fire" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cycle = Generate.random_cycle (Rng.create seed) ~max_edges:6 in
      match Generate.of_cycle ~name:"prop" cycle with
      | Error _ -> true
      | Ok test ->
        if (Generate.predict cycle).Generate.tso then true
        else begin
          match Engine.run ~seed ~iterations:500 test with
          | Error _ -> true (* Wse cycles are not convertible *)
          | Ok report -> Engine.target_count report = 0
        end)

let suite =
  [
    ( "litmus.generate",
      [
        Alcotest.test_case "edge strings" `Quick test_edge_strings;
        Alcotest.test_case "well-formedness" `Quick test_well_formed;
        Alcotest.test_case "sb cycle" `Quick test_sb_cycle;
        Alcotest.test_case "mp cycle" `Quick test_mp_cycle;
        Alcotest.test_case "wrc cycle" `Quick test_wrc_cycle;
        Alcotest.test_case "iriw cycle" `Quick test_iriw_cycle;
        Alcotest.test_case "lb cycle" `Quick test_lb_cycle;
        Alcotest.test_case "fenced cycle" `Quick test_fenced_cycle;
        Alcotest.test_case "Wse non-convertible" `Quick
          test_wse_non_convertible;
        Alcotest.test_case "named predictions" `Quick test_named_predictions;
        QCheck_alcotest.to_alcotest random_prediction_property;
        QCheck_alcotest.to_alcotest random_cycles_well_formed;
        Alcotest.test_case "pipeline integration" `Quick
          test_generated_through_pipeline;
        QCheck_alcotest.to_alcotest generated_no_false_positives;
      ] );
  ]

let () =
  Alcotest.run "perple"
    (Test_util.suite @ Test_litmus.suite @ Test_memmodel.suite
   @ Test_sim.suite @ Test_harness.suite @ Test_supervisor.suite
   @ Test_convert.suite
   @ Test_counting.suite @ Test_pool.suite @ Test_codegen.suite
   @ Test_report.suite
   @ Test_generate.suite @ Test_soundness.suite @ Test_observe.suite
   @ Test_persistency.suite @ Test_journal.suite @ Test_service.suite
   @ Test_coordinator.suite @ Test_cli.suite
   @ Test_misc.suite)

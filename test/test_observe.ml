(* Tests for the observability layer: the Trace_event/Metrics sinks in
   Perple_util, their no-op-when-disabled contract, the instrumentation
   threaded through Engine/Machine/Count/Pool, and the determinism
   contract — metrics output is bit-identical for any --jobs N. *)

module Json = Perple_util.Json
module Trace_event = Perple_util.Trace_event
module Metrics = Perple_util.Metrics
module Catalog = Perple_litmus.Catalog
module Engine = Perple_core.Engine
module Supervisor = Perple_harness.Supervisor
module Fault = Perple_sim.Fault

let check = Alcotest.check

(* Sinks are ambient process-global state: make sure a failing test cannot
   leak its sink into the next one. *)
let with_sinks f =
  let trace = Trace_event.create_sink () in
  let metrics = Metrics.create_sink () in
  Trace_event.install trace;
  Metrics.install metrics;
  Fun.protect
    ~finally:(fun () ->
      Trace_event.uninstall ();
      Metrics.uninstall ())
    (fun () -> f trace metrics)

(* --- Trace sink ----------------------------------------------------------- *)

let test_trace_disabled_noop () =
  check Alcotest.bool "disabled" false (Trace_event.enabled ());
  check (Alcotest.float 0.0) "now is the no-sink sentinel"
    Trace_event.no_sink (Trace_event.now ());
  (* None of these may raise or record anywhere. *)
  Trace_event.complete ~name:"x" ~since:0.0 ();
  Trace_event.instant ~name:"y" ();
  check Alcotest.int "span passes value through" 42
    (Trace_event.span "z" (fun () -> 42))

let test_trace_records_events () =
  with_sinks (fun trace _ ->
      let t0 = Trace_event.now () in
      Trace_event.complete ~name:"a" ~since:t0
        ~args:[ ("k", Trace_event.Int 7) ]
        ();
      Trace_event.instant ~name:"b" ();
      let v = Trace_event.span "c" (fun () -> "ok") in
      check Alcotest.string "span result" "ok" v;
      check Alcotest.int "three events" 3 (Trace_event.length trace);
      (* span records even when the body raises. *)
      (try Trace_event.span "boom" (fun () -> failwith "x") with _ -> ());
      check Alcotest.int "raised span recorded" 4 (Trace_event.length trace))

(* Regression: clock discipline.  [now] is never negative with a sink
   installed and never decreases; a span whose [since] was captured
   before the sink existed is dropped, not recorded against a bogus
   epoch; a [since] from the future clamps to a zero-duration span
   rather than a negative one. *)
let test_trace_clock_discipline () =
  (* Captured while disabled: the sentinel. *)
  let pre_install = Trace_event.now () in
  check Alcotest.bool "pre-install capture is negative" true
    (pre_install < 0.0);
  with_sinks (fun trace _ ->
      let a = Trace_event.now () in
      check Alcotest.bool "now >= 0 with sink" true (a >= 0.0);
      let b = Trace_event.now () in
      check Alcotest.bool "now never decreases" true (b >= a);
      Trace_event.complete ~name:"stale" ~since:pre_install ();
      check Alcotest.int "pre-install span dropped" 0
        (Trace_event.length trace);
      (* A future [since] (clock stepped back between capture and
         completion) yields dur = 0, not a negative duration. *)
      Trace_event.complete ~name:"stepped" ~since:(b +. 1e9) ();
      check Alcotest.int "stepped span recorded" 1 (Trace_event.length trace);
      match Json.member "traceEvents" (Trace_event.to_json trace) with
      | Some (Json.List [ ev ]) -> (
        match Json.member "dur" ev with
        | Some (Json.Float d) ->
          check Alcotest.bool "duration clamped at 0" true (d >= 0.0)
        | _ -> Alcotest.fail "dur missing")
      | _ -> Alcotest.fail "expected exactly one event")

let test_trace_json_shape () =
  let doc =
    with_sinks (fun trace _ ->
        Trace_event.span "outer" (fun () -> ());
        Trace_event.instant ~name:"mark" ();
        Trace_event.to_json trace)
  in
  (* Chrome trace-event format: top-level traceEvents array whose entries
     carry ph/name/ts/pid/tid. *)
  match Json.member "traceEvents" doc with
  | Some (Json.List events) ->
    check Alcotest.int "two events" 2 (List.length events);
    List.iter
      (fun ev ->
        List.iter
          (fun field ->
            if Json.member field ev = None then
              Alcotest.failf "event missing %s" field)
          [ "ph"; "name"; "ts"; "pid"; "tid" ])
      events;
    (* The document itself must survive a strict reparse. *)
    (match Json.parse (Json.to_string ~indent:true doc) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "trace document invalid: %s" e)
  | _ -> Alcotest.fail "traceEvents missing"

(* --- Metrics sink --------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  check Alcotest.bool "disabled" false (Metrics.enabled ());
  Metrics.incr "nope";
  Metrics.record ~value:3 "nope.hist";
  check Alcotest.bool "still disabled" false (Metrics.enabled ())

let test_metrics_counters_and_histograms () =
  with_sinks (fun _ metrics ->
      Metrics.incr "a";
      Metrics.incr ~by:4 "a";
      Metrics.add metrics "b" 2;
      Metrics.observe metrics "h" 1;
      Metrics.observe metrics "h" 1;
      Metrics.observe metrics "h" 3;
      check Alcotest.int "counter a" 5 (Metrics.counter metrics "a");
      check Alcotest.int "counter b" 2 (Metrics.counter metrics "b");
      check Alcotest.int "untouched counter" 0 (Metrics.counter metrics "zz");
      let doc = Metrics.to_json metrics in
      match Json.member "histograms" doc with
      | Some hs -> (
        match Json.member "h" hs with
        | Some h ->
          check (Alcotest.option Alcotest.bool) "count 3" (Some true)
            (Option.map (( = ) (Json.Int 3)) (Json.member "count" h));
          check (Alcotest.option Alcotest.bool) "sum 5" (Some true)
            (Option.map (( = ) (Json.Int 5)) (Json.member "sum" h))
        | None -> Alcotest.fail "histogram h missing")
      | None -> Alcotest.fail "histograms missing")

(* --- Pipeline instrumentation -------------------------------------------- *)

let campaign_metrics ~jobs =
  with_sinks (fun _ metrics ->
      (match
         Engine.campaign ~jobs ~runs:6 ~seed:42 ~iterations:300 Catalog.sb
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "campaign should run");
      Json.to_string ~indent:true (Metrics.to_json metrics))

let test_campaign_counters_populated () =
  let doc =
    match Json.parse (campaign_metrics ~jobs:1) with
    | Ok d -> d
    | Error e -> Alcotest.failf "metrics invalid: %s" e
  in
  let counter name =
    match Option.bind (Json.member "counters" doc) (Json.member name) with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  check Alcotest.int "campaigns" 1 (counter "engine.campaigns");
  check Alcotest.int "runs" 6 (counter "engine.runs");
  check Alcotest.int "pool tasks" 6 (counter "pool.tasks");
  check Alcotest.int "machine runs" 6 (counter "machine.runs");
  check Alcotest.bool "rounds accumulated" true
    (counter "machine.rounds" > 0);
  check Alcotest.bool "count kernel ran" true
    (counter "count.evaluations" > 0)

let test_metrics_deterministic_across_jobs () =
  (* The tentpole's determinism contract: the metrics dump is a function
     of the seeded computation alone, byte-identical for any --jobs N. *)
  let a = campaign_metrics ~jobs:1 in
  let b = campaign_metrics ~jobs:4 in
  let c = campaign_metrics ~jobs:1 in
  check Alcotest.string "jobs 1 = jobs 4 (bytes)" a b;
  check Alcotest.string "repeatable" a c

let test_results_identical_with_tracing () =
  (* Observability must be observation-only: reports with sinks installed
     equal reports without. *)
  let go () =
    match Engine.campaign ~jobs:2 ~runs:4 ~seed:7 ~iterations:200 Catalog.sb with
    | Ok reports -> Array.map (fun r -> (r.Engine.counts, r.Engine.virtual_runtime)) reports
    | Error _ -> Alcotest.fail "campaign should run"
  in
  let bare = go () in
  let traced = with_sinks (fun _ _ -> go ()) in
  check Alcotest.bool "identical reports" true (bare = traced)

let test_supervisor_attempt_counters () =
  with_sinks (fun _ metrics ->
      let policy = Supervisor.default_policy ~iterations:1 in
      (match
         Engine.run
           ~faults:[ { Fault.kind = Fault.Crash; probability = 1.0 } ]
           ~policy ~seed:5 ~iterations:1 Catalog.sb
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "sb should run");
      (* Crash-at-0 burns the initial attempt plus every retry. *)
      check Alcotest.int "attempts" 4
        (Metrics.counter metrics "supervisor.attempts");
      check Alcotest.int "all crashed" 4
        (Metrics.counter metrics "supervisor.attempts.crashed");
      check Alcotest.int "retries" 3
        (Metrics.counter metrics "supervisor.retries"))

let suite =
  [
    ( "util.observe",
      [
        Alcotest.test_case "trace disabled is no-op" `Quick
          test_trace_disabled_noop;
        Alcotest.test_case "trace records events" `Quick
          test_trace_records_events;
        Alcotest.test_case "trace clock discipline" `Quick
          test_trace_clock_discipline;
        Alcotest.test_case "trace json shape" `Quick test_trace_json_shape;
        Alcotest.test_case "metrics disabled is no-op" `Quick
          test_metrics_disabled_noop;
        Alcotest.test_case "metrics counters and histograms" `Quick
          test_metrics_counters_and_histograms;
      ] );
    ( "core.observe",
      [
        Alcotest.test_case "campaign counters populated" `Quick
          test_campaign_counters_populated;
        Alcotest.test_case "metrics deterministic across jobs" `Quick
          test_metrics_deterministic_across_jobs;
        Alcotest.test_case "results identical with tracing" `Quick
          test_results_identical_with_tracing;
        Alcotest.test_case "supervisor attempt counters" `Quick
          test_supervisor_attempt_counters;
      ] );
  ]

(* Multi-node coordination: lease lifecycle, zombie discipline, crash
   resume, fairness, rate limiting, progress streaming — and the
   seeded multi-worker chaos schedules demanded by the distribution
   tentpole: workers die mid-shard, stall past their deadline, deliver
   then die, and reconnect as zombies, yet every schedule classifies,
   no journal is damaged, and the merged ledger stays byte-identical
   to a single-node run whenever no shard was abandoned. *)

module Framed = Perple_util.Framed
module Journal = Perple_util.Journal
module Wire = Perple_service.Wire
module Session = Perple_service.Session
module Scheduler = Perple_service.Scheduler
module Coordinator = Perple_service.Coordinator
module Worker = Perple_service.Worker
module Server = Perple_service.Server
module Client = Perple_service.Client
module Chaos = Perple_service.Chaos

let check = Alcotest.check

let scratch =
  Filename.concat (Filename.get_temp_dir_name ()) "perple-coordinator-test"

let with_scratch f =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Sys.mkdir scratch 0o755;
  f ()

let in_scratch name = Filename.concat scratch name

let spec ?(campaign = "multi") ?(test = "podwr000") ?(iterations = 60)
    ?(seed = 7) ?(runs = 6) ?(counter = "heur") ?(model = "tso") () =
  { Wire.campaign; test; iterations; seed; runs; counter; model }

let fast_session =
  { Session.default_config with heartbeat_every = 50; liveness_timeout = 2_000 }

let fast_client = { Client.heartbeat_every = 50; liveness_timeout = 2_000 }
let fast_worker = { Worker.heartbeat_every = 40; liveness_timeout = 2_000 }

let lease_ticks = 120

let co_config ?(shard_runs = 2) ?(max_attempts = 4) () =
  { Coordinator.shard_runs; lease_ticks; max_attempts; retry_delay = 10;
    retry_backoff = 2.0 }

(* The single-node truth a distributed execution must reproduce. *)
let reference_records sp =
  let sched = Result.get_ok (Scheduler.create ~jobs:1 ~journal:None ()) in
  (match Scheduler.submit sched sp with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "reference submit failed: %s" m);
  let guard = ref 0 in
  while Scheduler.pending sched do
    incr guard;
    if !guard > 10_000 then Alcotest.fail "reference failed to converge";
    ignore (Scheduler.step sched)
  done;
  let records =
    List.init sp.Wire.runs (fun index ->
        Option.get (Scheduler.record sched ~campaign:sp.Wire.campaign ~index))
  in
  let metrics =
    Option.get (Scheduler.metrics_payload sched ~campaign:sp.Wire.campaign)
  in
  Scheduler.close sched;
  (records, metrics)

let execute_task cache (tk : Worker.task) =
  let resolved =
    match Hashtbl.find_opt cache tk.Worker.digest with
    | Some r -> Ok r
    | None -> (
      match Scheduler.resolve_spec tk.Worker.spec with
      | Ok r ->
        Hashtbl.replace cache tk.Worker.digest r;
        Ok r
      | Error _ as e -> e)
  in
  match resolved with
  | Error m -> Error m
  | Ok r ->
    Worker.run_index ~resolved:r ~spec:tk.Worker.spec ~index:tk.Worker.index

(* --- simulated worker processes ---------------------------------------------- *)

(* A worker process under chaos.  [Stalled] is a wedged process: no
   reads, no writes, no execution.  [Partitioned] is a zombie in the
   making: it keeps computing but nothing crosses the wire in either
   direction — when the partition lifts it floods the coordinator with
   stale renewals and an old-epoch result.  [Dead] lost its process
   (unsent bytes discarded) and respawns on a fresh connection. *)
type wstate = Up | Stalled of int | Partitioned of int | Dead of int

type sim = {
  sw_name : string;
  plan : Chaos.plan;
  cache : (string, Scheduler.resolved) Hashtbl.t;
  shard_runs : int;
  mutable conn : int;
  mutable w : Worker.t option;
  mutable st : wstate;
  mutable seen_leases : int;
  mutable die_after : int option;  (** Task completions until sudden death. *)
  mutable die_on_flush : bool;  (** Deliver the shard result, then die. *)
}

let make_sim ~seed ~profile ~name ~shard_runs =
  {
    sw_name = name;
    plan = Chaos.plan ~seed profile;
    cache = Hashtbl.create 4;
    shard_runs;
    conn = -1;
    w = None;
    st = Dead 0;
    seen_leases = 0;
    die_after = None;
    die_on_flush = false;
  }

let kill_sim server sim ~now ~respawn_at =
  (match sim.w with
  | Some w -> ignore (Framed.take_all (Worker.output w))
  | None -> ());
  if sim.conn >= 0 then Server.eof server ~conn:sim.conn ~now;
  sim.w <- None;
  sim.st <- Dead respawn_at;
  sim.die_after <- None;
  sim.die_on_flush <- false

let flush_worker server sim ~now w =
  let bytes = Framed.take_all (Worker.output w) in
  if bytes <> "" then Server.input server ~conn:sim.conn ~now bytes

let apply_fault sim ~now = function
  | Chaos.Die_mid_shard ->
    sim.die_after <- Some (1 + Chaos.draw_point sim.plan ~max:sim.shard_runs)
  | Chaos.Stall_past_deadline -> sim.st <- Stalled (now + (2 * lease_ticks) + 7)
  | Chaos.Result_then_die -> sim.die_on_flush <- true
  | Chaos.Reconnect_as_zombie ->
    sim.st <- Partitioned (now + (2 * lease_ticks) + 11)

let step_sim server sim ~now =
  (match sim.st with
  | Dead until when now >= until ->
    sim.conn <- Server.connect server ~now;
    sim.w <-
      Some (Worker.create ~config:fast_worker ~name:sim.sw_name ~now ());
    sim.st <- Up;
    sim.seen_leases <- 0
  | Stalled until when now >= until -> sim.st <- Up
  | Partitioned until when now >= until -> sim.st <- Up
  | _ -> ());
  match sim.w with
  | None -> ()
  | Some w -> (
    let offline () =
      match sim.st with Stalled _ | Partitioned _ -> true | _ -> false
    in
    (* Inbound: what the coordinator wrote for us, unless offline. *)
    if not (offline ()) then begin
      let bytes = Server.flush server ~conn:sim.conn in
      if bytes <> "" then Worker.input w ~now bytes
    end;
    (* New leases draw their fault verdict, one per acceptance. *)
    let taken = Worker.leases_taken w in
    if taken > sim.seen_leases then begin
      for _ = sim.seen_leases + 1 to taken do
        match Chaos.draw_fault sim.plan with
        | Some f -> apply_fault sim ~now f
        | None -> ()
      done;
      sim.seen_leases <- taken
    end;
    (* Execute at most one leased run per tick.  State is re-read here:
       a fault drawn above (stall, partition) takes effect this tick. *)
    let executing =
      match sim.st with Up | Partitioned _ -> true | _ -> false
    in
    let died = ref false in
    (if executing then
       match Worker.task w with
       | None -> ()
       | Some tk ->
         (match execute_task sim.cache tk with
         | Ok record -> Worker.task_done w ~now ~record
         | Error m -> Worker.task_failed w ~reason:m);
         (match sim.die_after with
         | Some n when n <= 1 ->
           (* Sudden death: queued bytes (renewals, maybe the result)
              are lost with the process. *)
           kill_sim server sim ~now ~respawn_at:(now + 60);
           died := true
         | Some n -> sim.die_after <- Some (n - 1)
         | None -> ());
         if (not !died) && sim.die_on_flush && Worker.task w = None then begin
           (* The shard result is on the wire, then the process dies. *)
           flush_worker server sim ~now w;
           kill_sim server sim ~now ~respawn_at:(now + 60);
           died := true
         end);
    if not !died then begin
      Worker.tick w ~now;
      if not (offline ()) then flush_worker server sim ~now w;
      match Worker.status w with
      | Worker.Stopped _ -> kill_sim server sim ~now ~respawn_at:(now + 60)
      | Worker.Running -> ()
    end)

(* --- one multi-worker schedule ----------------------------------------------- *)

let schedule_budget = 30_000

exception Settled

(* Drive a coordinator server, [workers] chaotic workers and one
   client to a terminal client status over virtual time.  Returns the
   client status plus the total faults the plan injected. *)
let run_schedule ~seed ~workers ~profile ~max_attempts ~sp sched =
  let config = co_config ~max_attempts () in
  let co =
    match Coordinator.create ~config ~scheduler:sched () with
    | Ok co -> co
    | Error m -> Alcotest.failf "coordinator resume rejected: %s" m
  in
  let server =
    Server.create ~session_config:fast_session ~coordinator:co ~scheduler:sched
      ()
  in
  let sims =
    List.init workers (fun i ->
        make_sim
          ~seed:((seed * 97) + (i * 131) + 1)
          ~profile
          ~name:(Printf.sprintf "w%d" i)
          ~shard_runs:config.Coordinator.shard_runs)
  in
  let conn = Server.connect server ~now:0 in
  let client = Client.create ~config:fast_client ~spec:sp ~now:0 () in
  (try
     for now = 0 to schedule_budget do
       let cbytes = Framed.take_all (Client.output client) in
       if cbytes <> "" then Server.input server ~conn ~now cbytes;
       let sbytes = Server.flush server ~conn in
       if sbytes <> "" then Client.input client ~now sbytes;
       List.iter (fun sim -> step_sim server sim ~now) sims;
       Server.tick server ~now;
       Client.tick client ~now;
       if Client.status client <> Client.Pending then raise Settled
     done
   with Settled -> ());
  let faults = List.fold_left (fun n s -> n + Chaos.planned_faults s.plan) 0 sims in
  (Client.status client, faults)

let contains_sub s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let abandoned records =
  List.exists (fun line -> contains_sub line "unrecoverable") records

(* >= 500 seeded multi-worker failure schedules across worker counts
   1..4.  Every one must classify (zero hangs), leave an undamaged
   journal, complete every run slot, and — whenever no shard was
   abandoned — stream bytes identical to the single-node reference. *)
let test_multiworker_chaos_schedules () =
  with_scratch @@ fun () ->
  let references = Hashtbl.create 16 in
  let reference sp =
    match Hashtbl.find_opt references sp.Wire.seed with
    | Some r -> r
    | None ->
      let r = reference_records sp in
      Hashtbl.replace references sp.Wire.seed r;
      r
  in
  let identical = ref 0 and degraded = ref 0 and faulted = ref 0 in
  for seed = 0 to 499 do
    let path = in_scratch "multi.journal" in
    if Sys.file_exists path then Sys.remove path;
    let sched = Result.get_ok (Scheduler.create ~journal:(Some path) ()) in
    let sp = spec ~runs:6 ~iterations:50 ~seed:(seed land 0xF) () in
    let workers = 1 + (seed mod 4) in
    let status, faults =
      run_schedule ~seed ~workers ~profile:Chaos.rough_workers ~max_attempts:4
        ~sp sched
    in
    if faults > 0 then incr faulted;
    (match status with
    | Client.Pending ->
      Alcotest.failf "schedule %d (%d workers) HUNG after %d ticks" seed
        workers schedule_budget
    | Client.Failed m ->
      Alcotest.failf "schedule %d (%d workers) failed the client: %s" seed
        workers m
    | Client.Done outcome ->
      check Alcotest.int
        (Printf.sprintf "schedule %d streams every run slot" seed)
        sp.Wire.runs
        (List.length outcome.Client.records);
      let ref_records, ref_metrics = reference sp in
      if abandoned outcome.Client.records then incr degraded
      else begin
        if outcome.Client.records <> ref_records then
          Alcotest.failf
            "schedule %d (%d workers): no shard abandoned, records differ"
            seed workers;
        if outcome.Client.metrics <> ref_metrics then
          Alcotest.failf
            "schedule %d (%d workers): no shard abandoned, metrics differ"
            seed workers;
        incr identical
      end);
    Scheduler.close sched;
    match Journal.load path with
    | Error m -> Alcotest.failf "schedule %d corrupted the journal: %s" seed m
    | Ok r ->
      if r.Journal.dropped_bytes <> 0 then
        Alcotest.failf "schedule %d left %d damaged journal bytes" seed
          r.Journal.dropped_bytes
  done;
  if !identical = 0 then
    Alcotest.fail "no schedule survived byte-identically: merge is broken";
  if !faulted < 100 then
    Alcotest.failf "only %d/500 schedules drew faults: chaos is not reaching \
                    the workers"
      !faulted

(* Satellite: merged ledger and metrics byte-identical across worker
   counts {1, 2, 4} x seeded failure schedules.  With an effectively
   unbounded retry budget no shard can be abandoned, so every worker
   count must converge to the reference bytes. *)
let worker_count_equivalence_property =
  QCheck.Test.make ~name:"merged output identical across 1/2/4 workers"
    ~count:12
    (QCheck.make QCheck.Gen.(0 -- 10_000))
    (fun seed ->
      let sp = spec ~runs:6 ~iterations:50 ~seed:(seed land 0xF) () in
      let ref_records, ref_metrics = reference_records sp in
      List.for_all
        (fun workers ->
          let sched = Result.get_ok (Scheduler.create ~journal:None ()) in
          let status, _ =
            run_schedule ~seed ~workers ~profile:Chaos.rough_workers
              ~max_attempts:1_000 ~sp sched
          in
          let ok =
            match status with
            | Client.Done outcome ->
              outcome.Client.records = ref_records
              && outcome.Client.metrics = ref_metrics
            | Client.Failed _ | Client.Pending -> false
          in
          Scheduler.close sched;
          ok)
        [ 1; 2; 4 ])

(* --- directed lease-machine tests -------------------------------------------- *)

let make_co ?(shard_runs = 2) ?(max_attempts = 4) ?journal ~sp () =
  let sched = Result.get_ok (Scheduler.create ~journal ()) in
  (match Scheduler.submit sched sp with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit failed: %s" m);
  let co =
    Result.get_ok
      (Coordinator.create ~config:(co_config ~shard_runs ~max_attempts ())
         ~scheduler:sched ())
  in
  (sched, co)

type lease_view = { lv_shard : int; lv_epoch : int; lv_lo : int; lv_hi : int }

let lease_of_commands cmds ~worker =
  List.find_map
    (fun { Coordinator.target; frame } ->
      match frame with
      | Wire.Lease { shard; epoch; lo; hi; _ } when target = worker ->
        Some { lv_shard = shard; lv_epoch = epoch; lv_lo = lo; lv_hi = hi }
      | _ -> None)
    cmds

let shard_lines ~sp ~lo ~hi =
  let resolved = Result.get_ok (Scheduler.resolve_spec sp) in
  List.init (hi - lo) (fun k ->
      let index = lo + k in
      (index, Result.get_ok (Worker.run_index ~resolved ~spec:sp ~index)))

(* A revoked lease's late result must be discarded by epoch, and the
   reassigned epoch's result must land — byte-identically. *)
let test_zombie_epoch_rejection () =
  let sp = spec ~campaign:"zombie" ~runs:4 () in
  let sched, co = make_co ~sp () in
  Coordinator.add_worker co ~id:1 ~name:"a";
  Coordinator.add_worker co ~id:2 ~name:"b";
  let cmds = Coordinator.tick co ~now:0 in
  let l1 = Option.get (lease_of_commands cmds ~worker:1) in
  let l2 = Option.get (lease_of_commands cmds ~worker:2) in
  check Alcotest.bool "both shards leased, epoch 1" true
    (l1.lv_epoch = 1 && l2.lv_epoch = 1
    && l1.lv_shard <> l2.lv_shard);
  (* Worker 2 stays warm; worker 1 goes silent past its deadline. *)
  ignore
    (Coordinator.renew co ~worker:2 ~campaign:"zombie" ~shard:l2.lv_shard
       ~epoch:1 ~now:50);
  let cmds = Coordinator.tick co ~now:(lease_ticks + 1) in
  check Alcotest.bool "expired lease is revoked" true
    (List.exists
       (fun { Coordinator.target; frame } ->
         target = 1
         && match frame with
            | Wire.Revoke { shard; _ } -> shard = l1.lv_shard
            | _ -> false)
       cmds);
  (* Worker 1's late (zombie) result under the dead epoch: discarded. *)
  let lines = shard_lines ~sp ~lo:l1.lv_lo ~hi:l1.lv_hi in
  let cmds =
    Coordinator.shard_result co ~worker:1 ~campaign:"zombie"
      ~shard:l1.lv_shard ~epoch:1 ~records:lines ~now:(lease_ticks + 2)
  in
  check Alcotest.bool "zombie result is discarded without commands" true
    (cmds = []);
  check Alcotest.bool "zombie result wrote nothing" true
    (Scheduler.record sched ~campaign:"zombie" ~index:l1.lv_lo = None);
  (* The shard reassigns under a strictly greater epoch (worker 1 spoke
     again, so it is warm; its stale traffic thawed it). *)
  let cmds = Coordinator.tick co ~now:(lease_ticks + 40) in
  let l1' = Option.get (lease_of_commands cmds ~worker:1) in
  check Alcotest.int "reassigned shard" l1.lv_shard l1'.lv_shard;
  check Alcotest.bool "epoch is strictly greater" true (l1'.lv_epoch > 1);
  (* The live epoch's result lands. *)
  ignore
    (Coordinator.shard_result co ~worker:1 ~campaign:"zombie"
       ~shard:l1'.lv_shard ~epoch:l1'.lv_epoch ~records:lines
       ~now:(lease_ticks + 41));
  check Alcotest.bool "live result recorded" true
    (Scheduler.record sched ~campaign:"zombie" ~index:l1.lv_lo <> None);
  (* A duplicate of the same result is idempotent. *)
  let before = Scheduler.completed sched ~campaign:"zombie" in
  ignore
    (Coordinator.shard_result co ~worker:1 ~campaign:"zombie"
       ~shard:l1'.lv_shard ~epoch:l1'.lv_epoch ~records:lines
       ~now:(lease_ticks + 42));
  check Alcotest.int "duplicate result is idempotent" before
    (Scheduler.completed sched ~campaign:"zombie");
  Scheduler.close sched

(* Bounded retries: a shard that keeps faulting is abandoned after
   max_attempts leases, its runs journaled as classified Unrecoverable
   records — the campaign completes, never hangs. *)
let test_bounded_retries_abandon () =
  let sp = spec ~campaign:"doomed" ~runs:2 () in
  let sched, co = make_co ~shard_runs:2 ~max_attempts:2 ~sp () in
  Coordinator.add_worker co ~id:1 ~name:"a";
  let now = ref 0 in
  let attempts = ref 0 in
  while
    Scheduler.record sched ~campaign:"doomed" ~index:0 = None && !attempts < 50
  do
    incr attempts;
    let cmds = Coordinator.tick co ~now:!now in
    (match lease_of_commands cmds ~worker:1 with
    | Some l ->
      ignore
        (Coordinator.shard_failed co ~worker:1 ~campaign:"doomed"
           ~shard:l.lv_shard ~epoch:l.lv_epoch ~reason:"synthetic fault"
           ~now:!now)
    | None -> ());
    now := !now + 37
  done;
  check Alcotest.bool "abandonment happened within the retry budget" true
    (!attempts <= 10);
  List.iter
    (fun index ->
      match Scheduler.record sched ~campaign:"doomed" ~index with
      | None -> Alcotest.failf "run %d missing after abandonment" index
      | Some line ->
        check Alcotest.bool
          (Printf.sprintf "run %d is a classified unrecoverable record" index)
          true
          (contains_sub line "unrecoverable" && contains_sub line "crashed"))
    [ 0; 1 ];
  check Alcotest.bool "abandoned campaign still completes" true
    (Scheduler.is_complete sched ~campaign:"doomed");
  check Alcotest.bool "metrics still render" true
    (Scheduler.metrics_payload sched ~campaign:"doomed" <> None);
  Scheduler.close sched

(* Kill -9 the coordinator and resume over the same journal: epochs
   stay monotonic, so a pre-crash worker's result is a zombie to the
   resumed coordinator. *)
let test_coordinator_kill_resume_epochs () =
  with_scratch @@ fun () ->
  let path = in_scratch "resume.journal" in
  let sp = spec ~campaign:"resume" ~runs:4 () in
  let sched1, co1 = make_co ~journal:path ~sp () in
  Coordinator.add_worker co1 ~id:1 ~name:"a";
  let cmds = Coordinator.tick co1 ~now:0 in
  let l1 = Option.get (lease_of_commands cmds ~worker:1) in
  check Alcotest.int "first lease epoch" 1 l1.lv_epoch;
  (* kill -9: nothing drains, the journal is all that survives. *)
  Scheduler.abandon sched1;
  let sched2 = Result.get_ok (Scheduler.create ~journal:(Some path) ()) in
  let co2 =
    Result.get_ok
      (Coordinator.create ~config:(co_config ()) ~scheduler:sched2 ())
  in
  Coordinator.add_worker co2 ~id:7 ~name:"b";
  let cmds = Coordinator.tick co2 ~now:0 in
  let l2 = Option.get (lease_of_commands cmds ~worker:7) in
  check Alcotest.int "resumed lease covers the same shard" l1.lv_shard
    l2.lv_shard;
  check Alcotest.bool "resumed epoch strictly exceeds the journaled grant" true
    (l2.lv_epoch > l1.lv_epoch);
  (* The pre-crash worker's result under the old epoch is now a zombie. *)
  let lines = shard_lines ~sp ~lo:l1.lv_lo ~hi:l1.lv_hi in
  ignore
    (Coordinator.shard_result co2 ~worker:7 ~campaign:"resume"
       ~shard:l1.lv_shard ~epoch:l1.lv_epoch ~records:lines ~now:1);
  check Alcotest.bool "old-epoch result discarded after resume" true
    (Scheduler.record sched2 ~campaign:"resume" ~index:l1.lv_lo = None);
  (* The live lease completes normally. *)
  ignore
    (Coordinator.shard_result co2 ~worker:7 ~campaign:"resume"
       ~shard:l2.lv_shard ~epoch:l2.lv_epoch ~records:lines ~now:2);
  check Alcotest.bool "live result lands after resume" true
    (Scheduler.record sched2 ~campaign:"resume" ~index:l1.lv_lo <> None);
  Scheduler.close sched2

(* A worker EOF mid-lease releases the shard to the next worker. *)
let test_disconnect_reassigns () =
  let sp = spec ~campaign:"dc" ~runs:2 () in
  let sched, co = make_co ~sp () in
  Coordinator.add_worker co ~id:1 ~name:"a";
  let cmds = Coordinator.tick co ~now:0 in
  let l = Option.get (lease_of_commands cmds ~worker:1) in
  Coordinator.remove_worker co ~id:1 ~now:5;
  check Alcotest.int "worker gone" 0 (Coordinator.worker_count co);
  Coordinator.add_worker co ~id:2 ~name:"b";
  (* The shard backs off briefly after the failed lease, then regrants. *)
  let cmds = Coordinator.tick co ~now:60 in
  let l' = Option.get (lease_of_commands cmds ~worker:2) in
  check Alcotest.int "same shard reassigned" l.lv_shard l'.lv_shard;
  check Alcotest.bool "fresh epoch on reassignment" true
    (l'.lv_epoch > l.lv_epoch);
  Scheduler.close sched

(* --- fairness ----------------------------------------------------------------- *)

(* Satellite: the scheduler interleaves runnable campaigns round-robin
   instead of draining the oldest first. *)
let test_scheduler_round_robin_fairness () =
  let sched = Result.get_ok (Scheduler.create ~jobs:1 ~journal:None ()) in
  List.iter
    (fun c ->
      match Scheduler.submit sched (spec ~campaign:c ~runs:2 ~iterations:40 ()) with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "submit %s failed: %s" c m)
    [ "aaa"; "bbb"; "ccc" ];
  let order = ref [] in
  while Scheduler.pending sched do
    match Scheduler.step sched with
    | Some (campaign, _) -> order := campaign :: !order
    | None -> ()
  done;
  let order = List.rev !order in
  check Alcotest.int "six batches for six runs" 6 (List.length order);
  (* Strict rotation: no campaign starves behind an earlier one. *)
  check
    Alcotest.(list string)
    "campaigns interleave round-robin"
    [ "aaa"; "bbb"; "ccc"; "aaa"; "bbb"; "ccc" ]
    order;
  Scheduler.close sched

(* Coordinator lease assignment interleaves campaigns the same way. *)
let test_coordinator_lease_fairness () =
  let sched = Result.get_ok (Scheduler.create ~journal:None ()) in
  List.iter
    (fun c ->
      ignore
        (Result.get_ok
           (Scheduler.submit sched (spec ~campaign:c ~runs:4 ~iterations:40 ()))))
    [ "camp-a"; "camp-b" ];
  let co =
    Result.get_ok
      (Coordinator.create ~config:(co_config ()) ~scheduler:sched ())
  in
  Coordinator.add_worker co ~id:1 ~name:"a";
  Coordinator.add_worker co ~id:2 ~name:"b";
  let cmds = Coordinator.tick co ~now:0 in
  let campaigns =
    List.filter_map
      (fun { Coordinator.frame; _ } ->
        match frame with
        | Wire.Lease { campaign; _ } -> Some campaign
        | _ -> None)
      cmds
    |> List.sort_uniq compare
  in
  check
    Alcotest.(list string)
    "two workers serve two campaigns, not one" [ "camp-a"; "camp-b" ] campaigns;
  Scheduler.close sched

(* --- rate limiting ------------------------------------------------------------ *)

let hello = Wire.Hello { version = Wire.protocol_version; peer = "tester" }

let session_frames s =
  let buf = Session.output s in
  let rec go acc =
    match Wire.next_frame buf with
    | `Frame f -> go (f :: acc)
    | `Need_more -> List.rev acc
    | `Corrupt m -> Alcotest.failf "session wrote corrupt bytes: %s" m
  in
  go []

(* Satellite: per-connection token bucket on submits.  Over-budget
   submits are declined with a Busy frame carrying retry-after; the
   session survives and the bucket refills. *)
let test_submit_rate_limit () =
  let config =
    { Session.default_config with submit_burst = 2; submit_refill_every = 100 }
  in
  let s = Session.create ~config ~id:0 ~now:0 () in
  ignore (Session.feed s ~now:0 (Wire.encode hello));
  ignore (session_frames s);
  let submit now campaign =
    Session.feed s ~now (Wire.encode (Wire.Submit (spec ~campaign ())))
  in
  check Alcotest.int "first submit passes" 1 (List.length (submit 1 "a"));
  check Alcotest.int "second submit passes" 1 (List.length (submit 2 "b"));
  ignore (session_frames s);
  (* Bucket empty: declined, not quarantined. *)
  let events = submit 3 "c" in
  check Alcotest.int "throttled submit surfaces no event" 0
    (List.length events);
  (match session_frames s with
  | [ Wire.Busy { retry_after } ] ->
    check Alcotest.bool "retry-after is positive" true (retry_after > 0)
  | fs -> Alcotest.failf "expected one Busy frame, got %d frames" (List.length fs));
  check Alcotest.bool "session survives throttling" true (Session.active s);
  (* After a refill interval the bucket grants again. *)
  ignore (Session.tick s ~now:150);
  ignore (session_frames s);
  check Alcotest.int "refilled submit passes" 1 (List.length (submit 151 "d"));
  ignore (Session.feed s ~now:152 (Wire.encode Wire.Drain));
  check Alcotest.bool "clean drain still works" true
    (Session.terminal s = Some Session.Completed)

(* The client classifies Busy as retryable and honours the hint. *)
let test_client_busy_classification () =
  let client = Client.create ~config:fast_client ~spec:(spec ()) ~now:0 () in
  Client.input client ~now:0
    (Wire.encode (Wire.Hello { version = Wire.protocol_version; peer = "d" }));
  Client.input client ~now:1 (Wire.encode (Wire.Busy { retry_after = 123 }));
  (match Client.status client with
  | Client.Failed m ->
    check Alcotest.bool "busy verdicts carry the reason" true
      (contains_sub m "busy");
    check Alcotest.bool "busy verdicts are retryable" true (Client.retryable m)
  | _ -> Alcotest.fail "Busy must fail the attempt");
  check Alcotest.bool "worker frames fail a client connection" true
    (let c = Client.create ~config:fast_client ~spec:(spec ()) ~now:0 () in
     Client.input c ~now:0
       (Wire.encode (Wire.Hello { version = Wire.protocol_version; peer = "d" }));
     Client.input c ~now:1
       (Wire.encode
          (Wire.Lease_renew { campaign = "x"; shard = 0; epoch = 1; sent_at = 0 }));
     match Client.status c with Client.Failed _ -> true | _ -> false)

(* --- progress streaming ------------------------------------------------------- *)

(* Satellite: a follower sees monotonic progress updates ending at
   completion, against a plain daemon (shard counts zero). *)
let test_progress_stream () =
  let sp = spec ~campaign:"follow" ~runs:3 ~iterations:50 () in
  let sched = Result.get_ok (Scheduler.create ~jobs:1 ~journal:None ()) in
  let server = Server.create ~session_config:fast_session ~scheduler:sched () in
  let conn = Server.connect server ~now:0 in
  let seen = ref [] in
  let client =
    Client.create ~config:fast_client
      ~on_progress:(fun p -> seen := p :: !seen)
      ~spec:sp ~now:0 ()
  in
  (try
     for now = 0 to 10_000 do
       let cbytes = Framed.take_all (Client.output client) in
       if cbytes <> "" then Server.input server ~conn ~now cbytes;
       let sbytes = Server.flush server ~conn in
       if sbytes <> "" then Client.input client ~now sbytes;
       Server.tick server ~now;
       Client.tick client ~now;
       if Client.status client <> Client.Pending then raise Settled
     done
   with Settled -> ());
  (match Client.status client with
  | Client.Done _ -> ()
  | _ -> Alcotest.fail "followed campaign must complete");
  let updates = List.rev !seen in
  check Alcotest.bool "at least one progress update" true (updates <> []);
  let rec monotonic = function
    | a :: (b :: _ as rest) ->
      a.Client.runs_done <= b.Client.runs_done && monotonic rest
    | _ -> true
  in
  check Alcotest.bool "runs_done is monotonic" true (monotonic updates);
  let last = List.nth updates (List.length updates - 1) in
  check Alcotest.int "final update covers every run" sp.Wire.runs
    last.Client.runs_done;
  check Alcotest.int "total is the campaign size" sp.Wire.runs
    last.Client.runs_total;
  Scheduler.close sched

(* Worker protocol discipline: client-stream frames stop the machine. *)
let test_worker_protocol_discipline () =
  let w = Worker.create ~config:fast_worker ~now:0 () in
  Worker.input w ~now:0
    (Wire.encode (Wire.Hello { version = Wire.protocol_version; peer = "d" }));
  check Alcotest.bool "worker active after hello" true
    (Worker.status w = Worker.Running);
  Worker.input w ~now:1
    (Wire.encode (Wire.Run_record { campaign = "c"; index = 0; record = "r" }));
  (match Worker.status w with
  | Worker.Stopped reason ->
    check Alcotest.bool "protocol stop is classified" true
      (contains_sub reason "protocol")
  | Worker.Running -> Alcotest.fail "client frame must stop a worker");
  (* Version skew stops the machine before any lease. *)
  let w = Worker.create ~config:fast_worker ~now:0 () in
  Worker.input w ~now:0
    (Wire.encode (Wire.Hello { version = Wire.protocol_version + 1; peer = "d" }));
  match Worker.status w with
  | Worker.Stopped reason ->
    check Alcotest.bool "version skew is classified" true
      (contains_sub reason "version")
  | Worker.Running -> Alcotest.fail "version skew must stop the worker"

(* --- suite -------------------------------------------------------------------- *)

let suite =
  [
    ( "coordinator.lease",
      [
        Alcotest.test_case "zombie epoch rejection" `Quick
          test_zombie_epoch_rejection;
        Alcotest.test_case "bounded retries abandon classified" `Quick
          test_bounded_retries_abandon;
        Alcotest.test_case "kill -9 resume keeps epochs monotonic" `Quick
          test_coordinator_kill_resume_epochs;
        Alcotest.test_case "disconnect reassigns the shard" `Quick
          test_disconnect_reassigns;
      ] );
    ( "coordinator.fairness",
      [
        Alcotest.test_case "scheduler round-robin" `Quick
          test_scheduler_round_robin_fairness;
        Alcotest.test_case "lease assignment interleaves campaigns" `Quick
          test_coordinator_lease_fairness;
      ] );
    ( "coordinator.ratelimit",
      [
        Alcotest.test_case "submit token bucket" `Quick test_submit_rate_limit;
        Alcotest.test_case "client busy classification" `Quick
          test_client_busy_classification;
      ] );
    ( "coordinator.progress",
      [
        Alcotest.test_case "follower sees monotonic progress" `Quick
          test_progress_stream;
        Alcotest.test_case "worker protocol discipline" `Quick
          test_worker_protocol_discipline;
      ] );
    ( "coordinator.chaos",
      [
        Alcotest.test_case "500 seeded multi-worker schedules" `Slow
          test_multiworker_chaos_schedules;
        QCheck_alcotest.to_alcotest worker_count_equivalence_property;
      ] );
  ]

(* Durability tests: CRC-32 vectors, journal recovery from arbitrarily
   truncated or bit-flipped tails, atomic file replacement, metrics
   capture/merge round-trips, ledger summary serialization, and
   end-to-end CLI resume determinism (stdout AND metrics byte-identity
   for any interruption point and any --jobs). *)

module Json = Perple_util.Json
module Journal = Perple_util.Journal
module Atomic_file = Perple_util.Atomic_file
module Metrics = Perple_util.Metrics
module Ledger = Perple_core.Ledger

let check = Alcotest.check

let scratch =
  Filename.concat (Filename.get_temp_dir_name ()) "perple-journal-test"

let with_scratch f =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Sys.mkdir scratch 0o755;
  f ()

let in_scratch name = Filename.concat scratch name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let write_raw path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* --- CRC-32 ---------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* Standard zlib/IEEE 802.3 check values. *)
  check Alcotest.int "crc32(\"\")" 0 (Journal.crc32 "");
  check Alcotest.int "crc32(\"123456789\")" 0xCBF43926
    (Journal.crc32 "123456789");
  check Alcotest.int "crc32(\"a\")" 0xE8B7BE43 (Journal.crc32 "a")

let test_crc32_bit_sensitivity () =
  let base = Journal.crc32 "the quick brown fox" in
  let flipped = Bytes.of_string "the quick brown fox" in
  Bytes.set flipped 4 (Char.chr (Char.code (Bytes.get flipped 4) lxor 1));
  if Journal.crc32 (Bytes.to_string flipped) = base then
    Alcotest.fail "single-bit flip left the CRC unchanged"

(* --- Record encoding ------------------------------------------------------- *)

let sample_records =
  [
    Json.Obj [ ("kind", Json.String "header"); ("runs", Json.Int 4) ];
    Json.Obj
      [
        ("kind", Json.String "run");
        ("index", Json.Int 0);
        ("counts", Json.List [ Json.Int 3; Json.Int 0 ]);
        ("note", Json.String "with \"quotes\" and \n newline");
      ];
    Json.Obj [ ("kind", Json.String "run"); ("index", Json.Int 1) ];
    Json.Obj [ ("kind", Json.String "interrupted") ];
  ]

let write_journal path records =
  let j = Journal.create path in
  List.iter (Journal.append j) records;
  Journal.close j

let test_append_load_roundtrip () =
  with_scratch @@ fun () ->
  let path = in_scratch "j.log" in
  write_journal path sample_records;
  match Journal.load path with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok r ->
    check Alcotest.int "no dropped bytes" 0 r.Journal.dropped_bytes;
    check Alcotest.bool "records round-trip" true
      (r.Journal.records = sample_records)

let test_load_missing_file () =
  with_scratch @@ fun () ->
  match Journal.load (in_scratch "absent.log") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing journal should be an I/O error"

let test_load_empty_file () =
  with_scratch @@ fun () ->
  let path = in_scratch "empty.log" in
  write_raw path "";
  match Journal.load path with
  | Error m -> Alcotest.failf "empty journal should load: %s" m
  | Ok r ->
    check Alcotest.int "no records" 0 (List.length r.Journal.records);
    check Alcotest.int "no dropped bytes" 0 r.Journal.dropped_bytes

(* The central recovery property: truncate a valid journal at EVERY byte
   offset; load must always succeed, return a prefix of the original
   record list, and account for every byte as valid or dropped. *)
let test_truncate_every_offset () =
  with_scratch @@ fun () ->
  let path = in_scratch "full.log" in
  write_journal path sample_records;
  let full = read_file path in
  let n = String.length full in
  let cut = in_scratch "cut.log" in
  for len = 0 to n do
    write_raw cut (String.sub full 0 len);
    match Journal.load cut with
    | Error m -> Alcotest.failf "truncated at %d: load failed: %s" len m
    | Ok r ->
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      if not (is_prefix r.Journal.records sample_records) then
        Alcotest.failf "truncated at %d: salvage is not a record prefix" len;
      check Alcotest.int
        (Printf.sprintf "truncated at %d: bytes accounted" len)
        len
        (r.Journal.valid_bytes + r.Journal.dropped_bytes);
      (* Whole-line truncation keeps every complete record. *)
      if len = n then
        check Alcotest.int "full file keeps all records"
          (List.length sample_records)
          (List.length r.Journal.records)
  done

(* Flip every byte of the tail record in turn (one at a time): recovery
   must never fail, and must never hallucinate a fourth record out of
   damage — the flipped line dies, earlier lines survive. *)
let test_bit_flip_tail () =
  with_scratch @@ fun () ->
  let path = in_scratch "flip.log" in
  write_journal path sample_records;
  let full = read_file path in
  let n = String.length full in
  let last_line_start = 1 + String.rindex_from full (n - 2) '\n' in
  let flip = in_scratch "flipped.log" in
  for pos = last_line_start to n - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string full in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      write_raw flip (Bytes.to_string b);
      match Journal.load flip with
      | Error m -> Alcotest.failf "flip at %d.%d: load failed: %s" pos bit m
      | Ok r ->
        if List.length r.Journal.records > List.length sample_records then
          Alcotest.failf "flip at %d.%d: salvaged more records than written"
            pos bit;
        let expected_prefix =
          List.filteri
            (fun i _ -> i < List.length r.Journal.records)
            sample_records
        in
        if
          List.length r.Journal.records = List.length sample_records
          && r.Journal.records <> sample_records
        then
          Alcotest.failf "flip at %d.%d: damage masqueraded as data" pos bit;
        if
          List.length r.Journal.records < List.length sample_records
          && r.Journal.records <> expected_prefix
        then
          Alcotest.failf "flip at %d.%d: salvage is not a clean prefix" pos
            bit
    done
  done

let record_gen =
  QCheck.Gen.(
    let small_string = string_size (int_bound 12) ~gen:printable in
    map
      (fun (i, s, l) ->
        Json.Obj
          [
            ("kind", Json.String "run");
            ("index", Json.Int i);
            ("s", Json.String s);
            ("l", Json.List (List.map (fun x -> Json.Int x) l));
          ])
      (triple int small_string (list_size (int_bound 5) int)))

let journal_roundtrip_property =
  QCheck.Test.make ~name:"journal round-trips random records" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_bound 10) record_gen))
    (fun records ->
      with_scratch @@ fun () ->
      let path = in_scratch "q.log" in
      write_journal path records;
      match Journal.load path with
      | Error _ -> false
      | Ok r -> r.Journal.records = records && r.Journal.dropped_bytes = 0)

let test_compact () =
  with_scratch @@ fun () ->
  let path = in_scratch "compact.log" in
  write_journal path sample_records;
  (* Simulate damage, then compact to just the first two records. *)
  write_raw path (read_file path ^ "garbage without checksum\n");
  let keep = List.filteri (fun i _ -> i < 2) sample_records in
  Journal.compact ~path keep;
  match Journal.load path with
  | Error m -> Alcotest.failf "compacted journal load failed: %s" m
  | Ok r ->
    check Alcotest.bool "compaction kept exactly the given records" true
      (r.Journal.records = keep);
    check Alcotest.int "compaction left no damage" 0 r.Journal.dropped_bytes

let test_try_append () =
  with_scratch @@ fun () ->
  let path = in_scratch "try.log" in
  let j = Journal.create path in
  check Alcotest.bool "uncontended try_append succeeds" true
    (Journal.try_append j (List.hd sample_records));
  Journal.close j;
  match Journal.load path with
  | Ok r -> check Alcotest.int "record landed" 1 (List.length r.Journal.records)
  | Error m -> Alcotest.failf "load failed: %s" m

(* --- Atomic_file ----------------------------------------------------------- *)

let test_atomic_write () =
  with_scratch @@ fun () ->
  let path = in_scratch "atomic.txt" in
  Atomic_file.write ~path "first";
  check Alcotest.string "content written" "first" (read_file path);
  Atomic_file.write ~path "second, longer content";
  check Alcotest.string "content replaced" "second, longer content"
    (read_file path);
  (* No temporary litter left behind. *)
  let leftovers =
    Array.to_list (Sys.readdir scratch)
    |> List.filter (fun f -> f <> "atomic.txt")
  in
  check
    (Alcotest.list Alcotest.string)
    "no temp files left" [] leftovers

(* --- Metrics capture and merge --------------------------------------------- *)

let json_bytes j = Json.to_string j

let test_metrics_merge_json_roundtrip () =
  let src = Metrics.create_sink () in
  Metrics.add src "a.count" 3;
  Metrics.add src "b.count" 40;
  Metrics.observe src "h" 2;
  Metrics.observe src "h" 2;
  Metrics.observe src "h" 7;
  let dump = Metrics.to_json src in
  let dst = Metrics.create_sink () in
  (match Metrics.merge_json dst dump with
  | Ok () -> ()
  | Error m -> Alcotest.failf "merge_json failed: %s" m);
  check Alcotest.string "replayed dump is byte-identical"
    (json_bytes dump)
    (json_bytes (Metrics.to_json dst))

let test_metrics_merge_json_strict () =
  let dst = Metrics.create_sink () in
  let bad = Json.Obj [ ("counters", Json.Int 3) ] in
  (match Metrics.merge_json dst bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "malformed counters accepted");
  let bad_bucket =
    Json.Obj
      [
        ("counters", Json.Obj []);
        ( "histograms",
          Json.Obj
            [
              ( "h",
                Json.Obj
                  [ ("buckets", Json.Obj [ ("oops", Json.Int 1) ]) ] );
            ] );
      ]
  in
  match Metrics.merge_json dst bad_bucket with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-integer bucket key accepted"

let test_metrics_scoped_capture () =
  (* A scoped sink captures in isolation; merging the capture into the
     ambient sink reproduces direct recording exactly. *)
  let direct = Metrics.create_sink () in
  Metrics.install direct;
  Metrics.incr "x";
  Metrics.incr "x";
  Metrics.record ~value:5 "h";
  Metrics.uninstall ();
  let ambient = Metrics.create_sink () in
  Metrics.install ambient;
  let capture = Metrics.create_sink () in
  Metrics.scoped capture (fun () ->
      Metrics.incr "x";
      Metrics.incr "x";
      Metrics.record ~value:5 "h";
      match Metrics.active () with
      | Some s when s == capture -> ()
      | _ -> Alcotest.fail "scoped sink not active inside the scope");
  (match Metrics.active () with
  | Some s when s == ambient -> ()
  | _ -> Alcotest.fail "ambient sink not restored after the scope");
  Metrics.merge ambient capture;
  Metrics.uninstall ();
  check Alcotest.string "scoped capture + merge = direct recording"
    (json_bytes (Metrics.to_json direct))
    (json_bytes (Metrics.to_json ambient))

(* --- Ledger summaries ------------------------------------------------------ *)

let sample_summary =
  {
    Ledger.index = 3;
    seed = 123456789;
    crashed = None;
    iterations = 400;
    requested_iterations = 500;
    frames_examined = 400;
    evaluations = 400;
    virtual_runtime = 3210;
    counts = [| 7; 0; 2 |];
    degraded = true;
    salvaged_iterations = 400;
    supervision =
      Some
        {
          Ledger.s_outcome = "truncated";
          s_total_rounds = 4321;
          s_lost = false;
          s_attempts =
            [
              {
                Ledger.a_index = 0;
                a_outcome = "crashed";
                a_requested = 500;
                a_retired = 12;
                a_rounds = 0;
                a_lost_stores = 0;
                a_exn = Some "Boom";
              };
              {
                Ledger.a_index = 1;
                a_outcome = "truncated";
                a_requested = 250;
                a_retired = 200;
                a_rounds = 900;
                a_lost_stores = 3;
                a_exn = None;
              };
            ];
        };
    metrics = Some (Json.Obj [ ("counters", Json.Obj []) ]);
  }

let test_ledger_roundtrip () =
  let j = Ledger.to_json sample_summary in
  match Ledger.of_json j with
  | Error m -> Alcotest.failf "of_json failed: %s" m
  | Ok s ->
    check Alcotest.bool "summary round-trips" true (s = sample_summary);
    check Alcotest.int "target count" 7 (Ledger.target_count s)

let test_ledger_crashed_roundtrip () =
  let crashed =
    {
      sample_summary with
      Ledger.crashed =
        Some { Ledger.c_message = "Failure(\"x\")"; c_backtrace = "bt" };
      supervision = None;
      metrics = None;
      counts = [||];
    }
  in
  match Ledger.of_json (Ledger.to_json crashed) with
  | Error m -> Alcotest.failf "of_json failed: %s" m
  | Ok s ->
    check Alcotest.bool "crashed summary round-trips" true (s = crashed);
    check Alcotest.int "crashed target count" 0 (Ledger.target_count s)

let test_ledger_rejects_damage () =
  let j = Ledger.to_json sample_summary in
  let without field =
    match j with
    | Json.Obj fields -> Json.Obj (List.remove_assoc field fields)
    | _ -> assert false
  in
  List.iter
    (fun field ->
      match Ledger.of_json (without field) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "record without %S accepted" field)
    [ "kind"; "index"; "seed"; "counts"; "degraded" ]

let test_ledger_header () =
  let h = { Ledger.h_command = "run"; h_digest = "abc"; h_runs = 7 } in
  (match Ledger.parse_header (Ledger.header_to_json h) with
  | Ok h' -> check Alcotest.bool "header round-trips" true (h = h')
  | Error m -> Alcotest.failf "parse_header failed: %s" m);
  (match Ledger.parse_header (Json.Obj [ ("kind", Json.String "run") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-header accepted");
  check
    (Alcotest.option Alcotest.string)
    "kind of interrupted marker" (Some "interrupted")
    (Ledger.kind Ledger.interrupted_marker)

let test_digest_of_params () =
  let d1 = Ledger.digest_of_params [ ("a", "1"); ("b", "2") ] in
  let d2 = Ledger.digest_of_params [ ("a", "1"); ("b", "2") ] in
  let d3 = Ledger.digest_of_params [ ("a", "1"); ("b", "3") ] in
  check Alcotest.string "digest is deterministic" d1 d2;
  if d1 = d3 then Alcotest.fail "different params produced the same digest";
  check Alcotest.int "MD5 hex width" 32 (String.length d1)

(* --- CLI resume determinism ------------------------------------------------ *)

let binary =
  lazy
    (List.find_opt Sys.file_exists
       [ "../bin/perple.exe"; "_build/default/bin/perple.exe" ])

let have_binary = lazy (Lazy.force binary <> None)
let binary_path () = Option.get (Lazy.force binary)

(* stdout only — resume notes go to stderr and must not perturb the
   ledger. *)
let run_cli args =
  let out = in_scratch "stdout.txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> /dev/null"
      (Filename.quote (binary_path ()))
      args (Filename.quote out)
  in
  let code = Sys.command cmd in
  (code, read_file out)

let journal_run_lines path =
  match Journal.load path with
  | Error m -> Alcotest.failf "journal load failed: %s" m
  | Ok r -> (
    match r.Journal.records with
    | header :: rest ->
      (header, List.filter (fun j -> Ledger.kind j = Some "run") rest)
    | [] -> Alcotest.fail "journal has no header")

(* The acceptance matrix: for each (command, runs, jobs) combination,
   interrupt the journal after k records and resume under a different
   job count; stdout and the metrics dump must be byte-identical to the
   uninterrupted campaign. *)
let resume_cases =
  [
    ("run sb -n 300 --seed 5 --runs 5", 5, 1, 3);
    ("run sb -n 300 --seed 5 --runs 5", 5, 3, 2);
    ( "supervise sb -n 1200 --seed 9 --runs 4 --fault crash@0.3 --fault \
       hang@0.1",
      4, 2, 3 );
  ]

let test_cli_resume_byte_identical () =
  if Lazy.force have_binary then
    with_scratch @@ fun () ->
    List.iteri
      (fun case (base, runs, jobs, resume_jobs) ->
        let clean_metrics = in_scratch (Printf.sprintf "clean%d.metrics" case) in
        let code, clean =
          run_cli
            (Printf.sprintf "%s --jobs %d --metrics %s" base jobs
               (Filename.quote clean_metrics))
        in
        check Alcotest.int (base ^ ": clean ok") 0 code;
        let clean_metrics_bytes = read_file clean_metrics in
        (* One full journaled run to harvest genuine journal records. *)
        let full = in_scratch (Printf.sprintf "full%d.log" case) in
        let code, journaled =
          run_cli
            (Printf.sprintf "%s --jobs %d --journal %s" base jobs
               (Filename.quote full))
        in
        check Alcotest.int (base ^ ": journaled ok") 0 code;
        check Alcotest.string (base ^ ": journaling changes nothing") clean
          journaled;
        let header, run_records = journal_run_lines full in
        check Alcotest.int
          (base ^ ": one record per run")
          runs
          (List.length run_records);
        List.iter
          (fun k ->
            (* Interrupt after k records, with a torn half-record tail —
               exactly what a SIGKILL mid-append leaves behind. *)
            let cut = in_scratch (Printf.sprintf "cut%d_%d.log" case k) in
            Journal.compact ~path:cut
              (header :: List.filteri (fun i _ -> i < k) run_records);
            write_raw cut (read_file cut ^ "0bad");
            let resumed_metrics =
              in_scratch (Printf.sprintf "resumed%d_%d.metrics" case k)
            in
            let code, resumed =
              run_cli
                (Printf.sprintf "%s --jobs %d --journal %s --resume \
                                 --metrics %s"
                   base resume_jobs (Filename.quote cut)
                   (Filename.quote resumed_metrics))
            in
            check Alcotest.int (Printf.sprintf "%s: resume k=%d ok" base k) 0
              code;
            check Alcotest.string
              (Printf.sprintf "%s: resume k=%d stdout identical" base k)
              clean resumed;
            check Alcotest.string
              (Printf.sprintf "%s: resume k=%d metrics identical" base k)
              clean_metrics_bytes
              (read_file resumed_metrics))
          [ 0; 1; runs - 1 ])
      resume_cases

let test_cli_resume_survives_corrupt_tail () =
  (* Bit-flip damage inside the journal body (not just the tail line):
     resume must never crash; it either salvages the clean prefix and
     recomputes the rest, or refuses with a clear error. *)
  if Lazy.force have_binary then
    with_scratch @@ fun () ->
    let base = "run sb -n 300 --seed 5 --runs 4" in
    let clean_code, clean = run_cli (base ^ " --jobs 2") in
    check Alcotest.int "clean ok" 0 clean_code;
    let full = in_scratch "corrupt.log" in
    let code, _ =
      run_cli
        (Printf.sprintf "%s --jobs 2 --journal %s" base (Filename.quote full))
    in
    check Alcotest.int "journaled ok" 0 code;
    let bytes = read_file full in
    let n = String.length bytes in
    (* Flip a byte at several depths of the tail half of the file. *)
    List.iter
      (fun frac ->
        let pos = n / 2 + (frac * (n / 2) / 10) in
        let pos = min pos (n - 1) in
        let b = Bytes.of_string bytes in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
        let damaged = in_scratch "damaged.log" in
        write_raw damaged (Bytes.to_string b);
        let code, resumed =
          run_cli
            (Printf.sprintf "%s --jobs 1 --journal %s --resume" base
               (Filename.quote damaged))
        in
        check Alcotest.int
          (Printf.sprintf "flip at %d: resume ok" pos)
          0 code;
        check Alcotest.string
          (Printf.sprintf "flip at %d: stdout identical" pos)
          clean resumed)
      [ 0; 3; 7; 9 ]

let test_cli_journal_guards () =
  if Lazy.force have_binary then
    with_scratch @@ fun () ->
    let j = in_scratch "guard.log" in
    (* --resume without --journal *)
    let code, _ = run_cli "run sb -n 100 --runs 2 --resume" in
    check Alcotest.bool "--resume without --journal fails" true (code <> 0);
    (* --journal on a single run *)
    let code, _ =
      run_cli (Printf.sprintf "run sb -n 100 --journal %s" (Filename.quote j))
    in
    check Alcotest.bool "--journal with --runs 1 fails" true (code <> 0);
    (* Fresh journal, then overwrite refusal. *)
    let code, _ =
      run_cli
        (Printf.sprintf "run sb -n 100 --runs 2 --seed 3 --journal %s"
           (Filename.quote j))
    in
    check Alcotest.int "fresh journal ok" 0 code;
    let code, _ =
      run_cli
        (Printf.sprintf "run sb -n 100 --runs 2 --seed 3 --journal %s"
           (Filename.quote j))
    in
    check Alcotest.bool "existing journal without --resume fails" true
      (code <> 0);
    (* Digest mismatch: same journal, different seed. *)
    let code, _ =
      run_cli
        (Printf.sprintf
           "run sb -n 100 --runs 2 --seed 4 --journal %s --resume"
           (Filename.quote j))
    in
    check Alcotest.bool "config drift is refused" true (code <> 0);
    (* Same configuration resumes cleanly (all runs already journaled). *)
    let code, _ =
      run_cli
        (Printf.sprintf
           "run sb -n 100 --runs 2 --seed 3 --journal %s --resume"
           (Filename.quote j))
    in
    check Alcotest.int "same config resumes" 0 code

let suite =
  [
    ( "util.journal",
      [
        Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "crc32 bit sensitivity" `Quick
          test_crc32_bit_sensitivity;
        Alcotest.test_case "append/load round-trip" `Quick
          test_append_load_roundtrip;
        Alcotest.test_case "missing file" `Quick test_load_missing_file;
        Alcotest.test_case "empty file" `Quick test_load_empty_file;
        Alcotest.test_case "truncate at every offset" `Quick
          test_truncate_every_offset;
        Alcotest.test_case "bit-flipped tail" `Quick test_bit_flip_tail;
        QCheck_alcotest.to_alcotest journal_roundtrip_property;
        Alcotest.test_case "compact" `Quick test_compact;
        Alcotest.test_case "try_append" `Quick test_try_append;
        Alcotest.test_case "atomic write" `Quick test_atomic_write;
      ] );
    ( "util.metrics.capture",
      [
        Alcotest.test_case "merge_json round-trip" `Quick
          test_metrics_merge_json_roundtrip;
        Alcotest.test_case "merge_json strictness" `Quick
          test_metrics_merge_json_strict;
        Alcotest.test_case "scoped capture" `Quick test_metrics_scoped_capture;
      ] );
    ( "core.ledger",
      [
        Alcotest.test_case "summary round-trip" `Quick test_ledger_roundtrip;
        Alcotest.test_case "crashed summary round-trip" `Quick
          test_ledger_crashed_roundtrip;
        Alcotest.test_case "rejects damaged records" `Quick
          test_ledger_rejects_damage;
        Alcotest.test_case "header round-trip" `Quick test_ledger_header;
        Alcotest.test_case "param digest" `Quick test_digest_of_params;
      ] );
    ( "cli.resume",
      [
        Alcotest.test_case "resume is byte-identical" `Slow
          test_cli_resume_byte_identical;
        Alcotest.test_case "resume survives corrupt tail" `Slow
          test_cli_resume_survives_corrupt_tail;
        Alcotest.test_case "journal guards" `Quick test_cli_journal_guards;
      ] );
  ]

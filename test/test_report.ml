(* Integration tests for Perple_report: each experiment driver runs at
   smoke scale and satisfies the paper's shape claims, plus Skew
   measurements. *)

module Catalog = Perple_litmus.Catalog
module Convert = Perple_core.Convert
module Skew = Perple_core.Skew
module Perpetual = Perple_harness.Perpetual
module Stats = Perple_util.Stats
module Config = Perple_sim.Config
module Rng = Perple_util.Rng
module R = Perple_report

let check = Alcotest.check

(* Smaller than quick_params: these run inside the default test suite. *)
let tiny =
  {
    R.Common.quick_params with
    R.Common.iterations = 600;
    (* Large enough that three-thread tests (frame space N^3) still give
       the exhaustive counter a few hundred iterations; the factorized
       kernel makes 8M frames cheaper than the machine run itself. *)
    exhaustive_cap = 8_000_000;
    sweep = [ 100; 600 ];
    variety_iterations = 400;
    skew_iterations = 4_000;
  }

(* --- Skew ---------------------------------------------------------------- *)

let test_skew_measurement () =
  let conv = Result.get_ok (Convert.convert Catalog.sb) in
  let run =
    Perpetual.run ~rng:(Rng.create 2) ~image:conv.Convert.image
      ~t_reads:conv.Convert.t_reads ~iterations:5_000 ()
  in
  let h = Skew.measure conv ~run in
  check Alcotest.bool "samples" true (Stats.Histogram.total h > 1_000);
  (* Mean skew should be small relative to its spread. *)
  check Alcotest.bool "centered" true
    (Float.abs (Stats.Histogram.mean h) < 4.0 *. Stats.Histogram.stddev h)

let test_skew_between_filter () =
  let conv = Result.get_ok (Convert.convert Catalog.sb) in
  let run =
    Perpetual.run ~rng:(Rng.create 2) ~image:conv.Convert.image
      ~t_reads:conv.Convert.t_reads ~iterations:2_000 ()
  in
  let all = Skew.measure conv ~run in
  let pair01 = Skew.measure ~between:(0, 1) conv ~run in
  let pair10 = Skew.measure ~between:(1, 0) conv ~run in
  check Alcotest.int "pairs partition"
    (Stats.Histogram.total all)
    (Stats.Histogram.total pair01 + Stats.Histogram.total pair10)

let test_skew_jitter_widens () =
  let conv = Result.get_ok (Convert.convert Catalog.sb) in
  let stddev config seed =
    let run =
      Perpetual.run ~config ~rng:(Rng.create seed) ~image:conv.Convert.image
        ~t_reads:conv.Convert.t_reads ~iterations:8_000 ()
    in
    Stats.Histogram.stddev (Skew.measure conv ~run)
  in
  check Alcotest.bool "jitter widens skew" true
    (stddev Config.default 3 > 3.0 *. stddev (Config.no_jitter Config.default) 3)

(* --- Experiment drivers -------------------------------------------------- *)

let test_table_ii () =
  let rows = R.Table_ii.rows () in
  check Alcotest.int "34 rows" 34 (List.length rows);
  List.iter
    (fun (r : R.Table_ii.row) ->
      check Alcotest.bool (r.R.Table_ii.name ^ " matches paper") true
        r.R.Table_ii.matches_catalog;
      check Alcotest.bool (r.R.Table_ii.name ^ " convertible") true
        r.R.Table_ii.convertible)
    rows

let test_fig9_shape () =
  let rows = R.Fig9.rows tiny in
  check Alcotest.int "34 rows" 34 (List.length rows);
  let violations = R.Fig9.shape_violations rows in
  check (Alcotest.list Alcotest.string) "no shape violations" [] violations

let test_fig10_shape () =
  let s = R.Fig10.summarize tiny in
  let geo name = List.assoc name s.R.Fig10.geomean_speedups in
  check Alcotest.bool "heuristic fastest" true
    (geo "perple-heur" > geo "litmus7-none");
  check Alcotest.bool "none faster than user" true (geo "litmus7-none" > 1.0);
  check Alcotest.bool "pthread slowest" true (geo "litmus7-pthread" < 0.2);
  check Alcotest.bool "timebase slower than user" true
    (geo "litmus7-timebase" < 1.0);
  check Alcotest.bool "heuristic beats exhaustive" true
    (s.R.Fig10.heur_over_exh > 5.0)

let test_fig11_shape () =
  let points = R.Fig11.sweep tiny in
  check Alcotest.int "sweep points" 2 (List.length points);
  let last = List.nth points 1 in
  let heur = List.assoc "perple-heur" last.R.Fig11.cells in
  (* PerpLE exposes every allowed target and improves on user wherever the
     baseline is nonzero. *)
  check Alcotest.int "heuristic nonzero on all allowed" 12
    heur.R.Fig11.tool_nonzero;
  check Alcotest.bool "improvement over user" true
    (heur.R.Fig11.tests_counted = 0
    || heur.R.Fig11.mean_improvement > 1.0)

let test_fig12_shape () =
  let r = R.Fig12.measure tiny in
  check Alcotest.bool "wide" true (r.R.Fig12.max_skew - r.R.Fig12.min_skew > 20);
  check Alcotest.bool "roughly centered" true
    (Float.abs r.R.Fig12.mean < Float.max 5.0 r.R.Fig12.stddev)

let test_fig13_shape () =
  let v = R.Fig13.variety tiny "sb" in
  check Alcotest.int "four outcomes" 4 (List.length v.R.Fig13.outcome_labels);
  (* litmus7 counts sum to N per mode; PerpLE samples independently. *)
  List.iter
    (fun (tool, counts) ->
      if tool <> "perple-heur" then
        check Alcotest.int (tool ^ " total") tiny.R.Common.variety_iterations
          (Array.fold_left ( + ) 0 counts))
    v.R.Fig13.per_tool;
  (* The forbidden lb outcome 11 is observed by nobody. *)
  let lb = R.Fig13.variety tiny "lb" in
  let idx_11 =
    Option.get
      (List.find_index (fun l -> l = "11") lb.R.Fig13.outcome_labels)
  in
  check Alcotest.bool "lb 11 forbidden" true
    (List.nth lb.R.Fig13.forbidden idx_11);
  List.iter
    (fun (tool, counts) ->
      check Alcotest.int (tool ^ " lb 11") 0 counts.(idx_11))
    lb.R.Fig13.per_tool

let test_accuracy () =
  let rows = R.Accuracy.rows tiny in
  List.iter
    (fun (r : R.Accuracy.row) ->
      check Alcotest.bool (r.R.Accuracy.name ^ " accurate") true
        r.R.Accuracy.accurate)
    rows

let test_overall () =
  let s = R.Overall.summarize tiny in
  check Alcotest.int "88 tests" 88 s.R.Overall.total_tests;
  check Alcotest.int "34 convertible" 34 s.R.Overall.convertible;
  check Alcotest.bool "campaign speedup > 1" true
    (s.R.Overall.campaign_speedup > 1.0);
  check Alcotest.bool "detection improvement" true
    (s.R.Overall.mean_detection_improvement > 1.0)

let test_ablation () =
  let coverage = R.Ablation.heuristic_coverage tiny in
  check Alcotest.int "12 allowed tests" 12 (List.length coverage);
  List.iter
    (fun (r : R.Ablation.coverage_row) ->
      (* Heuristic hits are a subset of exhaustive hits. *)
      check Alcotest.bool (r.R.Ablation.name ^ " subset") true
        (r.R.Ablation.heuristic <= r.R.Ablation.exhaustive);
      check Alcotest.bool (r.R.Ablation.name ^ " coverage in [0,1]") true
        (r.R.Ablation.coverage >= 0.0 && r.R.Ablation.coverage <= 1.0))
    coverage;
  (* The false-positive demonstration needs enough iterations for the
     rare both-read-other's-store pattern to appear; deterministic seed. *)
  let exactness =
    R.Ablation.exactness { tiny with R.Common.iterations = 4_000 }
  in
  List.iter
    (fun (r : R.Ablation.exactness_row) ->
      check Alcotest.int (r.R.Ablation.name ^ " sound with exact rf") 0
        r.R.Ablation.with_exact)
    exactness;
  (* The bare >= rule admits the n5 false positive the strengthening
     removes (probabilistic but reliable at this iteration count). *)
  let n5 =
    List.find (fun (r : R.Ablation.exactness_row) -> r.R.Ablation.name = "n5")
      exactness
  in
  check Alcotest.bool "bare >= rule is unsound on n5" true
    (n5.R.Ablation.without_exact > 0)

let test_ablation_alignment () =
  let rows = R.Ablation.barrier_alignment tiny in
  let counts = List.map (fun (r : R.Ablation.skew_row) -> r.R.Ablation.target_count) rows in
  (* Tightest alignment beats loosest. *)
  check Alcotest.bool "alignment helps" true
    (List.hd counts > List.nth counts (List.length counts - 1))

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_trace_audit () =
  let text = R.Trace_audit.render tiny in
  (* Clean machines are sound: their whole traces always verify. *)
  check Alcotest.bool "clean rows verify" true
    (contains ~sub:"all traces verify" text)

let test_experiments_registry () =
  check Alcotest.int "ten experiments" 10 (List.length R.Experiments.ids);
  check Alcotest.bool "unknown id" true
    (Result.is_error (R.Experiments.run tiny "fig99"));
  (* The cheapest drivers render without error. *)
  List.iter
    (fun id ->
      match R.Experiments.run tiny id with
      | Ok text -> check Alcotest.bool (id ^ " non-empty") true (text <> "")
      | Error m -> Alcotest.failf "%s failed: %s" id m)
    [ "table2"; "fig12" ]

let test_run_tool_seeding () =
  (* Distinct tests and tools get distinct seeds, same call repeats. *)
  let test = Catalog.sb in
  let tool = R.Common.Perple Perple_core.Engine.Heuristic in
  let a = R.Common.run_tool ~params:tiny ~iterations:500 ~test tool in
  let b = R.Common.run_tool ~params:tiny ~iterations:500 ~test tool in
  check Alcotest.int "reproducible" a.R.Common.target_count
    b.R.Common.target_count

let suite =
  [
    ( "core.skew",
      [
        Alcotest.test_case "measurement" `Quick test_skew_measurement;
        Alcotest.test_case "between filter" `Quick test_skew_between_filter;
        Alcotest.test_case "jitter widens" `Quick test_skew_jitter_widens;
      ] );
    ( "report",
      [
        Alcotest.test_case "Table II" `Quick test_table_ii;
        Alcotest.test_case "Fig 9 shape" `Slow test_fig9_shape;
        Alcotest.test_case "Fig 10 shape" `Slow test_fig10_shape;
        Alcotest.test_case "Fig 11 shape" `Slow test_fig11_shape;
        Alcotest.test_case "Fig 12 shape" `Quick test_fig12_shape;
        Alcotest.test_case "Fig 13 shape" `Slow test_fig13_shape;
        Alcotest.test_case "accuracy" `Slow test_accuracy;
        Alcotest.test_case "overall" `Slow test_overall;
        Alcotest.test_case "ablation" `Slow test_ablation;
        Alcotest.test_case "ablation alignment" `Quick
          test_ablation_alignment;
        Alcotest.test_case "trace audit" `Slow test_trace_audit;
        Alcotest.test_case "experiments registry" `Quick
          test_experiments_registry;
        Alcotest.test_case "tool seeding" `Quick test_run_tool_seeding;
      ] );
  ]
